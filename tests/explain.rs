//! Explain-engine contract over the ten-workload suite: for every
//! workload the explainer agrees with the session's match oracle on
//! *whether* each catalog optimizer fires, and for at least one
//! non-firing optimizer per workload it names the exact automaton
//! edge, format conjunct, or dependence clause that blocks it.

use genesis::{explain, Blocker, ExplainReport, FusedAutomaton, Session};
use gospel_dep::DepGraph;

/// Explain every catalog optimizer against one workload, returning
/// `(optimizer name, report)` in catalog order.
fn explain_all(prog: &gospel_ir::Program) -> Vec<(String, ExplainReport)> {
    let opts = gospel_opts::catalog().expect("catalog compiles");
    let auto = FusedAutomaton::build(&opts, prog);
    let deps = DepGraph::analyze(prog).expect("dependence analysis");
    opts.iter()
        .map(|o| {
            let r = explain(prog, &deps, o, &auto, None).expect("explain runs");
            (o.name.clone(), r)
        })
        .collect()
}

/// The explainer's fired/blocked verdict must agree with the real
/// search (`Session::matches`) for every (workload, optimizer) pair —
/// the narrative walk and the production matcher share one semantics.
#[test]
fn explain_agrees_with_the_match_oracle_on_every_workload() {
    for (name, prog) in gospel_workloads::suite() {
        let mut session = Session::new(prog.clone());
        for opt in gospel_opts::catalog().expect("catalog compiles") {
            session.register(opt);
        }
        for (opt, report) in explain_all(&prog) {
            assert!(!report.truncated, "{name}/{opt}: explain walk truncated");
            let oracle = session.matches(&opt).expect("matches runs");
            assert_eq!(
                report.fired() > 0,
                !oracle.bindings.is_empty(),
                "{name}/{opt}: explain says {} candidate(s) fire but the \
                 driver finds {} application point(s)\n{}",
                report.fired(),
                oracle.bindings.len(),
                report.to_text(),
            );
            // Every candidate either fires or names a concrete blocker;
            // a blocked candidate's narrative is never empty.
            for c in &report.candidates {
                if let Some(b) = &c.blocker {
                    assert!(!b.to_string().is_empty(), "{name}/{opt}: empty narrative");
                }
            }
        }
    }
}

/// One pinned non-firing optimizer per workload: the explainer must
/// name the *exact* failing automaton edge, opcode bucket, format
/// conjunct, or dependence clause (text and witness included).
#[test]
fn explain_names_the_exact_blocker_on_every_workload() {
    // (workload, optimizer, expected narrative of the first blocker).
    // Each expectation pins the full rendered text, so any drift in
    // edge rendering, clause pretty-printing, or witness naming fails.
    let expected: &[(&str, &str, &str)] = &[
        (
            "fft",
            "CPP",
            "not admitted: automaton edge `type(opr_2) == var` failed \
             (the operand is const)",
        ),
        (
            "newton",
            "DCE",
            "dependence clause 1 (`no Sj: flow_dep(Si, Sj)`) found a \
             forbidden dependence: Sj = s3",
        ),
        (
            "bisect",
            "ICM",
            "dependence clause 2 (`no Sm: mem(Sm, L), flow_dep(Sm, Si)`) \
             found a forbidden dependence: Sm = s9",
        ),
        (
            "gauss",
            "FUS",
            "format of pattern clause 1 failed at conjunct `L1.lcv == L2.lcv`",
        ),
        (
            "matmul",
            "FUS",
            "dependence clause 1 (`no Sm, Sn: mem(Sm, L1) AND mem(Sn, L2), \
             (flow_dep(Sm, Sn, (>)) OR anti_dep(Sm, Sn, (>))) OR \
             out_dep(Sm, Sn, (>))`) found a forbidden dependence: \
             Sm = s4, Sn = s11",
        ),
        (
            "trapz",
            "LUR",
            "format of pattern clause 1 failed at conjunct `type(L.final) == const`",
        ),
        (
            "fixpnf",
            "DCE",
            "dependence clause 1 (`no Sj: flow_dep(Si, Sj)`) found a \
             forbidden dependence: Sj = s3",
        ),
        (
            "polsys",
            "CFO",
            "not admitted: opcode `assign` is outside the anchor's opcode \
             set {add, sub, mul, div, mod} (rejected at the automaton's \
             root bucket)",
        ),
        (
            "track",
            "DCE",
            "dependence clause 1 (`no Sj: flow_dep(Si, Sj)`) found a \
             forbidden dependence: Sj = s1",
        ),
        (
            "interact",
            "BMP",
            "format of pattern clause 1 failed at conjunct `L.init != 1`",
        ),
    ];
    let suite = gospel_workloads::suite();
    let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
    let covered: Vec<&str> = expected.iter().map(|(w, _, _)| *w).collect();
    assert_eq!(names, covered, "every workload needs a pinned blocker");

    for (workload, opt_name, narrative) in expected {
        let prog = gospel_workloads::program(workload);
        let reports = explain_all(&prog);
        let (_, report) = reports
            .iter()
            .find(|(n, _)| n == opt_name)
            .expect("optimizer is in the catalog");
        assert_eq!(
            report.fired(),
            0,
            "{workload}/{opt_name}: expected a non-firing optimizer\n{}",
            report.to_text()
        );
        let blocker = report
            .first_blocker()
            .unwrap_or_else(|| panic!("{workload}/{opt_name}: no blocker named"));
        assert_eq!(
            blocker.to_string(),
            *narrative,
            "{workload}/{opt_name}: blocker narrative drifted\n{}",
            report.to_text()
        );
    }
}

/// Structural spot-checks: the pinned narratives above come from the
/// right [`Blocker`] variants, one per failure family.
#[test]
fn explain_blockers_carry_structured_fields() {
    // fft / CPP — a discriminator edge on the fused trie path.
    let prog = gospel_workloads::program("fft");
    let reports = explain_all(&prog);
    let cpp = &reports.iter().find(|(n, _)| n == "CPP").unwrap().1;
    assert!(
        matches!(
            cpp.first_blocker(),
            Some(Blocker::EdgeFailed { edge, actual })
                if edge == "type(opr_2) == var" && actual == "const"
        ),
        "fft/CPP: {:?}",
        cpp.first_blocker()
    );
    // gauss / ICM — an `any` Depend clause with no solution at all.
    let prog = gospel_workloads::program("gauss");
    let reports = explain_all(&prog);
    let icm = &reports.iter().find(|(n, _)| n == "ICM").unwrap().1;
    assert!(
        matches!(
            icm.first_blocker(),
            Some(Blocker::DepUnsatisfied { clause: 0, clause_text })
                if clause_text.starts_with("any Si: mem(Si, L)")
        ),
        "gauss/ICM: {:?}",
        icm.first_blocker()
    );
    // matmul / CRC — a non-anchor pattern clause with no witness.
    let prog = gospel_workloads::program("matmul");
    let reports = explain_all(&prog);
    let crc = &reports.iter().find(|(n, _)| n == "CRC").unwrap().1;
    assert!(
        matches!(
            crc.first_blocker(),
            Some(Blocker::NoWitness { clause: 1, .. })
        ),
        "matmul/CRC: {:?}",
        crc.first_blocker()
    );
    // polsys / CFO — rejected at the automaton's root opcode bucket.
    let prog = gospel_workloads::program("polsys");
    let reports = explain_all(&prog);
    let cfo = &reports.iter().find(|(n, _)| n == "CFO").unwrap().1;
    assert!(
        matches!(
            cfo.first_blocker(),
            Some(Blocker::OpcodeMiss { got, expected })
                if got == "assign" && expected.len() == 5
        ),
        "polsys/CFO: {:?}",
        cfo.first_blocker()
    );
}
