//! Integration: the paper's first experiment as a regression test — every
//! generated optimizer finds the same application points and produces the
//! same code as its hand-coded twin, on every suite program.

#[test]
fn generated_optimizers_match_hand_coded_ones() {
    let rows = genesis_bench::e1_quality().expect("E1 runs");
    assert_eq!(rows.len(), 11 * 10, "11 optimizations x 10 programs");
    for r in &rows {
        assert_eq!(
            r.generated, r.hand,
            "{}/{}: generated found {} points, hand found {}",
            r.program, r.opt, r.generated, r.hand
        );
        assert!(
            r.same_result,
            "{}/{}: transformed programs differ",
            r.program, r.opt
        );
    }
}

#[test]
fn generated_code_statistics_are_in_the_papers_ballpark() {
    let rows = genesis_bench::e7_loc_stats().expect("E7 runs");
    assert_eq!(rows.len(), 11);
    let avg_total: usize =
        rows.iter().map(|r| r.interface + r.procedures).sum::<usize>() / rows.len();
    // The paper reports ≈99 generated lines per optimization.
    assert!(
        (30..=200).contains(&avg_total),
        "average generated lines {avg_total} far from the paper's ~99"
    );
}
