//! Smoke profile: the differential (translation-validation) suite over a
//! three-workload subset, fast enough for every CI run. The full-suite
//! version lives in `tests/guard.rs` and `tests/semantics.rs`; this one
//! exists so `cargo test --test smoke` gives a sub-second end-to-end
//! confidence check.

use genesis::ApplyMode;
use genesis_guard::{GuardConfig, GuardedSession};
use gospel_exec::ExecValue;

const SMOKE_WORKLOADS: usize = 3;

#[test]
fn differential_suite_over_three_workloads() {
    let suite = gospel_workloads::suite();
    assert!(suite.len() >= SMOKE_WORKLOADS, "workload suite shrank");
    for (wname, prog) in suite.into_iter().take(SMOKE_WORKLOADS) {
        let cfg = GuardConfig::default();
        let vectors: Vec<Vec<ExecValue>> =
            gospel_workloads::generator::input_vectors(cfg.seed, cfg.vectors, cfg.vector_len)
                .into_iter()
                .map(|v| v.into_iter().map(ExecValue::Int).collect())
                .collect();
        let before: Vec<_> = vectors
            .iter()
            .map(|v| gospel_exec::run_limited(&prog, v, cfg.step_limit).ok())
            .collect();

        let mut gs = GuardedSession::new(prog, cfg.clone());
        for opt in gospel_opts::catalog().expect("catalog generates") {
            gs.register(opt);
        }
        for name in ["CTP", "CFO", "CPP", "DCE", "PAR"] {
            let outcome = gs
                .apply(name, ApplyMode::AllPoints)
                .unwrap_or_else(|e| panic!("{wname}/{name}: {e}"));
            assert!(outcome.is_applied(), "{wname}/{name}: {outcome:?}");
        }

        for (i, (v, b)) in vectors.iter().zip(&before).enumerate() {
            let after = gospel_exec::run_limited(gs.program(), v, cfg.step_limit).ok();
            match (b, &after) {
                (Some(b), Some(a)) => assert!(
                    b.same_outputs(a),
                    "{wname}: vector {i} diverged at {:?}",
                    b.first_mismatch(a)
                ),
                (None, None) => {}
                _ => panic!("{wname}: vector {i} changed fault behaviour"),
            }
        }
    }
}
