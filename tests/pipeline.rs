//! Integration: the full pipeline — MiniFor source → IR → dependence
//! analysis → generated optimizers → validated IR — across the whole
//! workload suite.

use genesis::{ApplyMode, Driver};
use gospel_dep::DepGraph;
use gospel_ir::validate;
use gospel_opts::interaction::natural_mode;
use gospel_opts::catalog;

#[test]
fn every_optimizer_preserves_structural_validity_on_every_workload() {
    let opts = catalog().expect("catalog generates");
    for (name, prog) in gospel_workloads::suite() {
        for opt in &opts {
            let mut work = prog.clone();
            Driver::new(opt)
                .apply(&mut work, natural_mode(opt))
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", opt.name));
            validate(&work).unwrap_or_else(|e| panic!("{name}/{} produced invalid IR: {e}", opt.name));
            DepGraph::analyze(&work)
                .unwrap_or_else(|e| panic!("{name}/{} broke analyzability: {e}", opt.name));
        }
    }
}

#[test]
fn chained_optimization_pipeline_stays_valid() {
    // The conventional-compiler pipeline: propagate, fold, clean up,
    // then parallelize.
    for (name, prog) in gospel_workloads::suite() {
        let mut work = prog.clone();
        for opt_name in ["CTP", "CFO", "CPP", "DCE", "PAR"] {
            let opt = gospel_opts::by_name(opt_name);
            Driver::new(&opt)
                .apply(&mut work, ApplyMode::AllPoints)
                .unwrap_or_else(|e| panic!("{name}/{opt_name}: {e}"));
        }
        validate(&work).unwrap_or_else(|e| panic!("{name}: {e}"));
        // the pipeline must keep observable outputs (writes)
        let writes = |p: &gospel_ir::Program| {
            p.iter()
                .filter(|&s| p.quad(s).op == gospel_ir::Opcode::Write)
                .count()
        };
        assert_eq!(writes(&prog), writes(&work), "{name} lost writes");
    }
}

#[test]
fn optimizers_converge_and_are_idempotent() {
    // A second AllPoints run right after the first must find nothing.
    for (name, prog) in gospel_workloads::suite() {
        for opt_name in ["CTP", "CPP", "CFO", "DCE", "ICM", "LUR", "FUS", "BMP", "PAR"] {
            let opt = gospel_opts::by_name(opt_name);
            let mut work = prog.clone();
            Driver::new(&opt)
                .apply(&mut work, ApplyMode::AllPoints)
                .unwrap_or_else(|e| panic!("{name}/{opt_name}: {e}"));
            let again = Driver::new(&opt)
                .apply(&mut work, ApplyMode::AllPoints)
                .unwrap_or_else(|e| panic!("{name}/{opt_name}: {e}"));
            assert_eq!(again.applications, 0, "{name}/{opt_name} is not idempotent");
        }
    }
}

#[test]
fn dependence_graphs_are_deterministic() {
    for (name, prog) in gospel_workloads::suite() {
        let a = DepGraph::analyze(&prog).unwrap();
        let b = DepGraph::analyze(&prog).unwrap();
        assert_eq!(a.edges(), b.edges(), "{name}");
    }
}

/// Heavy smoke test over large random programs (run with `--ignored`).
#[test]
#[ignore = "stress test: ~1 minute"]
fn full_catalog_over_large_random_programs() {
    use gospel_workloads::generator::{generate, GenConfig};
    let opts = catalog().expect("catalog generates");
    for seed in 0..5u64 {
        let prog = generate(
            1000 + seed,
            GenConfig {
                statements: 300,
                ..GenConfig::default()
            },
        );
        for opt in &opts {
            let mut work = prog.clone();
            if Driver::new(opt)
                .apply(&mut work, gospel_opts::interaction::natural_mode(opt))
                .is_err()
            {
                continue; // documented restrictions on random shapes
            }
            validate(&work).unwrap_or_else(|e| panic!("seed {seed}/{}: {e}", opt.name));
        }
    }
}
