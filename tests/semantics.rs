//! Differential testing: every catalog optimization must preserve the
//! observable behaviour (the `write` trace) of every workload — and of
//! random programs — bit for bit. This is a stronger check than the
//! paper's structural comparison: it catches miscompiles that happen to be
//! structurally plausible.

use genesis::Driver;
use gospel_exec::{run, ExecValue, Trace};
use gospel_ir::Program;
use gospel_opts::interaction::natural_mode;
use gospel_workloads::generator::{generate, GenConfig};
use proptest::prelude::*;

fn trace_of(prog: &Program, what: &str) -> Trace {
    run(prog, &[]).unwrap_or_else(|e| panic!("{what} failed to execute: {e}"))
}

#[test]
fn every_optimizer_preserves_suite_semantics() {
    let opts = gospel_opts::catalog().expect("catalog generates");
    for (name, prog) in gospel_workloads::suite() {
        let baseline = trace_of(&prog, name);
        assert!(!baseline.outputs.is_empty(), "{name} writes nothing");
        for opt in &opts {
            let mut work = prog.clone();
            Driver::new(opt)
                .apply(&mut work, natural_mode(opt))
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", opt.name));
            let after = trace_of(&work, &format!("{name} after {}", opt.name));
            assert!(
                baseline.same_outputs(&after),
                "{name}/{} changed observable behaviour:\n  before: {:?}\n  after:  {:?}",
                opt.name,
                baseline.outputs,
                after.outputs
            );
        }
    }
}

#[test]
fn chained_pipeline_preserves_suite_semantics() {
    for (name, prog) in gospel_workloads::suite() {
        let baseline = trace_of(&prog, name);
        let mut work = prog.clone();
        for opt_name in ["CTP", "CFO", "CPP", "DCE", "FUS", "PAR"] {
            let opt = gospel_opts::by_name(opt_name);
            Driver::new(&opt)
                .apply(&mut work, natural_mode(&opt))
                .unwrap_or_else(|e| panic!("{name}/{opt_name}: {e}"));
        }
        let after = trace_of(&work, &format!("{name} after pipeline"));
        assert!(
            baseline.same_outputs(&after),
            "{name}: pipeline changed behaviour"
        );
    }
}

#[test]
fn dead_code_elimination_reduces_steps_after_propagation() {
    // The semantic payoff of the CTP→DCE enablement: fewer executed
    // statements, identical outputs.
    let prog = gospel_frontend::compile(
        "program p\ninteger i, n, s\nn = 100\ns = 0\ndo i = 1, n\ns = s + i\nend do\nwrite s\nend",
    )
    .unwrap();
    let before = trace_of(&prog, "baseline");
    let mut work = prog.clone();
    for name in ["CTP", "DCE"] {
        let opt = gospel_opts::by_name(name);
        Driver::new(&opt)
            .apply(&mut work, natural_mode(&opt))
            .unwrap();
    }
    let after = trace_of(&work, "optimized");
    assert!(before.same_outputs(&after));
    assert!(
        after.steps <= before.steps,
        "optimization should not add work: {} -> {}",
        before.steps,
        after.steps
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scalar_optimizers_preserve_random_program_semantics(
        seed in 0u64..4000,
        n in 20usize..80,
        pct in 10u32..90,
    ) {
        let prog = generate(seed, GenConfig { statements: n, const_pct: pct, ..Default::default() });
        let Ok(baseline) = run(&prog, &[]) else {
            // division-by-zero etc. in a random program: skip
            return Ok(());
        };
        for name in ["CTP", "CPP", "CFO", "DCE", "PAR", "FUS", "LUR", "BMP", "ICM"] {
            let opt = gospel_opts::by_name(name);
            let mut work = prog.clone();
            if Driver::new(&opt).apply(&mut work, natural_mode(&opt)).is_err() {
                // documented prototype restrictions (e.g. scalar-LCV bump)
                continue;
            }
            let after = run(&work, &[]);
            prop_assert!(after.is_ok(), "{} broke execution: {:?}", name, after);
            prop_assert!(
                baseline.same_outputs(&after.unwrap()),
                "{} changed random-program behaviour (seed {})",
                name,
                seed
            );
        }
    }

    #[test]
    fn interpreter_is_deterministic(seed in 0u64..2000, n in 20usize..60) {
        let prog = generate(seed, GenConfig { statements: n, ..Default::default() });
        let a = run(&prog, &[ExecValue::Int(1)]);
        let b = run(&prog, &[ExecValue::Int(1)]);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn unparse_roundtrip_preserves_suite_semantics() {
    // IR → MiniFor source → IR executes identically: the system works as a
    // source-to-source optimizer.
    let par = gospel_opts::by_name("PAR");
    for (name, prog) in gospel_workloads::suite() {
        let baseline = trace_of(&prog, name);
        // also exercise pardo in the surface syntax
        let mut transformed = prog.clone();
        Driver::new(&par)
            .apply(&mut transformed, natural_mode(&par))
            .unwrap();
        for (label, p) in [("plain", &prog), ("parallelized", &transformed)] {
            let text = gospel_frontend::unparse(p);
            let back = gospel_frontend::compile(&text)
                .unwrap_or_else(|e| panic!("{name} ({label}) unparse invalid: {e}\n{text}"));
            let after = trace_of(&back, &format!("{name} ({label}) reparsed"));
            assert!(
                baseline.same_outputs(&after),
                "{name} ({label}): roundtrip changed behaviour"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unparse_roundtrip_preserves_random_semantics(seed in 0u64..3000, n in 20usize..80) {
        let prog = generate(seed, GenConfig { statements: n, ..Default::default() });
        let Ok(baseline) = run(&prog, &[]) else { return Ok(()); };
        let text = gospel_frontend::unparse(&prog);
        let back = gospel_frontend::compile(&text);
        prop_assert!(back.is_ok(), "seed {}: {:?}\n{}", seed, back.err(), text);
        let after = run(&back.unwrap(), &[]);
        prop_assert!(after.is_ok());
        prop_assert!(baseline.same_outputs(&after.unwrap()), "seed {} roundtrip changed behaviour", seed);
    }
}
