//! Integration: the §4 interaction results as regression tests.

use genesis_bench::{e2_enablement, e3_ordering, e5_spec_variants, e6_strategies};

#[test]
fn interaction_claims_hold() {
    let r = e3_ordering().expect("E3 runs");
    assert!(r.distinct_finals > 1, "orderings must differ");
    for (claim, held) in &r.claims {
        assert!(held, "claim failed: {claim}");
    }
}

#[test]
fn enablement_shape_matches_the_paper() {
    let r = e2_enablement().expect("E2 runs");
    // CTP is the most frequently applicable optimization.
    let ctp = r.totals["CTP"];
    for (name, count) in &r.totals {
        if name != "CTP" {
            assert!(ctp >= *count, "CTP ({ctp}) should dominate {name} ({count})");
        }
    }
    // CTP enables DCE, CFO and LUR.
    assert!(r.ctp_enabled["DCE"] > 0);
    assert!(r.ctp_enabled["CFO"] > 0);
    assert!(r.ctp_enabled["LUR"] > 0);
    // ICM finds no application points (high-level array accesses).
    assert_eq!(r.totals["ICM"], 0);
    // CPP occurs in few programs and FUS in exactly one.
    assert!(r.cpp_programs.len() <= 2);
    let fus_programs = r
        .per_program
        .iter()
        .filter(|(_, c)| c.get("FUS").copied().unwrap_or(0) > 0)
        .count();
    assert!(fus_programs >= 1, "FUS must apply somewhere");
}

#[test]
fn upper_bound_first_lur_is_cheaper() {
    let r = e5_spec_variants().expect("E5 runs");
    let upper: u64 = r.per_program.iter().map(|(_, a, _)| a).sum();
    let lower: u64 = r.per_program.iter().map(|(_, _, b)| b).sum();
    assert!(
        upper < lower,
        "upper-bound-first should be cheaper: {upper} vs {lower}"
    );
}

#[test]
fn strategy_heuristic_picks_the_cheaper_implementation() {
    let rows = e6_strategies().expect("E6 runs");
    // The two strategies must actually differ somewhere …
    assert!(
        rows.iter().any(|r| r.members_first != r.deps_first),
        "strategies never differed"
    );
    // … and neither dominates globally (the paper: "not consistently
    // better for one method over the other").
    assert!(rows.iter().any(|r| r.members_first < r.deps_first));
    assert!(rows.iter().any(|r| r.deps_first < r.members_first));
    // The heuristic matches the better strategy in (almost) all cases;
    // the paper found it correct in all tests.
    let optimal = rows.iter().filter(|r| r.heuristic_optimal()).count();
    assert!(
        optimal * 10 >= rows.len() * 9,
        "heuristic optimal only {optimal}/{}",
        rows.len()
    );
}
