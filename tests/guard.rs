//! Integration: validated sessions end to end — the full catalog over the
//! whole workload suite under [`GuardedSession`], the fault-injection
//! matrix, and the quarantine of a deliberately wrong specification.

use genesis::{ApplyMode, FaultKind, FaultPlan};
use genesis_guard::{GuardConfig, GuardOutcome, GuardStage, GuardedSession};
use gospel_exec::ExecValue;
use gospel_opts::interaction::natural_mode;

/// The paper's CTP with the reaching-definition guard (the `no` clause)
/// removed: it happily propagates a constant past a second definition, so
/// it is *wrong* on any program where two defs reach the use. Translation
/// validation must catch it. Named CTP deliberately so registering it
/// replaces the correct catalog entry.
const BROKEN_CTP: &str = r#"
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=))
                   AND operand(Sj, pos) == Si.opr_1;
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
"#;

/// A program where exactly one of the two reaching definitions is picked
/// by the broken CTP: `write y` prints 3 or 4 depending on the input, but
/// the broken propagation makes it print 3 unconditionally.
const TWO_DEFS: &str = "\
program t
  integer c, x, y
  read c
  x = 3
  if (c > 0) then
    x = 4
  end if
  y = x
  write y
end
";

fn exec_on_guard_vectors(prog: &gospel_ir::Program) -> Vec<Option<Vec<ExecValue>>> {
    let cfg = GuardConfig::default();
    gospel_workloads::generator::input_vectors(cfg.seed, cfg.vectors, cfg.vector_len)
        .into_iter()
        .map(|v| {
            let inputs: Vec<ExecValue> = v.into_iter().map(ExecValue::Int).collect();
            gospel_exec::run_limited(prog, &inputs, cfg.step_limit)
                .ok()
                .map(|t| t.outputs)
        })
        .collect()
}

#[test]
fn catalog_over_full_suite_preserves_traces_or_rolls_back() {
    let opts = gospel_opts::catalog().expect("catalog generates");
    let modes: Vec<(String, ApplyMode)> = opts
        .iter()
        .map(|o| (o.name.clone(), natural_mode(o)))
        .collect();
    for (wname, prog) in gospel_workloads::suite() {
        let before = exec_on_guard_vectors(&prog);
        let mut gs = GuardedSession::new(prog, GuardConfig::default());
        for opt in gospel_opts::catalog().expect("catalog generates") {
            gs.register(opt);
        }
        for (name, mode) in &modes {
            let outcome = gs
                .apply(name, *mode)
                .unwrap_or_else(|e| panic!("{wname}/{name}: {e}"));
            // Every rejection must come with a structured report; nothing
            // may abort the session.
            if let GuardOutcome::Rejected(report) = &outcome {
                assert_eq!(report.optimizer, *name, "{wname}");
                assert!(report.rolled_back, "{wname}/{name}: {report}");
            }
        }
        // Rollback on every failure means the surviving program's traces
        // must equal the original's on every vector.
        let after = exec_on_guard_vectors(gs.program());
        assert_eq!(before, after, "{wname}: guarded pipeline changed semantics");
        // And the catalog, being correct, should actually get through.
        assert!(
            gs.reports().is_empty(),
            "{wname}: catalog optimizer rejected: {:?}",
            gs.reports()
        );
    }
}

#[test]
fn injection_matrix_is_contained_for_every_fault_kind() {
    let kinds = [
        (FaultKind::Analysis, GuardStage::Run, false),
        (FaultKind::Action, GuardStage::Run, false),
        (FaultKind::CorruptCommit, GuardStage::Structural, true),
        (FaultKind::Panic, GuardStage::Internal, true),
    ];
    for (kind, expected_stage, quarantines) in kinds {
        let prog = gospel_frontend::compile(
            "program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend",
        )
        .unwrap();
        let original = prog.clone();
        let mut gs = GuardedSession::new(prog, GuardConfig::default());
        gs.register(gospel_opts::by_name("CTP"));
        gs.register(gospel_opts::by_name("DCE"));
        gs.set_fault(Some(FaultPlan::new(kind)));

        let outcome = gs
            .apply("CTP", ApplyMode::AllPoints)
            .unwrap_or_else(|e| panic!("{kind:?} escaped containment: {e}"));
        let GuardOutcome::Rejected(report) = outcome else {
            panic!("{kind:?}: expected a rejection, got {outcome:?}");
        };
        assert_eq!(report.stage, expected_stage, "{kind:?}: {report}");
        assert!(report.rolled_back, "{kind:?}");
        assert_eq!(report.quarantined, quarantines, "{kind:?}: {report}");
        assert!(
            gs.program().structurally_eq(&original),
            "{kind:?}: program not restored"
        );
        assert_eq!(gs.reports().len(), 1, "{kind:?}: diagnostic not recorded");

        // The session must keep working: the un-faulted optimizer runs.
        gs.set_fault(None);
        let next = gs.apply("DCE", ApplyMode::AllPoints).unwrap();
        assert!(
            matches!(next, GuardOutcome::Applied(_)),
            "{kind:?}: session did not continue: {next:?}"
        );
    }
}

#[test]
fn fault_plans_scope_to_optimizer_and_application() {
    let prog = gospel_frontend::compile(
        "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
    )
    .unwrap();
    let mut gs = GuardedSession::new(prog, GuardConfig::default());
    gs.register(gospel_opts::by_name("CTP"));
    gs.register(gospel_opts::by_name("DCE"));
    // A fault aimed at DCE must not perturb CTP.
    gs.set_fault(Some(FaultPlan::new(FaultKind::Panic).for_optimizer("DCE")));
    let outcome = gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    assert!(outcome.is_applied(), "{outcome:?}");
    // …and must fire (contained) when DCE itself runs.
    let outcome = gs.apply("DCE", ApplyMode::AllPoints).unwrap();
    assert!(matches!(outcome, GuardOutcome::Rejected(_)), "{outcome:?}");
}

#[test]
fn broken_ctp_is_caught_rolled_back_and_quarantined() {
    let prog = gospel_frontend::compile(TWO_DEFS).unwrap();
    let original = prog.clone();
    let mut gs = GuardedSession::new(prog, GuardConfig::default());
    gs.register(gospel_opts::compile_spec(BROKEN_CTP).expect("broken CTP still compiles"));

    let outcome = gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    let GuardOutcome::Rejected(report) = outcome else {
        panic!("broken CTP was not rejected: {outcome:?}");
    };
    assert_eq!(report.stage, GuardStage::Translation, "{report}");
    assert!(report.vector.is_some(), "{report}");
    assert_eq!(report.mismatch_at, Some(0), "{report}");
    assert!(report.quarantined, "{report}");
    assert!(gs.program().structurally_eq(&original), "not rolled back");

    // Quarantine holds: subsequent sequences skip it and continue.
    let outcomes = gs.run_sequence(&["CTP"]).unwrap();
    assert!(
        matches!(outcomes[0].1, GuardOutcome::Skipped { .. }),
        "{:?}",
        outcomes[0]
    );

    // The *correct* CTP is innocent: re-registering lifts the quarantine
    // and it passes validation on the same program.
    gs.register(gospel_opts::by_name("CTP"));
    let outcome = gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    assert!(outcome.is_applied(), "{outcome:?}");
}

#[test]
fn user_rollback_walks_the_checkpoint_ring() {
    let prog = gospel_frontend::compile(
        "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
    )
    .unwrap();
    let original = prog.clone();
    let mut gs = GuardedSession::new(prog, GuardConfig::default());
    gs.register(gospel_opts::by_name("CTP"));
    gs.register(gospel_opts::by_name("DCE"));
    gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    gs.apply("DCE", ApplyMode::AllPoints).unwrap();
    assert_eq!(gs.checkpoints(), 2);
    gs.rollback(2).unwrap();
    assert!(gs.program().structurally_eq(&original));
    assert_eq!(gs.checkpoints(), 0);
}

#[test]
fn panic_mid_action_leaves_a_validatable_program() {
    // Regression: a panic fired *after* the actions have journaled edits
    // used to escape with the in-flight `EditDelta` journal dropped,
    // leaving the session's program half-transformed. The driver now
    // replays the undo log under `catch_unwind` before re-raising, so a
    // guarded session must come back with every statement still valid
    // and the program byte-identical to the pre-apply snapshot.
    let prog = gospel_frontend::compile(
        "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
    )
    .unwrap();
    let original = prog.clone();
    let mut gs = GuardedSession::new(prog, GuardConfig::default());
    gs.register(gospel_opts::by_name("CTP"));
    gs.register(gospel_opts::by_name("DCE"));
    gs.set_fault(Some(FaultPlan::new(FaultKind::PanicInAction)));

    let outcome = gs
        .apply("CTP", ApplyMode::AllPoints)
        .expect("panic must be contained, not escape the session");
    let GuardOutcome::Rejected(report) = outcome else {
        panic!("expected the injected panic to reject, got {outcome:?}");
    };
    assert!(report.rolled_back, "{report}");
    assert!(report.quarantined, "a contained panic must quarantine: {report}");

    // The surviving program is structurally intact statement by
    // statement — no dangling operands from the aborted transaction.
    let prog = gs.program();
    for id in prog.iter() {
        gospel_ir::validate_stmt(prog, id)
            .unwrap_or_else(|e| panic!("post-panic statement {id:?} invalid: {e}"));
    }
    gospel_ir::validate(prog).expect("post-panic program fails whole-program validation");
    assert!(prog.structurally_eq(&original), "program not restored");

    // And the session still works: the panicking optimizer is
    // quarantined, but an un-faulted one runs to completion.
    gs.set_fault(None);
    let next = gs.apply("DCE", ApplyMode::AllPoints).unwrap();
    assert!(matches!(next, GuardOutcome::Applied(_)), "{next:?}");
}
