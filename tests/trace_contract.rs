//! Trace-contract tests: invariants every recorded event stream must
//! satisfy, checked over a real end-to-end run (the full catalog chained
//! over every suite workload under a [`GuardedSession`], plus a broken
//! optimizer to exercise the rejection path).
//!
//! The contract:
//! 1. Counter events carry monotone running totals (`value` never
//!    decreases, and each equals the previous total plus `delta`).
//! 2. Spans balance: every `span_open` has exactly one matching
//!    `span_close`, and nothing stays open at the end of a run.
//! 3. A `guard.rollback` is always *caused*: it must be preceded by a
//!    `guard.validate` event with `outcome == "fail"` (user-requested
//!    restores are the separate `guard.user_rollback` event).
//! 4. Every event serializes to one line of valid JSONL.

use std::collections::HashMap;
use std::sync::Arc;

use genesis::{
    run_batch, ApplyMode, BatchItem, BatchPolicy, FaultKind, FaultPlan, MatcherKind, Session,
    SessionOptions,
};
use genesis_guard::{GuardConfig, GuardOutcome, GuardedSession};
use gospel_opts::interaction::natural_mode;
use gospel_trace::{Event, EventKind, Recorder, Value};

/// CTP without its reaching-definition guard — wrong on two-def programs,
/// so translation validation rejects it and the rollback path fires.
const BROKEN_CTP: &str = r#"
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=))
                   AND operand(Sj, pos) == Si.opr_1;
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
"#;

const TWO_DEFS: &str = "\
program t
  integer c, x, y
  read c
  x = 3
  if (c > 0) then
    x = 4
  end if
  y = x
  write y
end
";

/// Runs the whole catalog over every workload with a recorder attached
/// and returns the drained event stream.
fn record_suite_run() -> (Arc<Recorder>, Vec<Event>) {
    let rec = Arc::new(Recorder::new());
    for (_name, prog) in gospel_workloads::suite() {
        let mut gs = GuardedSession::new(prog, GuardConfig::default());
        gs.set_recorder(Some(rec.clone()));
        let opts = gospel_opts::catalog().expect("catalog generates");
        let modes: Vec<(String, ApplyMode)> = opts
            .iter()
            .map(|o| (o.name.clone(), natural_mode(o)))
            .collect();
        for opt in opts {
            gs.register(opt);
        }
        for (name, mode) in &modes {
            gs.apply(name, *mode).expect("catalog apply");
        }
    }
    let events = rec.drain_events();
    (rec, events)
}

/// Runs the peephole self-copy remover over a program whose self-copy
/// sits *after* a run of ordinary assigns. The clause's `opr_1 == opr_2`
/// test is anchor-local (so rejections are cacheable) but not expressible
/// by the statement index's opcode/class buckets, so the first fixpoint
/// iteration genuinely evaluates and rejects every ordinary assign — and
/// the next iteration's safety-net pass over the pre-frontier anchors
/// must answer from the negative cache.
fn record_cache_run() -> Vec<Event> {
    let rec = Arc::new(Recorder::new());
    let prog = gospel_frontend::compile(
        "program c\ninteger x, y, z\nx = 1\ny = 2\nz = 3\nx = x\nwrite x\nwrite y\nwrite z\nend",
    )
    .unwrap();
    let mut gs = GuardedSession::new(prog, GuardConfig::default());
    gs.set_recorder(Some(rec.clone()));
    gs.register(
        gospel_opts::compile_spec(gospel_opts::specs::PEEPHOLE_REDUN).expect("REDUN compiles"),
    );
    gs.apply("REDUN", ApplyMode::AllPoints).unwrap();
    rec.drain_events()
}

/// Runs the broken CTP on a two-definition program so validation fails.
fn record_rejection_run() -> Vec<Event> {
    let rec = Arc::new(Recorder::new());
    let prog = gospel_frontend::compile(TWO_DEFS).unwrap();
    let mut gs = GuardedSession::new(prog, GuardConfig::default());
    gs.set_recorder(Some(rec.clone()));
    gs.register(gospel_opts::compile_spec(BROKEN_CTP).expect("broken spec compiles"));
    let outcome = gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    assert!(
        matches!(outcome, GuardOutcome::Rejected(_)),
        "the broken spec must be rejected for this fixture to mean anything: {outcome:?}"
    );
    rec.drain_events()
}

fn assert_counters_monotone(events: &[Event]) {
    let mut totals: HashMap<String, u64> = HashMap::new();
    for e in events {
        if e.kind != EventKind::Counter {
            continue;
        }
        let value = e.value.unwrap_or_else(|| panic!("{}: counter without value", e.name));
        let delta = e.delta.unwrap_or_else(|| panic!("{}: counter without delta", e.name));
        let prev = totals.get(e.name.as_ref()).copied().unwrap_or(0);
        assert!(
            value >= prev,
            "{}: counter total went backwards ({prev} -> {value})",
            e.name
        );
        assert_eq!(
            value,
            prev + delta,
            "{}: running total does not equal previous + delta",
            e.name
        );
        totals.insert(e.name.to_string(), value);
    }
    assert!(
        totals.contains_key("driver.applications"),
        "a full-suite run must bump driver.applications"
    );
}

fn assert_spans_balanced(events: &[Event]) {
    let mut open: HashMap<u64, &str> = HashMap::new();
    let mut closed = 0usize;
    for e in events {
        match e.kind {
            EventKind::SpanOpen => {
                let id = e.span.expect("span_open without id");
                assert!(
                    open.insert(id, e.name.as_ref()).is_none(),
                    "span id {id} opened twice"
                );
            }
            EventKind::SpanClose => {
                let id = e.span.expect("span_close without id");
                let opened_as = open
                    .remove(&id)
                    .unwrap_or_else(|| panic!("span id {id} closed but never opened"));
                assert_eq!(
                    opened_as,
                    e.name.as_ref(),
                    "span id {id} closed under a different name"
                );
                assert!(
                    e.field("elapsed_ns").is_some(),
                    "{}: span_close must carry elapsed_ns",
                    e.name
                );
                closed += 1;
            }
            _ => {}
        }
    }
    assert!(
        open.is_empty(),
        "spans left open at end of run: {:?}",
        open.values().collect::<Vec<_>>()
    );
    assert!(closed > 0, "a full-suite run must close at least one span");
}

#[test]
fn suite_run_counters_are_monotone_and_spans_balance() {
    let (rec, events) = record_suite_run();
    assert!(!events.is_empty(), "a traced run must record events");
    assert_counters_monotone(&events);
    assert_spans_balanced(&events);
    assert_eq!(rec.open_spans(), 0, "recorder still thinks spans are open");
    // The headline vocabulary must be present in a real run. The suite
    // runs with the matcher at its default (fused), so the session must
    // announce the automaton build, the driver must report its state and
    // visit totals, per-optimizer dispatches must be attributed, and
    // candidate pruning must still fire for the non-exact anchors.
    for needle in [
        "driver.attempt",
        "search.match",
        "dep.update",
        "guard.apply",
        "search.candidates_pruned",
        "automaton.build",
        "search.fused.states",
        "search.fused.visits",
        "search.fused.dispatched.CTP",
    ] {
        assert!(
            events.iter().any(|e| e.name == needle),
            "expected at least one `{needle}` event"
        );
    }
}

#[test]
fn negative_cache_hits_surface_as_a_per_optimizer_counter() {
    let events = record_cache_run();
    assert_counters_monotone(&events);
    let hits: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == "search.cache_hit.REDUN")
        .filter_map(|e| e.delta)
        .sum();
    assert!(
        hits > 0,
        "revisiting cached anchor rejections must bump search.cache_hit.REDUN"
    );
}

#[test]
fn every_rollback_is_preceded_by_a_validation_failure() {
    let events = record_rejection_run();
    let mut last_validate_failed = false;
    let mut rollbacks = 0usize;
    for e in events {
        match e.name.as_ref() {
            "guard.validate" => {
                last_validate_failed =
                    e.field("outcome") == Some(&Value::str("fail"));
            }
            "guard.rollback" => {
                rollbacks += 1;
                assert!(
                    last_validate_failed,
                    "guard.rollback without a preceding guard.validate failure"
                );
                last_validate_failed = false;
            }
            _ => {}
        }
    }
    assert!(rollbacks > 0, "the broken spec must trigger a rollback");
}

/// A copy-propagation cascade the driver applies several times — enough
/// applications for a mid-run fault probe to hit.
const CASCADE: &str = "program d\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend";

/// Skips the dependence refresh after CTP's first application (a scripted
/// stale-graph fault) with the verifier on: the degradation ladder must
/// detect the divergence, heal transparently, and say so in the trace.
fn record_degraded_run() -> Vec<Event> {
    let rec = Arc::new(Recorder::new());
    let prog = gospel_frontend::compile(CASCADE).unwrap();
    let cfg = GuardConfig {
        verify_deps: true,
        ..GuardConfig::default()
    };
    let mut gs = GuardedSession::new(prog, cfg);
    gs.set_recorder(Some(rec.clone()));
    gs.register(gospel_opts::by_name("CTP"));
    gs.set_fault(Some(
        FaultPlan::new(FaultKind::CorruptDeps).for_optimizer("CTP"),
    ));
    let out = gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    assert!(
        out.is_applied(),
        "the ladder must heal the stale graph transparently: {out:?}"
    );
    rec.drain_events()
}

/// Quarantines CTP with an injected panic, earns parole with clean
/// applies of another optimizer, and passes the retrial.
fn record_parole_run() -> Vec<Event> {
    let rec = Arc::new(Recorder::new());
    let prog = gospel_frontend::compile(CASCADE).unwrap();
    let mut gs = GuardedSession::new(prog, GuardConfig::default());
    gs.set_recorder(Some(rec.clone()));
    gs.register(gospel_opts::by_name("CTP"));
    gs.register(gospel_opts::by_name("DCE"));
    gs.set_fault(Some(FaultPlan::new(FaultKind::Panic).for_optimizer("CTP")));
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    std::panic::set_hook(hook);
    assert!(
        matches!(&out, GuardOutcome::Rejected(r) if r.quarantined),
        "the injected panic must quarantine CTP: {out:?}"
    );
    gs.set_fault(None);
    let clean_applies = GuardConfig::default()
        .parole_after
        .expect("parole is on by default");
    for _ in 0..clean_applies {
        gs.apply("DCE", ApplyMode::AllPoints).unwrap();
    }
    let out = gs.apply("CTP", ApplyMode::AllPoints).unwrap();
    assert!(out.is_applied(), "the parole trial must apply: {out:?}");
    rec.drain_events()
}

/// Runs a three-file batch whose every file hits a transient timeout once
/// (per-file re-armed plans), so the supervisor retries each exactly once.
fn record_batch_retry_run() -> Vec<Event> {
    let rec = Arc::new(Recorder::new());
    let items: Vec<BatchItem> = (0..3)
        .map(|i| BatchItem {
            label: format!("file{i}"),
            prog: gospel_frontend::compile(CASCADE).unwrap(),
        })
        .collect();
    let opts = vec![gospel_opts::by_name("CTP")];
    let policy = BatchPolicy {
        fault: Some(FaultPlan::new(FaultKind::Timeout).transient()),
        ..BatchPolicy::default()
    };
    let outcomes = run_batch(
        items,
        &opts,
        &["CTP"],
        SessionOptions::default(),
        &policy,
        2,
        Some(&rec),
    );
    for o in &outcomes {
        assert!(o.status.is_done(), "{}: {:?}", o.label, o.status);
        assert_eq!(o.attempts, 2, "{}: expected exactly one retry", o.label);
    }
    rec.drain_events()
}

/// One event with `name` carrying `field == value`, or panic.
fn assert_event_with(events: &[Event], name: &str, field: &str, value: &str) {
    assert!(
        events
            .iter()
            .filter(|e| e.name == name)
            .any(|e| e.field(field) == Some(&Value::str(value.to_string()))),
        "expected a `{name}` event with {field}={value}"
    );
}

#[test]
fn degraded_search_announces_its_reason_in_the_trace() {
    let events = record_degraded_run();
    assert_counters_monotone(&events);
    assert_spans_balanced(&events);
    assert_event_with(&events, "search.degraded", "reason", "dep_divergence");
    let healed: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == "search.degraded.dep_divergence")
        .filter_map(|e| e.delta)
        .sum();
    assert!(healed > 0, "the heal must also surface as a counter");
}

#[test]
fn parole_lifecycle_is_traced_from_trial_to_release() {
    let events = record_parole_run();
    assert_counters_monotone(&events);
    assert_spans_balanced(&events);
    assert_event_with(&events, "guard.parole", "outcome", "trial");
    assert_event_with(&events, "guard.parole", "outcome", "released");
    let paroles: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == "guard.parole")
        .filter_map(|e| e.delta)
        .sum();
    assert!(paroles >= 2, "trial and release must both bump guard.parole");
}

#[test]
fn batch_retries_are_counted_and_attributed_per_file() {
    let events = record_batch_retry_run();
    assert_counters_monotone(&events);
    assert_spans_balanced(&events);
    let retries: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == "batch.file_retry")
        .filter_map(|e| e.delta)
        .sum();
    assert_eq!(retries, 3, "one retry per file, no more");
    for i in 0..3 {
        assert_event_with(&events, "batch.file_retry", "file", &format!("file{i}"));
    }
    for e in events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "batch.file_retry")
    {
        assert!(
            e.field("error").is_some() && e.field("attempt").is_some(),
            "a retry event must say what failed and on which attempt"
        );
    }
}

#[test]
fn recorded_events_serialize_to_valid_jsonl() {
    let (_rec, mut events) = record_suite_run();
    events.extend(record_rejection_run());
    assert!(!events.is_empty());
    for e in &events {
        let line = e.to_jsonl();
        assert!(
            !line.contains('\n'),
            "{}: JSONL line contains an embedded newline",
            e.name
        );
        gospel_trace::json::validate(&line)
            .unwrap_or_else(|err| panic!("{}: invalid JSONL `{line}`: {err}", e.name));
    }
}

// ---------------------------------------------------------------------------
// Match-funnel invariants.
// ---------------------------------------------------------------------------

/// Sums the `funnel.<OPT>.<phase>` counter deltas of an event stream
/// into a `(optimizer, phase) -> total` map.
fn funnel_totals(events: &[Event]) -> std::collections::BTreeMap<(String, String), u64> {
    let mut totals = std::collections::BTreeMap::new();
    for e in events {
        if e.kind != EventKind::Counter {
            continue;
        }
        let Some(rest) = e.name.as_ref().strip_prefix("funnel.") else {
            continue;
        };
        let Some((opt, phase)) = rest.split_once('.') else {
            continue;
        };
        *totals
            .entry((opt.to_string(), phase.to_string()))
            .or_insert(0) += e.delta.unwrap_or(0);
    }
    totals
}

/// Runs the full catalog chain over every workload under one matcher
/// (and one trace-sampling rate) and returns the funnel totals.
fn funnel_run(matcher: MatcherKind, trace_sample: u64) -> std::collections::BTreeMap<(String, String), u64> {
    let rec = Arc::new(Recorder::new());
    for (_name, prog) in gospel_workloads::suite() {
        let opts = SessionOptions {
            matcher,
            trace_sample,
            ..SessionOptions::default()
        };
        let mut s = Session::with_options(prog, opts);
        s.set_recorder(Some(rec.clone()));
        let catalog = gospel_opts::catalog().expect("catalog generates");
        let modes: Vec<(String, ApplyMode)> = catalog
            .iter()
            .map(|o| (o.name.clone(), natural_mode(o)))
            .collect();
        for opt in catalog {
            s.register(opt);
        }
        for (name, mode) in &modes {
            s.apply(name, *mode).expect("catalog apply");
        }
    }
    funnel_totals(&rec.drain_events())
}

/// The funnel only narrows: per optimizer, classified ≥ admitted ≥
/// matched ≥ applied — both in the aggregated counters and inside each
/// per-run `search.funnel` event.
#[test]
fn funnel_phases_only_narrow() {
    let (_rec, events) = record_suite_run();
    let totals = funnel_totals(&events);
    let opts: std::collections::BTreeSet<&String> =
        totals.keys().map(|(opt, _)| opt).collect();
    assert!(!opts.is_empty(), "the suite run must emit funnel counters");
    let get = |opt: &String, phase: &str| {
        totals
            .get(&(opt.clone(), phase.to_string()))
            .copied()
            .unwrap_or(0)
    };
    for opt in opts {
        let classified = get(opt, "classified");
        let admitted = get(opt, "admitted");
        let matched = get(opt, "matched");
        let applied = get(opt, "applied");
        assert!(
            classified >= admitted && admitted >= matched && matched >= applied,
            "{opt}: funnel widened: classified {classified} -> admitted \
             {admitted} -> matched {matched} -> applied {applied}"
        );
    }
    let uint = |e: &Event, f: &str| match e.field(f) {
        Some(Value::UInt(n)) => *n,
        other => panic!("search.funnel {f}: expected a uint, got {other:?}"),
    };
    let mut seen = 0;
    for e in events.iter().filter(|e| e.name == "search.funnel") {
        seen += 1;
        let classified = uint(e, "classified");
        let admitted = uint(e, "admitted");
        let matched = uint(e, "matched");
        let applied = uint(e, "applied");
        assert!(
            classified >= admitted && admitted >= matched && matched >= applied,
            "search.funnel for {:?} widened: {classified} -> {admitted} \
             -> {matched} -> {applied}",
            e.field("optimizer")
        );
    }
    assert!(seen > 0, "per-run search.funnel events must be emitted");
}

/// The funnel is an account of the *search*, not of the shortcut that
/// produced the candidates: all three matchers (and any sampling rate)
/// must report identical totals for the same work.
#[test]
fn funnel_totals_are_matcher_independent() {
    let fused = funnel_run(MatcherKind::Fused, 1);
    let indexed = funnel_run(MatcherKind::Indexed, 1);
    let scan = funnel_run(MatcherKind::Scan, 1);
    assert_eq!(fused, indexed, "fused vs indexed funnel totals diverge");
    assert_eq!(fused, scan, "fused vs scan funnel totals diverge");
    // Sampling drops attempt spans, never counter accounting.
    let sampled = funnel_run(MatcherKind::Fused, 7);
    assert_eq!(fused, sampled, "trace sampling changed funnel totals");
}
