//! Golden snapshot tests for [`gospel_frontend::unparse`].
//!
//! Each of the ten suite workloads has a committed `.golden` file under
//! `tests/golden/` holding its canonical unparse. A snapshot mismatch
//! means the printer (or a workload source) changed — inspect the diff,
//! then refresh with `UPDATE_GOLDENS=1 cargo test --test golden`.

use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.golden"))
}

fn update_goldens() -> bool {
    std::env::var_os("UPDATE_GOLDENS").is_some_and(|v| v != "0")
}

#[test]
fn suite_unparse_matches_committed_goldens() {
    let mut stale = Vec::new();
    for (name, prog) in gospel_workloads::suite() {
        let got = gospel_frontend::unparse(&prog);
        let path = golden_path(name);
        if update_goldens() {
            fs::write(&path, &got).unwrap_or_else(|e| panic!("{name}: {e}"));
            continue;
        }
        let want = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden at {} ({e}); run with UPDATE_GOLDENS=1 to create it"
            , path.display())
        });
        if got != want {
            stale.push(format!(
                "{name}: unparse drifted from {}\n--- golden\n{want}\n--- current\n{got}",
                path.display()
            ));
        }
    }
    assert!(
        stale.is_empty(),
        "{} stale goldens (UPDATE_GOLDENS=1 to refresh):\n{}",
        stale.len(),
        stale.join("\n")
    );
}

/// Unparse must be a fixpoint of compile∘unparse: recompiling a printed
/// program and printing it again reproduces the same text.
#[test]
fn unparse_round_trips_through_compile() {
    for (name, prog) in gospel_workloads::suite() {
        let once = gospel_frontend::unparse(&prog);
        let reparsed = gospel_frontend::compile(&once)
            .unwrap_or_else(|e| panic!("{name}: unparse output failed to recompile: {e}"));
        let twice = gospel_frontend::unparse(&reparsed);
        assert_eq!(once, twice, "{name}: unparse is not stable under round-trip");
    }
}

/// No golden file is orphaned: every `.golden` corresponds to a suite
/// workload, so renames can't silently leave dead snapshots behind.
#[test]
fn no_orphaned_golden_files() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden");
    let names: Vec<String> = gospel_workloads::suite()
        .iter()
        .map(|(n, _)| format!("{n}.golden"))
        .collect();
    for entry in fs::read_dir(&dir).expect("tests/golden exists") {
        let entry = entry.unwrap();
        let fname = entry.file_name().to_string_lossy().into_owned();
        if fname.ends_with(".golden") {
            assert!(
                names.contains(&fname),
                "orphaned golden file {fname}: no suite workload matches"
            );
        }
    }
}
