//! Differential harness: full-recompute vs incremental dependence
//! maintenance must be observationally identical.
//!
//! For every generated optimizer in the catalog and every workload in the
//! ten-program suite, the driver is run twice — once with
//! `incremental_deps` off (every refresh is a fresh [`DepGraph::analyze`])
//! and once with it on (the `DepGraph::update` frontier path). The two
//! runs must produce the same program text, the same application count,
//! dependence graphs that agree with a from-scratch analysis, and the
//! same execution outputs on a deterministic battery of input vectors.

use genesis::{ApplyMode, CompiledOptimizer, Driver};
use gospel_dep::DepGraph;
use gospel_exec::{run_limited, ExecValue, Trace};
use gospel_ir::{DisplayProgram, Program};
use gospel_opts::interaction::natural_mode;
use gospel_workloads::generator::{self, input_vectors, GenConfig};

const SEED: u64 = 0xD1FF;
const VECTORS: usize = 6;
const VECTOR_LEN: usize = 24;
const STEP_LIMIT: u64 = 2_000_000;
/// Seeded random programs appended to the fixed ten-workload suite; the
/// generator reaches shapes (deep expression nests, array aliasing
/// patterns) the hand-written workloads do not.
const GENERATED: u64 = 4;

/// The differential corpus: the ten fixed workloads plus `GENERATED`
/// seeded random programs.
fn workloads() -> Vec<(String, Program)> {
    let mut all: Vec<(String, Program)> = gospel_workloads::suite()
        .into_iter()
        .map(|(n, p)| (n.to_string(), p))
        .collect();
    for i in 0..GENERATED {
        let seed = SEED.wrapping_add(i);
        let cfg = GenConfig {
            statements: 24,
            ..GenConfig::default()
        };
        all.push((format!("gen{seed:#x}"), generator::generate(seed, cfg)));
    }
    all
}

/// Runs `opt` to fixpoint on a copy of `prog`, returning the optimized
/// program, how many times the actions fired, and the cached dependence
/// graph if the driver kept it current.
fn run_mode(
    prog: &Program,
    opt: &CompiledOptimizer,
    mode: ApplyMode,
    incremental: bool,
) -> (Program, usize, Option<DepGraph>) {
    let mut work = prog.clone();
    let mut cache = None;
    let mut d = Driver::new(opt);
    d.incremental_deps = incremental;
    let report = d
        .apply_cached(&mut work, mode, &mut cache)
        .unwrap_or_else(|e| panic!("{}: {e}", opt.name));
    (work, report.applications, cache)
}

/// Executes `prog` on the deterministic vector battery, plus the empty
/// input (programs that read nothing must still agree there).
fn exec_battery(prog: &Program) -> Vec<Result<Trace, String>> {
    let mut runs = Vec::new();
    let mut batteries: Vec<Vec<ExecValue>> = input_vectors(SEED, VECTORS, VECTOR_LEN)
        .into_iter()
        .map(|v| v.into_iter().map(ExecValue::Int).collect())
        .collect();
    batteries.push(Vec::new());
    for inputs in batteries {
        runs.push(run_limited(prog, &inputs, STEP_LIMIT).map_err(|e| e.to_string()));
    }
    runs
}

fn assert_same_exec(wname: &str, oname: &str, full: &Program, incr: &Program) {
    let a = exec_battery(full);
    let b = exec_battery(incr);
    assert_eq!(a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        match (ra, rb) {
            (Ok(ta), Ok(tb)) => assert!(
                ta.same_outputs(tb),
                "{wname}/{oname}: vector {i} diverges at output {:?}",
                ta.first_mismatch(tb)
            ),
            (Err(ea), Err(eb)) => {
                assert_eq!(ea, eb, "{wname}/{oname}: vector {i} errors differ")
            }
            _ => panic!(
                "{wname}/{oname}: vector {i}: one mode errored, the other did not"
            ),
        }
    }
}

/// The headline differential: every optimizer × every workload, full vs
/// incremental drivers.
#[test]
fn full_and_incremental_drivers_agree_on_every_optimizer_and_workload() {
    let opts = gospel_opts::catalog().expect("catalog generates");
    for (wname, prog) in workloads() {
        for opt in &opts {
            let mode = natural_mode(opt);
            let (full, apps_f, cache_f) = run_mode(&prog, opt, mode, false);
            let (incr, apps_i, cache_i) = run_mode(&prog, opt, mode, true);

            let ftext = DisplayProgram(&full).to_string();
            let itext = DisplayProgram(&incr).to_string();
            assert_eq!(
                ftext, itext,
                "{wname}/{}: full vs incremental programs differ",
                opt.name
            );
            assert_eq!(
                apps_f, apps_i,
                "{wname}/{}: application counts differ",
                opt.name
            );

            // Whenever a mode kept its cache current, the cached graph
            // must agree with a from-scratch analysis of the final
            // program — the incremental updater may not drift.
            for (label, cache, final_prog) in
                [("full", &cache_f, &full), ("incremental", &cache_i, &incr)]
            {
                if let Some(g) = cache {
                    let fresh = DepGraph::analyze(final_prog)
                        .unwrap_or_else(|e| panic!("{wname}/{}: {e}", opt.name));
                    assert!(
                        g.agrees_with(&fresh),
                        "{wname}/{}: {label} cache disagrees with fresh analysis",
                        opt.name
                    );
                }
            }

            assert_same_exec(&wname, &opt.name, &full, &incr);
        }
    }
}

/// Chaining the whole catalog over one program (the bench's sequence
/// shape) must also be mode-independent: dependence-state carried across
/// optimizers is where incremental drift would compound.
#[test]
fn chained_catalog_sequence_is_mode_independent() {
    let opts = gospel_opts::catalog().expect("catalog generates");
    for (wname, prog) in workloads() {
        let run_chain = |incremental: bool| -> Program {
            let mut work = prog.clone();
            let mut cache = None;
            for opt in &opts {
                let mut d = Driver::new(opt);
                d.incremental_deps = incremental;
                d.apply_cached(&mut work, natural_mode(opt), &mut cache)
                    .unwrap_or_else(|e| panic!("{wname}/{}: {e}", opt.name));
            }
            work
        };
        let full = run_chain(false);
        let incr = run_chain(true);
        assert_eq!(
            DisplayProgram(&full).to_string(),
            DisplayProgram(&incr).to_string(),
            "{wname}: chained sequence differs between modes"
        );
        assert_same_exec(&wname, "catalog-chain", &full, &incr);
    }
}
