//! Property tests over randomly generated programs: the analyses never
//! panic, the optimizers preserve structural validity and observable
//! outputs, and core invariants of the dependence graph hold.

use genesis::{ApplyMode, Driver};
use gospel_dep::{DepGraph, DepKind, Direction};
use gospel_ir::{validate, Opcode, Program};
use gospel_workloads::generator::{generate, GenConfig};
use proptest::prelude::*;

fn gen_program(seed: u64, statements: usize, const_pct: u32) -> Program {
    generate(
        seed,
        GenConfig {
            statements,
            const_pct,
            ..GenConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analysis_never_panics_and_is_well_formed(seed in 0u64..5000, n in 20usize..120) {
        let prog = gen_program(seed, n, 40);
        let deps = DepGraph::analyze(&prog).unwrap();
        let loops = deps.loops();
        for e in deps.edges() {
            // endpoints are live statements
            prop_assert!(prog.is_live(e.src));
            prop_assert!(prog.is_live(e.dst));
            // vector length never exceeds the common nesting depth
            let depth = loops.common_nest(e.src, e.dst).len();
            prop_assert!(
                e.dirvec.len() <= depth.max(1) + 1,
                "vector {:?} too long for depth {depth}",
                e.dirvec
            );
            // control dependences are never loop-carried
            if e.kind == DepKind::Control {
                prop_assert!(e.dirvec.iter().all(|d| *d == Direction::Eq));
            }
        }
    }

    #[test]
    fn scalar_optimizers_preserve_validity_and_writes(
        seed in 0u64..3000,
        n in 20usize..100,
        pct in 10u32..90,
    ) {
        let prog = gen_program(seed, n, pct);
        let writes = |p: &Program| p.iter().filter(|&s| p.quad(s).op == Opcode::Write).count();
        let w0 = writes(&prog);
        for name in ["CTP", "CPP", "CFO", "DCE"] {
            let opt = gospel_opts::by_name(name);
            let mut work = prog.clone();
            Driver::new(&opt).apply(&mut work, ApplyMode::AllPoints).unwrap();
            validate(&work).unwrap();
            prop_assert_eq!(writes(&work), w0, "{} removed a write", name);
        }
    }

    #[test]
    fn generated_and_hand_ctp_agree_on_random_programs(seed in 0u64..2000, n in 20usize..80) {
        let prog = gen_program(seed, n, 50);
        let opt = gospel_opts::by_name("CTP");
        let mut generated = prog.clone();
        let report = Driver::new(&opt).apply(&mut generated, ApplyMode::AllPoints).unwrap();
        let mut hand = prog.clone();
        let hand_apps = gospel_opts::hand::ctp(&mut hand).unwrap();
        prop_assert_eq!(report.applications, hand_apps);
        prop_assert!(generated.structurally_eq(&hand));
    }

    #[test]
    fn dce_only_removes_dead_definitions(seed in 0u64..2000, n in 20usize..80) {
        let prog = gen_program(seed, n, 30);
        let deps = DepGraph::analyze(&prog).unwrap();
        // every statement DCE removes had no outgoing flow dependence
        let mut work = prog.clone();
        let opt = gospel_opts::by_name("DCE");
        let report = Driver::new(&opt).apply(&mut work, ApplyMode::FirstPoint).unwrap();
        if let Some(bind) = report.points.first() {
            if let Some(genesis::RtVal::Stmt(s)) = bind.get("Si") {
                prop_assert!(deps.from(*s).all(|e| e.kind != DepKind::Flow));
            }
        }
    }

    #[test]
    fn direction_vectors_are_lexicographically_oriented(seed in 0u64..3000, n in 20usize..100) {
        let prog = gen_program(seed, n, 40);
        let deps = DepGraph::analyze(&prog).unwrap();
        let order = prog.order_index();
        for e in deps.edges() {
            let first = e.dirvec.iter().find(|d| **d != Direction::Eq);
            match first {
                // Loop-independent data dependences respect program order.
                None if e.kind != DepKind::Control => {
                    prop_assert!(order[&e.src] <= order[&e.dst]);
                }
                // A leading `>` never survives orientation — except in the
                // fusion-preview edges, which are deliberately textual.
                Some(Direction::Gt) => {
                    let cross_loop = deps.loops().common_nest(e.src, e.dst).len()
                        < e.dirvec.len();
                    prop_assert!(cross_loop, "non-preview edge with leading >: {e:?}");
                }
                _ => {}
            }
        }
    }
}
