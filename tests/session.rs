//! Integration: the interactive session workflows of the paper's §3
//! interface — select optimizations, select application points, override
//! dependence restrictions, control recomputation.

use genesis::{ApplyMode, Session, SessionOptions};
use gospel_dep::{DepGraph, DepKind, DirPattern};
use gospel_ir::{DisplayProgram, Opcode};
use gospel_opts::by_name;

fn session_over(name: &str) -> Session {
    let mut s = Session::new(gospel_workloads::program(name));
    for opt in gospel_opts::catalog().unwrap() {
        s.register(opt);
    }
    s
}

#[test]
fn full_catalog_registers_and_lists() {
    let s = session_over("matmul");
    assert_eq!(s.optimizer_names().len(), 11);
}

#[test]
fn user_applies_any_order_and_log_accumulates() {
    let mut s = session_over("newton");
    s.apply("CTP", ApplyMode::AllPoints).unwrap();
    s.apply("CPP", ApplyMode::AllPoints).unwrap();
    s.apply("DCE", ApplyMode::AllPoints).unwrap();
    assert_eq!(s.log().len(), 3);
    assert!(s.total_cost().total() > 0);
    gospel_ir::validate(s.program()).unwrap();
}

#[test]
fn apply_at_user_selected_point() {
    let mut s = session_over("interact");
    // list INX's points, then apply at the *last* one only
    let ms = s.matches("INX").unwrap();
    assert!(!ms.bindings.is_empty());
    let deps = DepGraph::analyze(s.program()).unwrap();
    let pairs = deps.loops().tight_pairs(s.program());
    let last = deps.loops().get(pairs.last().unwrap().0).head;
    let report = s.apply("INX", ApplyMode::AtPoint(last)).unwrap();
    assert_eq!(report.applications, 1);
}

#[test]
fn override_dependence_restrictions() {
    // A recurrence loop: PAR's dependence check forbids parallelization,
    // but the paper's interface lets the user override it.
    let prog = gospel_frontend::compile(
        "program p\ninteger i\nreal a(100)\ndo i = 2, 100\na(i) = a(i-1)\nend do\nwrite a(100)\nend",
    )
    .unwrap();
    let mut s = Session::new(prog);
    s.register(by_name("PAR"));
    let deps = DepGraph::analyze(s.program()).unwrap();
    let head = deps.loops().iter().next().unwrap().head;
    drop(deps);
    // checked: refused
    let checked = s.apply("PAR", ApplyMode::AtPoint(head)).unwrap();
    assert_eq!(checked.applications, 0);
    // overridden: applied (the user takes responsibility)
    let forced = s.apply("PAR", ApplyMode::AtPointUnchecked(head)).unwrap();
    assert_eq!(forced.applications, 1);
    let listing = DisplayProgram(s.program()).to_string();
    assert!(listing.contains("pardo"), "{listing}");
}

#[test]
fn stale_dependences_when_recomputation_disabled() {
    // The paper's interface lets the user decide when to re-run the
    // data-flow analyzer. With the Figure-6 `repl` semantics (only replace
    // an operand that still IS the defined reference), re-matching against
    // a stale graph is self-limiting: already-rewritten operands no longer
    // match, so the run converges — and on this chain the stale edges are
    // even sufficient to finish the whole cascade.
    let prog = gospel_frontend::compile(
        "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
    )
    .unwrap();
    let mut stale = Session::with_options(
        prog.clone(),
        SessionOptions {
            recompute_deps: false,
            max_applications: 50,
            ..SessionOptions::default()
        },
    );
    stale.register(by_name("CTP"));
    let stale_apps = stale.apply("CTP", ApplyMode::AllPoints).unwrap().applications;

    let mut fresh = Session::new(prog);
    fresh.register(by_name("CTP"));
    let with_recompute = fresh.apply("CTP", ApplyMode::AllPoints).unwrap().applications;
    assert_eq!(with_recompute, 3); // y, z, then the write
    assert_eq!(stale_apps, with_recompute);
    assert!(stale
        .program()
        .structurally_eq(fresh.program()));
}

#[test]
fn parallelization_marks_loops_queryable_via_ir() {
    let mut s = session_over("track");
    s.apply("PAR", ApplyMode::AllPoints).unwrap();
    let p = s.program();
    let pardos = p
        .iter()
        .filter(|&st| p.quad(st).op == Opcode::ParDo)
        .count();
    assert!(pardos >= 1, "track has parallelizable loops");
    // The paper's dependence framework still analyzes the result.
    let deps = DepGraph::analyze(p).unwrap();
    assert!(deps
        .edges()
        .iter()
        .all(|e| e.kind != DepKind::Flow || DirPattern::any().matches(&e.dirvec)));
}
