//! Parallelizing a kernel interactively: interchange the matmul nest at a
//! chosen point (the paper's "select application points" option), then
//! parallelize what became legal, and compare machine-model estimates —
//! the workflow the paper motivates for compiling to parallel machines.
//!
//! Run with `cargo run --example parallelize`.

use genesis::{ApplyMode, Driver};
use genesis_bench::MachineModel;
use gospel_dep::DepGraph;
use gospel_ir::DisplayProgram;
use gospel_opts::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = gospel_workloads::program("matmul");
    let deps = DepGraph::analyze(&prog)?;
    let base_est = MachineModel::vector(8.0).estimate(&prog, &deps);

    // The compute nest has two tight pairs: (i,j) and (j,k). Interchanging
    // (j,k) puts the reduction loop in the middle and leaves a
    // dependence-free innermost loop — the vectorizing order (i,k,j).
    let inx = by_name("INX");
    let pairs = deps.loops().tight_pairs(&prog);
    println!("tight loop pairs: {pairs:?}");
    let (outer, _) = pairs[2];
    let anchor = deps.loops().get(outer).head;

    let mut work = prog.clone();
    Driver::new(&inx).apply(&mut work, ApplyMode::AtPoint(anchor))?;
    println!("--- after interchanging at {anchor} ---\n{}", DisplayProgram(&work));

    // Parallelize what is legal (the inner initialization loop; outer
    // loops are blocked by the reuse of the inner control variable —
    // scalar privatization is beyond the prototype, as in the paper).
    let par = by_name("PAR");
    let report = Driver::new(&par).apply(&mut work, ApplyMode::AllPoints)?;
    println!("PAR applied {} times", report.applications);

    let deps2 = DepGraph::analyze(&work)?;
    let after_vec = MachineModel::vector(8.0).estimate(&work, &deps2);
    let after_par = MachineModel::multiprocessor(8.0).estimate(&work, &deps2);
    println!("estimated cycles, 8-lane vector machine: {base_est:.0} -> {after_vec:.0}");
    println!("estimated cycles, 8-processor machine:   {base_est:.0} -> {after_par:.0}");
    Ok(())
}
