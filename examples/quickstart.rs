//! Quickstart: write an optimization in GOSpeL, generate an optimizer with
//! GENesis, and run it on a small program — the complete pipeline of the
//! paper's Figure 3 in one page.
//!
//! Run with `cargo run --example quickstart`.

use genesis::{generate, ApplyMode, Driver};
use gospel_ir::DisplayProgram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A source program (MiniFor, the FORTRAN-flavoured input language).
    let source = "
program demo
  integer n, m, i
  real a(100)
  n = 100
  m = n
  do i = 1, m
    a(i) = 2.0
  end do
  write a(1)
end
";
    let mut prog = gospel_frontend::compile(source)?;
    println!("--- before ---\n{}", DisplayProgram(&prog));

    // 2. An optimization specification (the paper's Figure 1: constant
    //    propagation) …
    let (spec, info) = gospel_lang::parse_validated(genesis::CTP_EXAMPLE_SPEC)?;

    // 3. … becomes an executable optimizer,
    let ctp = generate(spec, info)?;

    // 4. which the standard driver applies at every application point,
    //    recomputing dependences in between.
    let mut driver = Driver::new(&ctp);
    let report = driver.apply(&mut prog, ApplyMode::AllPoints)?;

    println!("--- after {} applications of CTP ---", report.applications);
    println!("{}", DisplayProgram(&prog));
    println!("cost: {}", report.cost);
    Ok(())
}
