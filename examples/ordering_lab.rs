//! The ordering laboratory: run every ordering of {FUS, INX, LUR} on the
//! §4 interaction program and watch them enable and disable one another —
//! "there is not a right order of application; the context of the
//! application point is needed".
//!
//! Run with `cargo run --example ordering_lab`.

use gospel_opts::interaction::{all_orders, distinct_results, enablement};
use gospel_opts::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = gospel_workloads::program("interact");
    let fus = by_name("FUS");
    let inx = by_name("INX");
    let lur = by_name("LUR");

    println!("{:<16} applications", "order");
    let outcomes = all_orders(&prog, &[&fus, &inx, &lur])?;
    for o in &outcomes {
        println!("{:<16} {:?}", o.names.join(","), o.counts);
    }
    let classes = distinct_results(&outcomes);
    println!(
        "\n{} orderings produce {} distinct final programs\n",
        outcomes.len(),
        classes.len()
    );

    for (first, then, by_match, label) in [
        (&fus, &inx, true, "FUS then INX"),
        (&lur, &fus, true, "LUR then FUS"),
        (&lur, &inx, true, "LUR then INX"),
    ] {
        let e = enablement(&prog, first, then, by_match)?;
        println!(
            "{label}: {} points -> {} points ({} enabled, {} disabled)",
            e.before,
            e.after,
            e.enabled(),
            e.disabled()
        );
    }
    Ok(())
}
