//! Authoring a *novel* optimization — the capability the paper closes on:
//! "such a system enables a user to create and easily implement novel
//! optimizations which may be of particular benefit to the system in
//! hand." Here: strength reduction of multiplication by two into an
//! addition, written in GOSpeL, generated, and applied.
//!
//! Run with `cargo run --example custom_opt`.

use genesis::{generate, ApplyMode, Driver};
use gospel_ir::DisplayProgram;

const STRENGTH_REDUCE_X2: &str = r#"
OPTIMIZATION SRX2
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    /* x := y * 2  (either operand the constant) */
    any Si: Si.opc == mul AND type(Si.opr_2) == var AND Si.opr_3 == 2;
ACTION
  /* x := y + y */
  add(Si, [add, Si.opr_1, Si.opr_2, Si.opr_2], Snew);
  delete(Si);
END
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (spec, info) = gospel_lang::parse_validated(STRENGTH_REDUCE_X2)?;
    let srx2 = generate(spec, info)?;

    let mut prog = gospel_frontend::compile(
        "
program demo
  integer x, y, z
  y = 21
  x = y * 2
  z = x * 2
  write z
end
",
    )?;
    println!("--- before ---\n{}", DisplayProgram(&prog));
    let report = Driver::new(&srx2).apply(&mut prog, ApplyMode::AllPoints)?;
    println!("--- after {} applications of SRX2 ---", report.applications);
    println!("{}", DisplayProgram(&prog));
    Ok(())
}
