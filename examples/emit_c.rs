//! Reproduces the paper's Figure 6: the C source GENesis generates for the
//! constant-propagation specification — the four procedures `set_up_CTP`,
//! `match_CTP`, `pre_CTP`, `act_CTP` plus the call interface glue.
//!
//! Run with `cargo run --example emit_c`.

use genesis::emit;
use gospel_opts::by_name;

fn main() {
    let ctp = by_name("CTP");
    println!("{}", emit::emit_c(&ctp));
    println!("{}", emit::emit_c_interface(&ctp));
    let st = emit::stats(&ctp);
    println!(
        "/* {} interface lines + {} procedure lines = {} generated lines",
        st.interface_lines,
        st.procedure_lines,
        st.total()
    );
    println!("   (the paper reports ~29 + ~70 = ~99 per optimization) */");
    println!();
    println!("// …and the equivalent Rust rendition of the compiled plan:");
    println!("{}", emit::emit_rust(&ctp));
}
