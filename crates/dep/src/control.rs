//! Control dependences from the structured regions.
//!
//! The paper defines control dependence syntactically: "if Si is an IF
//! condition then all of the statements within the THEN and the ELSE are
//! control dependent on Si". We additionally make loop headers control
//! their bodies (execution of the body is governed by the header's bound
//! test), which the hand-coded DCE and ICM baselines rely on.

use crate::edge::{DepEdge, DepKind, Direction};
use gospel_ir::{Opcode, OperandPos, Program};

/// Computes all control dependence edges.
pub(crate) fn control_deps(prog: &Program) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    // Stack of open headers (if / do), each controlling every statement
    // until its matching end marker.
    let mut stack = Vec::new();
    for stmt in prog.iter() {
        let quad = prog.quad(stmt);
        match quad.op {
            Opcode::EndDo | Opcode::EndIf => {
                stack.pop();
                continue; // the end marker itself is not controlled
            }
            Opcode::Else => continue, // stays under the same if
            _ => {}
        }
        for &(header, var) in &stack {
            edges.push(DepEdge {
                src: header,
                dst: stmt,
                kind: DepKind::Control,
                var,
                src_pos: OperandPos::Dst,
                dst_pos: OperandPos::Dst,
                dirvec: Vec::new(),
            });
        }
        if quad.op.is_if() || quad.op.is_loop_head() {
            // `var` records the governing variable when there is an obvious
            // one (the LCV for loops); for ifs, fall back to the first
            // scalar compared, else the statement's own destination.
            let var = quad
                .dst
                .as_var()
                .or_else(|| quad.a.as_var())
                .or_else(|| quad.b.as_var())
                .unwrap_or_else(|| {
                    // Guaranteed to exist: every program interns at least
                    // the names used by this statement; fall back to any
                    // symbol. Headers always have an operand in practice.
                    prog.syms().iter().next().expect("non-empty symbol table")
                });
            stack.push((stmt, var));
        }
    }
    edges
}

/// Direction vectors for control edges are empty; the helper exists so the
/// builder can assert that invariant in one place.
pub(crate) fn assert_no_directions(edges: &[DepEdge]) {
    debug_assert!(edges
        .iter()
        .filter(|e| e.kind == DepKind::Control)
        .all(|e| e.dirvec.iter().all(|d| *d == Direction::Eq)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;

    #[test]
    fn if_controls_both_branches() {
        let p = compile(
            "program p\ninteger x\nif (x > 0) then\nx = 1\nelse\nx = 2\nend if\nx = 3\nend",
        )
        .unwrap();
        let e = control_deps(&p);
        let ifs: Vec<_> = p.iter().collect();
        let header = ifs[0];
        let then_s = ifs[1];
        let else_s = ifs[3];
        let after = ifs[5];
        assert!(e.iter().any(|d| d.src == header && d.dst == then_s));
        assert!(e.iter().any(|d| d.src == header && d.dst == else_s));
        assert!(!e.iter().any(|d| d.dst == after));
        assert_no_directions(&e);
    }

    #[test]
    fn nesting_stacks_controls() {
        let p = compile(
            "program p\ninteger i, x\ndo i = 1, 3\nif (x > 0) then\nx = 1\nend if\nend do\nend",
        )
        .unwrap();
        let e = control_deps(&p);
        let stmts: Vec<_> = p.iter().collect();
        let do_head = stmts[0];
        let if_head = stmts[1];
        let body = stmts[2];
        // body controlled by both headers; if controlled by the loop
        assert!(e.iter().any(|d| d.src == do_head && d.dst == body));
        assert!(e.iter().any(|d| d.src == if_head && d.dst == body));
        assert!(e.iter().any(|d| d.src == do_head && d.dst == if_head));
        // end markers not controlled
        assert!(e
            .iter()
            .all(|d| !matches!(p.quad(d.dst).op, Opcode::EndDo | Opcode::EndIf)));
    }
}
