//! Scalar data dependences (flow, anti, output) with direction vectors.
//!
//! Classification strategy (documented in DESIGN.md): the reaching
//! definitions/uses fixpoints already propagate around loop back edges, so
//! reachability alone tells us a dependence exists; the direction vector is
//! then recovered per ordered pair:
//!
//! * source textually before sink and source access reaches sink → a
//!   loop-independent edge (all-`=` vector over the common nest);
//! * additionally, for every common loop `Lk`: if the source access reaches
//!   the bottom of `Lk`'s body (its `end do`) *and* the sink access is
//!   exposed to values arriving at `Lk`'s header, the dependence is also
//!   carried by `Lk` → an edge `(=,…,=,<,*,…)` with the `<` at `Lk`'s
//!   level (outermost such level is emitted);
//! * source textually at/after sink → only the carried edge exists.

use crate::edge::{DepEdge, DepKind, Direction};
use crate::reach::{exposed_from_head, reaching_defs, reaching_uses, Accesses, FlowResult};
use gospel_ir::{Cfg, LoopTable, Program, StmtId, Sym};
use std::collections::HashSet;

pub(crate) struct ScalarCtx<'p> {
    pub prog: &'p Program,
    pub cfg: &'p Cfg,
    pub loops: &'p LoopTable,
    pub acc: Accesses,
    /// Dense program order (see [`crate::build::dense_order`]).
    pub order: &'p [u32],
}

/// Computes all scalar data dependence edges.
#[cfg(test)]
pub(crate) fn scalar_deps(prog: &Program, cfg: &Cfg, loops: &LoopTable) -> Vec<DepEdge> {
    scalar_deps_filtered(prog, cfg, loops, &crate::build::dense_order(prog), None)
}

/// Scalar dependence edges restricted to variables in `only` (all
/// variables when `None`). The restriction is exact per variable — see
/// [`Accesses::collect_where`] — so the edges produced for a variable in
/// `only` are identical to the ones the unrestricted analysis produces.
/// `order` is the caller's dense order table (shared across the
/// analysis passes of one update — see [`crate::build::dense_order`]).
pub(crate) fn scalar_deps_filtered(
    prog: &Program,
    cfg: &Cfg,
    loops: &LoopTable,
    order: &[u32],
    only: Option<&HashSet<Sym>>,
) -> Vec<DepEdge> {
    let acc = match only {
        None => Accesses::collect(prog),
        Some(vars) => Accesses::collect_where(prog, |v| vars.contains(&v)),
    };
    let ctx = ScalarCtx {
        prog,
        cfg,
        loops,
        acc,
        order,
    };
    let rd = reaching_defs(cfg, &ctx.acc);
    let ru = reaching_uses(cfg, &ctx.acc);

    let mut edges = Vec::new();
    flow_edges(&ctx, &rd, &mut edges);
    anti_edges(&ctx, &ru, &mut edges);
    output_edges(&ctx, &rd, &mut edges);
    edges
}

fn flow_edges(ctx: &ScalarCtx<'_>, rd: &FlowResult, edges: &mut Vec<DepEdge>) {
    for (u_idx, use_acc) in ctx.acc.uses.iter().enumerate() {
        let node = ctx.cfg.node_of(use_acc.stmt);
        for d_idx in rd.ins.iter(node) {
            let def = ctx.acc.defs[d_idx];
            if def.var != use_acc.var {
                continue;
            }
            let _ = u_idx;
            emit(
                ctx,
                DepKind::Flow,
                def.stmt,
                def.pos,
                use_acc.stmt,
                use_acc.pos,
                def.var,
                // source side of carried check: does the def reach the
                // bottom of loop `l`?
                |l_end_node| rd.outs.contains(l_end_node, d_idx),
                // sink side: is the use exposed to the header?
                |head, end, target| {
                    let var = def.var;
                    exposed_from_head(ctx.cfg, head, end, target, |n| {
                        ctx.prog.quad(ctx.cfg.nodes()[n]).def_base() == Some(var)
                            && n != target
                    })
                },
                edges,
            );
        }
    }
}

fn anti_edges(ctx: &ScalarCtx<'_>, ru: &FlowResult, edges: &mut Vec<DepEdge>) {
    for (d_idx, def) in ctx.acc.defs.iter().enumerate() {
        let _ = d_idx;
        let node = ctx.cfg.node_of(def.stmt);
        for u_idx in ru.ins.iter(node) {
            let use_acc = ctx.acc.uses[u_idx];
            if use_acc.var != def.var {
                continue;
            }
            if use_acc.stmt == def.stmt {
                // Within one statement the read happens before the write;
                // no self anti edge.
                continue;
            }
            emit(
                ctx,
                DepKind::Anti,
                use_acc.stmt,
                use_acc.pos,
                def.stmt,
                def.pos,
                def.var,
                |l_end_node| ru.outs.contains(l_end_node, u_idx),
                |head, end, target| {
                    let var = def.var;
                    exposed_from_head(ctx.cfg, head, end, target, |n| {
                        ctx.prog.quad(ctx.cfg.nodes()[n]).def_base() == Some(var)
                            && n != target
                    })
                },
                edges,
            );
        }
    }
}

fn output_edges(ctx: &ScalarCtx<'_>, rd: &FlowResult, edges: &mut Vec<DepEdge>) {
    for def2 in &ctx.acc.defs {
        let node = ctx.cfg.node_of(def2.stmt);
        for d_idx in rd.ins.iter(node) {
            let def1 = ctx.acc.defs[d_idx];
            if def1.var != def2.var {
                continue;
            }
            emit(
                ctx,
                DepKind::Output,
                def1.stmt,
                def1.pos,
                def2.stmt,
                def2.pos,
                def1.var,
                |l_end_node| rd.outs.contains(l_end_node, d_idx),
                |head, end, target| {
                    let var = def1.var;
                    exposed_from_head(ctx.cfg, head, end, target, |n| {
                        ctx.prog.quad(ctx.cfg.nodes()[n]).def_base() == Some(var)
                            && n != target
                    })
                },
                edges,
            );
        }
    }
}

/// Emits the loop-independent and/or loop-carried edges for one
/// source→sink access pair, based on textual order and the per-loop
/// carried checks.
#[allow(clippy::too_many_arguments)]
fn emit(
    ctx: &ScalarCtx<'_>,
    kind: DepKind,
    src: StmtId,
    src_pos: gospel_ir::OperandPos,
    dst: StmtId,
    dst_pos: gospel_ir::OperandPos,
    var: Sym,
    src_reaches_bottom: impl Fn(usize) -> bool,
    sink_exposed: impl Fn(usize, usize, usize) -> bool,
    edges: &mut Vec<DepEdge>,
) {
    let common = ctx.loops.common_nest(src, dst);
    let before = ctx.order[src.index()] < ctx.order[dst.index()];
    let same = src == dst;

    if before {
        edges.push(DepEdge {
            src,
            dst,
            kind,
            var,
            src_pos,
            dst_pos,
            dirvec: vec![Direction::Eq; common.len()],
        });
    }

    // Carried edges: find the outermost common loop that actually carries.
    for (k, &l) in common.iter().enumerate() {
        let info = ctx.loops.get(l);
        let head_node = ctx.cfg.node_of(info.head);
        let end_node = ctx.cfg.node_of(info.end);
        let target = ctx.cfg.node_of(dst);
        if src_reaches_bottom(end_node) && sink_exposed(head_node, end_node, target) {
            let mut dirvec = vec![Direction::Eq; common.len()];
            dirvec[k] = Direction::Lt;
            for d in dirvec.iter_mut().skip(k + 1) {
                *d = Direction::Any;
            }
            edges.push(DepEdge {
                src,
                dst,
                kind,
                var,
                src_pos,
                dst_pos,
                dirvec,
            });
            return; // outermost carrying level is enough
        }
    }

    // A wrap-around pair (source at/after sink) that the per-loop check
    // missed still must be carried by *some* common loop; be conservative.
    if (!before || same) && !common.is_empty() {
        let mut dirvec = vec![Direction::Any; common.len()];
        dirvec[0] = Direction::Lt;
        edges.push(DepEdge {
            src,
            dst,
            kind,
            var,
            src_pos,
            dst_pos,
            dirvec,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;
    use gospel_ir::Opcode;

    fn deps(src: &str) -> (Program, Vec<DepEdge>) {
        let p = compile(src).unwrap();
        let cfg = Cfg::of(&p);
        let loops = LoopTable::of(&p).unwrap();
        let e = scalar_deps(&p, &cfg, &loops);
        (p, e)
    }

    fn stmt_n(p: &Program, n: usize) -> StmtId {
        p.iter().nth(n).unwrap()
    }

    #[test]
    fn straight_line_flow_and_kill() {
        let (p, e) = deps("program p\ninteger x, y\nx = 1\nx = 2\ny = x\nend");
        let s0 = stmt_n(&p, 0);
        let s1 = stmt_n(&p, 1);
        let s2 = stmt_n(&p, 2);
        assert!(e
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.src == s1 && d.dst == s2));
        assert!(!e
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.src == s0 && d.dst == s2));
        // output dep x=1 -> x=2
        assert!(e
            .iter()
            .any(|d| d.kind == DepKind::Output && d.src == s0 && d.dst == s1));
    }

    #[test]
    fn anti_dependence() {
        let (p, e) = deps("program p\ninteger x, y\ny = x\nx = 1\nend");
        let s0 = stmt_n(&p, 0);
        let s1 = stmt_n(&p, 1);
        let anti: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Anti).collect();
        assert!(anti.iter().any(|d| d.src == s0 && d.dst == s1));
    }

    #[test]
    fn accumulator_has_carried_flow_self_dep() {
        let (p, e) = deps(
            "program p\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + 1\nend do\nwrite s\nend",
        );
        let body = p
            .iter()
            .find(|&s| p.quad(s).op == Opcode::Add)
            .unwrap();
        let carried: Vec<_> = e
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.src == body && d.dst == body)
            .collect();
        assert_eq!(carried.len(), 1, "edges: {e:#?}");
        assert_eq!(carried[0].dirvec, vec![Direction::Lt]);
    }

    #[test]
    fn lcv_use_is_loop_independent_from_header() {
        let (p, e) = deps(
            "program p\ninteger i, x\ndo i = 1, 10\nx = i\nend do\nend",
        );
        let head = stmt_n(&p, 0);
        let body = stmt_n(&p, 1);
        let lcv_edges: Vec<_> = e
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.src == head && d.dst == body)
            .collect();
        // The header is outside its own loop, so the common nest is empty
        // and the edge carries an empty (loop-independent) vector.
        assert!(!lcv_edges.is_empty());
        assert!(lcv_edges.iter().all(|d| d.dirvec.is_empty()));
    }

    #[test]
    fn branch_does_not_kill() {
        let (p, e) = deps(
            "program p\ninteger x, y, c\nx = 1\nif (c > 0) then\nx = 2\nend if\ny = x\nend",
        );
        let s0 = stmt_n(&p, 0); // x = 1
        let use_stmt = p.iter().last().unwrap(); // y = x
        // x=1 still reaches around the branch
        assert!(e
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.src == s0 && d.dst == use_stmt));
    }

    #[test]
    fn carried_flow_between_different_statements() {
        // x set this iteration, used next iteration before being reset
        let (p, e) = deps(
            "program p\ninteger i, x, y\nx = 0\ndo i = 1, 10\ny = x\nx = y + 1\nend do\nend",
        );
        let set = p
            .iter()
            .find(|&s| p.quad(s).op == Opcode::Add)
            .unwrap(); // x = y + 1
        let use_x = p
            .iter()
            .filter(|&s| p.quad(s).op == Opcode::Assign)
            .nth(1)
            .unwrap(); // y = x (second assign)
        let carried: Vec<_> = e
            .iter()
            .filter(|d| {
                d.kind == DepKind::Flow
                    && d.src == set
                    && d.dst == use_x
                    && d.dirvec == vec![Direction::Lt]
            })
            .collect();
        assert_eq!(carried.len(), 1, "edges: {e:#?}");
    }

    #[test]
    fn independent_flow_inside_loop_body() {
        let (p, e) = deps(
            "program p\ninteger i, x, y\ndo i = 1, 10\nx = i\ny = x\nend do\nend",
        );
        let def = stmt_n(&p, 1);
        let use_ = stmt_n(&p, 2);
        let eqs: Vec<_> = e
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.src == def && d.dst == use_)
            .collect();
        assert!(eqs.iter().any(|d| d.dirvec == vec![Direction::Eq]));
        // x is redefined every iteration before the use, so NOT carried.
        assert!(!eqs.iter().any(|d| d.dirvec == vec![Direction::Lt]));
    }
}
