//! The dependence graph and its Figure-7 query interface.

use crate::build::{analyze, AnalyzeError};
use crate::edge::{DepEdge, DepKind, DirPattern};
use gospel_ir::{LoopTable, Program, StmtId};
use std::collections::HashMap;

/// A queryable snapshot of a program's dependences.
///
/// The query methods mirror the paper's `dep` routine (Figure 7):
/// [`DepGraph::exists`] is the `TYPE == IF` form (both endpoints known),
/// and [`DepGraph::first_from`] / [`DepGraph::first_to`] are the
/// `TYPE == LST` forms that search for the first emanating or terminating
/// dependence; `all_*` variants return every match, in program order.
#[derive(Clone, Debug)]
pub struct DepGraph {
    edges: Vec<DepEdge>,
    from: HashMap<StmtId, Vec<usize>>,
    to: HashMap<StmtId, Vec<usize>>,
    loops: LoopTable,
}

impl DepGraph {
    /// Analyzes `prog`, computing scalar, array and control dependences.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] if the program is structurally invalid.
    pub fn analyze(prog: &Program) -> Result<DepGraph, AnalyzeError> {
        analyze(prog)
    }

    pub(crate) fn from_edges(
        _prog: &Program,
        loops: LoopTable,
        edges: Vec<DepEdge>,
    ) -> DepGraph {
        let mut from: HashMap<StmtId, Vec<usize>> = HashMap::new();
        let mut to: HashMap<StmtId, Vec<usize>> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            from.entry(e.src).or_default().push(i);
            to.entry(e.dst).or_default().push(i);
        }
        DepGraph { edges, from, to, loops }
    }

    /// All edges, in program order of (src, dst).
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the program has no dependences at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The loop structure this snapshot was computed against (GOSpeL
    /// membership predicates evaluate against the same snapshot).
    pub fn loops(&self) -> &LoopTable {
        &self.loops
    }

    /// Edges emanating from `s`.
    pub fn from(&self, s: StmtId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.from
            .get(&s)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Edges terminating at `s`.
    pub fn to(&self, s: StmtId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.to
            .get(&s)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Figure 7, `TYPE == IF`: is there a `kind` dependence from `src` to
    /// `dst` whose direction vector matches `pattern`?
    pub fn exists(&self, kind: DepKind, src: StmtId, dst: StmtId, pattern: &DirPattern) -> bool {
        self.from(src)
            .any(|e| e.dst == dst && e.kind == kind && pattern.matches(&e.dirvec))
    }

    /// Figure 7, `TYPE == LST`, emanating: the first `kind` dependence out
    /// of `src` matching `pattern`.
    pub fn first_from(
        &self,
        kind: DepKind,
        src: StmtId,
        pattern: &DirPattern,
    ) -> Option<&DepEdge> {
        self.from(src)
            .find(|e| e.kind == kind && pattern.matches(&e.dirvec))
    }

    /// Figure 7, `TYPE == LST`, terminating: the first `kind` dependence
    /// into `dst` matching `pattern`.
    pub fn first_to(&self, kind: DepKind, dst: StmtId, pattern: &DirPattern) -> Option<&DepEdge> {
        self.to(dst)
            .find(|e| e.kind == kind && pattern.matches(&e.dirvec))
    }

    /// Every `kind` dependence out of `src` matching `pattern`.
    pub fn all_from(
        &self,
        kind: DepKind,
        src: StmtId,
        pattern: &DirPattern,
    ) -> Vec<&DepEdge> {
        self.from(src)
            .filter(|e| e.kind == kind && pattern.matches(&e.dirvec))
            .collect()
    }

    /// Every `kind` dependence into `dst` matching `pattern`.
    pub fn all_to(&self, kind: DepKind, dst: StmtId, pattern: &DirPattern) -> Vec<&DepEdge> {
        self.to(dst)
            .filter(|e| e.kind == kind && pattern.matches(&e.dirvec))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Direction;
    use gospel_frontend::compile;

    fn graph(src: &str) -> (Program, DepGraph) {
        let p = compile(src).unwrap();
        let g = DepGraph::analyze(&p).unwrap();
        (p, g)
    }

    #[test]
    fn exists_and_first_queries() {
        let (p, g) = graph("program p\ninteger x, y\nx = 1\ny = x\nend");
        let s0 = p.iter().next().unwrap();
        let s1 = p.iter().nth(1).unwrap();
        assert!(g.exists(DepKind::Flow, s0, s1, &DirPattern::any()));
        assert!(g.exists(DepKind::Flow, s0, s1, &DirPattern::loop_independent()));
        assert!(!g.exists(DepKind::Anti, s0, s1, &DirPattern::any()));
        let e = g.first_from(DepKind::Flow, s0, &DirPattern::any()).unwrap();
        assert_eq!(e.dst, s1);
        let e2 = g.first_to(DepKind::Flow, s1, &DirPattern::any()).unwrap();
        assert_eq!(e2.src, s0);
        assert!(g.first_from(DepKind::Flow, s1, &DirPattern::any()).is_none());
    }

    #[test]
    fn all_from_respects_pattern() {
        let (p, g) = graph(
            "program p\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + 1\nend do\nwrite s\nend",
        );
        let body = p.iter().nth(2).unwrap();
        // carried self-dep visible only to carried-compatible patterns
        let carried = g.all_from(
            DepKind::Flow,
            body,
            &DirPattern::new(vec![crate::DirElem::Lt]),
        );
        assert!(carried.iter().any(|e| e.dst == body));
        let independent = g.all_from(DepKind::Flow, body, &DirPattern::loop_independent());
        assert!(!independent.iter().any(|e| e.dst == body
            && e.dirvec == vec![Direction::Lt]));
    }

    #[test]
    fn analyze_rejects_invalid() {
        let mut p = Program::new("bad");
        p.push(gospel_ir::Quad::marker(gospel_ir::Opcode::EndDo));
        assert!(DepGraph::analyze(&p).is_err());
    }

    #[test]
    fn edges_are_sorted_and_deduped() {
        let (_, g) = graph(
            "program p\ninteger i\nreal a(100)\ndo i = 1, 100\na(i) = a(i) + 1.0\nend do\nend",
        );
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert!(seen.insert(format!("{e:?}")), "duplicate edge {e:?}");
        }
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;
    use crate::DepKind;
    use gospel_frontend::compile;

    #[test]
    fn queries_return_edges_in_program_order() {
        // x feeds three uses; first_from must return the textually first.
        let p = compile(
            "program p\ninteger x, a, b, c\nx = 1\na = x\nb = x\nc = x\nwrite a\nwrite b\nwrite c\nend",
        )
        .unwrap();
        let g = DepGraph::analyze(&p).unwrap();
        let def = p.first().unwrap();
        let uses: Vec<StmtId> = p.iter().skip(1).take(3).collect();
        let first = g.first_from(DepKind::Flow, def, &crate::DirPattern::any()).unwrap();
        assert_eq!(first.dst, uses[0]);
        let all = g.all_from(DepKind::Flow, def, &crate::DirPattern::any());
        let dsts: Vec<StmtId> = all.iter().map(|e| e.dst).collect();
        assert_eq!(dsts, uses, "all_from must follow program order");
        // terminating-side query symmetry
        let back = g.first_to(DepKind::Flow, uses[2], &crate::DirPattern::any()).unwrap();
        assert_eq!(back.src, def);
    }

    #[test]
    fn loops_snapshot_agrees_with_fresh_loop_table(){
        for (_, p) in [("t", compile(
            "program p\ninteger i, j\nreal a(9,9)\ndo i = 1, 9\ndo j = 1, 9\na(i,j) = 1.0\nend do\nend do\nend",
        ).unwrap())] {
            let g = DepGraph::analyze(&p).unwrap();
            let fresh = gospel_ir::LoopTable::of(&p).unwrap();
            assert_eq!(g.loops().len(), fresh.len());
            for (a, b) in g.loops().iter().zip(fresh.iter()) {
                assert_eq!(a.head, b.head);
                assert_eq!(a.end, b.end);
                assert_eq!(a.depth, b.depth);
            }
        }
    }
}
