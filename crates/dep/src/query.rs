//! The dependence graph and its Figure-7 query interface.

use crate::build::{analyze, AnalyzeError};
use crate::edge::{DepEdge, DepKind, DirPattern};
use crate::incremental::{self, DepUpdate};
use gospel_ir::{EditDelta, LoopTable, Program, StmtId};

/// A queryable snapshot of a program's dependences.
///
/// The query methods mirror the paper's `dep` routine (Figure 7):
/// [`DepGraph::exists`] is the `TYPE == IF` form (both endpoints known),
/// and [`DepGraph::first_from`] / [`DepGraph::first_to`] are the
/// `TYPE == LST` forms that search for the first emanating or terminating
/// dependence; `all_*` variants return every match, in program order.
#[derive(Clone, Debug)]
pub struct DepGraph {
    edges: Vec<DepEdge>,
    /// Dense adjacency: edge indices emanating from each statement,
    /// indexed by `StmtId::index()` (sized by `Program::id_bound`).
    from: Csr,
    /// Dense adjacency: edge indices terminating at each statement.
    to: Csr,
    /// Program-order position per statement index (`u32::MAX` = dead).
    order: Vec<u32>,
    loops: LoopTable,
    /// Per-statement context signature (enclosing loop/branch chain, with
    /// header quads and branch sides), indexed by `StmtId::index()`; only
    /// meaningful where `order` marks the statement live. Derived data —
    /// excluded from [`DepGraph::agrees_with`] — consumed by the
    /// structural-batch path of [`DepGraph::update`] to find statements
    /// whose dependence-relevant surroundings an edit changed.
    ctx: Vec<u64>,
    /// Per-loop fusion-partnership signature keyed by the loop's header
    /// statement: own header quad plus each adjacent partner's identity
    /// and quad. A changed signature means the loop's preview-edge
    /// neighborhood changed even though its body statements did not.
    partners: Vec<(StmtId, u64)>,
}

/// Compressed sparse row adjacency: `idx[offsets[s]..offsets[s+1]]` are
/// the edge indices of statement index `s`, in edge-list (program)
/// order. Built with two counting passes — the graph is rebuilt after
/// every incremental update, and a flat layout costs three allocations
/// where per-statement `Vec`s cost one per statement.
#[derive(Clone, Debug)]
struct Csr {
    offsets: Vec<u32>,
    idx: Vec<u32>,
}

impl Csr {
    fn build(n: usize, edges: &[DepEdge], key: impl Fn(&DepEdge) -> usize) -> Csr {
        let mut offsets = vec![0u32; n + 1];
        for e in edges {
            offsets[key(e) + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut next: Vec<u32> = offsets[..n].to_vec();
        let mut idx = vec![0u32; edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let k = key(e);
            idx[next[k] as usize] = u32::try_from(i).expect("edge count fits in u32");
            next[k] += 1;
        }
        Csr { offsets, idx }
    }

    fn row(&self, s: usize) -> &[u32] {
        match self.offsets.get(s..=s + 1) {
            Some(&[lo, hi]) => &self.idx[lo as usize..hi as usize],
            _ => &[],
        }
    }
}

impl DepGraph {
    /// Analyzes `prog`, computing scalar, array and control dependences.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] if the program is structurally invalid.
    pub fn analyze(prog: &Program) -> Result<DepGraph, AnalyzeError> {
        analyze(prog)
    }

    /// Updates this graph in place to reflect the edits recorded in
    /// `delta`, applied to `prog` (the post-edit program).
    ///
    /// Non-structural edits are handled incrementally: only the edges
    /// whose variable was touched by the edit are dropped and re-derived
    /// (the per-variable dataflow facts of untouched variables cannot
    /// change), which is exact — the result is identical to a fresh
    /// [`DepGraph::analyze`]. Structural edits (loop/branch markers
    /// added, removed or relocated) fall back to a full re-analysis.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError`] when the post-edit program is invalid
    /// (only reachable on the full-analysis fallback path).
    pub fn update(&mut self, prog: &Program, delta: &EditDelta) -> Result<DepUpdate, AnalyzeError> {
        incremental::update(self, prog, delta)
    }

    /// Structural equality with another snapshot: identical edge lists
    /// (both are kept sorted and deduplicated) and identical loop tables.
    /// This is the guard's incremental-vs-full cross-check.
    pub fn agrees_with(&self, other: &DepGraph) -> bool {
        self.edges == other.edges
            && self.loops.len() == other.loops.len()
            && self
                .loops
                .iter()
                .zip(other.loops.iter())
                .all(|(a, b)| {
                    a.head == b.head
                        && a.end == b.end
                        && a.lcv == b.lcv
                        && a.depth == b.depth
                        && a.parent == b.parent
                })
    }

    pub(crate) fn from_edges(prog: &Program, loops: LoopTable, edges: Vec<DepEdge>) -> DepGraph {
        let n = prog.id_bound();
        let from = Csr::build(n, &edges, |e| e.src.index());
        let to = Csr::build(n, &edges, |e| e.dst.index());
        let mut order = vec![u32::MAX; n];
        for (pos, s) in prog.iter().enumerate() {
            order[s.index()] = u32::try_from(pos).expect("program fits in u32");
        }
        let ctx = incremental::context_signatures(prog);
        let partners = incremental::partnership_signatures(prog, &loops);
        DepGraph {
            edges,
            from,
            to,
            order,
            loops,
            ctx,
            partners,
        }
    }

    /// Context signature of `s` in the snapshot this graph was computed
    /// against; `None` when `s` was dead then.
    pub(crate) fn ctx_sig(&self, s: StmtId) -> Option<u64> {
        self.order_of(s)?;
        self.ctx.get(s.index()).copied()
    }

    /// The per-loop partnership signatures of the snapshot, keyed by
    /// header statement and sorted by it.
    pub(crate) fn partner_sigs(&self) -> &[(StmtId, u64)] {
        &self.partners
    }

    /// Program-order position of `s` in the snapshot this graph was
    /// computed against, if `s` was live then.
    pub fn order_of(&self, s: StmtId) -> Option<usize> {
        match self.order.get(s.index()) {
            Some(&p) if p != u32::MAX => Some(p as usize),
            _ => None,
        }
    }

    pub(crate) fn take_edges(&mut self) -> Vec<DepEdge> {
        std::mem::take(&mut self.edges)
    }

    /// All edges, in program order of (src, dst).
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the program has no dependences at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The loop structure this snapshot was computed against (GOSpeL
    /// membership predicates evaluate against the same snapshot).
    pub fn loops(&self) -> &LoopTable {
        &self.loops
    }

    /// Edges emanating from `s`.
    pub fn from(&self, s: StmtId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.from
            .row(s.index())
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Edges terminating at `s`.
    pub fn to(&self, s: StmtId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.to
            .row(s.index())
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Figure 7, `TYPE == IF`: is there a `kind` dependence from `src` to
    /// `dst` whose direction vector matches `pattern`?
    pub fn exists(&self, kind: DepKind, src: StmtId, dst: StmtId, pattern: &DirPattern) -> bool {
        self.from(src)
            .any(|e| e.dst == dst && e.kind == kind && pattern.matches(&e.dirvec))
    }

    /// Figure 7, `TYPE == LST`, emanating: the first `kind` dependence out
    /// of `src` matching `pattern`.
    pub fn first_from(
        &self,
        kind: DepKind,
        src: StmtId,
        pattern: &DirPattern,
    ) -> Option<&DepEdge> {
        self.from(src)
            .find(|e| e.kind == kind && pattern.matches(&e.dirvec))
    }

    /// Figure 7, `TYPE == LST`, terminating: the first `kind` dependence
    /// into `dst` matching `pattern`.
    pub fn first_to(&self, kind: DepKind, dst: StmtId, pattern: &DirPattern) -> Option<&DepEdge> {
        self.to(dst)
            .find(|e| e.kind == kind && pattern.matches(&e.dirvec))
    }

    /// Every `kind` dependence out of `src` matching `pattern`.
    pub fn all_from(
        &self,
        kind: DepKind,
        src: StmtId,
        pattern: &DirPattern,
    ) -> Vec<&DepEdge> {
        self.from(src)
            .filter(|e| e.kind == kind && pattern.matches(&e.dirvec))
            .collect()
    }

    /// Every `kind` dependence into `dst` matching `pattern`.
    pub fn all_to(&self, kind: DepKind, dst: StmtId, pattern: &DirPattern) -> Vec<&DepEdge> {
        self.to(dst)
            .filter(|e| e.kind == kind && pattern.matches(&e.dirvec))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Direction;
    use gospel_frontend::compile;

    fn graph(src: &str) -> (Program, DepGraph) {
        let p = compile(src).unwrap();
        let g = DepGraph::analyze(&p).unwrap();
        (p, g)
    }

    #[test]
    fn exists_and_first_queries() {
        let (p, g) = graph("program p\ninteger x, y\nx = 1\ny = x\nend");
        let s0 = p.iter().next().unwrap();
        let s1 = p.iter().nth(1).unwrap();
        assert!(g.exists(DepKind::Flow, s0, s1, &DirPattern::any()));
        assert!(g.exists(DepKind::Flow, s0, s1, &DirPattern::loop_independent()));
        assert!(!g.exists(DepKind::Anti, s0, s1, &DirPattern::any()));
        let e = g.first_from(DepKind::Flow, s0, &DirPattern::any()).unwrap();
        assert_eq!(e.dst, s1);
        let e2 = g.first_to(DepKind::Flow, s1, &DirPattern::any()).unwrap();
        assert_eq!(e2.src, s0);
        assert!(g.first_from(DepKind::Flow, s1, &DirPattern::any()).is_none());
    }

    #[test]
    fn all_from_respects_pattern() {
        let (p, g) = graph(
            "program p\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + 1\nend do\nwrite s\nend",
        );
        let body = p.iter().nth(2).unwrap();
        // carried self-dep visible only to carried-compatible patterns
        let carried = g.all_from(
            DepKind::Flow,
            body,
            &DirPattern::new(vec![crate::DirElem::Lt]),
        );
        assert!(carried.iter().any(|e| e.dst == body));
        let independent = g.all_from(DepKind::Flow, body, &DirPattern::loop_independent());
        assert!(!independent.iter().any(|e| e.dst == body
            && e.dirvec == vec![Direction::Lt]));
    }

    #[test]
    fn analyze_rejects_invalid() {
        let mut p = Program::new("bad");
        p.push(gospel_ir::Quad::marker(gospel_ir::Opcode::EndDo));
        assert!(DepGraph::analyze(&p).is_err());
    }

    #[test]
    fn edges_are_sorted_and_deduped() {
        let (_, g) = graph(
            "program p\ninteger i\nreal a(100)\ndo i = 1, 100\na(i) = a(i) + 1.0\nend do\nend",
        );
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert!(seen.insert(format!("{e:?}")), "duplicate edge {e:?}");
        }
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;
    use crate::DepKind;
    use gospel_frontend::compile;

    #[test]
    fn queries_return_edges_in_program_order() {
        // x feeds three uses; first_from must return the textually first.
        let p = compile(
            "program p\ninteger x, a, b, c\nx = 1\na = x\nb = x\nc = x\nwrite a\nwrite b\nwrite c\nend",
        )
        .unwrap();
        let g = DepGraph::analyze(&p).unwrap();
        let def = p.first().unwrap();
        let uses: Vec<StmtId> = p.iter().skip(1).take(3).collect();
        let first = g.first_from(DepKind::Flow, def, &crate::DirPattern::any()).unwrap();
        assert_eq!(first.dst, uses[0]);
        let all = g.all_from(DepKind::Flow, def, &crate::DirPattern::any());
        let dsts: Vec<StmtId> = all.iter().map(|e| e.dst).collect();
        assert_eq!(dsts, uses, "all_from must follow program order");
        // terminating-side query symmetry
        let back = g.first_to(DepKind::Flow, uses[2], &crate::DirPattern::any()).unwrap();
        assert_eq!(back.src, def);
    }

    #[test]
    fn loops_snapshot_agrees_with_fresh_loop_table(){
        for (_, p) in [("t", compile(
            "program p\ninteger i, j\nreal a(9,9)\ndo i = 1, 9\ndo j = 1, 9\na(i,j) = 1.0\nend do\nend do\nend",
        ).unwrap())] {
            let g = DepGraph::analyze(&p).unwrap();
            let fresh = gospel_ir::LoopTable::of(&p).unwrap();
            assert_eq!(g.loops().len(), fresh.len());
            for (a, b) in g.loops().iter().zip(fresh.iter()) {
                assert_eq!(a.head, b.head);
                assert_eq!(a.end, b.end);
                assert_eq!(a.depth, b.depth);
            }
        }
    }
}
