//! Bit-vector dataflow: reaching definitions and reaching uses over the
//! statement-level CFG.

use gospel_ir::{Cfg, Operand, OperandPos, Program, StmtId, Sym};
use std::collections::HashMap;

/// A dense bit set sized at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `n` bits.
    pub fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Sets bit `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Tests bit `i`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// `self |= other`; returns true if anything changed.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= !other`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// The backing words.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates set bits.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// One scalar access (a definition site or a use site).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The statement.
    pub stmt: StmtId,
    /// The scalar variable.
    pub var: Sym,
    /// The operand position of the access.
    pub pos: OperandPos,
}

/// Scalar access tables for one program snapshot.
#[derive(Clone, Debug, Default)]
pub struct Accesses {
    /// All scalar definition sites, indexed densely.
    pub defs: Vec<Access>,
    /// All scalar use sites, indexed densely.
    pub uses: Vec<Access>,
    /// Definition indices per variable.
    pub defs_of_var: HashMap<Sym, Vec<usize>>,
    /// Use indices per variable.
    pub uses_of_var: HashMap<Sym, Vec<usize>>,
    /// Definition indices per statement.
    pub defs_at: HashMap<StmtId, Vec<usize>>,
    /// Use indices per statement.
    pub uses_at: HashMap<StmtId, Vec<usize>>,
}

impl Accesses {
    /// Collects the scalar accesses of `prog`. Array element reads/writes
    /// are handled by the subscript tests, but their *subscript variables*
    /// count as scalar uses here.
    pub fn collect(prog: &Program) -> Accesses {
        Accesses::collect_where(prog, |_| true)
    }

    /// Like [`Accesses::collect`], restricted to variables accepted by
    /// `keep`. The reaching-defs/uses transfer functions are per-variable
    /// (a definition of `v` generates/kills only `v`'s bits), so the
    /// dataflow facts computed from a restricted table are *identical* to
    /// the corresponding facts of the full table — which is what makes
    /// the incremental dependence update exact.
    pub fn collect_where(prog: &Program, keep: impl Fn(Sym) -> bool) -> Accesses {
        let mut out = Accesses::default();
        for stmt in prog.iter() {
            let quad = prog.quad(stmt);
            // Definition: scalar destination only.
            if let Some(Operand::Var(v)) = quad.def_operand() {
                if keep(*v) {
                    let idx = out.defs.len();
                    out.defs.push(Access {
                        stmt,
                        var: *v,
                        pos: OperandPos::Dst,
                    });
                    out.defs_of_var.entry(*v).or_default().push(idx);
                    out.defs_at.entry(stmt).or_default().push(idx);
                }
            }
            // Uses: scalar operands in used positions, plus subscript
            // variables of element operands in *any* position.
            let push_use = |var: Sym, pos: OperandPos, out: &mut Accesses| {
                let idx = out.uses.len();
                out.uses.push(Access { stmt, var, pos });
                out.uses_of_var.entry(var).or_default().push(idx);
                out.uses_at.entry(stmt).or_default().push(idx);
            };
            for pos in quad.used_positions() {
                match quad.operand(pos) {
                    Operand::Var(v) if keep(*v) => push_use(*v, pos, &mut out),
                    e @ Operand::Elem { .. } => {
                        for v in e.subscript_vars() {
                            if keep(v) {
                                push_use(v, pos, &mut out);
                            }
                        }
                    }
                    _ => {}
                }
            }
            if let Some(Operand::Elem { .. }) = quad.def_operand() {
                for v in quad.dst.subscript_vars() {
                    if keep(v) {
                        push_use(v, OperandPos::Dst, &mut out);
                    }
                }
            }
        }
        out
    }
}

/// Per-node bit sets stored flat: one allocation for the whole CFG
/// (node `i`'s set is `words[i*stride..(i+1)*stride]`), not one per
/// node. This runs twice per incremental update, so the allocation
/// count matters.
#[derive(Clone, Debug)]
pub struct FlowSets {
    stride: usize,
    words: Vec<u64>,
}

impl FlowSets {
    fn new(n: usize, nbits: usize) -> FlowSets {
        let stride = nbits.div_ceil(64);
        FlowSets {
            stride,
            words: vec![0; n * stride],
        }
    }

    fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Tests `bit` in node `i`'s set.
    pub fn contains(&self, i: usize, bit: usize) -> bool {
        self.row(i)
            .get(bit / 64)
            .is_some_and(|w| w & (1 << (bit % 64)) != 0)
    }

    /// Iterates the set bits of node `i`'s set.
    pub fn iter(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(i).iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }
}

/// Result of a forward may-dataflow: `IN`/`OUT` sets per CFG node.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// `IN[node]` sets.
    pub ins: FlowSets,
    /// `OUT[node]` sets.
    pub outs: FlowSets,
}

/// Reaching definitions: which scalar definitions may reach each node.
/// A definition of `v` kills all other definitions of `v`.
pub fn reaching_defs(cfg: &Cfg, acc: &Accesses) -> FlowResult {
    let nd = acc.defs.len();
    let mut facts = Vec::with_capacity(acc.defs_at.len());
    for (&stmt, dixs) in &acc.defs_at {
        let mut gen = BitSet::new(nd);
        let mut kill = BitSet::new(nd);
        for &d in dixs {
            gen.insert(d);
            for &other in &acc.defs_of_var[&acc.defs[d].var] {
                if other != d {
                    kill.insert(other);
                }
            }
        }
        facts.push((cfg.node_of(stmt), gen, kill));
    }
    forward_may(cfg, nd, facts)
}

/// Reaching uses: which scalar uses may reach each node without the used
/// variable being redefined in between (the substrate for anti
/// dependences). A definition of `v` kills all uses of `v`.
pub fn reaching_uses(cfg: &Cfg, acc: &Accesses) -> FlowResult {
    let nu = acc.uses.len();
    let mut by_node: HashMap<usize, (BitSet, BitSet)> = HashMap::new();
    for (&stmt, dixs) in &acc.defs_at {
        let entry = by_node
            .entry(cfg.node_of(stmt))
            .or_insert_with(|| (BitSet::new(nu), BitSet::new(nu)));
        for &d in dixs {
            if let Some(us) = acc.uses_of_var.get(&acc.defs[d].var) {
                for &u in us {
                    entry.1.insert(u);
                }
            }
        }
    }
    for (&stmt, uixs) in &acc.uses_at {
        let entry = by_node
            .entry(cfg.node_of(stmt))
            .or_insert_with(|| (BitSet::new(nu), BitSet::new(nu)));
        for &u in uixs {
            entry.0.insert(u);
        }
    }
    let facts = by_node.into_iter().map(|(n, (g, k))| (n, g, k)).collect();
    forward_may(cfg, nu, facts)
}

/// Worklist fixpoint over the sparse transfer facts `(node, gen, kill)`
/// (every unlisted node passes its input through unchanged). Seeded from
/// the fact nodes' successors, so when the incremental update restricts
/// the access tables to a few dirty variables only the propagation cone
/// of those accesses is visited — not every node per round as with the
/// round-robin schedule. The fixpoint reached is the same.
fn forward_may(cfg: &Cfg, nbits: usize, facts: Vec<(usize, BitSet, BitSet)>) -> FlowResult {
    let n = cfg.len();
    let mut ins = FlowSets::new(n, nbits);
    let mut outs = FlowSets::new(n, nbits);
    let stride = ins.stride;
    if n == 0 || stride == 0 || facts.is_empty() {
        return FlowResult { ins, outs };
    }
    let mut fact_of = vec![u32::MAX; n];
    for (fi, (node, gen, _)) in facts.iter().enumerate() {
        fact_of[*node] = u32::try_from(fi).expect("fact count fits in u32");
        // IN starts empty, so OUT starts at gen.
        outs.words[node * stride..(node + 1) * stride].copy_from_slice(gen.words());
    }
    let mut on_list = vec![false; n];
    let mut work: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (node, _, _) in &facts {
        for &s in cfg.succs(*node) {
            if !on_list[s] {
                on_list[s] = true;
                work.push_back(s);
            }
        }
    }
    let mut scratch = vec![0u64; stride];
    while let Some(i) = work.pop_front() {
        on_list[i] = false;
        scratch.fill(0);
        for &p in cfg.preds(i) {
            for (a, b) in scratch.iter_mut().zip(outs.row(p)) {
                *a |= *b;
            }
        }
        if scratch == ins.row(i) {
            continue; // IN unchanged, so OUT is already consistent
        }
        ins.words[i * stride..(i + 1) * stride].copy_from_slice(&scratch);
        if fact_of[i] != u32::MAX {
            let (_, gen, kill) = &facts[fact_of[i] as usize];
            for ((w, k), g) in scratch.iter_mut().zip(kill.words()).zip(gen.words()) {
                *w = (*w & !k) | g;
            }
        }
        if scratch != outs.row(i) {
            outs.words[i * stride..(i + 1) * stride].copy_from_slice(&scratch);
            for &s in cfg.succs(i) {
                if !on_list[s] {
                    on_list[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    FlowResult { ins, outs }
}

/// True if there is a path from the first statement of loop-body `body_start`
/// to `target` along which `is_kill` never fires *before* reaching the
/// target. Searches only forward CFG edges that stay inside the body region
/// (node indices in `(head_node, end_node)`), ignoring the back edge.
///
/// Used to decide whether an access at `target` is exposed to values that
/// arrive at the loop header — the sink-side condition for a loop-carried
/// dependence.
pub fn exposed_from_head(
    cfg: &Cfg,
    head_node: usize,
    end_node: usize,
    target: usize,
    is_kill: impl Fn(usize) -> bool,
) -> bool {
    if target <= head_node || target > end_node {
        return false;
    }
    let mut seen = vec![false; cfg.len()];
    let mut stack = vec![head_node + 1];
    while let Some(n) = stack.pop() {
        if n == target {
            return true;
        }
        if n <= head_node || n > end_node || seen[n] {
            continue;
        }
        seen[n] = true;
        if is_kill(n) {
            continue; // the value is clobbered here; don't look past it
        }
        for &s in cfg.succs(n) {
            if s > n || s == target {
                stack.push(s); // forward edges only (skip back edges)
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(129));
        assert!(!b.contains(128));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut c = BitSet::new(130);
        c.insert(5);
        assert!(c.union_with(&b));
        assert!(!c.union_with(&b));
        c.remove(64);
        assert!(!c.contains(64));
        let mut d = BitSet::new(130);
        d.insert(0);
        c.subtract(&d);
        assert!(!c.contains(0));
        assert!(c.contains(5));
    }

    #[test]
    fn collects_scalar_accesses() {
        let p = compile("program p\ninteger i\nreal a(10), x\nx = a(i) + x\nend").unwrap();
        let acc = Accesses::collect(&p);
        // defs: x ; uses: i (subscript), x
        assert_eq!(acc.defs.len(), 1);
        let use_vars: Vec<&str> = acc
            .uses
            .iter()
            .map(|u| p.syms().name(u.var))
            .collect();
        assert!(use_vars.contains(&"i"));
        assert!(use_vars.contains(&"x"));
    }

    #[test]
    fn reaching_def_killed_by_redefinition() {
        let p = compile("program p\ninteger x, y\nx = 1\nx = 2\ny = x\nend").unwrap();
        let cfg = gospel_ir::Cfg::of(&p);
        let acc = Accesses::collect(&p);
        let rd = reaching_defs(&cfg, &acc);
        // At node 2 (y = x) only the def from node 1 reaches.
        let in2: Vec<usize> = rd.ins.iter(2).collect();
        assert_eq!(in2.len(), 1);
        assert_eq!(acc.defs[in2[0]].stmt, cfg.nodes()[1]);
    }

    #[test]
    fn defs_flow_around_back_edge() {
        let p = compile(
            "program p\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + 1\nend do\nend",
        )
        .unwrap();
        let cfg = gospel_ir::Cfg::of(&p);
        let acc = Accesses::collect(&p);
        let rd = reaching_defs(&cfg, &acc);
        // At the body statement (node 2), both the init def (node 0) and the
        // in-loop def (node 2 itself, around the back edge) reach.
        let in2: Vec<StmtId> = rd.ins.iter(2).map(|d| acc.defs[d].stmt).collect();
        assert!(in2.contains(&cfg.nodes()[0]));
        assert!(in2.contains(&cfg.nodes()[2]));
    }

    #[test]
    fn reaching_uses_killed_by_def() {
        let p = compile("program p\ninteger x, y\ny = x\nx = 1\nx = 2\nend").unwrap();
        let cfg = gospel_ir::Cfg::of(&p);
        let acc = Accesses::collect(&p);
        let ru = reaching_uses(&cfg, &acc);
        // The use of x at node 0 reaches node 1 (x = 1) …
        assert!(ru.ins.iter(1).any(|u| acc.uses[u].stmt == cfg.nodes()[0]));
        // … but is killed before node 2 (x = 2).
        assert!(!ru.ins.iter(2).any(|u| acc.uses[u].stmt == cfg.nodes()[0]
            && p.syms().name(acc.uses[u].var) == "x"));
    }

    #[test]
    fn exposure_stops_at_kills() {
        // do i: x = 1 ; y = x  — the use of x at node 2 is NOT exposed to
        // the header because node 1 always redefines x first.
        let p = compile(
            "program p\ninteger i, x, y\ndo i = 1, 10\nx = 1\ny = x\nend do\nend",
        )
        .unwrap();
        let cfg = gospel_ir::Cfg::of(&p);
        // nodes: 0 do, 1 x=1, 2 y=x, 3 end do
        let x_sym = p.syms().lookup("x").unwrap();
        let kills_x = |n: usize| {
            p.quad(cfg.nodes()[n]).def_base() == Some(x_sym)
        };
        assert!(!exposed_from_head(&cfg, 0, 3, 2, kills_x));
        // node 1 itself is reachable without a prior kill
        assert!(exposed_from_head(&cfg, 0, 3, 1, kills_x));
    }
}
