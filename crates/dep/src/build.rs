//! Top-level analysis driver assembling the dependence graph.

use crate::arrays::array_deps;
use crate::control::{assert_no_directions, control_deps};
use crate::query::DepGraph;
use crate::scalars::scalar_deps;
use gospel_ir::{Cfg, LoopStructureError, LoopTable, Program, ValidateError};
use std::fmt;

/// Error analyzing a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The program failed structural validation.
    Invalid(ValidateError),
    /// Loop structure could not be recovered.
    Loops(LoopStructureError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Invalid(e) => write!(f, "invalid program: {e}"),
            AnalyzeError::Loops(e) => write!(f, "loop structure: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<ValidateError> for AnalyzeError {
    fn from(e: ValidateError) -> Self {
        AnalyzeError::Invalid(e)
    }
}

impl From<LoopStructureError> for AnalyzeError {
    fn from(e: LoopStructureError) -> Self {
        AnalyzeError::Loops(e)
    }
}

pub(crate) fn analyze(prog: &Program) -> Result<DepGraph, AnalyzeError> {
    gospel_ir::validate(prog)?;
    let cfg = Cfg::of(prog);
    let loops = LoopTable::of(prog)?;

    let mut edges = scalar_deps(prog, &cfg, &loops);
    edges.extend(array_deps(prog, &loops));
    let ctrl = control_deps(prog);
    assert_no_directions(&ctrl);
    edges.extend(ctrl);

    // Deterministic order and deduplication.
    let order = prog.order_index();
    edges.sort_by_key(|e| {
        (
            order[&e.src],
            order[&e.dst],
            e.kind as u8,
            e.var,
            e.src_pos,
            e.dst_pos,
            e.dirvec
                .iter()
                .map(|d| d.symbol())
                .collect::<String>(),
        )
    });
    edges.dedup();

    Ok(DepGraph::from_edges(prog, loops, edges))
}
