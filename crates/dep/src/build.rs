//! Top-level analysis driver assembling the dependence graph.

use crate::arrays::array_deps_filtered;
use crate::control::{assert_no_directions, control_deps};
use crate::edge::DepEdge;
use crate::query::DepGraph;
use crate::scalars::scalar_deps_filtered;
use gospel_ir::{Cfg, LoopStructureError, LoopTable, Program, ValidateError};
use std::cmp::Ordering;
use std::fmt;

/// Error analyzing a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The program failed structural validation.
    Invalid(ValidateError),
    /// Loop structure could not be recovered.
    Loops(LoopStructureError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Invalid(e) => write!(f, "invalid program: {e}"),
            AnalyzeError::Loops(e) => write!(f, "loop structure: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<ValidateError> for AnalyzeError {
    fn from(e: ValidateError) -> Self {
        AnalyzeError::Invalid(e)
    }
}

impl From<LoopStructureError> for AnalyzeError {
    fn from(e: LoopStructureError) -> Self {
        AnalyzeError::Loops(e)
    }
}

pub(crate) fn analyze(prog: &Program) -> Result<DepGraph, AnalyzeError> {
    gospel_ir::validate(prog)?;
    let cfg = Cfg::of(prog);
    let loops = LoopTable::of(prog)?;
    let order = dense_order(prog);

    let mut edges = scalar_deps_filtered(prog, &cfg, &loops, &order, None);
    edges.extend(array_deps_filtered(prog, &loops, &order, None));
    let ctrl = control_deps(prog);
    assert_no_directions(&ctrl);
    edges.extend(ctrl);

    sort_and_dedup(&order, &mut edges);

    Ok(DepGraph::from_edges(prog, loops, edges))
}

/// Program order as a dense table indexed by [`StmtId::index`]
/// (`u32::MAX` = not live). Cheaper than a `HashMap` on the sort hot
/// path: the comparator extracts keys by plain indexing, no hashing.
///
/// [`StmtId::index`]: gospel_ir::StmtId::index
pub(crate) fn dense_order(prog: &Program) -> Vec<u32> {
    let mut order = vec![u32::MAX; prog.id_bound()];
    for (pos, s) in prog.iter().enumerate() {
        order[s.index()] = u32::try_from(pos).expect("program fits in u32");
    }
    order
}

/// The canonical edge order: program position of the endpoints, then
/// kind, variable and operand slots, then the direction vector by its
/// display symbols (so ties match the documented `<`/`=`/`>`/`*`
/// lexicographic convention). Allocation-free — this runs on the
/// incremental hot path.
fn edge_cmp(order: &[u32], a: &DepEdge, b: &DepEdge) -> Ordering {
    (order[a.src.index()], order[a.dst.index()], a.kind as u8, a.var, a.src_pos, a.dst_pos)
        .cmp(&(order[b.src.index()], order[b.dst.index()], b.kind as u8, b.var, b.src_pos, b.dst_pos))
        .then_with(|| {
            a.dirvec
                .iter()
                .map(|d| d.symbol())
                .cmp(b.dirvec.iter().map(|d| d.symbol()))
        })
}

/// Deterministic order and deduplication — shared by the full analysis and
/// the incremental update so the two paths produce bit-identical edge
/// lists.
pub(crate) fn sort_and_dedup(order: &[u32], edges: &mut Vec<DepEdge>) {
    edges.sort_by(|a, b| edge_cmp(order, a, b));
    edges.dedup();
}

/// Merges freshly derived edges into an already-sorted retained list.
///
/// The incremental update drops dirty-symbol edges with a `retain` (which
/// preserves the canonical order: non-structural edits shift program
/// positions monotonically, so surviving pairs keep their relative
/// order), then re-derives only the dirty symbols. Sorting just the small
/// fresh batch and merging beats re-sorting the whole edge list.
pub(crate) fn merge_sorted(order: &[u32], edges: &mut Vec<DepEdge>, mut fresh: Vec<DepEdge>) {
    sort_and_dedup(order, &mut fresh);
    let mut out = Vec::with_capacity(edges.len() + fresh.len());
    let mut a = std::mem::take(edges).into_iter().peekable();
    let mut b = fresh.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if edge_cmp(order, x, y) != Ordering::Greater {
                    out.push(a.next().expect("peeked"));
                } else {
                    out.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(a.next().expect("peeked")),
            (None, Some(_)) => out.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out.dedup();
    *edges = out;
}
