//! Dependence kinds, direction vectors and edges.

use gospel_ir::{OperandPos, StmtId, Sym};
use std::fmt;

/// The four dependence kinds of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Flow (true) dependence: definition then use.
    Flow,
    /// Anti dependence: use then (re)definition.
    Anti,
    /// Output dependence: definition then redefinition.
    Output,
    /// Control dependence: a structured header and the statements under it.
    Control,
}

impl DepKind {
    /// The GOSpeL spelling (`flow_dep`, `anti_dep`, `out_dep`, `ctrl_dep`).
    pub fn gospel_name(self) -> &'static str {
        match self {
            DepKind::Flow => "flow_dep",
            DepKind::Anti => "anti_dep",
            DepKind::Output => "out_dep",
            DepKind::Control => "ctrl_dep",
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.gospel_name())
    }
}

/// One element of a *concrete* direction vector on a dependence edge.
///
/// `Any` appears on edges when the analysis can bound the dependence to a
/// loop level but not to a single direction (e.g. after a GCD test).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `<` — the source iteration precedes the sink iteration (forward
    /// loop-carried).
    Lt,
    /// `=` — same iteration (loop-independent at this level).
    Eq,
    /// `>` — the source iteration follows the sink (backward carried).
    Gt,
    /// `*` — any of the three.
    Any,
}

impl Direction {
    /// Reverses the direction (swap source and sink).
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Lt => Direction::Gt,
            Direction::Gt => Direction::Lt,
            other => other,
        }
    }

    /// The paper's notation.
    pub fn symbol(self) -> char {
        match self {
            Direction::Lt => '<',
            Direction::Eq => '=',
            Direction::Gt => '>',
            Direction::Any => '*',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// One element of a direction *pattern* in a specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DirElem {
    /// Must be `<`.
    Lt,
    /// Must be `=`.
    Eq,
    /// Must be `>`.
    Gt,
    /// Matches anything (`*` in GOSpeL; also what an omitted vector means).
    Any,
}

impl DirElem {
    fn admits(self, d: Direction) -> bool {
        match (self, d) {
            (DirElem::Any, _) => true,
            // A concrete-edge `*` means the dependence may have any
            // direction at this level, so every pattern element is
            // (conservatively) satisfiable.
            (_, Direction::Any) => true,
            (DirElem::Lt, Direction::Lt)
            | (DirElem::Eq, Direction::Eq)
            | (DirElem::Gt, Direction::Gt) => true,
            _ => false,
        }
    }

    /// The paper's notation.
    pub fn symbol(self) -> char {
        match self {
            DirElem::Lt => '<',
            DirElem::Eq => '=',
            DirElem::Gt => '>',
            DirElem::Any => '*',
        }
    }
}

impl fmt::Display for DirElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A direction-vector pattern from a GOSpeL specification, e.g. `(<,>)`.
///
/// Matching extends the shorter of pattern and edge vector with `=`
/// entries, so the `(=)` of a scalar-optimization spec (meaning
/// "loop-independent") matches a dependence at any nesting depth whose
/// vector is all-`=`, including the empty vector outside loops.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct DirPattern {
    elems: Vec<DirElem>,
}

impl DirPattern {
    /// A pattern from explicit elements.
    pub fn new(elems: Vec<DirElem>) -> DirPattern {
        DirPattern { elems }
    }

    /// The omitted-vector pattern: matches every dependence.
    pub fn any() -> DirPattern {
        DirPattern { elems: Vec::new() }
    }

    /// True for the omitted-vector pattern, which matches every
    /// dependence. (An explicit `(*, …)` pattern is *not* unconstrained:
    /// levels beyond its length are `=`-extended, like any other pattern.)
    pub fn is_any(&self) -> bool {
        self.elems.is_empty()
    }

    /// The `(=)` pattern: matches exactly the loop-independent dependences.
    pub fn loop_independent() -> DirPattern {
        DirPattern {
            elems: vec![DirElem::Eq],
        }
    }

    /// The pattern elements.
    pub fn elems(&self) -> &[DirElem] {
        &self.elems
    }

    /// Whether this pattern admits the concrete vector `dirs`.
    ///
    /// An *empty* pattern (omitted vector) matches everything. Otherwise
    /// pattern and vector are compared elementwise, the shorter side
    /// extended with `=` / `Eq`.
    pub fn matches(&self, dirs: &[Direction]) -> bool {
        if self.elems.is_empty() {
            return true;
        }
        let n = self.elems.len().max(dirs.len());
        (0..n).all(|k| {
            let p = self.elems.get(k).copied().unwrap_or(DirElem::Eq);
            let d = dirs.get(k).copied().unwrap_or(Direction::Eq);
            p.admits(d)
        })
    }
}

impl fmt::Display for DirPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<DirElem> for DirPattern {
    fn from_iter<T: IntoIterator<Item = DirElem>>(iter: T) -> Self {
        DirPattern {
            elems: iter.into_iter().collect(),
        }
    }
}

/// A dependence edge `src δ dst`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// The source statement (the earlier access).
    pub src: StmtId,
    /// The sink statement.
    pub dst: StmtId,
    /// Which dependence.
    pub kind: DepKind,
    /// The variable or array carrying the dependence (for control
    /// dependences, the LCV / a placeholder from the header).
    pub var: Sym,
    /// Operand position of the access in `src`.
    pub src_pos: OperandPos,
    /// Operand position of the access in `dst` — the `pos` GOSpeL returns
    /// for `(Sj, pos)` bindings.
    pub dst_pos: OperandPos,
    /// Direction vector over the loops common to `src` and `dst`,
    /// outermost first. Empty when the statements share no loop.
    pub dirvec: Vec<Direction>,
}

impl DepEdge {
    /// True if the edge is loop-carried (some non-`=` entry).
    pub fn is_carried(&self) -> bool {
        self.dirvec.iter().any(|d| *d != Direction::Eq)
    }

    /// True if the edge is carried *at* 0-based common-nest level `k`
    /// (i.e. the vector is `=` before `k` and non-`=` at `k`).
    pub fn carried_at(&self, k: usize) -> bool {
        self.dirvec.iter().take(k).all(|d| *d == Direction::Eq)
            && self.dirvec.get(k).is_some_and(|d| *d != Direction::Eq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_matching_with_extension() {
        use DirElem as P;
        use Direction as D;
        // omitted vector matches anything
        assert!(DirPattern::any().matches(&[D::Lt, D::Gt]));
        // (=) matches all-equal of any depth
        let eq = DirPattern::loop_independent();
        assert!(eq.matches(&[]));
        assert!(eq.matches(&[D::Eq, D::Eq]));
        assert!(!eq.matches(&[D::Lt]));
        assert!(!eq.matches(&[D::Eq, D::Lt]));
        // (<,>) needs exactly those directions (with extension)
        let p = DirPattern::new(vec![P::Lt, P::Gt]);
        assert!(p.matches(&[D::Lt, D::Gt]));
        assert!(!p.matches(&[D::Lt, D::Eq]));
        assert!(!p.matches(&[D::Lt])); // extended to (<,=)
        assert!(p.matches(&[D::Lt, D::Any])); // conservative edge
        // (*) in a pattern admits everything at that level
        let star = DirPattern::new(vec![P::Any]);
        assert!(star.matches(&[D::Gt]));
        assert!(!star.is_any()); // deeper levels are still `=`-extended
    }

    #[test]
    fn direction_reversal() {
        assert_eq!(Direction::Lt.reversed(), Direction::Gt);
        assert_eq!(Direction::Eq.reversed(), Direction::Eq);
        assert_eq!(Direction::Any.reversed(), Direction::Any);
    }

    #[test]
    fn carried_levels() {
        use Direction as D;
        let mk = |dirs: Vec<Direction>| DepEdge {
            src: crate_test_stmt(0),
            dst: crate_test_stmt(1),
            kind: DepKind::Flow,
            var: crate_test_sym(),
            src_pos: OperandPos::Dst,
            dst_pos: OperandPos::A,
            dirvec: dirs,
        };
        assert!(!mk(vec![D::Eq, D::Eq]).is_carried());
        assert!(mk(vec![D::Eq, D::Lt]).is_carried());
        assert!(mk(vec![D::Eq, D::Lt]).carried_at(1));
        assert!(!mk(vec![D::Eq, D::Lt]).carried_at(0));
        assert!(!mk(vec![D::Lt, D::Lt]).carried_at(1));
    }

    fn crate_test_stmt(n: usize) -> StmtId {
        // Build ids through a real program to respect encapsulation.
        let mut p = gospel_ir::Program::new("t");
        let x = p.declare("x", gospel_ir::VarType::Int, gospel_ir::VarKind::Scalar);
        let mut last = None;
        for _ in 0..=n {
            last = Some(p.push(gospel_ir::Quad::assign(
                gospel_ir::Operand::Var(x),
                gospel_ir::Operand::int(0),
            )));
        }
        last.unwrap()
    }

    fn crate_test_sym() -> Sym {
        let mut p = gospel_ir::Program::new("t");
        p.declare("x", gospel_ir::VarType::Int, gospel_ir::VarKind::Scalar)
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn dir_strategy() -> impl Strategy<Value = Direction> {
        prop_oneof![
            Just(Direction::Lt),
            Just(Direction::Eq),
            Just(Direction::Gt),
            Just(Direction::Any),
        ]
    }

    fn elem_strategy() -> impl Strategy<Value = DirElem> {
        prop_oneof![
            Just(DirElem::Lt),
            Just(DirElem::Eq),
            Just(DirElem::Gt),
            Just(DirElem::Any),
        ]
    }

    proptest! {
        #[test]
        fn omitted_pattern_matches_everything(dirs in proptest::collection::vec(dir_strategy(), 0..4)) {
            prop_assert!(DirPattern::any().matches(&dirs));
        }

        #[test]
        fn all_star_pattern_matches_up_to_its_depth(
            dirs in proptest::collection::vec(dir_strategy(), 0..4),
            n in 1usize..4,
        ) {
            let p = DirPattern::new(vec![DirElem::Any; n]);
            // Beyond the pattern's depth the matcher extends it with `=`,
            // so deeper entries must be `=`-compatible.
            let expected = dirs[dirs.len().min(n)..]
                .iter()
                .all(|d| matches!(d, Direction::Eq | Direction::Any));
            prop_assert_eq!(p.matches(&dirs), expected);
        }

        #[test]
        fn exact_pattern_matches_its_own_vector(elems in proptest::collection::vec(elem_strategy(), 1..4)) {
            let dirs: Vec<Direction> = elems.iter().map(|e| match e {
                DirElem::Lt => Direction::Lt,
                DirElem::Eq => Direction::Eq,
                DirElem::Gt => Direction::Gt,
                DirElem::Any => Direction::Any,
            }).collect();
            prop_assert!(DirPattern::new(elems.clone()).matches(&dirs));
        }

        #[test]
        fn reversal_is_an_involution(d in dir_strategy()) {
            prop_assert_eq!(d.reversed().reversed(), d);
        }

        #[test]
        fn eq_pattern_matches_iff_effectively_loop_independent(
            dirs in proptest::collection::vec(dir_strategy(), 0..4),
        ) {
            let matches = DirPattern::loop_independent().matches(&dirs);
            // `Any` on a concrete edge is satisfiable by `=`, so it counts.
            let independent_possible = dirs
                .iter()
                .all(|d| matches!(d, Direction::Eq | Direction::Any));
            prop_assert_eq!(matches, independent_possible);
        }

        #[test]
        fn matching_is_stable_under_eq_extension(
            elems in proptest::collection::vec(elem_strategy(), 1..3),
            dirs in proptest::collection::vec(dir_strategy(), 1..3),
        ) {
            // Appending `=` to the shorter side never changes the verdict:
            // that is exactly what the matcher's implicit extension does.
            let base = DirPattern::new(elems.clone()).matches(&dirs);
            let mut dirs_ext = dirs.clone();
            while dirs_ext.len() < elems.len() {
                dirs_ext.push(Direction::Eq);
            }
            prop_assert_eq!(DirPattern::new(elems).matches(&dirs_ext), base);
        }
    }
}
