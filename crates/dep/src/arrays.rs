//! Array data dependences via dimension-by-dimension subscript tests.
//!
//! For every pair of references to the same array (at least one a write) the
//! analyzer classifies each subscript dimension with:
//!
//! * **ZIV** — both subscripts free of varying terms: unequal constants
//!   prove independence;
//! * **strong SIV** — `a·i + c₁` vs `a·i + c₂` in one common loop: the
//!   dependence distance `(c₂-c₁)/a` fixes the direction, non-integral
//!   distances and distances beyond the trip count prove independence;
//! * **GCD** — the general case: if the gcd of all induction coefficients
//!   does not divide the constant difference there is no dependence,
//!   otherwise every direction is possible at the involved levels.
//!
//! Scalar symbols appearing in subscripts are assumed loop-invariant (the
//! standard assumption for this style of analyzer; see DESIGN.md), while
//! loop-control variables of non-common loops and compiler temporaries are
//! treated as varying and handled conservatively.

use crate::edge::{DepEdge, DepKind, Direction};
use gospel_ir::{AffineExpr, LoopTable, Operand, OperandPos, Program, StmtId, Sym};
use std::collections::{HashMap, HashSet};

/// One textual array reference.
#[derive(Clone, Debug)]
struct ArrayRef {
    stmt: StmtId,
    pos: OperandPos,
    array: Sym,
    subs: Vec<AffineExpr>,
    is_write: bool,
}

/// Computes all array data dependence edges.
#[cfg(test)]
pub(crate) fn array_deps(prog: &Program, loops: &LoopTable) -> Vec<DepEdge> {
    array_deps_filtered(prog, loops, &crate::build::dense_order(prog), None)
}

/// Array dependence edges restricted to arrays in `only` (all arrays when
/// `None`). Every array edge joins two references to the *same* array —
/// including the fusion-preview edges — so dropping the references of
/// other arrays cannot change the edges of a kept array. `order` is the
/// caller's dense order table, shared across the passes of one update.
pub(crate) fn array_deps_filtered(
    prog: &Program,
    loops: &LoopTable,
    order: &[u32],
    only: Option<&HashSet<Sym>>,
) -> Vec<DepEdge> {
    let mut refs = collect_refs(prog);
    if let Some(arrays) = only {
        refs.retain(|r| arrays.contains(&r.array));
    }

    // Every variable that is the LCV of some loop is "varying" when it is
    // not one of the pair's common LCVs.
    let all_lcvs: HashSet<Sym> = loops.iter().map(|l| l.lcv).collect();

    let mut by_array: HashMap<Sym, Vec<usize>> = HashMap::new();
    for (i, r) in refs.iter().enumerate() {
        by_array.entry(r.array).or_default().push(i);
    }

    let mut edges = Vec::new();
    for idxs in by_array.values() {
        for (ii, &i) in idxs.iter().enumerate() {
            for &j in &idxs[ii..] {
                let (a, b) = (&refs[i], &refs[j]);
                if !a.is_write && !b.is_write {
                    continue;
                }
                if i == j {
                    // A single reference can only depend on itself across
                    // iterations; the pair test below covers it.
                    test_pair(prog, loops, order, &all_lcvs, a, b, &mut edges);
                    continue;
                }
                // Orient the pair so `a` is textually first.
                if order[a.stmt.index()] <= order[b.stmt.index()] {
                    test_pair(prog, loops, order, &all_lcvs, a, b, &mut edges);
                } else {
                    test_pair(prog, loops, order, &all_lcvs, b, a, &mut edges);
                }
            }
        }
    }
    fusion_preview_deps(prog, loops, &all_lcvs, &refs, &mut edges);
    edges
}

/// Cross-loop direction vectors for *fusable-shaped* adjacent loop pairs.
///
/// References in two adjacent loops share no loop, so their ordinary
/// direction vectors are empty — which cannot express fusion legality.
/// For adjacent pairs with equal bounds this pass aligns the two loop
/// control variables and reports the direction the dependence would have
/// *after* fusion, oriented textually (first-loop reference → second-loop
/// reference). A `>` at the aligned level is the fusion-preventing
/// direction loop fusion tests for.
fn fusion_preview_deps(
    prog: &Program,
    loops: &LoopTable,
    all_lcvs: &HashSet<Sym>,
    refs: &[ArrayRef],
    edges: &mut Vec<DepEdge>,
) {
    for (l1, l2) in loops.adjacent_pairs(prog) {
        let i1 = loops.get(l1);
        let i2 = loops.get(l2);
        if i1.init != i2.init || i1.fin != i2.fin {
            continue;
        }
        let (lcv1, lcv2) = (i1.lcv, i2.lcv);
        let outer = loops.common_nest(i1.head, i2.head);
        let mut common_lcvs: Vec<Sym> = outer.iter().map(|&l| loops.get(l).lcv).collect();
        common_lcvs.push(lcv1);
        let mut trip: Vec<Option<i64>> = outer.iter().map(|&l| loops.trip_count(l)).collect();
        trip.push(loops.trip_count(l1));
        let depth = common_lcvs.len();

        for a in refs.iter().filter(|r| loops.contains(l1, r.stmt)) {
            for b in refs.iter().filter(|r| loops.contains(l2, r.stmt)) {
                if a.array != b.array || (!a.is_write && !b.is_write) {
                    continue;
                }
                // Align the second loop's control variable with the first's.
                let b_subs: Vec<AffineExpr> = if lcv1 == lcv2 {
                    b.subs.clone()
                } else if b.subs.iter().any(|e| e.mentions(lcv1)) {
                    continue; // the alias would capture; stay conservative
                } else {
                    b.subs.iter().map(|e| e.rename(lcv2, lcv1)).collect()
                };

                let mut constraint = vec![DirSet::all(); depth];
                let mut independent = false;
                for (sa, sb) in a.subs.iter().zip(&b_subs) {
                    match test_dim(sa, sb, &common_lcvs, &trip, all_lcvs) {
                        DimResult::NoDep => {
                            independent = true;
                            break;
                        }
                        DimResult::Dirs(sets) => {
                            for (k, s) in sets.into_iter().enumerate() {
                                constraint[k] = constraint[k].intersect(s);
                                if constraint[k].is_empty() {
                                    independent = true;
                                }
                            }
                        }
                    }
                }
                if independent {
                    continue;
                }
                let kind = match (a.is_write, b.is_write) {
                    (true, false) => DepKind::Flow,
                    (false, true) => DepKind::Anti,
                    (true, true) => DepKind::Output,
                    (false, false) => unreachable!("filtered above"),
                };
                // Enumerate every feasible vector, keeping the textual
                // orientation (no lexicographic flip: these are previews).
                let mut vector = vec![Direction::Eq; depth];
                enumerate_preview(a, b, kind, &constraint, &mut vector, 0, edges);
            }
        }
    }
}

fn enumerate_preview(
    a: &ArrayRef,
    b: &ArrayRef,
    kind: DepKind,
    constraint: &[DirSet],
    vector: &mut Vec<Direction>,
    level: usize,
    edges: &mut Vec<DepEdge>,
) {
    if level == constraint.len() {
        edges.push(DepEdge {
            src: a.stmt,
            dst: b.stmt,
            kind,
            var: a.array,
            src_pos: a.pos,
            dst_pos: b.pos,
            dirvec: vector.clone(),
        });
        return;
    }
    for d in constraint[level].iter() {
        vector[level] = d;
        enumerate_preview(a, b, kind, constraint, vector, level + 1, edges);
    }
}

fn collect_refs(prog: &Program) -> Vec<ArrayRef> {
    let mut out = Vec::new();
    for stmt in prog.iter() {
        let quad = prog.quad(stmt);
        if let Some(Operand::Elem { array, subs }) = quad.def_operand() {
            out.push(ArrayRef {
                stmt,
                pos: OperandPos::Dst,
                array: *array,
                subs: subs.clone(),
                is_write: true,
            });
        }
        for pos in quad.used_positions() {
            if let Operand::Elem { array, subs } = quad.operand(pos) {
                out.push(ArrayRef {
                    stmt,
                    pos,
                    array: *array,
                    subs: subs.clone(),
                    is_write: false,
                });
            }
        }
    }
    out
}

/// Per-level direction possibilities (a subset of `{<,=,>}`).
#[derive(Clone, Copy, PartialEq, Eq)]
struct DirSet(u8);

impl DirSet {
    const LT: u8 = 1;
    const EQ: u8 = 2;
    const GT: u8 = 4;

    fn all() -> DirSet {
        DirSet(Self::LT | Self::EQ | Self::GT)
    }

    fn only(d: Direction) -> DirSet {
        DirSet(match d {
            Direction::Lt => Self::LT,
            Direction::Eq => Self::EQ,
            Direction::Gt => Self::GT,
            Direction::Any => Self::LT | Self::EQ | Self::GT,
        })
    }

    fn intersect(self, other: DirSet) -> DirSet {
        DirSet(self.0 & other.0)
    }

    fn is_empty(self) -> bool {
        self.0 == 0
    }

    fn iter(self) -> impl Iterator<Item = Direction> {
        [
            (Self::LT, Direction::Lt),
            (Self::EQ, Direction::Eq),
            (Self::GT, Direction::Gt),
        ]
        .into_iter()
        .filter_map(move |(bit, d)| if self.0 & bit != 0 { Some(d) } else { None })
    }
}

enum DimResult {
    /// Dimension proves the pair independent.
    NoDep,
    /// Per-common-level constraints contributed by this dimension.
    Dirs(Vec<DirSet>),
}

#[allow(clippy::too_many_arguments)]
fn test_pair(
    prog: &Program,
    loops: &LoopTable,
    order: &[u32],
    all_lcvs: &HashSet<Sym>,
    a: &ArrayRef,
    b: &ArrayRef,
    edges: &mut Vec<DepEdge>,
) {
    let common = loops.common_nest(a.stmt, b.stmt);
    let common_lcvs: Vec<Sym> = common.iter().map(|&l| loops.get(l).lcv).collect();
    let trip: Vec<Option<i64>> = common.iter().map(|&l| loops.trip_count(l)).collect();

    let depth = common.len();
    let mut constraint: Vec<DirSet> = vec![DirSet::all(); depth];

    debug_assert_eq!(a.subs.len(), b.subs.len(), "same array, same rank");
    for d in 0..a.subs.len() {
        match test_dim(&a.subs[d], &b.subs[d], &common_lcvs, &trip, all_lcvs) {
            DimResult::NoDep => return,
            DimResult::Dirs(sets) => {
                for (k, s) in sets.into_iter().enumerate() {
                    constraint[k] = constraint[k].intersect(s);
                    if constraint[k].is_empty() {
                        return; // contradictory directions: independent
                    }
                }
            }
        }
    }

    // Enumerate feasible direction vectors and orient each.
    let mut vector = vec![Direction::Eq; depth];
    enumerate(prog, order, a, b, &constraint, &mut vector, 0, edges);
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    prog: &Program,
    order: &[u32],
    a: &ArrayRef,
    b: &ArrayRef,
    constraint: &[DirSet],
    vector: &mut Vec<Direction>,
    level: usize,
    edges: &mut Vec<DepEdge>,
) {
    if level == constraint.len() {
        emit_oriented(prog, order, a, b, vector.clone(), edges);
        return;
    }
    for d in constraint[level].iter() {
        vector[level] = d;
        enumerate(prog, order, a, b, constraint, vector, level + 1, edges);
    }
}

fn emit_oriented(
    prog: &Program,
    order: &[u32],
    a: &ArrayRef,
    b: &ArrayRef,
    vector: Vec<Direction>,
    edges: &mut Vec<DepEdge>,
) {
    let first = vector.iter().find(|d| **d != Direction::Eq);
    let same_ref = std::ptr::eq(a, b);
    let (src, dst, dirs) = match first {
        Some(Direction::Lt) => (a, b, vector),
        Some(Direction::Gt) if same_ref => return, // mirror of the Lt vector
        Some(Direction::Gt) => {
            // Lexicographically negative: the real dependence runs b → a
            // with the reversed vector.
            let rev: Vec<Direction> = vector.iter().map(|d| d.reversed()).collect();
            (b, a, rev)
        }
        _ => {
            // Loop-independent: textual order decides; same-statement
            // read/write pairs (a(i) = a(i)+1) read before writing, so no
            // same-iteration edge.
            if a.stmt == b.stmt {
                return;
            }
            debug_assert!(order[a.stmt.index()] <= order[b.stmt.index()]);
            (a, b, vector)
        }
    };
    let kind = match (src.is_write, dst.is_write) {
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (true, true) => DepKind::Output,
        (false, false) => return,
    };
    edges.push(DepEdge {
        src: src.stmt,
        dst: dst.stmt,
        kind,
        var: src.array,
        src_pos: src.pos,
        dst_pos: dst.pos,
        dirvec: dirs,
    });
    let _ = prog;
}

/// Classifies one subscript dimension. `a_sub` belongs to the textually
/// first reference. Directions are *source-relative*: `Lt` at level `k`
/// means the `a` iteration precedes the `b` iteration in loop `k`.
fn test_dim(
    a_sub: &AffineExpr,
    b_sub: &AffineExpr,
    common_lcvs: &[Sym],
    trip: &[Option<i64>],
    all_lcvs: &HashSet<Sym>,
) -> DimResult {
    let depth = common_lcvs.len();
    let level_of: HashMap<Sym, usize> = common_lcvs
        .iter()
        .enumerate()
        .map(|(k, &s)| (s, k))
        .collect();

    // Split both subscripts into common-LCV terms, varying terms and the
    // invariant remainder.
    let mut acoef = vec![0i64; depth];
    let mut bcoef = vec![0i64; depth];
    let mut varying: Vec<i64> = Vec::new();
    let mut invariant_unknown = false;
    let c: i64 = a_sub.constant() - b_sub.constant();

    let mut invariant: HashMap<Sym, i64> = HashMap::new();
    for (expr, sign) in [(a_sub, 1i64), (b_sub, -1i64)] {
        for v in expr.vars() {
            let co = expr.coeff(v);
            if let Some(&k) = level_of.get(&v) {
                if sign > 0 {
                    acoef[k] = co;
                } else {
                    bcoef[k] = co;
                }
            } else if all_lcvs.contains(&v) || is_temp_name(v, expr) {
                // A non-common LCV: the two references bind it
                // independently, so each occurrence is its own unknown.
                varying.push(co);
            } else {
                *invariant.entry(v).or_insert(0) += sign * co;
            }
        }
        let _ = sign;
    }
    // is_temp detection needs the program's symbol table; approximated by
    // treating temps as invariant here — they are single-assignment values
    // in straight-line lowering. (Non-affine subscripts already went
    // through a temp, which makes them opaque-but-invariant.)
    for (_, coeff) in invariant {
        if coeff != 0 {
            invariant_unknown = true;
        }
    }
    // With `c = a.const - b.const` the dependence equation is
    //   Σ acoef·I_k - Σ bcoef·I'_k + c = 0
    // (symbolically equal invariant parts cancelled above; otherwise
    // invariant_unknown is set). Strong SIV then gives I' - I = c / ak.

    let all_zero = acoef.iter().all(|&x| x == 0)
        && bcoef.iter().all(|&x| x == 0)
        && varying.is_empty();

    if all_zero {
        // ZIV
        if invariant_unknown {
            return DimResult::Dirs(vec![DirSet::all(); depth]);
        }
        return if c == 0 {
            DimResult::Dirs(vec![DirSet::all(); depth])
        } else {
            DimResult::NoDep
        };
    }

    if invariant_unknown {
        return DimResult::Dirs(vec![DirSet::all(); depth]);
    }

    // SIV: exactly one involved common level, no varying terms.
    let involved: Vec<usize> = (0..depth)
        .filter(|&k| acoef[k] != 0 || bcoef[k] != 0)
        .collect();
    if varying.is_empty() && involved.len() == 1 {
        let k = involved[0];
        let (ak, bk) = (acoef[k], bcoef[k]);
        if ak == bk {
            // strong SIV: ak·I + a_c = ak·I' + b_c  ⇒  I' - I = c / ak
            if c % ak != 0 {
                return DimResult::NoDep;
            }
            let dist = c / ak;
            if let Some(t) = trip[k] {
                if dist.abs() >= t.max(0) {
                    return DimResult::NoDep;
                }
            }
            let dir = match dist.cmp(&0) {
                std::cmp::Ordering::Greater => Direction::Lt,
                std::cmp::Ordering::Equal => Direction::Eq,
                std::cmp::Ordering::Less => Direction::Gt,
            };
            let mut sets = vec![DirSet::all(); depth];
            sets[k] = DirSet::only(dir);
            return DimResult::Dirs(sets);
        }
        // weak SIV: fall through to the GCD test.
    }

    // GCD test over every induction coefficient.
    let mut g: i64 = 0;
    for &x in acoef.iter().chain(bcoef.iter()).chain(varying.iter()) {
        g = gcd(g, x.abs());
    }
    if g != 0 && c % g != 0 {
        return DimResult::NoDep;
    }
    DimResult::Dirs(vec![DirSet::all(); depth])
}

fn is_temp_name(_v: Sym, _expr: &AffineExpr) -> bool {
    // Temps are treated as invariant; see the comment at the call site.
    false
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;
    use gospel_ir::Cfg;

    fn deps(src: &str) -> (Program, Vec<DepEdge>) {
        let p = compile(src).unwrap();
        let _ = Cfg::of(&p);
        let loops = LoopTable::of(&p).unwrap();
        let e = array_deps(&p, &loops);
        (p, e)
    }

    #[test]
    fn independent_elementwise_loop() {
        // a(i) = a(i) + 1 : the only array pair is the same-statement
        // read/write with distance 0 — no loop-carried edge.
        let (_, e) = deps(
            "program p\ninteger i\nreal a(100)\ndo i = 1, 100\na(i) = a(i) + 1.0\nend do\nend",
        );
        assert!(e.is_empty(), "expected no edges, got {e:#?}");
    }

    #[test]
    fn forward_carried_flow() {
        // a(i+1) read of previous iteration's write a(i)?  Write a(i),
        // read a(i-1): distance +1 ⇒ flow (<) from the write to the read.
        let (_, e) = deps(
            "program p\ninteger i\nreal a(100), x\ndo i = 2, 100\na(i) = x\nx = a(i-1)\nend do\nend",
        );
        let flows: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1, "{e:#?}");
        assert_eq!(flows[0].dirvec, vec![Direction::Lt]);
    }

    #[test]
    fn backward_reference_becomes_anti() {
        // write a(i), read a(i+1): the read at iteration i uses the element
        // written at iteration i+1 ⇒ anti dependence (<) from read to write.
        let (_, e) = deps(
            "program p\ninteger i\nreal a(100), x\ndo i = 1, 99\na(i) = x\nx = a(i+1)\nend do\nend",
        );
        let antis: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Anti).collect();
        assert_eq!(antis.len(), 1, "{e:#?}");
        assert_eq!(antis[0].dirvec, vec![Direction::Lt]);
    }

    #[test]
    fn distance_beyond_trip_count_is_independent() {
        let (_, e) = deps(
            "program p\ninteger i\nreal a(300), x\ndo i = 1, 10\na(i) = x\nx = a(i+100)\nend do\nend",
        );
        assert!(e.is_empty(), "{e:#?}");
    }

    #[test]
    fn gcd_disproves_dependence() {
        // writes even elements, reads odd elements
        let (_, e) = deps(
            "program p\ninteger i\nreal a(300), x\ndo i = 1, 100\na(2*i) = x\nx = a(2*i+1)\nend do\nend",
        );
        assert!(e.is_empty(), "{e:#?}");
    }

    #[test]
    fn ziv_different_constants_independent() {
        let (_, e) = deps(
            "program p\ninteger i\nreal a(10), x\ndo i = 1, 10\na(1) = x\nx = a(2)\nend do\nend",
        );
        // No flow/anti between a(1) and a(2); the only edge is the carried
        // output self-dependence of the a(1) write.
        assert!(e
            .iter()
            .all(|d| d.kind == DepKind::Output && d.src == d.dst), "{e:#?}");
        assert_eq!(e.len(), 1, "{e:#?}");
    }

    #[test]
    fn ziv_same_constant_output_dep() {
        // a(1) written every iteration: carried output dependence on itself
        let (_, e) = deps(
            "program p\ninteger i\nreal a(10)\ndo i = 1, 10\na(1) = 0.0\nend do\nend",
        );
        let outs: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Output).collect();
        assert!(
            outs.iter().any(|d| d.dirvec == vec![Direction::Lt]),
            "{e:#?}"
        );
    }

    #[test]
    fn interchange_blocking_pair_in_2d() {
        // a(i,j) = a(i-1,j+1): flow dep with direction (<,>): the classic
        // loop-interchange blocker.
        let (_, e) = deps(
            "program p\ninteger i, j\nreal a(20,20)\ndo i = 2, 10\ndo j = 1, 9\na(i,j) = a(i-1,j+1)\nend do\nend do\nend",
        );
        let flows: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1, "{e:#?}");
        assert_eq!(flows[0].dirvec, vec![Direction::Lt, Direction::Gt]);
    }

    #[test]
    fn interchange_safe_2d_has_no_lt_gt() {
        let (_, e) = deps(
            "program p\ninteger i, j\nreal a(20,20)\ndo i = 2, 10\ndo j = 2, 10\na(i,j) = a(i-1,j-1)\nend do\nend do\nend",
        );
        let flows: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1, "{e:#?}");
        assert_eq!(flows[0].dirvec, vec![Direction::Lt, Direction::Lt]);
    }

    #[test]
    fn cross_loop_same_subscript_pattern() {
        // Two adjacent loops touching the same elements: write in loop 1,
        // read in loop 2. No common loops ⇒ empty direction vector, flow
        // edge oriented by textual order.
        let (_, e) = deps(
            "program p\ninteger i\nreal a(100), x\ndo i = 1, 100\na(i) = 1.0\nend do\ndo i = 1, 100\nx = a(i)\nend do\nend",
        );
        let flows: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Flow).collect();
        // The plain cross-loop edge (empty vector) plus its fusion-preview
        // twin (aligned direction `=`, since the bounds match).
        assert_eq!(flows.len(), 2, "{e:#?}");
        assert!(flows.iter().any(|d| d.dirvec.is_empty()));
        assert!(flows.iter().any(|d| d.dirvec == vec![Direction::Eq]));
    }

    #[test]
    fn symbolic_invariant_subscripts_cancel() {
        // a(m) twice: same symbolic subscript ⇒ dependence; a(m) vs a(m+1)
        // ⇒ provably distinct under the invariance assumption.
        let (_, e) = deps(
            "program p\ninteger m\nreal a(10), x, y\nm = 3\na(m) = 1.0\nx = a(m)\ny = a(m+1)\nend",
        );
        let flows: Vec<_> = e.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1, "{e:#?}");
    }

    #[test]
    fn unknown_invariant_difference_is_conservative() {
        // a(m) vs a(n): cannot decide ⇒ dependence assumed.
        let (_, e) = deps(
            "program p\ninteger m, n\nreal a(10), x\na(m) = 1.0\nx = a(n)\nend",
        );
        assert_eq!(e.iter().filter(|d| d.kind == DepKind::Flow).count(), 1);
    }
}

#[cfg(test)]
mod fusion_tests {
    use super::*;
    use gospel_frontend::compile;
    use crate::edge::Direction;

    fn deps(src: &str) -> Vec<DepEdge> {
        let p = compile(src).unwrap();
        let loops = LoopTable::of(&p).unwrap();
        array_deps(&p, &loops)
    }

    #[test]
    fn aligned_adjacent_loops_preview_equal_direction() {
        // write a(i) in loop 1, read a(i) in loop 2: after fusion the
        // dependence is same-iteration: preview (=), which is fusable.
        let e = deps(
            "program p\ninteger i\nreal a(100), x\ndo i = 1, 100\na(i) = 1.0\nend do\ndo i = 1, 100\nx = a(i)\nend do\nend",
        );
        let preview: Vec<_> = e
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.dirvec.len() == 1)
            .collect();
        assert_eq!(preview.len(), 1, "{e:#?}");
        assert_eq!(preview[0].dirvec, vec![Direction::Eq]);
        // no fusion-preventing (>) edge
        assert!(!e.iter().any(|d| d.dirvec == vec![Direction::Gt]));
    }

    #[test]
    fn forward_reference_previews_fusion_preventing() {
        // loop 1 writes a(i); loop 2 reads a(i+1): loop 2's iteration i
        // needs the element loop 1 writes at iteration i+1 — after fusion
        // that write has not happened yet: direction (>), not fusable.
        let e = deps(
            "program p\ninteger i\nreal a(200), x\ndo i = 1, 100\na(i) = 1.0\nend do\ndo i = 1, 100\nx = a(i+1)\nend do\nend",
        );
        assert!(
            e.iter().any(|d| d.kind == DepKind::Flow && d.dirvec == vec![Direction::Gt]),
            "{e:#?}"
        );
    }

    #[test]
    fn backward_reference_previews_forward_carried() {
        // loop 2 reads a(i-1): after fusion the value arrives from the
        // previous iteration: direction (<), fusable.
        let e = deps(
            "program p\ninteger i\nreal a(200), x\ndo i = 2, 100\na(i) = 1.0\nend do\ndo i = 2, 100\nx = a(i-1)\nend do\nend",
        );
        let previews: Vec<_> = e.iter().filter(|d| d.dirvec.len() == 1).collect();
        assert!(
            previews.iter().any(|d| d.dirvec == vec![Direction::Lt]),
            "{e:#?}"
        );
        assert!(!previews.iter().any(|d| d.dirvec == vec![Direction::Gt]));
    }

    #[test]
    fn different_bounds_get_no_preview() {
        let e = deps(
            "program p\ninteger i\nreal a(200), x\ndo i = 1, 100\na(i) = 1.0\nend do\ndo i = 1, 50\nx = a(i)\nend do\nend",
        );
        assert!(e.iter().all(|d| d.dirvec.is_empty()), "{e:#?}");
    }

    #[test]
    fn different_lcv_names_still_align() {
        let e = deps(
            "program p\ninteger i, j\nreal a(100), x\ndo i = 1, 100\na(i) = 1.0\nend do\ndo j = 1, 100\nx = a(j)\nend do\nend",
        );
        assert!(
            e.iter().any(|d| d.dirvec == vec![Direction::Eq]),
            "{e:#?}"
        );
    }
}
