//! Incremental dependence maintenance: update a [`DepGraph`] from an
//! [`EditDelta`] instead of re-analyzing the whole program.
//!
//! The update is *exact*, not approximate. The argument, per layer:
//!
//! * **Scalar edges.** The reaching-defs/uses transfer functions are
//!   per-variable: a definition of `v` generates and kills only bits of
//!   `v`'s accesses. Restricting the access tables to a set of variables
//!   therefore reproduces exactly the full analysis's dataflow facts for
//!   those variables ([`Accesses::collect_where`]). The *dirty set* —
//!   every symbol mentioned by a statement the edit batch touched
//!   (including pre-edit operands of `modify` and the snapshots of
//!   deleted quads) — is collected program-wide, and all edges of dirty
//!   symbols are dropped and re-derived. Edges of clean symbols cannot
//!   have changed: their endpoints were not edited (an edge incident to
//!   a touched statement carries one of that statement's own symbols,
//!   which is dirty by construction), their relative textual order is
//!   preserved by non-structural edits, and a moved statement that
//!   neither defines nor uses a clean variable is an identity transfer
//!   node the may-dataflow for that variable ignores.
//! * **Array edges.** Every array edge — including the fusion-preview
//!   edges — joins two references to the *same* array, so re-running the
//!   subscript tests over only the dirty arrays' references re-derives
//!   exactly the dropped edges.
//! * **Control edges.** Recomputed wholesale; the header-stack walk is
//!   linear and cheap.
//!
//! Edits that change the loop or branch *structure* (markers inserted,
//! deleted or relocated, or a loop header's control variable rewritten)
//! invalidate direction vectors and common nests for pairs that were
//! never touched, so [`EditDelta::requires_full`] forces a fresh
//! [`DepGraph::analyze`]. Two milder cases are detected here rather than
//! in the journal and handled by dirtying every array referenced in the
//! affected *focus loops* (re-deriving their slice of the array layer,
//! previews included), while the scalar layer stays restricted to the
//! edit's symbols:
//!
//! * a plain statement inserted between or removed from between an
//!   `end do`/`do` pair changes whether those two loops are adjacent,
//!   and loop adjacency gates the fusion-preview pass — whose edges
//!   involve arrays the edited statement never mentions (focus: the two
//!   loops of the pair); and
//! * a loop header's *bound* operand rewritten changes trip counts,
//!   which only the array subscript tests consume — the loop table and
//!   control edges are rebuilt fresh on every update, and the scalar
//!   layer never reads bounds (focus: the modified loop, which encloses
//!   every pair whose common nest the bound governs, plus its adjacent
//!   loops, whose fusion previews test bound equality).
//!
//! [`Accesses::collect_where`]: crate::reach::Accesses::collect_where

use crate::arrays::array_deps_filtered;
use crate::build::{self, AnalyzeError};
use crate::control::{assert_no_directions, control_deps};
use crate::edge::DepKind;
use crate::query::DepGraph;
use crate::scalars::scalar_deps_filtered;
use gospel_ir::{
    Cfg, EditDelta, EditOp, LoopTable, Opcode, Operand, OperandPos, Program, Quad, StmtId, Sym,
};
use std::collections::HashSet;

/// How an update was carried out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// The delta was empty; nothing changed.
    Noop,
    /// Only the dirty symbols' edges were re-derived.
    Incremental,
    /// A structural edit forced a full re-analysis.
    Full,
}

/// Result of [`DepGraph::update`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepUpdate {
    /// How the graph was brought up to date.
    pub kind: UpdateKind,
    /// Earliest statement (in program order) whose pattern-matching
    /// neighborhood the edit batch may have changed — the point a
    /// searcher can resume from instead of rescanning the whole program.
    /// `None` means no restriction is justified (full fallback, or an
    /// edit at the very front of the program).
    pub frontier: Option<StmtId>,
    /// What the update actually did — the per-refresh accounting the
    /// observability layer reports.
    pub stats: UpdateStats,
}

/// Work accounting for one [`DepGraph::update`] call. All zero for a
/// no-op; for a full fallback only `edges_added` is populated (the size
/// of the freshly analyzed graph).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Symbols whose edges were invalidated (the dirty set).
    pub dirty_syms: usize,
    /// Stale data edges dropped before re-derivation.
    pub edges_dropped: usize,
    /// Edges re-derived against the post-edit program (data edges of the
    /// dirty symbols plus the rebuilt control layer; for a full fallback,
    /// every edge of the fresh graph).
    pub edges_added: usize,
}

/// Symbols mentioned by one operand: the scalar itself, or an array plus
/// its subscript scalars.
fn operand_syms(op: &Operand, out: &mut HashSet<Sym>) {
    match op {
        Operand::Var(v) => {
            out.insert(*v);
        }
        e @ Operand::Elem { array, .. } => {
            out.insert(*array);
            for v in e.subscript_vars() {
                out.insert(v);
            }
        }
        _ => {}
    }
}

/// Symbols mentioned anywhere in one quad.
fn quad_syms(q: &Quad, out: &mut HashSet<Sym>) {
    for pos in OperandPos::ALL {
        operand_syms(q.operand(pos), out);
    }
}

/// The `(end do, do)` marker pair a live statement at `id` currently
/// splits: `id` sits directly between a loop end and a loop head, so its
/// placement broke the adjacency of those two loops, killing
/// fusion-preview edges of arrays the edit never mentions. A statement
/// with only one loopish neighbor changes nothing — the pair was not
/// adjacent before the edit either.
fn split_pair(prog: &Program, id: StmtId) -> Option<(StmtId, StmtId)> {
    let p = prog.prev(id)?;
    let n = prog.next(id)?;
    (prog.quad(p).op == Opcode::EndDo && prog.quad(n).op.is_loop_head()).then_some((p, n))
}

/// The `(end do, do)` marker pair left touching after a statement
/// anchored at `prev` was removed: the removal made the two loops
/// adjacent, creating fusion-preview edges of untouched arrays.
fn bridged_pair(prog: &Program, prev: Option<StmtId>) -> Option<(StmtId, StmtId)> {
    let p = prev?;
    if !prog.is_live(p) || prog.quad(p).op != Opcode::EndDo {
        return None;
    }
    let n = prog.next(p)?;
    prog.quad(n).op.is_loop_head().then_some((p, n))
}

pub(crate) fn update(
    g: &mut DepGraph,
    prog: &Program,
    delta: &EditDelta,
) -> Result<DepUpdate, AnalyzeError> {
    if delta.is_empty() {
        return Ok(DepUpdate {
            kind: UpdateKind::Noop,
            frontier: None,
            stats: UpdateStats::default(),
        });
    }
    if delta.requires_full() {
        *g = build::analyze(prog)?;
        return Ok(DepUpdate {
            kind: UpdateKind::Full,
            frontier: None,
            stats: UpdateStats {
                dirty_syms: 0,
                edges_dropped: 0,
                edges_added: g.len(),
            },
        });
    }

    // Dirty symbols and the statements whose neighborhood changed. A
    // statement touched by the batch may since have been deleted by a
    // later op in the same batch; its symbols are covered by that
    // delete's quad snapshot.
    let mut dirty: HashSet<Sym> = HashSet::new();
    let mut touched: Vec<StmtId> = Vec::new();
    let mut from_start = false;
    // Loop heads whose bound operands were rewritten, and the loop
    // markers of `end do`/`do` pairs whose adjacency an edit changed —
    // both invalidate array edges of those loops beyond the edit's own
    // symbols (trip counts and fusion previews, respectively).
    let mut bound_heads: Vec<StmtId> = Vec::new();
    let mut pair_markers: Vec<StmtId> = Vec::new();
    let note_pair = |pair: Option<(StmtId, StmtId)>, out: &mut Vec<StmtId>| {
        if let Some((e, h)) = pair {
            out.push(e);
            out.push(h);
        }
    };
    for op in delta.ops() {
        match op {
            EditOp::Insert { id } => {
                if prog.is_live(*id) {
                    quad_syms(prog.quad(*id), &mut dirty);
                    touched.push(*id);
                    note_pair(split_pair(prog, *id), &mut pair_markers);
                    match prog.prev(*id) {
                        Some(p) => touched.push(p),
                        None => from_start = true,
                    }
                }
            }
            EditOp::Delete { prev, quad, .. } => {
                quad_syms(quad, &mut dirty);
                note_pair(bridged_pair(prog, *prev), &mut pair_markers);
                match prev {
                    Some(p) if prog.is_live(*p) => touched.push(*p),
                    // The recorded anchor is gone too (or the statement
                    // was first); resume from the top.
                    _ => from_start = true,
                }
            }
            EditOp::Move { id, old_prev } => {
                if prog.is_live(*id) {
                    quad_syms(prog.quad(*id), &mut dirty);
                    touched.push(*id);
                    note_pair(split_pair(prog, *id), &mut pair_markers);
                    match prog.prev(*id) {
                        Some(p) => touched.push(p),
                        None => from_start = true,
                    }
                }
                note_pair(bridged_pair(prog, *old_prev), &mut pair_markers);
                match old_prev {
                    Some(p) if prog.is_live(*p) => touched.push(*p),
                    _ => from_start = true,
                }
            }
            EditOp::Modify { id, pos, old } => {
                // Only the rewritten slot's accesses changed: the other
                // operands keep identical program-wide access sets, so
                // their edges cannot have moved. Dirty the old and new
                // operand symbols, not the whole quad.
                operand_syms(old, &mut dirty);
                if prog.is_live(*id) {
                    operand_syms(prog.quad(*id).operand(*pos), &mut dirty);
                    touched.push(*id);
                    // A loop-bound rewrite changes trip counts, which the
                    // array subscript tests bake into edges of arrays the
                    // edit never mentions (a control-variable rewrite is
                    // journal-structural and never reaches here).
                    if prog.quad(*id).op.is_loop_head() {
                        bound_heads.push(*id);
                    }
                }
            }
        }
    }

    // Structure of the post-edit program, needed both to scope the array
    // invalidation below and to re-derive the dirty edges. A
    // non-structural batch cannot unbalance the markers (none were
    // added, removed or relocated), so instead of the whole-program
    // validation only the touched statements are rechecked; the loop
    // table recovery below still errors on any structure defect.
    for &s in &touched {
        if prog.is_live(s) {
            gospel_ir::validate_stmt(prog, s)?;
        }
    }
    let cfg = Cfg::of(prog);
    let loops = LoopTable::of(prog)?;

    if !bound_heads.is_empty() || !pair_markers.is_empty() {
        // Trip counts feed the subscript tests of every pair nested in
        // the modified loop, and adjacency (or bound equality) gates the
        // fusion previews between a loop and its neighbors — both affect
        // edges of arrays no edited statement mentions. Dirty every array
        // referenced in the *focus* loops: the bound-modified loops, their
        // adjacent preview partners, and the loops whose adjacency
        // changed. The scalar layer never reads bounds or adjacency, so
        // it stays restricted to the edit's own symbols.
        let mut focus: Vec<gospel_ir::LoopId> = Vec::new();
        let note = |l: gospel_ir::LoopId, focus: &mut Vec<gospel_ir::LoopId>| {
            if !focus.contains(&l) {
                focus.push(l);
            }
        };
        let adjacent = loops.adjacent_pairs(prog);
        for &h in &bound_heads {
            if let Some(l) = loops.loop_of_head(h) {
                note(l, &mut focus);
                for &(a, b) in &adjacent {
                    if a == l {
                        note(b, &mut focus);
                    }
                    if b == l {
                        note(a, &mut focus);
                    }
                }
            }
        }
        for &m in &pair_markers {
            if let Some(l) = loops.loop_of_end(m).or_else(|| loops.loop_of_head(m)) {
                note(l, &mut focus);
            }
        }
        for s in prog.iter() {
            if focus.iter().any(|&l| loops.contains(l, s)) {
                for pos in OperandPos::ALL {
                    if let Operand::Elem { array, .. } = prog.quad(s).operand(pos) {
                        dirty.insert(*array);
                    }
                }
            }
        }
    }

    // Drop stale edges. Control edges are recomputed wholesale; a data
    // edge is stale iff its variable is dirty (an edge incident to a
    // removed or edited statement necessarily carries one of that
    // statement's symbols). The survivors stay in canonical order, so
    // the fresh batch below merges instead of forcing a full re-sort.
    let mut edges = g.take_edges();
    let before_retain = edges.len();
    edges.retain(|e| e.kind != DepKind::Control && !dirty.contains(&e.var));
    let edges_dropped = before_retain - edges.len();

    // Re-derive the dirty symbols' edges against the post-edit program.
    // One dense order table serves the derivation passes, the merge and
    // the frontier scan below.
    let order = build::dense_order(prog);
    let mut fresh = scalar_deps_filtered(prog, &cfg, &loops, &order, Some(&dirty));
    fresh.extend(array_deps_filtered(prog, &loops, &order, Some(&dirty)));
    let ctrl = control_deps(prog);
    assert_no_directions(&ctrl);
    fresh.extend(ctrl);
    let stats = UpdateStats {
        dirty_syms: dirty.len(),
        edges_dropped,
        edges_added: fresh.len(),
    };

    build::merge_sorted(&order, &mut edges, fresh);

    // The search frontier: the earliest live statement that mentions a
    // dirty symbol, was itself touched, or anchors (precedes) an edit
    // site. Anything strictly before it matches exactly as it did
    // before the batch.
    let frontier = if from_start {
        prog.first()
    } else {
        let mut best: Option<(u32, StmtId)> = None;
        let consider = |s: StmtId, best: &mut Option<(u32, StmtId)>| {
            match order.get(s.index()) {
                Some(&p) if p != u32::MAX && best.map(|(bp, _)| p < bp).unwrap_or(true) => {
                    *best = Some((p, s));
                }
                _ => {}
            }
        };
        for &s in &touched {
            consider(s, &mut best);
        }
        let mut syms = HashSet::new();
        for s in prog.iter() {
            syms.clear();
            quad_syms(prog.quad(s), &mut syms);
            if !syms.is_disjoint(&dirty) {
                consider(s, &mut best);
                break; // program order: the first hit is the earliest
            }
        }
        best.map(|(_, s)| s).or_else(|| prog.first())
    };

    *g = DepGraph::from_edges(prog, loops, edges);
    Ok(DepUpdate {
        kind: UpdateKind::Incremental,
        frontier,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;

    fn nth(p: &Program, n: usize) -> StmtId {
        p.iter().nth(n).unwrap()
    }

    fn assert_matches_fresh(prog: &Program, g: &DepGraph) {
        let fresh = DepGraph::analyze(prog).unwrap();
        assert!(
            g.agrees_with(&fresh),
            "incremental graph diverged from fresh analysis:\n inc: {:#?}\n new: {:#?}",
            g.edges(),
            fresh.edges()
        );
    }

    #[test]
    fn empty_delta_is_noop() {
        let p = compile("program p\ninteger x\nx = 1\nend").unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let up = g.update(&p, &EditDelta::new()).unwrap();
        assert_eq!(up.kind, UpdateKind::Noop);
        assert_eq!(up.frontier, None);
    }

    #[test]
    fn modify_updates_incrementally() {
        let mut p =
            compile("program p\ninteger x, y, z\nx = 1\ny = x\nz = y\nend").unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s2 = nth(&p, 2);
        // z = y  becomes  z = x : y's flow edge dies, x gains one.
        let x = p.syms().lookup("x").unwrap();
        let mut d = EditDelta::new();
        d.modify(&mut p, s2, OperandPos::A, Operand::Var(x));
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn delete_updates_incrementally() {
        let mut p =
            compile("program p\ninteger x, y\nx = 1\nx = 2\ny = x\nend").unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s1 = nth(&p, 1);
        let mut d = EditDelta::new();
        d.delete(&mut p, s1); // now x = 1 reaches y = x
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
        // the dead statement has no adjacency anymore
        assert_eq!(g.from(s1).count(), 0);
        assert_eq!(g.to(s1).count(), 0);
    }

    #[test]
    fn move_and_copy_update_incrementally() {
        let mut p = compile(
            "program p\ninteger x, y, z\nx = 1\ny = x\nz = y\nwrite z\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s0 = nth(&p, 0);
        let s2 = nth(&p, 2);
        let mut d = EditDelta::new();
        d.move_after(&mut p, s0, Some(s2));
        d.copy_after(&mut p, s2, None);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn edits_inside_loops_stay_exact() {
        let mut p = compile(
            "program p\ninteger i, s, t\ns = 0\nt = 0\ndo i = 1, 10\ns = s + 1\nt = t + 2\nend do\nwrite s\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        // delete the accumulator bump of t inside the loop
        let t_bump = nth(&p, 4);
        let mut d = EditDelta::new();
        d.delete(&mut p, t_bump);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn structural_edit_falls_back_to_full() {
        // Deleting the loop markers (head + end) dissolves the loop: a
        // structural edit the journal flags for full re-analysis.
        let mut p = compile(
            "program p\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + 1\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let head = nth(&p, 1);
        let end = nth(&p, 3);
        let mut d = EditDelta::new();
        d.delete(&mut p, head);
        d.delete(&mut p, end);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Full);
        assert_eq!(up.frontier, None);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn loop_bound_modify_rebuilds_the_array_layer() {
        // Shrinking a loop's bound changes trip counts, which the
        // subscript tests bake into edges of arrays the edit never
        // mentions — every array referenced in the modified loop is
        // dirtied (here the loop is also the first statement).
        let mut p = compile(
            "program p\ninteger i\nreal a(100), x\ndo i = 1, 100\na(i) = x\nx = a(i-50)\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let head = nth(&p, 0);
        let mut d = EditDelta::new();
        d.modify(&mut p, head, OperandPos::B, Operand::int(20));
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_eq!(up.frontier, p.first());
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn frontier_points_at_earliest_affected_statement() {
        let mut p = compile(
            "program p\ninteger a, b, x, y\na = 1\nb = 2\nx = 3\ny = x\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s2 = nth(&p, 2); // x = 3
        let mut d = EditDelta::new();
        d.modify(&mut p, s2, OperandPos::A, Operand::int(9));
        let up = g.update(&p, &d).unwrap();
        // a and b are untouched; the frontier is the edited statement.
        assert_eq!(up.frontier, Some(s2));
        // deleting the first statement pins the frontier to the start
        let mut d2 = EditDelta::new();
        let s0 = nth(&p, 0);
        d2.delete(&mut p, s0);
        let up2 = g.update(&p, &d2).unwrap();
        assert_eq!(up2.frontier, p.first());
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn boundary_edits_rebuild_the_array_layer() {
        // Two equal-bound loops over `a` separated by one plain
        // statement: deleting it makes the loops adjacent, which must
        // create fusion-preview edges for `a` — an array the deleted
        // statement never mentions, repaired by dirtying every array.
        let mut p = compile(
            "program p\ninteger i\nreal a(100), x, t\ndo i = 1, 100\na(i) = x\nend do\nt = 0.5\ndo i = 1, 100\nx = a(i)\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let sep = nth(&p, 3); // t = 0.5
        let mut d = EditDelta::new();
        d.delete(&mut p, sep);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        // the frontier lands on the first reference of the dirtied array,
        // not the top of the program: resumption survives the preview fix
        assert_eq!(up.frontier, Some(nth(&p, 1)));
        assert_matches_fresh(&p, &g);

        // And the reverse: re-inserting a statement at the boundary
        // breaks the adjacency, so the preview edges must disappear.
        let end1 = nth(&p, 2);
        let mut d2 = EditDelta::new();
        let t = p.syms().lookup("t").unwrap();
        d2.insert_after(
            &mut p,
            Some(end1),
            Quad::assign(Operand::Var(t), Operand::real(0.5)),
        );
        let up2 = g.update(&p, &d2).unwrap();
        assert_eq!(up2.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn array_edits_update_incrementally() {
        let mut p = compile(
            "program p\ninteger i\nreal a(100), b(100), x\ndo i = 2, 100\na(i) = x\nx = a(i-1)\nb(i) = x\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        // delete the b(i) write: b's edges must go, a's must survive
        let b_write = nth(&p, 3);
        let mut d = EditDelta::new();
        d.delete(&mut p, b_write);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }
}
