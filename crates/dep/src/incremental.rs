//! Incremental dependence maintenance: update a [`DepGraph`] from an
//! [`EditDelta`] instead of re-analyzing the whole program.
//!
//! The update is *exact*, not approximate. The argument, per layer:
//!
//! * **Scalar edges.** The reaching-defs/uses transfer functions are
//!   per-variable: a definition of `v` generates and kills only bits of
//!   `v`'s accesses. Restricting the access tables to a set of variables
//!   therefore reproduces exactly the full analysis's dataflow facts for
//!   those variables ([`Accesses::collect_where`]). The *dirty set* —
//!   every symbol mentioned by a statement the edit batch touched
//!   (including pre-edit operands of `modify` and the snapshots of
//!   deleted quads) — is collected program-wide, and all edges of dirty
//!   symbols are dropped and re-derived. Edges of clean symbols cannot
//!   have changed: their endpoints were not edited (an edge incident to
//!   a touched statement carries one of that statement's own symbols,
//!   which is dirty by construction), their relative textual order is
//!   preserved by non-structural edits, and a moved statement that
//!   neither defines nor uses a clean variable is an identity transfer
//!   node the may-dataflow for that variable ignores.
//! * **Array edges.** Every array edge — including the fusion-preview
//!   edges — joins two references to the *same* array, so re-running the
//!   subscript tests over only the dirty arrays' references re-derives
//!   exactly the dropped edges.
//! * **Control edges.** Recomputed wholesale; the header-stack walk is
//!   linear and cheap.
//!
//! Edits that change the loop or branch *structure* (markers inserted,
//! deleted or relocated, or a loop header's control variable rewritten)
//! invalidate direction vectors and common nests for pairs that were
//! never touched. [`EditDelta::requires_full`] batches are still updated
//! incrementally, by *signature diffing*: every [`DepGraph`] snapshot
//! stores a per-statement **context signature** (the chain of enclosing
//! loop/branch constructs, hashing each header's identity and full quad
//! plus the branch side) and a per-loop **partnership signature** (the
//! adjacency neighborhood the fusion-preview pass reads). After a
//! structural batch the signatures are recomputed and every statement
//! whose context changed — entered or left a loop or branch, or sits
//! under a header whose bounds/control variable were rewritten — has its
//! symbols dirtied, and every loop whose partnership changed has its
//! body's arrays dirtied. Dataflow facts of a variable none of whose
//! accesses changed context are untouched by construction: in structured
//! code, reachability and kill paths between two accesses are a function
//! of their context chains, their relative order (which survivor
//! statements keep under any batch), and the accesses between them —
//! all either unchanged or dirty. Direction vectors and common nests
//! hash in through the header quads; preview edges through the
//! partnership signatures. Two milder cases are detected here rather
//! than in the journal and handled by dirtying every array referenced in
//! the affected *focus loops* (re-deriving their slice of the array
//! layer, previews included), while the scalar layer stays restricted to
//! the edit's symbols:
//!
//! * a plain statement inserted between or removed from between an
//!   `end do`/`do` pair changes whether those two loops are adjacent,
//!   and loop adjacency gates the fusion-preview pass — whose edges
//!   involve arrays the edited statement never mentions (focus: the two
//!   loops of the pair); and
//! * a loop header's *bound* operand rewritten changes trip counts,
//!   which only the array subscript tests consume — the loop table and
//!   control edges are rebuilt fresh on every update, and the scalar
//!   layer never reads bounds (focus: the modified loop, which encloses
//!   every pair whose common nest the bound governs, plus its adjacent
//!   loops, whose fusion previews test bound equality).
//!
//! [`Accesses::collect_where`]: crate::reach::Accesses::collect_where

use crate::arrays::array_deps_filtered;
use crate::build::{self, AnalyzeError};
use crate::control::{assert_no_directions, control_deps};
use crate::edge::DepKind;
use crate::query::DepGraph;
use crate::scalars::scalar_deps_filtered;
use gospel_ir::{
    Cfg, EditDelta, EditOp, LoopTable, Opcode, Operand, OperandPos, Program, Quad, StmtId, Sym,
};
use std::collections::HashSet;

/// How an update was carried out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// The delta was empty; nothing changed.
    Noop,
    /// Only the dirty symbols' edges were re-derived.
    Incremental,
    /// A structural batch, handled incrementally: the dirty set was
    /// widened by context- and partnership-signature diffs instead of
    /// re-analyzing the whole program.
    Structural,
    /// A full re-analysis (structural batches only reach it through the
    /// caller's degradation ladder now).
    Full,
}

/// Result of [`DepGraph::update`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepUpdate {
    /// How the graph was brought up to date.
    pub kind: UpdateKind,
    /// Earliest statement (in program order) whose pattern-matching
    /// neighborhood the edit batch may have changed — the point a
    /// searcher can resume from instead of rescanning the whole program.
    /// `None` means no restriction is justified (full fallback, or an
    /// edit at the very front of the program).
    pub frontier: Option<StmtId>,
    /// What the update actually did — the per-refresh accounting the
    /// observability layer reports.
    pub stats: UpdateStats,
}

/// Work accounting for one [`DepGraph::update`] call. All zero for a
/// no-op; for a full fallback only `edges_added` is populated (the size
/// of the freshly analyzed graph).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Symbols whose edges were invalidated (the dirty set).
    pub dirty_syms: usize,
    /// Stale data edges dropped before re-derivation.
    pub edges_dropped: usize,
    /// Edges re-derived against the post-edit program (data edges of the
    /// dirty symbols plus the rebuilt control layer; for a full fallback,
    /// every edge of the fresh graph).
    pub edges_added: usize,
}

/// Deterministic 64-bit hash combine (FNV-1a step over whole words).
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Deterministic hash of one quad (std's `DefaultHasher` seeds with
/// fixed keys, unlike `RandomState`).
fn quad_hash(q: &Quad) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    q.hash(&mut h);
    h.finish()
}

/// Per-statement context signatures: one linear walk folding a stack of
/// enclosing-construct frames. A frame hashes the construct header's
/// identity and full quad (so a rewritten loop bound or control variable
/// changes every body statement's signature, and two textually equal
/// loops still produce distinct frames); `else` deterministically
/// transforms the innermost frame, so the two sides of a branch differ.
/// Markers take the surrounding context (the `LoopTable` convention:
/// head and end belong to the parent).
///
/// Two snapshots assigning a statement the same signature agree on its
/// whole dependence-relevant surroundings — the enclosing loop/branch
/// chain, every enclosing header's operands, and its branch side.
pub(crate) fn context_signatures(prog: &Program) -> Vec<u64> {
    let combined =
        |frames: &[u64]| frames.iter().fold(FNV_OFFSET, |h, &f| mix(h, f));
    let mut ctx = vec![0u64; prog.id_bound()];
    let mut frames: Vec<u64> = Vec::new();
    for s in prog.iter() {
        let q = prog.quad(s);
        let frame = || mix(mix(FNV_OFFSET, s.index() as u64 + 1), quad_hash(q));
        match q.op {
            Opcode::EndDo | Opcode::EndIf => {
                frames.pop();
                ctx[s.index()] = combined(&frames);
            }
            Opcode::Else => {
                if let Some(top) = frames.last_mut() {
                    *top = mix(*top, 0x5e1f);
                }
                ctx[s.index()] = combined(&frames);
            }
            op if op.is_loop_head() || op.is_if() => {
                ctx[s.index()] = combined(&frames);
                frames.push(frame());
            }
            _ => ctx[s.index()] = combined(&frames),
        }
    }
    ctx
}

/// Per-loop partnership signatures, keyed by header statement and sorted
/// by it: the loop's own header quad plus each adjacent partner's header
/// identity and quad. Everything the fusion-preview pass conditions on —
/// which loops are adjacent and whether their bounds agree — is in the
/// signature, so an unchanged signature means the loop's preview edges
/// cannot have changed.
pub(crate) fn partnership_signatures(
    prog: &Program,
    loops: &LoopTable,
) -> Vec<(StmtId, u64)> {
    let adjacent = loops.adjacent_pairs(prog);
    let mut out: Vec<(StmtId, u64)> = loops
        .iter()
        .map(|info| {
            let mut h = mix(FNV_OFFSET, quad_hash(prog.quad(info.head)));
            for &(a, b) in &adjacent {
                let partner = if a == info.id {
                    Some(b)
                } else if b == info.id {
                    Some(a)
                } else {
                    None
                };
                if let Some(p) = partner {
                    let head = loops.get(p).head;
                    h = mix(h, head.index() as u64 + 1);
                    h = mix(h, quad_hash(prog.quad(head)));
                }
            }
            (info.head, h)
        })
        .collect();
    out.sort_unstable_by_key(|&(head, _)| head);
    out
}

/// Symbols mentioned by one operand: the scalar itself, or an array plus
/// its subscript scalars.
fn operand_syms(op: &Operand, out: &mut HashSet<Sym>) {
    match op {
        Operand::Var(v) => {
            out.insert(*v);
        }
        e @ Operand::Elem { array, .. } => {
            out.insert(*array);
            for v in e.subscript_vars() {
                out.insert(v);
            }
        }
        _ => {}
    }
}

/// Symbols mentioned anywhere in one quad.
fn quad_syms(q: &Quad, out: &mut HashSet<Sym>) {
    for pos in OperandPos::ALL {
        operand_syms(q.operand(pos), out);
    }
}

/// The `(end do, do)` marker pair a live statement at `id` currently
/// splits: `id` sits directly between a loop end and a loop head, so its
/// placement broke the adjacency of those two loops, killing
/// fusion-preview edges of arrays the edit never mentions. A statement
/// with only one loopish neighbor changes nothing — the pair was not
/// adjacent before the edit either.
fn split_pair(prog: &Program, id: StmtId) -> Option<(StmtId, StmtId)> {
    let p = prog.prev(id)?;
    let n = prog.next(id)?;
    (prog.quad(p).op == Opcode::EndDo && prog.quad(n).op.is_loop_head()).then_some((p, n))
}

/// The `(end do, do)` marker pair left touching after a statement
/// anchored at `prev` was removed: the removal made the two loops
/// adjacent, creating fusion-preview edges of untouched arrays.
fn bridged_pair(prog: &Program, prev: Option<StmtId>) -> Option<(StmtId, StmtId)> {
    let p = prev?;
    if !prog.is_live(p) || prog.quad(p).op != Opcode::EndDo {
        return None;
    }
    let n = prog.next(p)?;
    prog.quad(n).op.is_loop_head().then_some((p, n))
}

pub(crate) fn update(
    g: &mut DepGraph,
    prog: &Program,
    delta: &EditDelta,
) -> Result<DepUpdate, AnalyzeError> {
    if delta.is_empty() {
        return Ok(DepUpdate {
            kind: UpdateKind::Noop,
            frontier: None,
            stats: UpdateStats::default(),
        });
    }
    let structural = delta.requires_full();

    // Dirty symbols and the statements whose neighborhood changed. A
    // statement touched by the batch may since have been deleted by a
    // later op in the same batch; its symbols are covered by that
    // delete's quad snapshot.
    let mut dirty: HashSet<Sym> = HashSet::new();
    let mut touched: Vec<StmtId> = Vec::new();
    let mut from_start = false;
    // Loop heads whose bound operands were rewritten, and the loop
    // markers of `end do`/`do` pairs whose adjacency an edit changed —
    // both invalidate array edges of those loops beyond the edit's own
    // symbols (trip counts and fusion previews, respectively).
    let mut bound_heads: Vec<StmtId> = Vec::new();
    let mut pair_markers: Vec<StmtId> = Vec::new();
    let note_pair = |pair: Option<(StmtId, StmtId)>, out: &mut Vec<StmtId>| {
        if let Some((e, h)) = pair {
            out.push(e);
            out.push(h);
        }
    };
    for op in delta.ops() {
        match op {
            EditOp::Insert { id } => {
                if prog.is_live(*id) {
                    quad_syms(prog.quad(*id), &mut dirty);
                    touched.push(*id);
                    note_pair(split_pair(prog, *id), &mut pair_markers);
                    match prog.prev(*id) {
                        Some(p) => touched.push(p),
                        None => from_start = true,
                    }
                }
            }
            EditOp::Delete { prev, quad, .. } => {
                quad_syms(quad, &mut dirty);
                note_pair(bridged_pair(prog, *prev), &mut pair_markers);
                match prev {
                    Some(p) if prog.is_live(*p) => touched.push(*p),
                    // The recorded anchor is gone too (or the statement
                    // was first); resume from the top.
                    _ => from_start = true,
                }
            }
            EditOp::Move { id, old_prev } => {
                if prog.is_live(*id) {
                    quad_syms(prog.quad(*id), &mut dirty);
                    touched.push(*id);
                    note_pair(split_pair(prog, *id), &mut pair_markers);
                    match prog.prev(*id) {
                        Some(p) => touched.push(p),
                        None => from_start = true,
                    }
                }
                note_pair(bridged_pair(prog, *old_prev), &mut pair_markers);
                match old_prev {
                    Some(p) if prog.is_live(*p) => touched.push(*p),
                    _ => from_start = true,
                }
            }
            EditOp::Modify { id, pos, old } => {
                // Only the rewritten slot's accesses changed: the other
                // operands keep identical program-wide access sets, so
                // their edges cannot have moved. Dirty the old and new
                // operand symbols, not the whole quad.
                operand_syms(old, &mut dirty);
                if prog.is_live(*id) {
                    operand_syms(prog.quad(*id).operand(*pos), &mut dirty);
                    touched.push(*id);
                    // A loop-bound rewrite changes trip counts, which the
                    // array subscript tests bake into edges of arrays the
                    // edit never mentions (a control-variable rewrite is
                    // journal-structural and never reaches here).
                    if prog.quad(*id).op.is_loop_head() {
                        bound_heads.push(*id);
                    }
                }
            }
        }
    }

    // Structure of the post-edit program, needed both to scope the array
    // invalidation below and to re-derive the dirty edges. A
    // non-structural batch cannot unbalance the markers (none were
    // added, removed or relocated), so instead of the whole-program
    // validation only the touched statements are rechecked; a structural
    // batch gets the full walk — marker balance is exactly what it can
    // break.
    if structural {
        gospel_ir::validate(prog)?;
    } else {
        for &s in &touched {
            if prog.is_live(s) {
                gospel_ir::validate_stmt(prog, s)?;
            }
        }
    }
    let cfg = Cfg::of(prog);
    let loops = LoopTable::of(prog)?;

    let mut focus: Vec<gospel_ir::LoopId> = Vec::new();
    let note = |l: gospel_ir::LoopId, focus: &mut Vec<gospel_ir::LoopId>| {
        if !focus.contains(&l) {
            focus.push(l);
        }
    };
    // Earliest statement whose context signature changed, for the
    // frontier scan below (structural batches only).
    let mut ctx_frontier: Option<StmtId> = None;
    if structural {
        // Signature diffing: a statement that entered or left any
        // loop/branch construct, or whose enclosing headers' quads were
        // rewritten, gets its symbols dirtied; a loop whose
        // fusion-partnership neighborhood changed gets its body's arrays
        // dirtied (via the focus scan below). Everything else kept its
        // context chain, relative order and operands, so its
        // dependence facts are unchanged.
        let fresh_ctx = context_signatures(prog);
        for s in prog.iter() {
            if g.ctx_sig(s) != Some(fresh_ctx[s.index()]) {
                quad_syms(prog.quad(s), &mut dirty);
                if ctx_frontier.is_none() {
                    ctx_frontier = Some(s);
                }
            }
        }
        let stored = g.partner_sigs();
        for &(head, sig) in &partnership_signatures(prog, &loops) {
            let old = stored
                .binary_search_by_key(&head, |&(h, _)| h)
                .ok()
                .map(|i| stored[i].1);
            if old != Some(sig) {
                if let Some(l) = loops.loop_of_head(head) {
                    note(l, &mut focus);
                }
            }
        }
        // Loops present only in the old snapshot need no special case:
        // a vanished header changes the context signature of every
        // statement that was in its body.
    } else if !bound_heads.is_empty() || !pair_markers.is_empty() {
        // Trip counts feed the subscript tests of every pair nested in
        // the modified loop, and adjacency (or bound equality) gates the
        // fusion previews between a loop and its neighbors — both affect
        // edges of arrays no edited statement mentions. Dirty every array
        // referenced in the *focus* loops: the bound-modified loops, their
        // adjacent preview partners, and the loops whose adjacency
        // changed. The scalar layer never reads bounds or adjacency, so
        // it stays restricted to the edit's own symbols.
        let adjacent = loops.adjacent_pairs(prog);
        for &h in &bound_heads {
            if let Some(l) = loops.loop_of_head(h) {
                note(l, &mut focus);
                for &(a, b) in &adjacent {
                    if a == l {
                        note(b, &mut focus);
                    }
                    if b == l {
                        note(a, &mut focus);
                    }
                }
            }
        }
        for &m in &pair_markers {
            if let Some(l) = loops.loop_of_end(m).or_else(|| loops.loop_of_head(m)) {
                note(l, &mut focus);
            }
        }
    }
    if !focus.is_empty() {
        for s in prog.iter() {
            if focus.iter().any(|&l| loops.contains(l, s)) {
                for pos in OperandPos::ALL {
                    if let Operand::Elem { array, .. } = prog.quad(s).operand(pos) {
                        dirty.insert(*array);
                    }
                }
            }
        }
    }

    // Drop stale edges. Control edges are recomputed wholesale; a data
    // edge is stale iff its variable is dirty (an edge incident to a
    // removed or edited statement necessarily carries one of that
    // statement's symbols). The survivors stay in canonical order, so
    // the fresh batch below merges instead of forcing a full re-sort.
    let mut edges = g.take_edges();
    let before_retain = edges.len();
    edges.retain(|e| e.kind != DepKind::Control && !dirty.contains(&e.var));
    let edges_dropped = before_retain - edges.len();

    // Re-derive the dirty symbols' edges against the post-edit program.
    // One dense order table serves the derivation passes, the merge and
    // the frontier scan below.
    let order = build::dense_order(prog);
    let mut fresh = scalar_deps_filtered(prog, &cfg, &loops, &order, Some(&dirty));
    fresh.extend(array_deps_filtered(prog, &loops, &order, Some(&dirty)));
    let ctrl = control_deps(prog);
    assert_no_directions(&ctrl);
    fresh.extend(ctrl);
    let stats = UpdateStats {
        dirty_syms: dirty.len(),
        edges_dropped,
        edges_added: fresh.len(),
    };

    build::merge_sorted(&order, &mut edges, fresh);

    // The search frontier: the earliest live statement that mentions a
    // dirty symbol, was itself touched, or anchors (precedes) an edit
    // site. Anything strictly before it matches exactly as it did
    // before the batch.
    let frontier = if from_start {
        prog.first()
    } else {
        let mut best: Option<(u32, StmtId)> = None;
        let consider = |s: StmtId, best: &mut Option<(u32, StmtId)>| {
            match order.get(s.index()) {
                Some(&p) if p != u32::MAX && best.map(|(bp, _)| p < bp).unwrap_or(true) => {
                    *best = Some((p, s));
                }
                _ => {}
            }
        };
        for &s in &touched {
            consider(s, &mut best);
        }
        // Structural batches: a statement whose context changed can be a
        // bare marker with no symbols of its own — the sym scan below
        // would miss it.
        if let Some(s) = ctx_frontier {
            consider(s, &mut best);
        }
        let mut syms = HashSet::new();
        for s in prog.iter() {
            syms.clear();
            quad_syms(prog.quad(s), &mut syms);
            if !syms.is_disjoint(&dirty) {
                consider(s, &mut best);
                break; // program order: the first hit is the earliest
            }
        }
        best.map(|(_, s)| s).or_else(|| prog.first())
    };

    *g = DepGraph::from_edges(prog, loops, edges);
    Ok(DepUpdate {
        kind: if structural {
            UpdateKind::Structural
        } else {
            UpdateKind::Incremental
        },
        frontier,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;

    fn nth(p: &Program, n: usize) -> StmtId {
        p.iter().nth(n).unwrap()
    }

    fn assert_matches_fresh(prog: &Program, g: &DepGraph) {
        let fresh = DepGraph::analyze(prog).unwrap();
        assert!(
            g.agrees_with(&fresh),
            "incremental graph diverged from fresh analysis:\n inc: {:#?}\n new: {:#?}",
            g.edges(),
            fresh.edges()
        );
    }

    #[test]
    fn empty_delta_is_noop() {
        let p = compile("program p\ninteger x\nx = 1\nend").unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let up = g.update(&p, &EditDelta::new()).unwrap();
        assert_eq!(up.kind, UpdateKind::Noop);
        assert_eq!(up.frontier, None);
    }

    #[test]
    fn modify_updates_incrementally() {
        let mut p =
            compile("program p\ninteger x, y, z\nx = 1\ny = x\nz = y\nend").unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s2 = nth(&p, 2);
        // z = y  becomes  z = x : y's flow edge dies, x gains one.
        let x = p.syms().lookup("x").unwrap();
        let mut d = EditDelta::new();
        d.modify(&mut p, s2, OperandPos::A, Operand::Var(x));
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn delete_updates_incrementally() {
        let mut p =
            compile("program p\ninteger x, y\nx = 1\nx = 2\ny = x\nend").unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s1 = nth(&p, 1);
        let mut d = EditDelta::new();
        d.delete(&mut p, s1); // now x = 1 reaches y = x
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
        // the dead statement has no adjacency anymore
        assert_eq!(g.from(s1).count(), 0);
        assert_eq!(g.to(s1).count(), 0);
    }

    #[test]
    fn move_and_copy_update_incrementally() {
        let mut p = compile(
            "program p\ninteger x, y, z\nx = 1\ny = x\nz = y\nwrite z\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s0 = nth(&p, 0);
        let s2 = nth(&p, 2);
        let mut d = EditDelta::new();
        d.move_after(&mut p, s0, Some(s2));
        d.copy_after(&mut p, s2, None);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn edits_inside_loops_stay_exact() {
        let mut p = compile(
            "program p\ninteger i, s, t\ns = 0\nt = 0\ndo i = 1, 10\ns = s + 1\nt = t + 2\nend do\nwrite s\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        // delete the accumulator bump of t inside the loop
        let t_bump = nth(&p, 4);
        let mut d = EditDelta::new();
        d.delete(&mut p, t_bump);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn structural_edit_updates_by_signature_diff() {
        // Deleting the loop markers (head + end) dissolves the loop: a
        // structural batch, handled by context-signature diffing — the
        // body statement left the loop, so its symbols are dirtied and
        // its edges re-derived (the carried output dependence on s dies).
        let mut p = compile(
            "program p\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + 1\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let head = nth(&p, 1);
        let end = nth(&p, 3);
        let mut d = EditDelta::new();
        d.delete(&mut p, head);
        d.delete(&mut p, end);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Structural);
        assert_matches_fresh(&p, &g);
        // The frontier is justified: the first affected statement is the
        // (former) loop body, not the program start — `s = 0` kept both
        // its context and its symbols' edges... except s itself is dirty
        // (the body mentions it), so the frontier is its first mention.
        assert_eq!(up.frontier, p.first());
    }

    #[test]
    fn loop_creation_updates_by_signature_diff() {
        // Wrapping existing statements in new loop markers gives them a
        // carried dependence they did not have: the inserted head/end are
        // structural, the body statements' contexts change, and the
        // signature diff dirties their symbols.
        let mut p = compile(
            "program p\ninteger i, s\ns = 0\ns = s + 1\nwrite s\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s0 = nth(&p, 0);
        let bump = nth(&p, 1);
        let i = p.syms().lookup("i").unwrap();
        let mut d = EditDelta::new();
        d.insert_after(
            &mut p,
            Some(s0),
            Quad::new(
                Opcode::DoHead,
                Operand::Var(i),
                Operand::int(1),
                Operand::int(10),
            ),
        );
        d.insert_after(&mut p, Some(bump), Quad::marker(Opcode::EndDo));
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Structural);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn loop_merge_updates_by_signature_diff() {
        // The FUS shape: deleting L1's end-do and L2's head merges the
        // two bodies under one header. Statements from L2's body change
        // context (new enclosing header identity), so cross-body carried
        // edges are re-derived even though neither body statement was in
        // the batch.
        let mut p = compile(
            "program p\ninteger i\nreal a(100), x\ndo i = 1, 100\na(i) = x\nend do\ndo i = 1, 100\nx = a(i)\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let end1 = nth(&p, 2);
        let head2 = nth(&p, 3);
        let mut d = EditDelta::new();
        d.delete(&mut p, end1);
        d.delete(&mut p, head2);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Structural);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn branch_restructure_updates_by_signature_diff() {
        // Moving the else marker flips which branch `z = 2` sits on: its
        // context signature changes via the else-transform of the
        // innermost frame, so its symbols are re-derived even though the
        // batch never named it.
        let mut p = compile(
            "program p\ninteger x, y, z\nx = 1\nif (x < 5) then\ny = 1\nz = 2\nelse\ny = 3\nend if\nwrite y\nwrite z\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let y_then = nth(&p, 2); // y = 1
        let else_m = nth(&p, 4);
        let mut d = EditDelta::new();
        d.move_after(&mut p, else_m, Some(y_then)); // z = 2 → else side
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Structural);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn structural_batches_converge_over_a_sequence() {
        // Several structural rounds against the same graph: each update
        // must leave signatures consistent for the next diff.
        let mut p = compile(
            "program p\ninteger i\nreal a(100), b(100), x\ndo i = 1, 100\na(i) = x\nend do\ndo i = 1, 100\nb(i) = a(i)\nend do\nwrite x\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        // Round 1: merge the loops.
        let end1 = nth(&p, 2);
        let head2 = nth(&p, 3);
        let mut d = EditDelta::new();
        d.delete(&mut p, end1);
        d.delete(&mut p, head2);
        assert_eq!(
            g.update(&p, &d).unwrap().kind,
            UpdateKind::Structural
        );
        assert_matches_fresh(&p, &g);
        // Round 2: split them again around the b-write.
        let a_write = nth(&p, 1);
        let i = p.syms().lookup("i").unwrap();
        let mut d2 = EditDelta::new();
        let new_end = d2.insert_after(&mut p, Some(a_write), Quad::marker(Opcode::EndDo));
        d2.insert_after(
            &mut p,
            Some(new_end),
            Quad::new(
                Opcode::DoHead,
                Operand::Var(i),
                Operand::int(1),
                Operand::int(100),
            ),
        );
        assert_eq!(
            g.update(&p, &d2).unwrap().kind,
            UpdateKind::Structural
        );
        assert_matches_fresh(&p, &g);
        // Round 3: a plain edit still takes the narrow path afterwards.
        let mut d3 = EditDelta::new();
        let wr = p.iter().find(|&s| p.quad(s).op == Opcode::Write).unwrap();
        d3.modify(&mut p, wr, OperandPos::A, Operand::Var(i));
        assert_eq!(
            g.update(&p, &d3).unwrap().kind,
            UpdateKind::Incremental
        );
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn loop_bound_modify_rebuilds_the_array_layer() {
        // Shrinking a loop's bound changes trip counts, which the
        // subscript tests bake into edges of arrays the edit never
        // mentions — every array referenced in the modified loop is
        // dirtied (here the loop is also the first statement).
        let mut p = compile(
            "program p\ninteger i\nreal a(100), x\ndo i = 1, 100\na(i) = x\nx = a(i-50)\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let head = nth(&p, 0);
        let mut d = EditDelta::new();
        d.modify(&mut p, head, OperandPos::B, Operand::int(20));
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_eq!(up.frontier, p.first());
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn frontier_points_at_earliest_affected_statement() {
        let mut p = compile(
            "program p\ninteger a, b, x, y\na = 1\nb = 2\nx = 3\ny = x\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let s2 = nth(&p, 2); // x = 3
        let mut d = EditDelta::new();
        d.modify(&mut p, s2, OperandPos::A, Operand::int(9));
        let up = g.update(&p, &d).unwrap();
        // a and b are untouched; the frontier is the edited statement.
        assert_eq!(up.frontier, Some(s2));
        // deleting the first statement pins the frontier to the start
        let mut d2 = EditDelta::new();
        let s0 = nth(&p, 0);
        d2.delete(&mut p, s0);
        let up2 = g.update(&p, &d2).unwrap();
        assert_eq!(up2.frontier, p.first());
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn boundary_edits_rebuild_the_array_layer() {
        // Two equal-bound loops over `a` separated by one plain
        // statement: deleting it makes the loops adjacent, which must
        // create fusion-preview edges for `a` — an array the deleted
        // statement never mentions, repaired by dirtying every array.
        let mut p = compile(
            "program p\ninteger i\nreal a(100), x, t\ndo i = 1, 100\na(i) = x\nend do\nt = 0.5\ndo i = 1, 100\nx = a(i)\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        let sep = nth(&p, 3); // t = 0.5
        let mut d = EditDelta::new();
        d.delete(&mut p, sep);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        // the frontier lands on the first reference of the dirtied array,
        // not the top of the program: resumption survives the preview fix
        assert_eq!(up.frontier, Some(nth(&p, 1)));
        assert_matches_fresh(&p, &g);

        // And the reverse: re-inserting a statement at the boundary
        // breaks the adjacency, so the preview edges must disappear.
        let end1 = nth(&p, 2);
        let mut d2 = EditDelta::new();
        let t = p.syms().lookup("t").unwrap();
        d2.insert_after(
            &mut p,
            Some(end1),
            Quad::assign(Operand::Var(t), Operand::real(0.5)),
        );
        let up2 = g.update(&p, &d2).unwrap();
        assert_eq!(up2.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }

    #[test]
    fn array_edits_update_incrementally() {
        let mut p = compile(
            "program p\ninteger i\nreal a(100), b(100), x\ndo i = 2, 100\na(i) = x\nx = a(i-1)\nb(i) = x\nend do\nend",
        )
        .unwrap();
        let mut g = DepGraph::analyze(&p).unwrap();
        // delete the b(i) write: b's edges must go, a's must survive
        let b_write = nth(&p, 3);
        let mut d = EditDelta::new();
        d.delete(&mut p, b_write);
        let up = g.update(&p, &d).unwrap();
        assert_eq!(up.kind, UpdateKind::Incremental);
        assert_matches_fresh(&p, &g);
    }
}
