//! # gospel-dep — dependence analysis for GENesis
//!
//! GOSpeL preconditions are written in terms of four dependence kinds —
//! flow (δ), anti (δ̄), output (δ°) and control (δᶜ) — refined by
//! *direction vectors* over the loops common to the two statements, with
//! elements `<`, `>`, `=` (and `*` for "any") exactly as in the paper.
//!
//! This crate computes a queryable [`DepGraph`] for a program snapshot:
//!
//! * scalar data dependences from a reaching-definitions / reaching-uses
//!   bit-vector dataflow over the statement-level CFG, classified into
//!   loop-independent (`=`) and loop-carried (`<`) edges;
//! * array data dependences from dimension-by-dimension subscript tests
//!   (ZIV, strong SIV with distance and trip-count pruning, and a GCD test
//!   for the general case) producing one edge per feasible direction vector;
//! * syntactic control dependences from the structured `if`/`do` regions.
//!
//! The [`DepGraph`] query API mirrors the paper's Figure 7 `dep` routine:
//! existence tests between two given statements (`TYPE == IF`) and searches
//! for the first/all emanating or terminating dependences (`TYPE == LST`),
//! all filtered by a [`DirPattern`].
//!
//! ```
//! use gospel_dep::{DepGraph, DepKind, DirPattern};
//!
//! let prog = gospel_frontend::compile("
//! program p
//!   integer i, n
//!   real a(100)
//!   n = 10
//!   do i = 1, n
//!     a(i) = a(i) + 1.0
//!   end do
//! end
//! ").unwrap();
//! let deps = DepGraph::analyze(&prog).unwrap();
//! // `n = 10` flow-reaches the loop bound use of `n`.
//! let def_n = prog.first().unwrap();
//! assert!(deps
//!     .from(def_n)
//!     .any(|e| e.kind == DepKind::Flow && DirPattern::loop_independent().matches(&e.dirvec)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrays;
mod build;
mod control;
mod edge;
mod incremental;
mod query;
mod reach;
mod scalars;

pub use build::AnalyzeError;
pub use edge::{DepEdge, DepKind, DirElem, DirPattern, Direction};
pub use incremental::{DepUpdate, UpdateKind, UpdateStats};
pub use query::DepGraph;
