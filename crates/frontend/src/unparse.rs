//! Un-lowering: render a quad [`Program`] back to compilable MiniFor
//! source, making the whole system usable as a **source-to-source
//! optimizer** (the level the paper's interactive loop transformations
//! are meant to be seen at).
//!
//! Compiler temporaries (`@tN`) are renamed to fresh legal identifiers,
//! and `pardo` headers use the `pardo` surface form. Unparsing is a left
//! inverse of compilation up to temp names: `compile(unparse(p))` executes
//! identically to `p`, and `unparse` is a fixpoint of
//! `unparse ∘ compile` (tested below and in `tests/`).

use gospel_ir::{Opcode, Operand, Program, Sym, VarKind, VarType};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders `prog` as MiniFor source.
///
/// Statements with no surface form (`nop`) are dropped; everything else in
/// the IR round-trips.
pub fn unparse(prog: &Program) -> String {
    let renames = temp_renames(prog);
    let name_of = |s: Sym| -> String {
        renames
            .get(&s)
            .cloned()
            .unwrap_or_else(|| prog.syms().name(s).to_string())
    };

    let mut out = String::new();
    let _ = writeln!(out, "program {}", prog.name());

    // Declarations, grouped by type like a human would write them.
    for ty in [VarType::Int, VarType::Real] {
        let mut decls = Vec::new();
        for info in prog.variables() {
            if info.ty != ty || prog.syms().name(info.sym).starts_with("@fn:") {
                continue;
            }
            match &info.kind {
                VarKind::Scalar => decls.push(name_of(info.sym)),
                VarKind::Array(dims) => {
                    let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                    decls.push(format!("{}({})", name_of(info.sym), dims.join(",")));
                }
            }
        }
        if !decls.is_empty() {
            let kw = if ty == VarType::Int { "integer" } else { "real" };
            let _ = writeln!(out, "  {kw} {}", decls.join(", "));
        }
    }

    let mut indent = 1usize;
    for id in prog.iter() {
        let q = prog.quad(id);
        if matches!(q.op, Opcode::EndDo | Opcode::EndIf | Opcode::Else) {
            indent = indent.saturating_sub(1);
        }
        let pad = "  ".repeat(indent);
        let opnd = |o: &Operand| operand_text(prog, o, &name_of);
        match q.op {
            Opcode::Assign => {
                let _ = writeln!(out, "{pad}{} = {}", opnd(&q.dst), opnd(&q.a));
            }
            Opcode::Neg => {
                let _ = writeln!(out, "{pad}{} = -{}", opnd(&q.dst), paren(opnd(&q.a)));
            }
            Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Div | Opcode::Mod => {
                let sym = q.op.infix().expect("binary arith has infix");
                let _ = writeln!(
                    out,
                    "{pad}{} = {} {} {}",
                    opnd(&q.dst),
                    paren(opnd(&q.a)),
                    sym,
                    paren(opnd(&q.b))
                );
            }
            Opcode::Call(f) => {
                let fname = prog.syms().name(f).trim_start_matches("@fn:").to_string();
                if q.b.is_none() {
                    let _ = writeln!(out, "{pad}{} = {fname}({})", opnd(&q.dst), opnd(&q.a));
                } else {
                    let _ = writeln!(
                        out,
                        "{pad}{} = {fname}({}, {})",
                        opnd(&q.dst),
                        opnd(&q.a),
                        opnd(&q.b)
                    );
                }
            }
            Opcode::DoHead | Opcode::ParDo => {
                let kw = if q.op == Opcode::ParDo { "pardo" } else { "do" };
                let _ = writeln!(
                    out,
                    "{pad}{kw} {} = {}, {}",
                    opnd(&q.dst),
                    opnd(&q.a),
                    opnd(&q.b)
                );
                indent += 1;
            }
            Opcode::EndDo => {
                let _ = writeln!(out, "{pad}end do");
            }
            op if op.is_if() => {
                let _ = writeln!(
                    out,
                    "{pad}if ({} {} {}) then",
                    opnd(&q.a),
                    op.relop().expect("if has relop"),
                    opnd(&q.b)
                );
                indent += 1;
            }
            Opcode::Else => {
                let _ = writeln!(out, "{pad}else");
                indent += 1;
            }
            Opcode::EndIf => {
                let _ = writeln!(out, "{pad}end if");
            }
            Opcode::Read => {
                let _ = writeln!(out, "{pad}read {}", opnd(&q.dst));
            }
            Opcode::Write => {
                let _ = writeln!(out, "{pad}write {}", opnd(&q.a));
            }
            Opcode::Nop => {}
            other => unreachable!("unhandled opcode {other}"),
        }
    }
    let _ = writeln!(out, "end");
    out
}

/// Fresh legal names for compiler temporaries (`@t1` → `tmp1`, avoiding
/// collisions with user names).
fn temp_renames(prog: &Program) -> HashMap<Sym, String> {
    let mut out = HashMap::new();
    let mut counter = 0usize;
    for info in prog.variables() {
        let name = prog.syms().name(info.sym);
        if name.starts_with("@t") {
            loop {
                counter += 1;
                let candidate = format!("tmp{counter}");
                if prog.syms().lookup(&candidate).is_none() {
                    out.insert(info.sym, candidate);
                    break;
                }
            }
        }
    }
    out
}

fn paren(s: String) -> String {
    // Operand text is always atomic (a name, literal, or element ref), so
    // no parentheses are ever required; negative literals are the one case
    // that reads better wrapped.
    if s.starts_with('-') {
        format!("({s})")
    } else {
        s
    }
}

fn operand_text(prog: &Program, o: &Operand, name_of: &impl Fn(Sym) -> String) -> String {
    match o {
        Operand::None => "0".into(),
        Operand::Const(v) => v.to_string(),
        Operand::Var(s) => name_of(*s),
        Operand::Elem { array, subs } => {
            let subs: Vec<String> = subs
                .iter()
                .map(|e| affine_text(prog, e, name_of))
                .collect();
            format!("{}({})", name_of(*array), subs.join(", "))
        }
    }
}

fn affine_text(
    prog: &Program,
    e: &gospel_ir::AffineExpr,
    name_of: &impl Fn(Sym) -> String,
) -> String {
    let _ = prog;
    let mut parts: Vec<String> = Vec::new();
    for v in e.vars() {
        let c = e.coeff(v);
        let name = name_of(v);
        let term = match c {
            1 => name,
            -1 => format!("0 - {name}"),
            c if c > 0 => format!("{c} * {name}"),
            c => format!("0 - {} * {name}", -c),
        };
        parts.push(term);
    }
    let k = e.constant();
    if parts.is_empty() {
        return k.to_string();
    }
    let mut s = parts.join(" + ");
    if k > 0 {
        let _ = write!(s, " + {k}");
    } else if k < 0 {
        let _ = write!(s, " - {}", -k);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn roundtrip(src: &str) -> (Program, Program) {
        let p = compile(src).unwrap();
        let text = unparse(&p);
        let q = compile(&text).unwrap_or_else(|e| panic!("unparse output invalid: {e}\n{text}"));
        (p, q)
    }

    #[test]
    fn simple_program_roundtrips_structurally() {
        let (p, q) = roundtrip(
            "program p\ninteger i, n\nreal a(10)\nn = 10\ndo i = 1, n\na(i) = a(i) + 1.0\nend do\nwrite a(1)\nend",
        );
        assert!(p.structurally_eq(&q), "\n{}\nvs\n{}", unparse(&p), unparse(&q));
    }

    #[test]
    fn unparse_is_a_fixpoint_of_compile() {
        for (name, src) in [
            ("negsub", "program p\ninteger x, y\nreal a(5,5)\nx = 3\ny = -x\na(x, y + 2) = 1.5\nwrite a(3,1)\nend"),
            ("branch", "program p\ninteger x\nx = 1\nif (x >= 0) then\nx = 2\nelse\nx = 3\nend if\nwrite x\nend"),
            ("call", "program p\nreal r\nr = sqrt(2.0)\nr = max(r, 1.0)\nwrite r\nend"),
        ] {
            let p = compile(src).unwrap();
            let once = unparse(&p);
            let twice = unparse(&compile(&once).unwrap());
            assert_eq!(once, twice, "{name} not a fixpoint:\n{once}\nvs\n{twice}");
        }
    }

    #[test]
    fn temps_get_legal_fresh_names() {
        let p = compile(
            "program p\ninteger x, y, tmp1\ntmp1 = 4\nx = (tmp1 + 1) * (tmp1 - 1)\ny = x\nwrite y\nend",
        )
        .unwrap();
        let text = unparse(&p);
        assert!(!text.contains('@'), "{text}");
        // the user's own `tmp1` must not be captured
        assert!(text.contains("tmp1 = 4"), "{text}");
        compile(&text).unwrap();
    }

    #[test]
    fn pardo_survives_the_roundtrip() {
        let src = "program p\ninteger i\nreal a(10)\npardo i = 1, 10\na(i) = 1.0\nend do\nwrite a(1)\nend";
        let p = compile(src).unwrap();
        let head = p.iter().find(|&s| p.quad(s).op.is_loop_head()).unwrap();
        assert_eq!(p.quad(head).op, Opcode::ParDo);
        let text = unparse(&p);
        assert!(text.contains("pardo i = 1, 10"), "{text}");
        let q = compile(&text).unwrap();
        assert!(p.structurally_eq(&q));
    }

    #[test]
    fn negative_subscript_coefficients_unparse() {
        let src = "program p\ninteger i, d\nreal a(40)\nd = 20\ndo i = 1, 10\na(d - i) = 1.0\nend do\nwrite a(10)\nend";
        let (p, q) = roundtrip(src);
        assert!(p.structurally_eq(&q), "{}", unparse(&p));
    }
}
