//! Recursive-descent parser for MiniFor.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use std::fmt;

/// Syntax error with line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on line {}", self.message, self.line)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parses a token stream into a [`SourceProgram`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse_tokens(toks: &[Token]) -> Result<SourceProgram, ParseError> {
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.toks[self.pos].kind;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        self.expect(&TokenKind::Newline, "end of statement")
    }

    fn skip_newlines(&mut self) {
        while *self.peek() == TokenKind::Newline {
            self.bump();
        }
    }

    /// Consumes the keyword `kw` if next.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        if let TokenKind::Ident(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Ok(s)
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    // program <name> NL decls stmts end [program] NL EOF
    fn program(&mut self) -> Result<SourceProgram, ParseError> {
        self.skip_newlines();
        if !self.eat_kw("program") {
            return self.err("expected `program`");
        }
        let name = self.ident("program name")?;
        self.expect_newline()?;
        self.skip_newlines();

        let mut decls = Vec::new();
        loop {
            let ty = if self.peek_kw("integer") {
                DeclType::Integer
            } else if self.peek_kw("real") {
                DeclType::Real
            } else {
                break;
            };
            self.bump();
            loop {
                let line = self.line();
                let name = self.ident("variable name")?;
                let mut dims = Vec::new();
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    loop {
                        match self.bump().clone() {
                            TokenKind::Int(n) => dims.push(n),
                            other => {
                                return self.err(format!(
                                    "array extents must be integer literals, found {other:?}"
                                ))
                            }
                        }
                        if *self.peek() == TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)` after array extents")?;
                }
                decls.push(Decl {
                    ty,
                    name,
                    dims,
                    line,
                });
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_newline()?;
            self.skip_newlines();
        }

        let body = self.stmt_list(&["end"])?;
        if !self.eat_kw("end") {
            return self.err("expected `end`");
        }
        let _ = self.eat_kw("program");
        Ok(SourceProgram { name, decls, body })
    }

    /// Parses statements until one of the given closing keywords is next
    /// (not consumed).
    fn stmt_list(&mut self, until: &[&str]) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if *self.peek() == TokenKind::Eof {
                return self.err(format!("unexpected end of input, expected {until:?}"));
            }
            if until.iter().any(|kw| self.peek_kw(kw)) {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let parallel = self.peek_kw("pardo");
        if parallel || self.peek_kw("do") {
            self.bump();
            let var = self.ident("loop variable")?;
            self.expect(&TokenKind::Assign, "`=` in do header")?;
            let from = self.expr()?;
            self.expect(&TokenKind::Comma, "`,` in do header")?;
            let to = self.expr()?;
            self.expect_newline()?;
            let body = self.stmt_list(&["end"])?;
            self.bump(); // `end`
            if !self.eat_kw("do") {
                return self.err("expected `end do`");
            }
            self.expect_newline()?;
            return Ok(Stmt::Do {
                var,
                from,
                to,
                body,
                parallel,
                line,
            });
        }
        if self.eat_kw("if") {
            self.expect(&TokenKind::LParen, "`(` after if")?;
            let lhs = self.expr()?;
            let op = match self.bump().clone() {
                TokenKind::Relop(r) => r,
                other => return self.err(format!("expected comparison, found {other:?}")),
            };
            let rhs = self.expr()?;
            self.expect(&TokenKind::RParen, "`)` after condition")?;
            if !self.eat_kw("then") {
                return self.err("expected `then`");
            }
            self.expect_newline()?;
            let then_body = self.stmt_list(&["else", "end"])?;
            let mut else_body = Vec::new();
            if self.eat_kw("else") {
                self.expect_newline()?;
                else_body = self.stmt_list(&["end"])?;
            }
            self.bump(); // `end`
            if !self.eat_kw("if") {
                return self.err("expected `end if`");
            }
            self.expect_newline()?;
            return Ok(Stmt::If {
                lhs,
                op,
                rhs,
                then_body,
                else_body,
                line,
            });
        }
        if self.eat_kw("read") {
            let target = self.lvalue()?;
            self.expect_newline()?;
            return Ok(Stmt::Read { target, line });
        }
        if self.eat_kw("write") {
            let value = self.expr()?;
            self.expect_newline()?;
            return Ok(Stmt::Write { value, line });
        }
        // assignment
        let target = self.lvalue()?;
        self.expect(&TokenKind::Assign, "`=` in assignment")?;
        let value = self.expr()?;
        self.expect_newline()?;
        Ok(Stmt::Assign {
            target,
            value,
            line,
        })
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.ident("variable")?;
        if *self.peek() == TokenKind::LParen {
            self.bump();
            let mut subs = Vec::new();
            loop {
                subs.push(self.expr()?);
                if *self.peek() == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)` after subscripts")?;
            Ok(LValue::Elem(name, subs))
        } else {
            Ok(LValue::Var(name))
        }
    }

    // expr := term ((+|-) term)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    // term := factor ((*|/|mod) factor)*
    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Ident(s) if s == "mod" => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Expr::Real(r))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        if *self.peek() == TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)` after arguments")?;
                    Ok(Expr::Index(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> SourceProgram {
        parse_tokens(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn minimal_program() {
        let p = parse("program p\nx = 1\nend");
        assert_eq!(p.name, "p");
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn declarations() {
        let p = parse("program p\ninteger i, n\nreal a(10,20), x\nx = 1.0\nend");
        assert_eq!(p.decls.len(), 4);
        assert_eq!(p.decls[2].dims, vec![10, 20]);
        assert_eq!(p.decls[2].ty, DeclType::Real);
    }

    #[test]
    fn nested_do_and_if() {
        let p = parse(
            "program p\ninteger i, j, x\ndo i = 1, 10\n do j = 1, i\n  if (j > 2) then\n   x = j\n  else\n   x = 0\n  end if\n end do\nend do\nend",
        );
        match &p.body[0] {
            Stmt::Do { body, .. } => match &body[0] {
                Stmt::Do { body, .. } => {
                    assert!(matches!(&body[0], Stmt::If { else_body, .. } if else_body.len() == 1))
                }
                other => panic!("expected inner do, got {other:?}"),
            },
            other => panic!("expected do, got {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse("program p\ninteger x\nx = 1 + 2 * 3\nend");
        match &p.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Bin(BinOp::Add, l, r) => {
                    assert_eq!(**l, Expr::Int(1));
                    assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn array_and_call_syntax_shared() {
        let p = parse("program p\nreal a(10), x\nx = a(3) + sqrt(x)\nend");
        match &p.body[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value, Expr::Bin(BinOp::Add, _, _)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn error_reports_line() {
        let toks = lex("program p\nx = \nend").unwrap();
        let e = parse_tokens(&toks).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn missing_end_do_is_error() {
        let toks = lex("program p\ninteger i\ndo i = 1, 3\nend").unwrap();
        assert!(parse_tokens(&toks).is_err());
    }
}
