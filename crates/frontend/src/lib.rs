//! # gospel-frontend — the MiniFor source language
//!
//! The paper's experiments run on FORTRAN programs (the HOMPACK suite and a
//! numerical-analysis test suite). This crate provides a small
//! FORTRAN-flavoured language, **MiniFor**, rich enough to express those
//! workloads — `do` loops, structured `if`/`else`, integer and real scalars
//! and arrays, and a handful of intrinsics — together with a lexer, a
//! recursive-descent parser and a lowering pass that produces the
//! [`gospel_ir`] quad IR (compound expressions are flattened through
//! compiler temporaries; array references stay high-level).
//!
//! ```
//! let src = "
//! program axpy
//!   integer i, n
//!   real a(100), b(100), s
//!   n = 100
//!   s = 3.0
//!   do i = 1, n
//!     a(i) = a(i) + s * b(i)
//!   end do
//!   write a(1)
//! end
//! ";
//! let prog = gospel_frontend::compile(src).expect("compiles");
//! assert!(prog.len() > 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod lexer;
mod lower;
mod parser;
mod unparse;

pub use lexer::{LexError, Token, TokenKind};
pub use lower::LowerError;
pub use parser::ParseError;
pub use unparse::unparse;

use gospel_ir::Program;

/// Everything that can go wrong between source text and IR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Tokenization failure.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error during lowering (undeclared names, arity mismatches).
    Lower(LowerError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LexError> for CompileError {
    fn from(e: LexError) -> Self {
        CompileError::Lex(e)
    }
}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// Parses MiniFor source into an AST.
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical or syntax errors.
pub fn parse(src: &str) -> Result<ast::SourceProgram, CompileError> {
    let tokens = lexer::lex(src)?;
    Ok(parser::parse_tokens(&tokens)?)
}

/// Compiles MiniFor source all the way to the quad IR.
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical, syntax or semantic errors.
pub fn compile(src: &str) -> Result<Program, CompileError> {
    let ast = parse(src)?;
    Ok(lower::lower(&ast)?)
}
