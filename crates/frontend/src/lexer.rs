//! Tokenizer for MiniFor.

use std::fmt;

/// Kind of a MiniFor token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// Comparison operator: `<`, `<=`, `>`, `>=`, `==`, `!=`
    Relop(Relop),
    /// End of statement (newline or `;`).
    Newline,
    /// End of input.
    Eof,
}

/// A comparison operator in conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relop {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Source line number.
    pub line: u32,
}

/// Tokenization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// Source line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` on line {}", self.ch, self.line)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes MiniFor source. Comments run from `!` to end of line;
/// newlines (and `;`) are statement separators and become
/// [`TokenKind::Newline`] tokens (collapsed runs produce a single token).
///
/// # Errors
///
/// Returns [`LexError`] on a character outside the language.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    let mut last_was_newline = true; // swallow leading newlines

    while let Some(&c) = chars.peek() {
        match c {
            '\n' | ';' => {
                chars.next();
                if c == '\n' {
                    line += 1;
                }
                if !last_was_newline {
                    out.push(Token {
                        kind: TokenKind::Newline,
                        line: line - u32::from(c == '\n'),
                    });
                    last_was_newline = true;
                }
            }
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            '!' => {
                // comment to end of line
                for nc in chars.by_ref() {
                    if nc == '\n' {
                        line += 1;
                        if !last_was_newline {
                            out.push(Token {
                                kind: TokenKind::Newline,
                                line: line - 1,
                            });
                            last_was_newline = true;
                        }
                        break;
                    }
                }
            }
            _ => {
                let kind = lex_one(&mut chars, line)?;
                out.push(Token { kind, line });
                last_was_newline = false;
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Newline,
        line,
    });
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

fn lex_one(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: u32,
) -> Result<TokenKind, LexError> {
    let c = *chars.peek().expect("caller checked");
    if c.is_ascii_alphabetic() || c == '_' {
        let mut s = String::new();
        while let Some(&nc) = chars.peek() {
            if nc.is_ascii_alphanumeric() || nc == '_' {
                s.push(nc);
                chars.next();
            } else {
                break;
            }
        }
        return Ok(TokenKind::Ident(s.to_ascii_lowercase()));
    }
    if c.is_ascii_digit() {
        let mut s = String::new();
        let mut is_real = false;
        while let Some(&nc) = chars.peek() {
            if nc.is_ascii_digit() {
                s.push(nc);
                chars.next();
            } else if nc == '.' && !is_real {
                // lookahead: `1.5` is a real, `1.x` is not expected in the
                // language, treat any digit-dot as real start
                is_real = true;
                s.push(nc);
                chars.next();
            } else if (nc == 'e' || nc == 'E') && is_real {
                s.push('e');
                chars.next();
                if let Some(&sign) = chars.peek() {
                    if sign == '+' || sign == '-' {
                        s.push(sign);
                        chars.next();
                    }
                }
            } else {
                break;
            }
        }
        return if is_real {
            Ok(TokenKind::Real(s.parse().map_err(|_| LexError { ch: '.', line })?))
        } else {
            Ok(TokenKind::Int(s.parse().map_err(|_| LexError { ch: '9', line })?))
        };
    }
    chars.next();
    let two = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>, next: char| -> bool {
        if chars.peek() == Some(&next) {
            chars.next();
            true
        } else {
            false
        }
    };
    Ok(match c {
        '=' => {
            if two(chars, '=') {
                TokenKind::Relop(Relop::Eq)
            } else {
                TokenKind::Assign
            }
        }
        '<' => {
            if two(chars, '=') {
                TokenKind::Relop(Relop::Le)
            } else {
                TokenKind::Relop(Relop::Lt)
            }
        }
        '>' => {
            if two(chars, '=') {
                TokenKind::Relop(Relop::Ge)
            } else {
                TokenKind::Relop(Relop::Gt)
            }
        }
        '/' => {
            if two(chars, '=') {
                TokenKind::Relop(Relop::Ne) // FORTRAN-style /=
            } else {
                TokenKind::Slash
            }
        }
        '+' => TokenKind::Plus,
        '-' => TokenKind::Minus,
        '*' => TokenKind::Star,
        '(' => TokenKind::LParen,
        ')' => TokenKind::RParen,
        ',' => TokenKind::Comma,
        other => return Err(LexError { ch: other, line }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_and_operators() {
        let k = kinds("x = a(i) + 2.5");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("a".into()),
                TokenKind::LParen,
                TokenKind::Ident("i".into()),
                TokenKind::RParen,
                TokenKind::Plus,
                TokenKind::Real(2.5),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn relops_and_fortran_ne() {
        let k = kinds("a <= b /= c == d");
        assert!(k.contains(&TokenKind::Relop(Relop::Le)));
        assert!(k.contains(&TokenKind::Relop(Relop::Ne)));
        assert!(k.contains(&TokenKind::Relop(Relop::Eq)));
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let k = kinds("x = 1 ! set x\n\n\n  ! lone comment\ny = 2");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 2); // one after each statement
    }

    #[test]
    fn semicolon_separates() {
        let k = kinds("x = 1; y = 2");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn case_insensitive_idents() {
        assert_eq!(kinds("DO")[0], TokenKind::Ident("do".into()));
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("x = #").is_err());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1.5e-3")[0], TokenKind::Real(1.5e-3));
    }
}
