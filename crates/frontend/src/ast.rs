//! Abstract syntax for MiniFor.

pub use crate::lexer::Relop;

/// A whole source program.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceProgram {
    /// Program name from the `program` header.
    pub name: String,
    /// Variable declarations.
    pub decls: Vec<Decl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// Element type in a declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeclType {
    /// `integer`
    Integer,
    /// `real`
    Real,
}

/// One declared name.
#[derive(Clone, Debug, PartialEq)]
pub struct Decl {
    /// Element type.
    pub ty: DeclType,
    /// Variable name.
    pub name: String,
    /// Array extents; empty for scalars.
    pub dims: Vec<i64>,
    /// Source line.
    pub line: u32,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `lhs = expr`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `do v = lo, hi … end do` (or `pardo v = lo, hi`, the surface form
    /// of a parallelized loop).
    Do {
        /// Loop control variable.
        var: String,
        /// Lower bound.
        from: Expr,
        /// Upper bound.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// True for `pardo`.
        parallel: bool,
        /// Source line of the header.
        line: u32,
    },
    /// `if (a RELOP b) then … [else …] end if`
    If {
        /// Left comparison operand.
        lhs: Expr,
        /// The comparison.
        op: Relop,
        /// Right comparison operand.
        rhs: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_body: Vec<Stmt>,
        /// Source line of the header.
        line: u32,
    },
    /// `read v`
    Read {
        /// Input target.
        target: LValue,
        /// Source line.
        line: u32,
    },
    /// `write expr`
    Write {
        /// Value written.
        value: Expr,
        /// Source line.
        line: u32,
    },
}

/// An assignable location.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element.
    Elem(String, Vec<Expr>),
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference (or intrinsic call — resolved during
    /// lowering by declaration lookup).
    Index(String, Vec<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
}
