//! Lowering from the MiniFor AST to the quad IR.

use crate::ast::*;
use gospel_ir::{
    AffineExpr, Opcode, Operand, Program, ProgramBuilder, Sym, VarKind, VarType,
};
use std::fmt;

/// Intrinsic functions callable from MiniFor (all real-valued).
pub const INTRINSICS: &[&str] = &["sqrt", "sin", "cos", "abs", "exp", "log", "atan", "min", "max"];

/// Semantic error during lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// Name used but never declared.
    Undeclared(String, u32),
    /// Scalar used with subscripts (and not an intrinsic).
    NotAnArray(String, u32),
    /// Array used without subscripts.
    NotAScalar(String, u32),
    /// Wrong number of subscripts/arguments.
    WrongArity(String, u32),
    /// Loop control variable is not an integer scalar.
    BadLoopVar(String, u32),
    /// A name is declared twice.
    Redeclared(String, u32),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Undeclared(n, l) => write!(f, "`{n}` is not declared (line {l})"),
            LowerError::NotAnArray(n, l) => write!(f, "`{n}` is not an array (line {l})"),
            LowerError::NotAScalar(n, l) => write!(f, "`{n}` is not a scalar (line {l})"),
            LowerError::WrongArity(n, l) => write!(f, "wrong arity for `{n}` (line {l})"),
            LowerError::BadLoopVar(n, l) => {
                write!(f, "loop variable `{n}` must be an integer scalar (line {l})")
            }
            LowerError::Redeclared(n, l) => write!(f, "`{n}` declared twice (line {l})"),
        }
    }
}

impl std::error::Error for LowerError {}

struct Lowerer {
    b: ProgramBuilder,
}

/// Lowers a parsed program to IR.
///
/// # Errors
///
/// Returns a [`LowerError`] for undeclared names, arity mismatches, and
/// malformed loop variables.
pub fn lower(src: &SourceProgram) -> Result<Program, LowerError> {
    let mut lw = Lowerer {
        b: ProgramBuilder::new(src.name.clone()),
    };
    for d in &src.decls {
        if lw.b.program().syms().lookup(&d.name).is_some() {
            return Err(LowerError::Redeclared(d.name.clone(), d.line));
        }
        match (d.ty, d.dims.is_empty()) {
            (DeclType::Integer, true) => {
                lw.b.scalar_int(&d.name);
            }
            (DeclType::Integer, false) => {
                lw.b.array_int(&d.name, &d.dims);
            }
            (DeclType::Real, true) => {
                lw.b.scalar_real(&d.name);
            }
            (DeclType::Real, false) => {
                lw.b.array_real(&d.name, &d.dims);
            }
        }
    }
    lw.stmts(&src.body)?;
    Ok(lw.b.finish())
}

impl Lowerer {
    fn lookup(&self, name: &str, line: u32) -> Result<Sym, LowerError> {
        self.b
            .program()
            .syms()
            .lookup(name)
            .filter(|s| self.b.program().var_info(*s).is_some())
            .ok_or_else(|| LowerError::Undeclared(name.to_owned(), line))
    }

    fn is_array(&self, s: Sym) -> bool {
        self.b.program().is_array(s)
    }

    fn var_type(&self, s: Sym) -> VarType {
        self.b
            .program()
            .var_info(s)
            .map(|i| i.ty)
            .unwrap_or(VarType::Real)
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                let dst = self.lvalue(target, *line)?;
                self.assign_into(dst, value, *line)?;
            }
            Stmt::Do {
                var,
                from,
                to,
                body,
                parallel,
                line,
            } => {
                let lcv = self.lookup(var, *line)?;
                if self.is_array(lcv) || self.var_type(lcv) != VarType::Int {
                    return Err(LowerError::BadLoopVar(var.clone(), *line));
                }
                let init = self.operand(from, *line)?;
                let fin = self.operand(to, *line)?;
                let tok = self.b.do_head(lcv, init, fin);
                if *parallel {
                    // rewrite the freshly emitted header to a pardo
                    let head = self
                        .b
                        .program()
                        .last()
                        .expect("do_head just pushed a statement");
                    let q = self.b.program().quad(head).clone();
                    self.b
                        .program_mut()
                        .replace(head, gospel_ir::Quad::new(Opcode::ParDo, q.dst, q.a, q.b));
                }
                self.stmts(body)?;
                self.b.end_do(tok);
            }
            Stmt::If {
                lhs,
                op,
                rhs,
                then_body,
                else_body,
                line,
            } => {
                let a = self.operand(lhs, *line)?;
                let bb = self.operand(rhs, *line)?;
                let opc = match op {
                    Relop::Lt => Opcode::IfLt,
                    Relop::Le => Opcode::IfLe,
                    Relop::Gt => Opcode::IfGt,
                    Relop::Ge => Opcode::IfGe,
                    Relop::Eq => Opcode::IfEq,
                    Relop::Ne => Opcode::IfNe,
                };
                let tok = self.b.if_head(opc, a, bb);
                self.stmts(then_body)?;
                if !else_body.is_empty() {
                    self.b.else_mark(tok);
                    self.stmts(else_body)?;
                }
                self.b.end_if(tok);
            }
            Stmt::Read { target, line } => {
                let dst = self.lvalue(target, *line)?;
                self.b.read(dst);
            }
            Stmt::Write { value, line } => {
                let v = self.operand(value, *line)?;
                self.b.write(v);
            }
        }
        Ok(())
    }

    fn lvalue(&mut self, lv: &LValue, line: u32) -> Result<Operand, LowerError> {
        match lv {
            LValue::Var(name) => {
                let s = self.lookup(name, line)?;
                if self.is_array(s) {
                    return Err(LowerError::NotAScalar(name.clone(), line));
                }
                Ok(Operand::Var(s))
            }
            LValue::Elem(name, subs) => self.elem(name, subs, line),
        }
    }

    fn elem(&mut self, name: &str, subs: &[Expr], line: u32) -> Result<Operand, LowerError> {
        let s = self.lookup(name, line)?;
        let rank = match &self.b.program().var_info(s).unwrap().kind {
            VarKind::Array(dims) => dims.len(),
            VarKind::Scalar => return Err(LowerError::NotAnArray(name.to_owned(), line)),
        };
        if subs.len() != rank {
            return Err(LowerError::WrongArity(name.to_owned(), line));
        }
        let subs = subs
            .iter()
            .map(|e| self.affine(e, line))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Operand::Elem { array: s, subs })
    }

    /// Lowers `value` directly into `dst`, producing a single quad when the
    /// top of the expression is a binary operation / negation / call, and
    /// temps for anything nested deeper.
    fn assign_into(&mut self, dst: Operand, value: &Expr, line: u32) -> Result<(), LowerError> {
        match value {
            Expr::Bin(op, l, r) => {
                let a = self.operand(l, line)?;
                let b = self.operand(r, line)?;
                self.b.stmt(bin_opcode(*op), dst, a, b);
            }
            Expr::Neg(e) => {
                let a = self.operand(e, line)?;
                self.b.stmt(Opcode::Neg, dst, a, Operand::None);
            }
            Expr::Index(name, args) if self.intrinsic(name) => {
                let (f, a, b) = self.call_parts(name, args, line)?;
                self.b.stmt(Opcode::Call(f), dst, a, b);
            }
            simple => {
                let a = self.operand(simple, line)?;
                self.b.assign(dst, a);
            }
        }
        Ok(())
    }

    fn intrinsic(&self, name: &str) -> bool {
        // Any declared name shadows an intrinsic of the same name.
        if let Some(s) = self.b.program().syms().lookup(name) {
            if self.b.program().var_info(s).is_some() {
                return false;
            }
        }
        INTRINSICS.contains(&name)
    }

    fn call_parts(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<(Sym, Operand, Operand), LowerError> {
        let binary = matches!(name, "min" | "max");
        let expected = if binary { 2 } else { 1 };
        if args.len() != expected {
            return Err(LowerError::WrongArity(name.to_owned(), line));
        }
        let a = self.operand(&args[0], line)?;
        let b = if binary {
            self.operand(&args[1], line)?
        } else {
            Operand::None
        };
        // Intrinsic names are interned under a reserved spelling so they can
        // never collide with (or be looked up as) program variables.
        let f = self.b.scalar_real(&format!("@fn:{name}"));
        Ok((f, a, b))
    }

    /// Lowers an expression to a single operand, materializing temporaries
    /// for compound sub-expressions.
    fn operand(&mut self, e: &Expr, line: u32) -> Result<Operand, LowerError> {
        Ok(match e {
            Expr::Int(n) => Operand::int(*n),
            Expr::Real(r) => Operand::real(*r),
            Expr::Var(name) => {
                let s = self.lookup(name, line)?;
                if self.is_array(s) {
                    return Err(LowerError::NotAScalar(name.clone(), line));
                }
                Operand::Var(s)
            }
            Expr::Index(name, args) => {
                if self.intrinsic(name) {
                    let t = self.temp_for(e);
                    let (f, a, b) = self.call_parts(name, args, line)?;
                    self.b.stmt(Opcode::Call(f), Operand::Var(t), a, b);
                    Operand::Var(t)
                } else {
                    self.elem(name, args, line)?
                }
            }
            Expr::Neg(inner) => {
                if let Expr::Int(n) = **inner {
                    return Ok(Operand::int(-n));
                }
                if let Expr::Real(r) = **inner {
                    return Ok(Operand::real(-r));
                }
                let t = self.temp_for(e);
                let a = self.operand(inner, line)?;
                self.b.stmt(Opcode::Neg, Operand::Var(t), a, Operand::None);
                Operand::Var(t)
            }
            Expr::Bin(op, l, r) => {
                let t = self.temp_for(e);
                let a = self.operand(l, line)?;
                let b = self.operand(r, line)?;
                self.b.stmt(bin_opcode(*op), Operand::Var(t), a, b);
                Operand::Var(t)
            }
        })
    }

    fn temp_for(&mut self, e: &Expr) -> Sym {
        let ty = self.expr_type(e);
        // ProgramBuilder does not expose new_temp; approximate with a
        // deterministic reserved name.
        let mut n = 0usize;
        loop {
            let name = format!("@t{n}");
            if self.b.program().syms().lookup(&name).is_none() {
                return match ty {
                    VarType::Int => self.b.scalar_int(&name),
                    VarType::Real => self.b.scalar_real(&name),
                };
            }
            n += 1;
        }
    }

    fn expr_type(&self, e: &Expr) -> VarType {
        match e {
            Expr::Int(_) => VarType::Int,
            Expr::Real(_) => VarType::Real,
            Expr::Var(n) | Expr::Index(n, _) => {
                if self.intrinsic(n) && matches!(e, Expr::Index(_, _)) {
                    VarType::Real
                } else {
                    self.b
                        .program()
                        .syms()
                        .lookup(n)
                        .map(|s| self.var_type(s))
                        .unwrap_or(VarType::Real)
                }
            }
            Expr::Neg(i) => self.expr_type(i),
            Expr::Bin(_, l, r) => {
                if self.expr_type(l) == VarType::Real || self.expr_type(r) == VarType::Real {
                    VarType::Real
                } else {
                    VarType::Int
                }
            }
        }
    }

    /// Converts a subscript expression to affine form, lowering non-affine
    /// parts through a temporary (which then appears as an opaque variable
    /// in the affine expression).
    fn affine(&mut self, e: &Expr, line: u32) -> Result<AffineExpr, LowerError> {
        match e {
            Expr::Int(n) => Ok(AffineExpr::constant_expr(*n)),
            Expr::Var(name) => {
                let s = self.lookup(name, line)?;
                if self.is_array(s) {
                    return Err(LowerError::NotAScalar(name.clone(), line));
                }
                Ok(AffineExpr::var(s))
            }
            Expr::Neg(inner) => Ok(self.affine(inner, line)?.scaled(-1)),
            Expr::Bin(BinOp::Add, l, r) => {
                Ok(self.affine(l, line)?.plus(&self.affine(r, line)?))
            }
            Expr::Bin(BinOp::Sub, l, r) => {
                Ok(self.affine(l, line)?.minus(&self.affine(r, line)?))
            }
            Expr::Bin(BinOp::Mul, l, r) => {
                let la = self.affine(l, line)?;
                let ra = self.affine(r, line)?;
                if la.is_constant() {
                    Ok(ra.scaled(la.constant()))
                } else if ra.is_constant() {
                    Ok(la.scaled(ra.constant()))
                } else {
                    self.opaque_affine(e, line)
                }
            }
            _ => self.opaque_affine(e, line),
        }
    }

    fn opaque_affine(&mut self, e: &Expr, line: u32) -> Result<AffineExpr, LowerError> {
        let op = self.operand(e, line)?;
        match op {
            Operand::Var(s) => Ok(AffineExpr::var(s)),
            Operand::Const(v) => Ok(AffineExpr::constant_expr(v.as_int().unwrap_or(0))),
            other => {
                // Element used as a subscript: route through a temp.
                let t = self.temp_for(e);
                self.b.assign(Operand::Var(t), other);
                Ok(AffineExpr::var(t))
            }
        }
    }
}

fn bin_opcode(op: BinOp) -> Opcode {
    match op {
        BinOp::Add => Opcode::Add,
        BinOp::Sub => Opcode::Sub,
        BinOp::Mul => Opcode::Mul,
        BinOp::Div => Opcode::Div,
        BinOp::Mod => Opcode::Mod,
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use gospel_ir::{validate, DisplayProgram, Opcode};

    #[test]
    fn lowers_single_quad_assignment() {
        let p = compile("program p\ninteger x, y\nx = y + 1\nend").unwrap();
        assert_eq!(p.len(), 1);
        let s = p.first().unwrap();
        assert_eq!(p.quad(s).op, Opcode::Add);
        validate(&p).unwrap();
    }

    #[test]
    fn nested_expressions_make_temps() {
        let p = compile("program p\ninteger x, y\nx = (y + 1) * (y - 2)\nend").unwrap();
        // t1 := y+1 ; t2 := y-2 ; x := t1*t2
        assert_eq!(p.len(), 3);
        validate(&p).unwrap();
    }

    #[test]
    fn affine_subscripts_survive() {
        let p = compile(
            "program p\ninteger i\nreal a(100)\ndo i = 1, 10\na(2*i+1) = 0.0\nend do\nend",
        )
        .unwrap();
        let text = DisplayProgram(&p).to_string();
        assert!(text.contains("a(2*i+1) := 0.0"), "got:\n{text}");
        validate(&p).unwrap();
    }

    #[test]
    fn nonaffine_subscript_through_temp() {
        let p = compile(
            "program p\ninteger i, j\nreal a(100)\ndo i = 1, 10\na(i*j) = 0.0\nend do\nend",
        )
        .unwrap();
        // i*j is lowered to a temp, subscript mentions the temp
        let text = DisplayProgram(&p).to_string();
        assert!(text.contains("@t0 := i * j"), "got:\n{text}");
        validate(&p).unwrap();
    }

    #[test]
    fn intrinsic_calls() {
        let p = compile("program p\nreal x, y\nx = sqrt(y)\nend").unwrap();
        let s = p.first().unwrap();
        assert!(matches!(p.quad(s).op, Opcode::Call(_)));
    }

    #[test]
    fn array_shadows_intrinsic() {
        let p = compile("program p\ninteger i\nreal abs(10), x\nx = abs(3)\nend").unwrap();
        let s = p.first().unwrap();
        assert_eq!(p.quad(s).op, Opcode::Assign); // element load, not a call
    }

    #[test]
    fn undeclared_variable_rejected() {
        assert!(compile("program p\nx = 1\nend").is_err());
    }

    #[test]
    fn real_loop_var_rejected() {
        assert!(compile("program p\nreal r\ndo r = 1, 3\nend do\nend").is_err());
    }

    #[test]
    fn wrong_subscript_arity_rejected() {
        assert!(compile("program p\nreal a(10,10)\na(1) = 0.0\nend").is_err());
    }

    #[test]
    fn redeclaration_rejected() {
        assert!(compile("program p\ninteger x\nreal x\nend").is_err());
    }

    #[test]
    fn if_else_lowering_shape() {
        let p = compile(
            "program p\ninteger x\nif (x > 0) then\nx = 1\nelse\nx = 2\nend if\nend",
        )
        .unwrap();
        let ops: Vec<_> = p.iter().map(|s| p.quad(s).op).collect();
        assert_eq!(
            ops,
            vec![
                Opcode::IfGt,
                Opcode::Assign,
                Opcode::Else,
                Opcode::Assign,
                Opcode::EndIf
            ]
        );
    }
}
