//! `genesis-chaos` — run the chaos campaign from the command line.
//!
//! ```text
//! genesis-chaos [--smoke] [--seed N] [--generated N] [--report FILE]
//!               [--metrics FILE]
//! ```
//!
//! Exits nonzero when any cell violated a recovery invariant; the
//! per-kind summary goes to stdout, `--report` writes the full campaign
//! report as JSON (the artifact CI uploads), and `--metrics` writes the
//! merged per-cell metric rollup in the Prometheus text format.

use genesis_chaos::{run_campaign, CampaignConfig};
use std::process::ExitCode;

const USAGE: &str = "\
genesis-chaos: drive scripted faults across the optimizer x workload matrix

USAGE:
    genesis-chaos [OPTIONS]

OPTIONS:
    --smoke          run the reduced CI matrix (3 optimizers, 4 workloads,
                     probe point 0) instead of the full campaign
    --seed N         seed for the generated workloads (default: campaign seed)
    --generated N    number of seeded random workloads to add
    --report FILE    write the campaign report as JSON to FILE
    --metrics FILE   write the merged metric rollup of every cell in the
                     Prometheus text exposition format to FILE
    --help           print this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        CampaignConfig::smoke()
    } else {
        CampaignConfig::full()
    };
    let mut report_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--smoke" => {}
            "--seed" => match value("--seed").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => cfg.seed = n,
                _ => return usage_error("--seed needs an unsigned integer"),
            },
            "--generated" => match value("--generated").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) => cfg.generated_workloads = n,
                _ => return usage_error("--generated needs an unsigned integer"),
            },
            "--report" => match value("--report") {
                Ok(p) => report_path = Some(p),
                Err(e) => return usage_error(&e),
            },
            "--metrics" => match value("--metrics") {
                Ok(p) => metrics_path = Some(p),
                Err(e) => return usage_error(&e),
            },
            other => return usage_error(&format!("unknown option {other}")),
        }
    }

    // Injected panics are part of the campaign; keep them from spraying
    // backtraces while the harness contains them.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_campaign(&cfg);
    std::panic::set_hook(hook);

    println!(
        "chaos campaign: {} cells, {} not applicable, {} violation(s) (seed {:#x})",
        report.cells,
        report.not_applicable,
        report.violations.len(),
        report.seed
    );
    for (kind, st) in &report.kinds {
        println!(
            "  {kind:<13} cells {:>4}  fired {:>4}  n/a {:>4}  violations {:>2}",
            st.cells, st.fired, st.not_applicable, st.violations
        );
    }
    for v in &report.violations {
        println!(
            "FAIL {} x {} under {}:",
            v.workload, v.optimizer, v.fault
        );
        for p in &v.problems {
            println!("  - {p}");
        }
        println!("  minimal reproduction:");
        for s in &v.minimized_steps {
            println!("    {s}");
        }
    }
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("genesis-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }
    if let Some(path) = metrics_path {
        if let Err(e) = std::fs::write(&path, report.metrics.to_prometheus()) {
            eprintln!("genesis-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("genesis-chaos: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}
