//! # genesis-chaos — the chaos campaign harness
//!
//! Robustness in this workspace is built from layered recovery
//! mechanisms: the driver's degradation ladder (indexed search → scan →
//! full re-analysis), the guard's rollback/quarantine/parole and
//! budget-aware transient retry, and the batch pool's per-file
//! supervision. Each layer has unit tests; this crate tests the *whole
//! stack at once* by driving every scripted [`FaultKind`] through every
//! (optimizer × workload × probe point) cell and asserting, after each
//! injected fault, the recovery invariants that make the layers
//! trustworthy:
//!
//! - **State restoration** — a rejected application leaves the program
//!   bit-identical to the pre-fault checkpoint; a transparently recovered
//!   one (retry, ladder) produces exactly the fault-free result.
//! - **Cache consistency** — the session-carried dependence graph,
//!   statement index, and negative match caches agree with a from-scratch
//!   rebuild ([`genesis::SessionCaches::audit`]).
//! - **Trace integrity** — every span closed, every event line valid
//!   JSONL.
//! - **Quarantine discipline** — incriminating faults quarantine, budget
//!   faults do not, and parole releases a first offender after clean
//!   applies.
//!
//! A failing cell is re-run through a shrinking reporter
//! ([`minimize_sequence`]) that reduces its apply script to a minimal
//! still-failing sequence, so a campaign violation reads as a short
//! reproduction recipe rather than a wall of context.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use genesis::{ApplyMode, CompiledOptimizer, FaultKind, FaultPlan, Session, SessionOptions};
use genesis_guard::{GuardConfig, GuardOutcome, GuardStage, GuardedSession};
use gospel_ir::Program;
use gospel_trace::{write_json_string, MetricsSnapshot, Recorder};
use gospel_workloads::generator::{self, GenConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// What one script step must do to the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// A clean step: the apply goes through (or is cleanly rejected on a
    /// genuine resource budget) without corrupting anything.
    Applies,
    /// The injected fault is absorbed transparently: the step ends in the
    /// same state a fault-free run reaches. `via_retry` additionally
    /// requires the guard's transient-retry counter to have moved.
    Recovers {
        /// Require at least one `guard.transient_retries` increment.
        via_retry: bool,
    },
    /// The injected fault is caught: rejected at `stage`, rolled back to
    /// the pre-step program, and quarantined exactly when `quarantines`.
    RejectedAt {
        /// The validation stage expected to catch the fault.
        stage: GuardStage,
        /// Whether the rejection must quarantine the optimizer.
        quarantines: bool,
    },
    /// A parole trial of a previously quarantined optimizer: the apply
    /// goes through and the quarantine entry is gone afterwards.
    ParoleTrial,
}

/// One apply in a chaos script: an optimizer, an optional scripted
/// fault, and the invariant the step must uphold.
#[derive(Clone, Debug)]
pub struct Step {
    /// The optimizer to apply (at all points).
    pub optimizer: String,
    /// The fault armed for this step (re-armed on every script run, so
    /// scripts can be replayed and minimized deterministically).
    pub fault: Option<FaultPlan>,
    /// The invariant checked after the step.
    pub expect: Expect,
}

impl Step {
    /// A short human-readable label for reports.
    pub fn describe(&self) -> String {
        match &self.fault {
            Some(f) => format!("apply {} with fault {f}", self.optimizer),
            None => format!("apply {}", self.optimizer),
        }
    }
}

/// The outcome of executing one chaos script.
#[derive(Debug, Default)]
pub struct ScriptResult {
    /// Invariant violations, one line each (empty = the script held).
    pub violations: Vec<String>,
    /// Per step: whether its armed fault actually fired. A cell whose
    /// fault never fired is *not applicable* rather than passed.
    pub fired: Vec<bool>,
    /// The cell's metric totals (counters and latency histograms),
    /// snapshotted from its recorder so campaign-level rollups can
    /// merge every cell into one service-style export.
    pub metrics: MetricsSnapshot,
}

impl ScriptResult {
    /// True when the script upheld every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Mirrors the driver-facing slice of a [`GuardConfig`] so fault-free
/// reference runs see the same budgets the guarded run does.
fn session_options(guard: &GuardConfig) -> SessionOptions {
    SessionOptions {
        timeout_ms: guard.timeout_ms,
        fuel: guard.fuel,
        max_growth: guard.max_growth,
        degraded_recovery: guard.degraded_recovery,
        ..SessionOptions::default()
    }
}

/// The fault-free result of applying `name` to `pre`: the program a
/// transparent recovery must reproduce, or `Err` when even the clean run
/// fails (then the recovered run must fail the same way).
fn clean_result(
    pre: &Program,
    optimizers: &[CompiledOptimizer],
    guard: &GuardConfig,
    name: &str,
) -> Result<Program, genesis::RunError> {
    let mut s = Session::with_options(pre.clone(), session_options(guard));
    for opt in optimizers {
        s.register(opt.clone());
    }
    s.apply(name, ApplyMode::AllPoints)?;
    Ok(s.into_program())
}

/// Executes `steps` over a fresh [`GuardedSession`] on `prog` and checks
/// each step's expectation plus the universal invariants (program
/// restoration, cache/index consistency vs. a fresh rebuild, balanced
/// spans, JSONL-valid events).
pub fn run_script(
    prog: &Program,
    optimizers: &[CompiledOptimizer],
    guard: &GuardConfig,
    steps: &[Step],
) -> ScriptResult {
    let rec = Arc::new(Recorder::new());
    let mut gs = GuardedSession::new(prog.clone(), guard.clone());
    gs.set_recorder(Some(rec.clone()));
    for opt in optimizers {
        gs.register(opt.clone());
    }

    let mut res = ScriptResult::default();
    for (i, step) in steps.iter().enumerate() {
        let plan = step.fault.as_ref().map(FaultPlan::rearmed);
        gs.set_fault(plan.clone());
        let pre = gs.program().clone();
        let clean = matches!(step.expect, Expect::Recovers { .. })
            .then(|| clean_result(&pre, optimizers, guard, &step.optimizer));
        let retries_before = rec.counter("guard.transient_retries");

        let out = match gs.apply(&step.optimizer, ApplyMode::AllPoints) {
            Ok(out) => out,
            Err(e) => {
                res.violations
                    .push(format!("step {i} ({}): caller error {e}", step.describe()));
                res.fired.push(false);
                continue;
            }
        };
        let fired = plan.as_ref().is_some_and(|p| p.times_fired() > 0);
        res.fired.push(fired);

        let mut fail =
            |msg: String| res.violations.push(format!("step {i} ({}): {msg}", step.describe()));
        let quarantined_now = gs.quarantine_entry(&step.optimizer).is_some();
        let expect = if fired || step.fault.is_none() {
            step.expect
        } else {
            // The armed fault never hit this cell (optimizer applied too
            // few times to reach the probe point): the run must simply
            // have gone through cleanly.
            Expect::Applies
        };
        match expect {
            Expect::Applies => match &out {
                GuardOutcome::Applied(_) => {}
                GuardOutcome::Rejected(r) if r.stage == GuardStage::Resource => {
                    // A genuine budget stop is clean degradation, not a
                    // robustness failure — but it must have rolled back.
                    if !gs.program().structurally_eq(&pre) {
                        fail("resource rejection did not restore the program".into());
                    }
                }
                other => fail(format!("expected a clean apply, got {other:?}")),
            },
            Expect::Recovers { via_retry } => match clean.as_ref().expect("computed above") {
                Ok(clean_prog) => {
                    if !out.is_applied() {
                        fail(format!("expected transparent recovery, got {out:?}"));
                    } else if !gs.program().structurally_eq(clean_prog) {
                        fail("recovered program differs from the fault-free result".into());
                    }
                    if via_retry && rec.counter("guard.transient_retries") <= retries_before {
                        fail("recovery did not go through the transient retry".into());
                    }
                    if quarantined_now {
                        fail("transparent recovery must not quarantine".into());
                    }
                }
                Err(_) => {
                    // Even the fault-free run fails on this cell (e.g. a
                    // real budget); the faulted run must fail cleanly too.
                    if matches!(out, GuardOutcome::Applied(_)) {
                        fail("applied although the fault-free run errors".into());
                    } else if !gs.program().structurally_eq(&pre) {
                        fail("failed run did not restore the program".into());
                    }
                }
            },
            Expect::RejectedAt { stage, quarantines } => {
                match &out {
                    GuardOutcome::Rejected(r) if r.stage == stage => {}
                    other => fail(format!("expected rejection at {stage}, got {other:?}")),
                }
                if !gs.program().structurally_eq(&pre) {
                    fail("rejection did not restore the pre-fault program".into());
                }
                if quarantined_now != quarantines {
                    fail(format!(
                        "quarantine state is {quarantined_now}, expected {quarantines}"
                    ));
                }
            }
            Expect::ParoleTrial => match &out {
                GuardOutcome::Applied(_) => {
                    if quarantined_now {
                        fail("parole trial success must lift the quarantine".into());
                    }
                }
                GuardOutcome::Rejected(r) if r.stage == GuardStage::Resource => {
                    // A genuine budget stop during the trial *defers*
                    // parole rather than granting or revoking it: the
                    // quarantine must survive and the program roll back.
                    if !gs.program().structurally_eq(&pre) {
                        fail("deferred parole trial did not restore the program".into());
                    }
                    if !quarantined_now {
                        fail("a deferred parole trial must keep the quarantine".into());
                    }
                }
                other => fail(format!("expected the parole trial to apply, got {other:?}")),
            },
        }

        // Universal invariants, after every step.
        if rec.open_spans() != 0 {
            res.violations.push(format!(
                "step {i} ({}): {} span(s) left open",
                step.describe(),
                rec.open_spans()
            ));
        }
        for problem in gs.session().caches().audit(gs.program(), optimizers) {
            res.violations
                .push(format!("step {i} ({}): audit: {problem}", step.describe()));
        }
    }

    for ev in rec.drain_events() {
        let line = ev.to_jsonl();
        if let Err(e) = gospel_trace::json::validate(&line) {
            res.violations.push(format!("invalid JSONL event: {e}: {line}"));
        }
    }
    res.metrics = rec.snapshot();
    res
}

/// Greedy ddmin-lite: repeatedly drops single steps while `fails` still
/// holds, returning a 1-minimal failing subsequence (removing any one
/// remaining element makes the failure disappear).
pub fn minimize_sequence<T: Clone>(steps: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = steps.to_vec();
    let mut i = 0;
    while i < cur.len() && cur.len() > 1 {
        let mut candidate = cur.clone();
        candidate.remove(i);
        if fails(&candidate) {
            cur = candidate; // kept failing without it — drop for good
        } else {
            i += 1;
        }
    }
    cur
}

/// The campaign matrix: which optimizers, workloads, fault kinds and
/// probe points to cross, under which guard configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Base guard configuration for every cell (`verify_deps` is forced
    /// on for corrupt-deps cells, where the verifier *is* the detector).
    pub guard: GuardConfig,
    /// Seed for the generated workloads.
    pub seed: u64,
    /// Catalog optimizer names to include (empty = the whole catalog).
    pub optimizers: Vec<String>,
    /// How many of the fixed ten workload programs to include.
    pub fixed_workloads: usize,
    /// How many seeded random programs to add to the workload set.
    pub generated_workloads: usize,
    /// Fault kinds to inject.
    pub kinds: Vec<FaultKind>,
    /// Application indices to probe (fault's `at`).
    pub probe_points: Vec<usize>,
    /// Shrink failing cells to a minimal reproduction script.
    pub minimize: bool,
}

impl CampaignConfig {
    /// The full matrix: every catalog optimizer, all ten fixed workloads
    /// plus two generated ones, every fault kind at probe points 0 and 1.
    pub fn full() -> CampaignConfig {
        CampaignConfig {
            guard: Self::campaign_guard(),
            seed: 0xC4A0_5CA0,
            optimizers: Vec::new(),
            fixed_workloads: usize::MAX,
            generated_workloads: 2,
            kinds: ALL_KINDS.to_vec(),
            probe_points: vec![0, 1],
            minimize: true,
        }
    }

    /// A reduced matrix for CI: three optimizers, three fixed workloads
    /// plus one generated, every fault kind at probe point 0.
    pub fn smoke() -> CampaignConfig {
        CampaignConfig {
            guard: Self::campaign_guard(),
            seed: 0xC4A0_5CA0,
            optimizers: vec!["CTP".into(), "DCE".into(), "CPP".into()],
            fixed_workloads: 3,
            generated_workloads: 1,
            kinds: ALL_KINDS.to_vec(),
            probe_points: vec![0],
            minimize: true,
        }
    }

    fn campaign_guard() -> GuardConfig {
        GuardConfig {
            vectors: 2,
            vector_len: 6,
            step_limit: 500_000,
            timeout_ms: Some(5_000),
            checkpoints: 4,
            parole_after: Some(2),
            ..GuardConfig::default()
        }
    }
}

/// Every scripted fault kind, in a stable reporting order.
pub const ALL_KINDS: [FaultKind; 8] = [
    FaultKind::Analysis,
    FaultKind::Action,
    FaultKind::CorruptCommit,
    FaultKind::Panic,
    FaultKind::PanicInAction,
    FaultKind::Timeout,
    FaultKind::Fuel,
    FaultKind::CorruptDeps,
];

/// Aggregate results for one fault kind across the campaign.
#[derive(Clone, Copy, Debug, Default)]
pub struct KindStats {
    /// Cells run with this kind.
    pub cells: usize,
    /// Cells whose fault actually fired.
    pub fired: usize,
    /// Cells whose fault never hit (optimizer applied too few times).
    pub not_applicable: usize,
    /// Cells with at least one invariant violation.
    pub violations: usize,
}

/// One failing cell with its minimal reproduction.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workload name.
    pub workload: String,
    /// Optimizer under fault.
    pub optimizer: String,
    /// The fault plan, in `--inject` syntax.
    pub fault: String,
    /// The invariant violations observed.
    pub problems: Vec<String>,
    /// The shrunk apply script that still reproduces the failure.
    pub minimized_steps: Vec<String>,
}

/// Everything a campaign run learned.
#[derive(Debug)]
pub struct CampaignReport {
    /// Seed the generated workloads were derived from.
    pub seed: u64,
    /// Total cells executed.
    pub cells: usize,
    /// Cells whose fault never fired.
    pub not_applicable: usize,
    /// Per-kind aggregates, in [`ALL_KINDS`] reporting order.
    pub kinds: BTreeMap<String, KindStats>,
    /// Every failing cell with its minimal reproduction.
    pub violations: Vec<Violation>,
    /// The metric totals of every cell, merged into one rollup — the
    /// campaign's service-style export ([`MetricsSnapshot::to_prometheus`]
    /// renders it for a scrape endpoint or CI artifact).
    pub metrics: MetricsSnapshot,
}

impl CampaignReport {
    /// True when every cell upheld every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The report as a JSON document (hand-rolled: the workspace is
    /// offline, and the structure is flat enough not to need a library).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"seed\": {},\n  \"cells\": {},\n  \"not_applicable\": {},\n  \"violations\": {},\n",
            self.seed,
            self.cells,
            self.not_applicable,
            self.violations.len()
        );
        out.push_str("  \"kinds\": {\n");
        for (i, (kind, st)) in self.kinds.iter().enumerate() {
            out.push_str("    ");
            write_json_string(kind, &mut out);
            let _ = write!(
                out,
                ": {{\"cells\": {}, \"fired\": {}, \"not_applicable\": {}, \"violations\": {}}}",
                st.cells, st.fired, st.not_applicable, st.violations
            );
            out.push_str(if i + 1 < self.kinds.len() { ",\n" } else { "\n" });
        }
        out.push_str("  },\n  \"failures\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str("    {\"workload\": ");
            write_json_string(&v.workload, &mut out);
            out.push_str(", \"optimizer\": ");
            write_json_string(&v.optimizer, &mut out);
            out.push_str(", \"fault\": ");
            write_json_string(&v.fault, &mut out);
            out.push_str(", \"problems\": [");
            for (j, p) in v.problems.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_string(p, &mut out);
            }
            out.push_str("], \"minimized\": [");
            for (j, s) in v.minimized_steps.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_string(s, &mut out);
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.violations.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The expectation the guard stack must uphold for one fault kind.
fn expectation(kind: FaultKind) -> Expect {
    match kind {
        FaultKind::Analysis | FaultKind::Action => Expect::RejectedAt {
            stage: GuardStage::Run,
            quarantines: false,
        },
        FaultKind::CorruptCommit => Expect::RejectedAt {
            stage: GuardStage::Structural,
            quarantines: true,
        },
        FaultKind::Panic | FaultKind::PanicInAction => Expect::RejectedAt {
            stage: GuardStage::Internal,
            quarantines: true,
        },
        FaultKind::Timeout | FaultKind::Fuel => Expect::Recovers { via_retry: true },
        FaultKind::CorruptDeps => Expect::Recovers { via_retry: false },
    }
}

/// Builds one cell's apply script: the faulted apply, and — when the
/// fault quarantines — the parole phase (clean applies of a companion
/// optimizer, then the trial that must release the offender).
fn cell_script(
    optimizer: &str,
    companion: Option<&str>,
    kind: FaultKind,
    at: usize,
    parole_after: Option<usize>,
) -> Vec<Step> {
    let mut plan = FaultPlan::new(kind).for_optimizer(optimizer).at(at);
    if matches!(kind, FaultKind::Timeout | FaultKind::Fuel) {
        // Transient: fires once, so the guard's single retry recovers.
        plan = plan.transient();
    }
    let expect = expectation(kind);
    let mut steps = vec![Step {
        optimizer: optimizer.to_string(),
        fault: Some(plan),
        expect,
    }];
    let quarantines = matches!(expect, Expect::RejectedAt { quarantines: true, .. });
    if let (true, Some(n), Some(companion)) = (quarantines, parole_after, companion) {
        for _ in 0..n {
            steps.push(Step {
                optimizer: companion.to_string(),
                fault: None,
                expect: Expect::Applies,
            });
        }
        steps.push(Step {
            optimizer: optimizer.to_string(),
            fault: None,
            expect: Expect::ParoleTrial,
        });
    }
    steps
}

/// Runs the whole campaign matrix and aggregates the results.
///
/// # Panics
///
/// Panics if the bundled catalog fails to compile (prevented by the
/// catalog's own tests).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let optimizers: Vec<CompiledOptimizer> = gospel_opts::catalog()
        .expect("catalog compiles")
        .into_iter()
        .filter(|o| {
            cfg.optimizers.is_empty()
                || cfg.optimizers.iter().any(|n| n.eq_ignore_ascii_case(&o.name))
        })
        .collect();
    let mut workloads: Vec<(String, Program)> = gospel_workloads::suite()
        .into_iter()
        .take(cfg.fixed_workloads)
        .map(|(n, p)| (n.to_string(), p))
        .collect();
    for i in 0..cfg.generated_workloads {
        let seed = cfg.seed.wrapping_add(i as u64);
        let gen_cfg = GenConfig {
            statements: 24,
            ..GenConfig::default()
        };
        workloads.push((format!("gen{seed}"), generator::generate(seed, gen_cfg)));
    }

    let mut report = CampaignReport {
        seed: cfg.seed,
        cells: 0,
        not_applicable: 0,
        kinds: BTreeMap::new(),
        violations: Vec::new(),
        metrics: MetricsSnapshot::default(),
    };
    for kind in &cfg.kinds {
        report.kinds.entry(kind.name().to_string()).or_default();
    }

    for (wname, prog) in &workloads {
        for opt in &optimizers {
            let companion = optimizers
                .iter()
                .find(|o| o.name != opt.name)
                .map(|o| o.name.as_str());
            for &kind in &cfg.kinds {
                for &at in &cfg.probe_points {
                    if kind == FaultKind::Analysis && at > 0 {
                        // The analysis probe only exists at run entry.
                        continue;
                    }
                    let guard = GuardConfig {
                        // For a silently-stale graph the verifier is the
                        // detector the ladder hangs off; everywhere else
                        // it would only slow the matrix down.
                        verify_deps: kind == FaultKind::CorruptDeps,
                        ..cfg.guard.clone()
                    };
                    let steps =
                        cell_script(&opt.name, companion, kind, at, guard.parole_after);
                    let res = run_script(prog, &optimizers, &guard, &steps);

                    report.cells += 1;
                    report.metrics.merge(&res.metrics);
                    let st = report.kinds.entry(kind.name().to_string()).or_default();
                    st.cells += 1;
                    let fault_fired = res.fired.first().copied().unwrap_or(false);
                    if fault_fired {
                        st.fired += 1;
                    } else {
                        st.not_applicable += 1;
                        report.not_applicable += 1;
                    }
                    if !res.ok() {
                        st.violations += 1;
                        let minimized = if cfg.minimize {
                            minimize_sequence(&steps, |sub| {
                                !run_script(prog, &optimizers, &guard, sub).ok()
                            })
                        } else {
                            steps.clone()
                        };
                        report.violations.push(Violation {
                            workload: wname.clone(),
                            optimizer: opt.name.clone(),
                            fault: steps[0]
                                .fault
                                .as_ref()
                                .map(ToString::to_string)
                                .unwrap_or_default(),
                            problems: res.violations,
                            minimized_steps: minimized.iter().map(Step::describe).collect(),
                        });
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizer_finds_the_failing_pair() {
        let seq = [1, 2, 3, 4, 5, 6];
        // "Fails" whenever both 2 and 5 survive; everything else is noise.
        let min = minimize_sequence(&seq, |s| s.contains(&2) && s.contains(&5));
        assert_eq!(min, vec![2, 5]);
    }

    #[test]
    fn minimizer_keeps_a_single_failing_step() {
        let min = minimize_sequence(&[7, 8, 9], |s| s.contains(&8));
        assert_eq!(min, vec![8]);
    }

    #[test]
    fn tiny_campaign_has_zero_violations() {
        let cfg = CampaignConfig {
            optimizers: vec!["CTP".into()],
            fixed_workloads: 1,
            generated_workloads: 1,
            kinds: vec![
                FaultKind::Panic,
                FaultKind::Timeout,
                FaultKind::CorruptCommit,
                FaultKind::CorruptDeps,
            ],
            probe_points: vec![0],
            ..CampaignConfig::smoke()
        };
        // Injected panics are contained by design; keep the test log
        // readable while they unwind through the hook.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = run_campaign(&cfg);
        std::panic::set_hook(prev);
        assert!(report.ok(), "violations: {:#?}", report.violations);
        assert_eq!(report.cells, 2 * 4);
        assert!(gospel_trace::json::validate(&report.to_json()).is_ok());
        // The merged metric rollup spans every cell and renders as a
        // Prometheus exposition.
        assert!(report.metrics.counter("driver.attempts") > 0);
        let prom = report.metrics.to_prometheus();
        assert!(prom.contains("driver_attempts_total"), "{prom}");
    }

    #[test]
    fn a_sabotaged_expectation_is_caught_and_minimized() {
        // A cell that *wrongly* expects CTP to be quarantined for a plain
        // timeout must come back as a violation — this is the campaign
        // catching a broken recovery path (here simulated by breaking the
        // expectation instead of the recovery).
        let optimizers = vec![gospel_opts::by_name("CTP"), gospel_opts::by_name("DCE")];
        let guard = CampaignConfig::campaign_guard();
        let (_, prog) = &gospel_workloads::suite()[0];
        let steps = vec![
            Step {
                optimizer: "DCE".into(),
                fault: None,
                expect: Expect::Applies,
            },
            Step {
                optimizer: "CTP".into(),
                fault: Some(FaultPlan::new(FaultKind::Timeout).for_optimizer("CTP")),
                expect: Expect::RejectedAt {
                    stage: GuardStage::Internal,
                    quarantines: true,
                },
            },
        ];
        let res = run_script(prog, &optimizers, &guard, &steps);
        assert!(!res.ok());
        let min = minimize_sequence(&steps, |sub| {
            !run_script(prog, &optimizers, &guard, sub).ok()
        });
        assert_eq!(min.len(), 1, "the clean DCE step is noise: {min:?}");
        assert_eq!(min[0].optimizer, "CTP");
    }
}
