//! Property test for incremental statement-index maintenance: for random
//! structured programs and random journaled primitive-edit batches,
//! [`StmtIndex::update`] must agree bucket-for-bucket with a fresh
//! [`StmtIndex::build`] of the post-edit program.
//!
//! Same generator shape as `crates/dep/tests/incremental_props.rs`: the
//! vendored proptest shim's deterministic RNG drives an imperative
//! program grower, so every failure reproduces from its seed case.

use genesis::StmtIndex;
use gospel_ir::{
    AffineExpr, EditDelta, Opcode, Operand, OperandPos, Program, ProgramBuilder, Quad, StmtId, Sym,
};
use proptest::prelude::*;
use proptest::TestRng;

struct Vars {
    scalars: Vec<Sym>,
    arrays: Vec<Sym>,
}

/// A random operand reading one of the declared names (or a constant).
fn gen_read(rng: &mut TestRng, v: &Vars, idx: Sym) -> Operand {
    match rng.below(4) {
        0 => Operand::int(rng.below(100) as i64),
        1 => Operand::Var(v.scalars[rng.below(v.scalars.len())]),
        2 => Operand::elem1(v.arrays[rng.below(v.arrays.len())], AffineExpr::var(idx)),
        _ => Operand::elem1(
            v.arrays[rng.below(v.arrays.len())],
            AffineExpr::var(idx).plus(&AffineExpr::constant_expr(rng.below(3) as i64)),
        ),
    }
}

/// A random destination: a scalar or an array element subscripted by
/// `idx` (the enclosing loop variable, or a plain scalar outside loops).
fn gen_dst(rng: &mut TestRng, v: &Vars, idx: Sym) -> Operand {
    if rng.below(2) == 0 {
        Operand::Var(v.scalars[rng.below(v.scalars.len())])
    } else {
        Operand::elem1(v.arrays[rng.below(v.arrays.len())], AffineExpr::var(idx))
    }
}

fn gen_assign(b: &mut ProgramBuilder, rng: &mut TestRng, v: &Vars, idx: Sym) {
    let dst = gen_dst(rng, v, idx);
    if rng.below(2) == 0 {
        b.assign(dst, gen_read(rng, v, idx));
    } else {
        b.add(dst, gen_read(rng, v, idx), gen_read(rng, v, idx));
    }
}

/// A random structured program: straight-line assignments, single-level
/// loops (distinct control variables), and conditionals. Loops matter
/// here — the index's enclosing-loop key is exactly what structural
/// edits can silently shift.
fn gen_program(rng: &mut TestRng) -> (Program, Vars) {
    let mut b = ProgramBuilder::new("prop");
    let vars = Vars {
        scalars: (0..4).map(|k| b.scalar_int(&format!("x{k}"))).collect(),
        arrays: (0..2).map(|k| b.array_int(&format!("a{k}"), &[32])).collect(),
    };
    let lcvs: Vec<Sym> = (0..3).map(|k| b.scalar_int(&format!("i{k}"))).collect();
    let mut next_lcv = 0;
    for _ in 0..2 + rng.below(4) {
        match rng.below(4) {
            0 | 1 => gen_assign(&mut b, rng, &vars, vars.scalars[0]),
            2 => {
                let lcv = lcvs[next_lcv % lcvs.len()];
                next_lcv += 1;
                let tok = b.do_head(lcv, Operand::int(1), Operand::int(10 + rng.below(10) as i64));
                for _ in 0..1 + rng.below(3) {
                    gen_assign(&mut b, rng, &vars, lcv);
                }
                b.end_do(tok);
            }
            _ => {
                let tok = b.if_head(
                    Opcode::IfGt,
                    Operand::Var(vars.scalars[rng.below(vars.scalars.len())]),
                    Operand::int(0),
                );
                gen_assign(&mut b, rng, &vars, vars.scalars[0]);
                if rng.below(2) == 0 {
                    b.else_mark(tok);
                    gen_assign(&mut b, rng, &vars, vars.scalars[0]);
                }
                b.end_if(tok);
            }
        }
    }
    (b.finish(), vars)
}

/// Live statements that are plain computations (no loop/branch markers),
/// i.e. safe to delete, move, copy, or rewrite without breaking nesting.
fn plain_stmts(prog: &Program) -> Vec<StmtId> {
    prog.iter()
        .filter(|&s| {
            let op = prog.quad(s).op;
            !op.is_loop_head()
                && !op.is_if()
                && !matches!(op, Opcode::EndDo | Opcode::Else | Opcode::EndIf)
        })
        .collect()
}

/// An insertion anchor: before the first statement or after any live one.
fn gen_anchor(rng: &mut TestRng, prog: &Program) -> Option<StmtId> {
    let live: Vec<StmtId> = prog.iter().collect();
    if live.is_empty() || rng.below(live.len() + 1) == 0 {
        None
    } else {
        Some(live[rng.below(live.len())])
    }
}

/// One random batch of journaled primitive edits, mixing all five
/// primitives plus the occasional structural insertion (an adjacent
/// `if`/`end if` pair) so the index's full-rebuild fallback is
/// exercised alongside the per-statement replay.
fn gen_batch(rng: &mut TestRng, prog: &mut Program, v: &Vars) -> EditDelta {
    let mut d = EditDelta::new();
    for _ in 0..1 + rng.below(4) {
        let plain = plain_stmts(prog);
        match rng.below(6) {
            0 if !plain.is_empty() => {
                // modify: rewrite an operand of a plain statement. Hits
                // every index key at once: opcode stays, but def/use
                // sets and operand classes all change.
                let s = plain[rng.below(plain.len())];
                let pos = match (prog.quad(s).op, rng.below(3)) {
                    (_, 0) => OperandPos::Dst,
                    (Opcode::Add, 1) => OperandPos::B,
                    _ => OperandPos::A,
                };
                let operand = if pos == OperandPos::Dst {
                    gen_dst(rng, v, v.scalars[0])
                } else {
                    gen_read(rng, v, v.scalars[0])
                };
                d.modify(prog, s, pos, operand);
            }
            1 => {
                let anchor = gen_anchor(rng, prog);
                let quad = Quad::assign(
                    gen_dst(rng, v, v.scalars[0]),
                    gen_read(rng, v, v.scalars[0]),
                );
                d.insert_after(prog, anchor, quad);
            }
            2 if !plain.is_empty() => {
                d.delete(prog, plain[rng.below(plain.len())]);
            }
            3 if !plain.is_empty() => {
                let anchor = gen_anchor(rng, prog);
                d.copy_after(prog, plain[rng.below(plain.len())], anchor);
            }
            4 if plain.len() >= 2 => {
                let s = plain[rng.below(plain.len())];
                let anchor = match gen_anchor(rng, prog) {
                    Some(a) if a == s => None,
                    other => other,
                };
                d.move_after(prog, s, anchor);
            }
            5 if rng.below(3) == 0 => {
                // Structural: an adjacent if/end-if pair (empty branch keeps
                // nesting valid); forces the index's rebuild fallback.
                let anchor = gen_anchor(rng, prog);
                let head = d.insert_after(
                    prog,
                    anchor,
                    Quad::new(
                        Opcode::IfGt,
                        Operand::None,
                        Operand::Var(v.scalars[rng.below(v.scalars.len())]),
                        Operand::int(0),
                    ),
                );
                d.insert_after(prog, Some(head), Quad::marker(Opcode::EndIf));
            }
            _ => {}
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn update_agrees_with_fresh_build(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("index-props-{seed}"));
        let (mut prog, vars) = gen_program(&mut rng);
        gospel_ir::validate(&prog).expect("generator produced an invalid program");
        let mut ix = StmtIndex::build(&prog);

        for batch in 0..1 + rng.below(3) {
            let delta = gen_batch(&mut rng, &mut prog, &vars);
            ix.update(&prog, &delta);
            let fresh = StmtIndex::build(&prog);
            prop_assert!(
                ix.agrees_with(&fresh),
                "seed {seed} batch {batch} ({} ops, structural: {}): \
                 incrementally maintained index diverged from a rebuild\nprogram:\n{}",
                delta.len(),
                delta.requires_full(),
                gospel_ir::DisplayProgram(&prog)
            );
        }
    }

    #[test]
    fn undo_then_update_restores_the_index(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("index-undo-{seed}"));
        let (mut prog, vars) = gen_program(&mut rng);
        let original = StmtIndex::build(&prog);

        // The journal must be a faithful inverse from the index's point
        // of view too: rebuild after undo equals the original.
        let delta = gen_batch(&mut rng, &mut prog, &vars);
        delta.undo(&mut prog);
        let restored = StmtIndex::build(&prog);
        prop_assert!(
            restored.agrees_with(&original),
            "seed {seed}: undo did not restore the statement index"
        );
    }
}
