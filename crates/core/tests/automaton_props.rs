//! Property test for the fused anchor automaton: over random structured
//! programs and random journaled primitive-edit batches, three ways of
//! answering "which statements does this optimizer's anchor admit?" must
//! stay in exact agreement —
//!
//! 1. the fused automaton's posting for the optimizer (built once, then
//!    maintained by [`FusedAutomaton::update`] delta replay),
//! 2. the per-optimizer [`AnchorFilter`] admission through
//!    [`StmtIndex::candidates`], and
//! 3. a direct scan evaluating the filter's opcode and operand-class
//!    tests against every live statement.
//!
//! The undo round-trip must also hold: replaying a journal backwards and
//! reclassifying restores the automaton to its original postings.
//!
//! Same generator shape as `index_props.rs`: the vendored proptest shim's
//! deterministic RNG drives an imperative program grower, so every
//! failure reproduces from its seed case.

use genesis::{anchor_filter, AnchorFilter, CompiledOptimizer, FusedAutomaton, StmtIndex};
use gospel_ir::{
    AffineExpr, EditDelta, Opcode, Operand, OperandPos, Program, ProgramBuilder, Quad, StmtId, Sym,
};
use gospel_lang::ast::{ElemType, OperandClass};
use proptest::prelude::*;
use proptest::TestRng;

fn opt_of(name: &str, anchor: &str) -> CompiledOptimizer {
    let spec = format!(
        "OPTIMIZATION {name}\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
         any S: {anchor};\nACTION\n  delete(S);\nEND"
    );
    let (spec, info) = gospel_lang::parse_validated(&spec).unwrap();
    genesis::generate(spec, info).unwrap()
}

/// A catalog exercising the trie's sharing and fallback shapes: a shared
/// `assign → const` prefix, an opcode-only chain, a second opcode bucket,
/// and an unfilterable anchor that must stay off the automaton entirely.
fn catalog() -> Vec<CompiledOptimizer> {
    vec![
        opt_of("CONSTSRC", "S.opc == assign AND type(S.opr_2) == const"),
        opt_of(
            "CONSTCOPY",
            "S.opc == assign AND type(S.opr_2) == const AND type(S.opr_1) == var",
        ),
        opt_of("ANYASSIGN", "S.opc == assign"),
        opt_of("VARSUM", "S.opc == add AND type(S.opr_2) == var"),
        opt_of("UNBOUND", "S.opr_1 == S.opr_2"),
    ]
}

/// The narrowing anchor filter of each catalog entry, `None` where the
/// anchor cannot narrow (the `UNBOUND` case).
fn filters(opts: &[CompiledOptimizer]) -> Vec<Option<AnchorFilter>> {
    opts.iter()
        .map(|o| {
            o.patterns
                .first()
                .filter(|(_, ty)| *ty == ElemType::Stmt)
                .and_then(|(c, _)| c.vars.first().map(|v| anchor_filter(c, v)))
                .filter(AnchorFilter::narrows)
        })
        .collect()
}

/// The oracle: operand classification mirroring the index's bucketing
/// (`Const`/`Var`/`Elem`/`None` straight off the IR operand).
fn class_of(o: &Operand) -> OperandClass {
    match o {
        Operand::Const(_) => OperandClass::Const,
        Operand::Var(_) => OperandClass::Var,
        Operand::Elem { .. } => OperandClass::Elem,
        Operand::None => OperandClass::None,
    }
}

/// Direct scan satisfaction of a narrowing filter: every live statement
/// whose opcode is in the filter's bucket list and whose operand classes
/// pass every positional test.
fn scan_admitted(prog: &Program, f: &AnchorFilter) -> Vec<StmtId> {
    let opcodes = f.opcodes.as_ref().expect("narrowing filter has opcodes");
    prog.iter()
        .filter(|&s| {
            let q = prog.quad(s);
            if !opcodes.contains(&q.op.gospel_name()) {
                return false;
            }
            let cls = [class_of(&q.dst), class_of(&q.a), class_of(&q.b)];
            f.classes
                .iter()
                .all(|&(pos, c, positive)| (cls[pos] == c) == positive)
        })
        .collect()
}

fn sorted(mut v: Vec<StmtId>) -> Vec<StmtId> {
    v.sort_unstable();
    v
}

struct Vars {
    scalars: Vec<Sym>,
    arrays: Vec<Sym>,
}

/// A random operand reading one of the declared names (or a constant).
fn gen_read(rng: &mut TestRng, v: &Vars, idx: Sym) -> Operand {
    match rng.below(4) {
        0 => Operand::int(rng.below(100) as i64),
        1 => Operand::Var(v.scalars[rng.below(v.scalars.len())]),
        2 => Operand::elem1(v.arrays[rng.below(v.arrays.len())], AffineExpr::var(idx)),
        _ => Operand::elem1(
            v.arrays[rng.below(v.arrays.len())],
            AffineExpr::var(idx).plus(&AffineExpr::constant_expr(rng.below(3) as i64)),
        ),
    }
}

/// A random destination: a scalar or an array element subscripted by
/// `idx` (the enclosing loop variable, or a plain scalar outside loops).
fn gen_dst(rng: &mut TestRng, v: &Vars, idx: Sym) -> Operand {
    if rng.below(2) == 0 {
        Operand::Var(v.scalars[rng.below(v.scalars.len())])
    } else {
        Operand::elem1(v.arrays[rng.below(v.arrays.len())], AffineExpr::var(idx))
    }
}

fn gen_assign(b: &mut ProgramBuilder, rng: &mut TestRng, v: &Vars, idx: Sym) {
    let dst = gen_dst(rng, v, idx);
    if rng.below(2) == 0 {
        b.assign(dst, gen_read(rng, v, idx));
    } else {
        b.add(dst, gen_read(rng, v, idx), gen_read(rng, v, idx));
    }
}

/// A random structured program: straight-line assignments, single-level
/// loops (distinct control variables), and conditionals.
fn gen_program(rng: &mut TestRng) -> (Program, Vars) {
    let mut b = ProgramBuilder::new("prop");
    let vars = Vars {
        scalars: (0..4).map(|k| b.scalar_int(&format!("x{k}"))).collect(),
        arrays: (0..2).map(|k| b.array_int(&format!("a{k}"), &[32])).collect(),
    };
    let lcvs: Vec<Sym> = (0..3).map(|k| b.scalar_int(&format!("i{k}"))).collect();
    let mut next_lcv = 0;
    for _ in 0..2 + rng.below(4) {
        match rng.below(4) {
            0 | 1 => gen_assign(&mut b, rng, &vars, vars.scalars[0]),
            2 => {
                let lcv = lcvs[next_lcv % lcvs.len()];
                next_lcv += 1;
                let tok = b.do_head(lcv, Operand::int(1), Operand::int(10 + rng.below(10) as i64));
                for _ in 0..1 + rng.below(3) {
                    gen_assign(&mut b, rng, &vars, lcv);
                }
                b.end_do(tok);
            }
            _ => {
                let tok = b.if_head(
                    Opcode::IfGt,
                    Operand::Var(vars.scalars[rng.below(vars.scalars.len())]),
                    Operand::int(0),
                );
                gen_assign(&mut b, rng, &vars, vars.scalars[0]);
                if rng.below(2) == 0 {
                    b.else_mark(tok);
                    gen_assign(&mut b, rng, &vars, vars.scalars[0]);
                }
                b.end_if(tok);
            }
        }
    }
    (b.finish(), vars)
}

/// Live statements that are plain computations (no loop/branch markers),
/// i.e. safe to delete, move, copy, or rewrite without breaking nesting.
fn plain_stmts(prog: &Program) -> Vec<StmtId> {
    prog.iter()
        .filter(|&s| {
            let op = prog.quad(s).op;
            !op.is_loop_head()
                && !op.is_if()
                && !matches!(op, Opcode::EndDo | Opcode::Else | Opcode::EndIf)
        })
        .collect()
}

/// An insertion anchor: before the first statement or after any live one.
fn gen_anchor(rng: &mut TestRng, prog: &Program) -> Option<StmtId> {
    let live: Vec<StmtId> = prog.iter().collect();
    if live.is_empty() || rng.below(live.len() + 1) == 0 {
        None
    } else {
        Some(live[rng.below(live.len())])
    }
}

/// One random batch of journaled primitive edits, mixing all five
/// primitives plus the occasional structural insertion (an adjacent
/// `if`/`end if` pair) so the automaton's reclassify fallback is
/// exercised alongside the per-statement replay.
fn gen_batch(rng: &mut TestRng, prog: &mut Program, v: &Vars) -> EditDelta {
    let mut d = EditDelta::new();
    for _ in 0..1 + rng.below(4) {
        let plain = plain_stmts(prog);
        match rng.below(6) {
            0 if !plain.is_empty() => {
                let s = plain[rng.below(plain.len())];
                let pos = match (prog.quad(s).op, rng.below(3)) {
                    (_, 0) => OperandPos::Dst,
                    (Opcode::Add, 1) => OperandPos::B,
                    _ => OperandPos::A,
                };
                let operand = if pos == OperandPos::Dst {
                    gen_dst(rng, v, v.scalars[0])
                } else {
                    gen_read(rng, v, v.scalars[0])
                };
                d.modify(prog, s, pos, operand);
            }
            1 => {
                let anchor = gen_anchor(rng, prog);
                let quad = Quad::assign(
                    gen_dst(rng, v, v.scalars[0]),
                    gen_read(rng, v, v.scalars[0]),
                );
                d.insert_after(prog, anchor, quad);
            }
            2 if !plain.is_empty() => {
                d.delete(prog, plain[rng.below(plain.len())]);
            }
            3 if !plain.is_empty() => {
                let anchor = gen_anchor(rng, prog);
                d.copy_after(prog, plain[rng.below(plain.len())], anchor);
            }
            4 if plain.len() >= 2 => {
                let s = plain[rng.below(plain.len())];
                let anchor = match gen_anchor(rng, prog) {
                    Some(a) if a == s => None,
                    other => other,
                };
                d.move_after(prog, s, anchor);
            }
            5 if rng.below(3) == 0 => {
                let anchor = gen_anchor(rng, prog);
                let head = d.insert_after(
                    prog,
                    anchor,
                    Quad::new(
                        Opcode::IfGt,
                        Operand::None,
                        Operand::Var(v.scalars[rng.below(v.scalars.len())]),
                        Operand::int(0),
                    ),
                );
                d.insert_after(prog, Some(head), Quad::marker(Opcode::EndIf));
            }
            _ => {}
        }
    }
    d
}

/// Asserts the three-way admission agreement for every catalog entry
/// against the current program.
fn assert_admission_agrees(
    auto: &FusedAutomaton,
    ix: &StmtIndex,
    opts: &[CompiledOptimizer],
    fs: &[Option<AnchorFilter>],
    prog: &Program,
    context: &str,
) -> Result<(), TestCaseError> {
    for (opt, f) in opts.iter().zip(fs) {
        let Some(f) = f else {
            prop_assert!(
                auto.opt_id(&opt.name).is_none(),
                "{context}: unfilterable {} must not be fused",
                opt.name
            );
            continue;
        };
        let id = auto.opt_id(&opt.name).unwrap_or_else(|| {
            panic!("{context}: {} has a narrowing anchor but no fused entry", opt.name)
        });
        let fused = sorted(auto.posting(id).to_vec());
        let indexed = sorted(
            ix.candidates(f)
                .unwrap_or_else(|| panic!("{context}: {} filter lost its opcodes", opt.name)),
        );
        let scanned = sorted(scan_admitted(prog, f));
        prop_assert!(
            fused == scanned && indexed == scanned,
            "{context}: admission disagrees for {}\n  fused:   {fused:?}\n  indexed: \
             {indexed:?}\n  scanned: {scanned:?}\nprogram:\n{}",
            opt.name,
            gospel_ir::DisplayProgram(prog)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_admission_matches_filters_and_scan(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("automaton-props-{seed}"));
        let opts = catalog();
        let fs = filters(&opts);
        let (mut prog, vars) = gen_program(&mut rng);
        gospel_ir::validate(&prog).expect("generator produced an invalid program");

        let mut auto = FusedAutomaton::build(&opts, &prog);
        let mut ix = StmtIndex::build(&prog);
        assert_admission_agrees(&auto, &ix, &opts, &fs, &prog, &format!("seed {seed} initial"))?;

        for batch in 0..1 + rng.below(3) {
            let delta = gen_batch(&mut rng, &mut prog, &vars);
            auto.update(&prog, &delta);
            ix.update(&prog, &delta);
            let ctx = format!(
                "seed {seed} batch {batch} ({} ops, structural: {})",
                delta.len(),
                delta.requires_full()
            );
            prop_assert!(
                auto.agrees_with(&FusedAutomaton::build(&opts, &prog)),
                "{ctx}: incrementally maintained automaton diverged from a rebuild\nprogram:\n{}",
                gospel_ir::DisplayProgram(&prog)
            );
            assert_admission_agrees(&auto, &ix, &opts, &fs, &prog, &ctx)?;
        }
    }

    #[test]
    fn undo_then_reclassify_restores_the_automaton(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("automaton-undo-{seed}"));
        let opts = catalog();
        let (mut prog, vars) = gen_program(&mut rng);
        let original = FusedAutomaton::build(&opts, &prog);

        // Forward: maintain incrementally. Backward: the journal replayed
        // in reverse plus a reclassify must land exactly on the original
        // postings (the trie itself never depends on the program).
        let mut auto = FusedAutomaton::build(&opts, &prog);
        let delta = gen_batch(&mut rng, &mut prog, &vars);
        auto.update(&prog, &delta);
        delta.undo(&mut prog);
        auto.reclassify(&prog);
        prop_assert!(
            auto.agrees_with(&original),
            "seed {seed}: undo + reclassify did not restore the automaton\nprogram:\n{}",
            gospel_ir::DisplayProgram(&prog)
        );
    }
}
