//! The fused anchor automaton: one shared matcher for the whole catalog.
//!
//! Every registered optimizer whose anchor (first) pattern clause pins an
//! opcode is compiled into a single trie over *discriminating tests* —
//! the opcode bucket at the root, then the per-position operand-class
//! tests its [`AnchorFilter`] extracted — with common prefixes merged at
//! build time. Classifying one statement is a single walk over that trie
//! and yields the admission verdict of **all** fused optimizers at once,
//! instead of N independent per-optimizer filter probes: the shared
//! prefix (`opc == assign`, say) is tested once no matter how many
//! catalog entries start with it.
//!
//! The automaton keeps two layers:
//!
//! * **catalog-scoped** — the trie itself. Built once per catalog,
//!   immutable until (de/re)registration changes the catalog, at which
//!   point the whole automaton is dropped and rebuilt
//!   ([`crate::SessionCaches::drop_optimizer`] treats it like the other
//!   per-optimizer caches).
//! * **program-scoped** — per-statement admission masks and per-optimizer
//!   posting lists, maintained O(|delta| · trie-depth) by replaying
//!   [`EditDelta`] journals exactly like [`crate::StmtIndex`]: touched
//!   statements are unlisted via their recorded masks and reclassified
//!   from the post-edit program. Structural batches reclassify the whole
//!   program against the unchanged trie.
//!
//! Loop-membership is part of the automaton's test vocabulary in
//! principle (the anchor of a loop-shaped optimizer), but GOSpeL anchor
//! clauses cannot constrain membership — `mem()` lives in the Depend
//! section — and loop-anchored optimizers (`ICM`, `FUS`, `LUR`) enumerate
//! the loop table directly, which is already small. They are recorded as
//! *non-fused*: the searcher's degradation ladder (fused → per-optimizer
//! index → scan) falls through for them.
//!
//! Admission is sound for the same reason [`AnchorFilter`] admission is:
//! a statement outside an optimizer's posting provably fails its anchor
//! clause's opcode disjunction or one of its top-level
//! `type(var.opr_N)` conjuncts. When the filter was `exact`, the posting
//! *is* the satisfying set and the searcher skips format evaluation
//! entirely. The property suite asserts posting ≡ filter admission ≡
//! scan satisfaction over random journaled edit batches.

use crate::caches::normalize;
use crate::compile::CompiledOptimizer;
use crate::index::{anchor_filter, class_of, AnchorFilter};
use gospel_dep::DepGraph;
use gospel_ir::{EditDelta, Program, Quad, StmtId};
use gospel_lang::ast::{ElemType, OperandClass};
use std::collections::HashMap;

/// One discriminating test on an edge of the trie: the operand at
/// `pos` is (`positive`) or is not (`!positive`) of class `cls`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Test {
    pos: usize,
    cls: OperandClass,
    positive: bool,
}

impl Test {
    fn passes(&self, cls: &[OperandClass; 3]) -> bool {
        (cls[self.pos] == self.cls) == self.positive
    }
}

/// One trie node: optimizers whose whole test chain ends here, plus the
/// outgoing test edges (children with strictly longer chains).
#[derive(Clone, Debug, Default)]
struct Node {
    outputs: Vec<usize>,
    edges: Vec<(Test, usize)>,
}

/// Per-fused-optimizer metadata carried out of trie construction.
#[derive(Clone, Debug)]
struct FusedEntry {
    /// The anchor filter was `exact`: admission equals format
    /// satisfaction, so the searcher skips format evaluation for posting
    /// members.
    exact: bool,
    /// The root bucket keys this optimizer's chain hangs under.
    opcodes: Vec<&'static str>,
    /// The optimizer's discriminator chain, in canonical (`test_rank`)
    /// order — exactly the edge sequence `insert_filter` threaded into
    /// the trie, kept so [`FusedAutomaton::explain_admission`] can
    /// replay the walk and name the first failing edge.
    tests: Vec<Test>,
}

/// The replayed trie path of one (optimizer, statement) admission query —
/// what [`FusedAutomaton::explain_admission`] reports to the explain
/// engine. The `Admitted`/failure split agrees with [`classify`]
/// membership by construction: both walk the same edge chain.
///
/// [`classify`]: FusedAutomaton::reclassify
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The optimizer is not in the trie (loop anchor or unbounded
    /// opcode): admission does not narrow, every statement passes.
    NotFused,
    /// The root opcode bucket rejected the statement before any edge was
    /// walked.
    OpcodeMiss {
        /// The statement's opcode (`gospel_name`).
        got: &'static str,
        /// The anchor's admissible opcode set.
        expected: Vec<&'static str>,
    },
    /// The walk entered the opcode bucket but this discriminator edge —
    /// the first failing one on the optimizer's chain — rejected it.
    EdgeFailed {
        /// 0-based operand position (`opr_1` → 0).
        pos: usize,
        /// The class the edge tests for.
        cls: OperandClass,
        /// `true` for `==`, `false` for `!=`.
        positive: bool,
        /// The operand's actual class.
        actual: OperandClass,
    },
    /// The full chain passed: the statement is in the posting.
    Admitted,
}

impl AdmissionVerdict {
    /// The failing edge in GOSpeL concrete syntax, e.g.
    /// `type(opr_2) == const` — empty for the non-failure variants.
    pub fn edge(&self) -> String {
        match self {
            AdmissionVerdict::EdgeFailed {
                pos,
                cls,
                positive,
                ..
            } => format!(
                "type(opr_{}) {} {}",
                pos + 1,
                if *positive { "==" } else { "!=" },
                cls.keyword()
            ),
            _ => String::new(),
        }
    }
}

/// The fused anchor automaton. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct FusedAutomaton {
    /// Normalized optimizer names, in catalog (registration) order. The
    /// index into this vector is the optimizer id used everywhere below.
    names: Vec<String>,
    /// `Some` for optimizers with a narrowing anchor filter; `None` for
    /// the rest (loop anchors, unbounded opcodes) — those fall down the
    /// ladder.
    fused: Vec<Option<FusedEntry>>,
    /// Trie nodes; roots are reached through `root`.
    nodes: Vec<Node>,
    /// Opcode bucket at the root: `gospel_name` key → node.
    root: HashMap<&'static str, usize>,
    /// Mask words per statement slot (`ceil(names.len() / 64)`).
    words: usize,
    /// Per-statement admission masks, `words` words per `StmtId` slot —
    /// the reverse record `remove` needs, like `StmtIndex`'s entries.
    masks: Vec<u64>,
    /// Per-optimizer posting lists (unordered; the searcher restores
    /// program order through `DepGraph::order_of`).
    postings: Vec<Vec<StmtId>>,
    /// Trie states created by builds (drained by the driver into the
    /// `search.fused.states` counter).
    stat_states: u64,
    /// Trie nodes visited by classification walks since the last drain
    /// (`search.fused.visits`).
    stat_visits: u64,
}

/// Deterministic ordering of class tests, so equal filters produce equal
/// chains and shared prefixes actually merge. Class outranks position:
/// the catalog's common discriminator ("some operand is a constant")
/// then leads every chain that uses it, maximizing sharing; conjunction
/// order is semantically free.
fn test_rank(t: &Test) -> (u8, usize, bool) {
    let c = match t.cls {
        OperandClass::Const => 0,
        OperandClass::Var => 1,
        OperandClass::Elem => 2,
        OperandClass::None => 3,
    };
    (c, t.pos, !t.positive)
}

impl FusedAutomaton {
    /// Compiles the catalog's anchor clauses into one trie and classifies
    /// every statement of `prog` against it.
    pub fn build(optimizers: &[CompiledOptimizer], prog: &Program) -> FusedAutomaton {
        Self::build_refs(&optimizers.iter().collect::<Vec<_>>(), prog)
    }

    /// [`FusedAutomaton::build`] over borrowed optimizers — the audit
    /// path reassembles the catalog in automaton order without cloning.
    pub fn build_refs(optimizers: &[&CompiledOptimizer], prog: &Program) -> FusedAutomaton {
        let mut auto = FusedAutomaton {
            words: optimizers.len().div_ceil(64).max(1),
            ..FusedAutomaton::default()
        };
        for &opt in optimizers {
            auto.names.push(normalize(&opt.name));
            let filter = opt
                .patterns
                .first()
                .filter(|(_, ty)| *ty == ElemType::Stmt)
                .and_then(|(c, _)| c.vars.first().map(|v| anchor_filter(c, v)))
                .filter(AnchorFilter::narrows);
            let id = auto.names.len() - 1;
            match filter {
                Some(f) => {
                    let (opcodes, tests) = auto.insert_filter(id, &f);
                    auto.fused.push(Some(FusedEntry {
                        exact: f.exact,
                        opcodes,
                        tests,
                    }));
                }
                None => auto.fused.push(None),
            }
            auto.postings.push(Vec::new());
        }
        auto.reclassify(prog);
        auto
    }

    /// Threads one optimizer's filter into the trie: one chain of class
    /// tests (sorted canonically) under each of its opcode buckets.
    /// Returns the bucket keys and the canonical chain for the
    /// optimizer's [`FusedEntry`].
    fn insert_filter(
        &mut self,
        id: usize,
        filter: &AnchorFilter,
    ) -> (Vec<&'static str>, Vec<Test>) {
        let mut tests: Vec<Test> = filter
            .classes
            .iter()
            .map(|&(pos, cls, positive)| Test { pos, cls, positive })
            .collect();
        tests.sort_unstable_by_key(test_rank);
        tests.dedup();
        let keys = filter.opcodes.clone().unwrap_or_default();
        for key in &keys {
            let key = *key;
            let mut cur = match self.root.get(key) {
                Some(&n) => n,
                None => {
                    let n = self.fresh_node();
                    self.root.insert(key, n);
                    n
                }
            };
            for t in &tests {
                cur = match self.nodes[cur].edges.iter().find(|(e, _)| e == t) {
                    Some(&(_, child)) => child,
                    None => {
                        let child = self.fresh_node();
                        self.nodes[cur].edges.push((*t, child));
                        child
                    }
                };
            }
            if !self.nodes[cur].outputs.contains(&id) {
                self.nodes[cur].outputs.push(id);
            }
        }
        (keys, tests)
    }

    /// Replays the trie walk of fused optimizer `name` over one quad and
    /// reports where it ended: admitted, rejected at the root opcode
    /// bucket, or rejected by a specific discriminator edge (the first
    /// failing test on the optimizer's canonical chain). The explain
    /// engine turns the verdict into its `NotAdmitted` narrative.
    pub fn explain_admission(&self, name: &str, quad: &Quad) -> AdmissionVerdict {
        let Some(id) = self.opt_id(name) else {
            return AdmissionVerdict::NotFused;
        };
        let entry = self.fused[id].as_ref().expect("opt_id implies fused");
        let got = quad.op.gospel_name();
        if !entry.opcodes.contains(&got) {
            return AdmissionVerdict::OpcodeMiss {
                got,
                expected: entry.opcodes.clone(),
            };
        }
        let cls = [class_of(&quad.dst), class_of(&quad.a), class_of(&quad.b)];
        for t in &entry.tests {
            if !t.passes(&cls) {
                return AdmissionVerdict::EdgeFailed {
                    pos: t.pos,
                    cls: t.cls,
                    positive: t.positive,
                    actual: cls[t.pos],
                };
            }
        }
        AdmissionVerdict::Admitted
    }

    fn fresh_node(&mut self) -> usize {
        self.nodes.push(Node::default());
        self.stat_states += 1;
        self.nodes.len() - 1
    }

    /// Number of trie states.
    pub fn states(&self) -> usize {
        self.nodes.len()
    }

    /// The normalized optimizer names the automaton was built over, in
    /// catalog order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The id of `name` *when it is fused* — `None` for unknown names and
    /// for registered-but-not-fused optimizers (the ladder falls through
    /// for those).
    pub fn opt_id(&self, name: &str) -> Option<usize> {
        let key = normalize(name);
        let id = self.names.iter().position(|n| *n == key)?;
        self.fused[id].is_some().then_some(id)
    }

    /// True when the automaton was built over exactly `names` (normalized,
    /// in order) — the session's staleness check against the registered
    /// catalog.
    pub fn covers(&self, names: &[String]) -> bool {
        self.names == names
    }

    /// The admission posting of fused optimizer `id`, unordered.
    pub fn posting(&self, id: usize) -> &[StmtId] {
        &self.postings[id]
    }

    /// Whether `id`'s admission equals format satisfaction.
    pub fn exact(&self, id: usize) -> bool {
        self.fused[id].as_ref().is_some_and(|f| f.exact)
    }

    /// Drains the accumulated (states-built, trie-visits) statistics.
    pub fn take_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.stat_states),
            std::mem::take(&mut self.stat_visits),
        )
    }

    /// One trie walk: the admission mask of a quad — bit `id` set iff
    /// fused optimizer `id` admits the statement.
    fn classify(&mut self, quad: &Quad) -> Vec<u64> {
        let mut mask = vec![0u64; self.words];
        let Some(&start) = self.root.get(quad.op.gospel_name()) else {
            return mask;
        };
        let cls = [
            class_of(&quad.dst),
            class_of(&quad.a),
            class_of(&quad.b),
        ];
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            self.stat_visits += 1;
            for &o in &self.nodes[n].outputs {
                mask[o / 64] |= 1u64 << (o % 64);
            }
            for &(t, child) in &self.nodes[n].edges {
                if t.passes(&cls) {
                    stack.push(child);
                }
            }
        }
        mask
    }

    /// Classifies one live statement and lists it in the admitted
    /// postings.
    fn insert(&mut self, id: StmtId, quad: &Quad) {
        let mask = self.classify(quad);
        let base = id.index() * self.words;
        for (w, &m) in mask.iter().enumerate() {
            self.masks[base + w] = m;
            let mut bits = m;
            while bits != 0 {
                let o = w * 64 + bits.trailing_zeros() as usize;
                self.postings[o].push(id);
                bits &= bits - 1;
            }
        }
    }

    /// Unlists a statement from every posting its recorded mask names.
    fn remove(&mut self, id: StmtId) {
        let base = id.index() * self.words;
        if base + self.words > self.masks.len() {
            return;
        }
        for w in 0..self.words {
            let mut bits = std::mem::take(&mut self.masks[base + w]);
            while bits != 0 {
                let o = w * 64 + bits.trailing_zeros() as usize;
                if let Some(i) = self.postings[o].iter().position(|&s| s == id) {
                    self.postings[o].swap_remove(i);
                }
                bits &= bits - 1;
            }
        }
    }

    /// Rebuilds the program-scoped layer (masks + postings) against the
    /// unchanged trie.
    pub fn reclassify(&mut self, prog: &Program) {
        self.masks.clear();
        self.masks.resize(prog.id_bound() * self.words, 0);
        for p in &mut self.postings {
            p.clear();
        }
        for s in prog.iter() {
            self.insert(s, prog.quad(s));
        }
    }

    /// Replays one committed edit batch, leaving the postings exactly as
    /// [`FusedAutomaton::build`] over the post-edit program would — the
    /// same O(|delta|) contract as [`crate::StmtIndex::update`].
    /// Structural batches reclassify the whole program; the trie (a pure
    /// function of the catalog) never changes here.
    pub fn update(&mut self, prog: &Program, delta: &EditDelta) {
        if delta.is_empty() {
            return;
        }
        if delta.requires_full() {
            self.reclassify(prog);
            return;
        }
        let need = prog.id_bound() * self.words;
        if need > self.masks.len() {
            self.masks.resize(need, 0);
        }
        let mut touched: Vec<StmtId> = Vec::with_capacity(delta.len());
        for op in delta.ops() {
            let id = op.stmt();
            if !touched.contains(&id) {
                touched.push(id);
            }
        }
        for &id in &touched {
            self.remove(id);
        }
        for &id in &touched {
            if prog.is_live(id) {
                self.insert(id, prog.quad(id));
            }
        }
    }

    /// Every `(optimizer id, statement)` candidate pair, in program
    /// order (ties between optimizers at one statement resolve in
    /// catalog order) — one pass over the postings dispatching the whole
    /// catalog at once. `None` when any posting member's program order
    /// is unknown to `deps` (stale order: the scan path stays
    /// authoritative, same rung as the per-optimizer index).
    pub fn dispatch(&self, deps: &DepGraph) -> Option<Vec<(usize, StmtId)>> {
        let mut out: Vec<(usize, usize, StmtId)> = Vec::new();
        for (id, posting) in self.postings.iter().enumerate() {
            for &s in posting {
                out.push((deps.order_of(s)?, id, s));
            }
        }
        out.sort_unstable();
        Some(out.into_iter().map(|(_, id, s)| (id, s)).collect())
    }

    /// Structural equality against another automaton over the same
    /// catalog, ignoring posting order — the audit/property-test oracle
    /// (incrementally-maintained vs rebuilt-from-scratch).
    pub fn agrees_with(&self, other: &FusedAutomaton) -> bool {
        let norm = |p: &[Vec<StmtId>]| -> Vec<Vec<StmtId>> {
            p.iter()
                .map(|v| {
                    let mut v = v.clone();
                    v.sort_unstable();
                    v
                })
                .collect()
        };
        self.names == other.names
            && self.fused.iter().map(|f| f.as_ref().map(|e| e.exact)).collect::<Vec<_>>()
                == other.fused.iter().map(|f| f.as_ref().map(|e| e.exact)).collect::<Vec<_>>()
            && norm(&self.postings) == norm(&other.postings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;
    use crate::index::StmtIndex;
    use gospel_ir::{Opcode, Operand, OperandPos};

    fn opt_of(name: &str, anchor: &str) -> CompiledOptimizer {
        let spec = format!(
            "OPTIMIZATION {name}\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
             any S: {anchor};\nACTION\n  delete(S);\nEND"
        );
        let (spec, info) = gospel_lang::parse_validated(&spec).unwrap();
        generate(spec, info).unwrap()
    }

    fn prog() -> Program {
        gospel_frontend::compile(
            "program p\ninteger i, x, y\nreal a(10)\nx = 1\ny = x\ndo i = 1, 10\na(i) = x\nend do\nwrite y\nend",
        )
        .unwrap()
    }

    #[test]
    fn shared_prefixes_merge_and_admission_matches_filters() {
        let opts = vec![
            opt_of("A", "S.opc == assign AND type(S.opr_2) == const"),
            opt_of("B", "S.opc == assign AND type(S.opr_2) == const AND type(S.opr_1) == var"),
            opt_of("C", "S.opc == assign"),
            opt_of("D", "S.opr_1 == S.opr_2"), // no opcode bound: not fused
        ];
        let p = prog();
        let auto = FusedAutomaton::build(&opts, &p);
        // A and B share the whole `assign → type(opr_2)==const` prefix; C
        // outputs at the bucket root. One bucket node, one class node for
        // the shared conjunct, one more for B's extra test.
        assert_eq!(auto.states(), 3, "common prefixes must merge");
        assert_eq!(auto.opt_id("a"), Some(0));
        assert_eq!(auto.opt_id("D"), None, "unfiltered anchors are not fused");
        assert_eq!(auto.opt_id("nope"), None);

        // Posting ≡ per-optimizer AnchorFilter admission, for every opt.
        let ix = StmtIndex::build(&p);
        for (i, opt) in opts.iter().enumerate() {
            let Some(id) = auto.opt_id(&opt.name) else { continue };
            assert_eq!(id, i);
            let (clause, _) = &opt.patterns[0];
            let filter = anchor_filter(clause, &clause.vars[0]);
            let mut want = ix.candidates(&filter).unwrap();
            let mut got = auto.posting(id).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "posting of {} diverged from its filter", opt.name);
        }
    }

    #[test]
    fn update_replays_deltas_like_a_rebuild() {
        let opts = vec![
            opt_of("A", "S.opc == assign AND type(S.opr_2) == const"),
            opt_of("B", "S.opc == write"),
        ];
        let mut p = prog();
        let mut auto = FusedAutomaton::build(&opts, &p);

        // Modify: y = x becomes y = 7 — enters A's posting.
        let s1 = p.iter().nth(1).unwrap();
        let mut d = EditDelta::new();
        d.modify(&mut p, s1, OperandPos::A, Operand::int(7));
        auto.update(&p, &d);
        assert!(auto.agrees_with(&FusedAutomaton::build(&opts, &p)), "after modify");
        assert!(auto.posting(0).contains(&s1));

        // Insert + delete in one batch.
        let mut d = EditDelta::new();
        let x = p.syms().lookup("x").unwrap();
        d.insert_after(
            &mut p,
            Some(s1),
            Quad::assign(Operand::Var(x), Operand::int(9)),
        );
        let head = p.first().unwrap();
        d.delete(&mut p, head);
        auto.update(&p, &d);
        assert!(auto.agrees_with(&FusedAutomaton::build(&opts, &p)), "after insert+delete");

        // Structural batch: reclassify against the unchanged trie.
        let mut d = EditDelta::new();
        let last = p.iter().last().unwrap();
        d.insert_after(&mut p, Some(last), Quad::marker(Opcode::EndIf));
        assert!(d.requires_full());
        auto.update(&p, &d);
        assert!(auto.agrees_with(&FusedAutomaton::build(&opts, &p)), "after structural");

        // Undo round-trip: the journal replayed in reverse restores the
        // automaton to its original postings.
        let mut p2 = prog();
        let mut auto2 = FusedAutomaton::build(&opts, &p2);
        let before = FusedAutomaton::build(&opts, &p2);
        let s1 = p2.iter().nth(1).unwrap();
        let mut d = EditDelta::new();
        d.modify(&mut p2, s1, OperandPos::A, Operand::int(7));
        auto2.update(&p2, &d);
        d.undo(&mut p2);
        auto2.reclassify(&p2);
        assert!(auto2.agrees_with(&before));
    }

    #[test]
    fn dispatch_yields_pairs_in_program_order() {
        let opts = vec![
            opt_of("A", "S.opc == assign"),
            opt_of("B", "S.opc == write"),
        ];
        let p = prog();
        let deps = DepGraph::analyze(&p).unwrap();
        let auto = FusedAutomaton::build(&opts, &p);
        let pairs = auto.dispatch(&deps).unwrap();
        assert!(!pairs.is_empty());
        let orders: Vec<usize> = pairs
            .iter()
            .map(|&(_, s)| deps.order_of(s).unwrap())
            .collect();
        assert!(orders.windows(2).all(|w| w[0] <= w[1]), "{orders:?}");
        // Every pair is genuinely admitted; every admitted pair is there.
        let total: usize = (0..opts.len())
            .filter_map(|i| auto.opt_id(&opts[i].name))
            .map(|id| auto.posting(id).len())
            .sum();
        assert_eq!(pairs.len(), total);
    }

    #[test]
    fn explain_admission_replays_the_trie_path() {
        let opts = vec![
            opt_of("A", "S.opc == assign AND type(S.opr_2) == const"),
            opt_of("D", "S.opr_1 == S.opr_2"), // not fused
        ];
        let p = prog();
        let auto = FusedAutomaton::build(&opts, &p);
        // x = 1: assign with a const source — the whole chain passes.
        let s0 = p.first().unwrap();
        assert_eq!(
            auto.explain_admission("A", p.quad(s0)),
            AdmissionVerdict::Admitted
        );
        // y = x: assign, but opr_2 is a var — the class edge fails.
        let s1 = p.iter().nth(1).unwrap();
        let v = auto.explain_admission("A", p.quad(s1));
        assert_eq!(v.edge(), "type(opr_2) == const");
        assert!(matches!(
            v,
            AdmissionVerdict::EdgeFailed {
                pos: 1,
                cls: OperandClass::Const,
                positive: true,
                actual: OperandClass::Var,
            }
        ));
        // write y: rejected at the root opcode bucket.
        let w = p.iter().find(|&s| p.quad(s).op == Opcode::Write).unwrap();
        assert_eq!(
            auto.explain_admission("A", p.quad(w)),
            AdmissionVerdict::OpcodeMiss {
                got: "write",
                expected: vec!["assign"],
            }
        );
        // Unfused and unknown optimizers do not narrow.
        assert_eq!(
            auto.explain_admission("D", p.quad(w)),
            AdmissionVerdict::NotFused
        );
        assert_eq!(
            auto.explain_admission("nope", p.quad(w)),
            AdmissionVerdict::NotFused
        );
    }

    #[test]
    fn stats_accumulate_and_drain() {
        let opts = vec![opt_of("A", "S.opc == assign")];
        let p = prog();
        let mut auto = FusedAutomaton::build(&opts, &p);
        let (states, visits) = auto.take_stats();
        assert_eq!(states, auto.states() as u64);
        // one classification visit per assign-bucket statement
        assert!(visits > 0);
        assert_eq!(auto.take_stats(), (0, 0), "drained");
    }
}
