//! The generator: analyze a validated specification and produce an
//! executable optimizer (the paper's Step 2, Figure 4).

use crate::error::GenerateError;
use gospel_lang::ast::{
    Action, BoolExpr, DependClause, ElemType, PatternClause, Quant, SetExpr, Spec, ValExpr,
};
use gospel_lang::SpecInfo;
use std::collections::HashMap;

/// How a dependence clause with membership constraints is implemented
/// (the two methods of §4, plus the heuristic that chooses per clause).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// "(1) determine statements that are members and then check for the
    /// desired dependence."
    MembersFirst,
    /// "(2) consider the dependence of one statement and check the
    /// corresponding dependent statements for membership."
    DepsFirst,
    /// Estimate both costs per clause and pick the cheaper (the paper's
    /// final configuration).
    #[default]
    Heuristic,
}

/// One compiled dependence clause, annotated with what the generator
/// learned about it.
#[derive(Clone, Debug)]
pub struct CompiledClause {
    /// The clause.
    pub clause: DependClause,
    /// Whether the dependence-driven strategy is applicable: the condition
    /// must be a conjunction whose dependence atoms can generate bindings
    /// (no `OR`/`NOT` above a binding atom).
    pub deps_first_ok: bool,
}

/// An executable optimizer produced by [`generate`] — the counterpart of
/// the four generated C procedures plus their call interface.
#[derive(Clone, Debug)]
pub struct CompiledOptimizer {
    /// The optimization's name (`CTP`, `INX`, …).
    pub name: String,
    /// Application mode from the specification.
    pub mode: gospel_lang::ast::Mode,
    /// Pattern clauses with their resolved element types (`set_up` +
    /// `match` phases).
    pub patterns: Vec<(PatternClause, ElemType)>,
    /// Dependence clauses (`pre` phase).
    pub depends: Vec<CompiledClause>,
    /// Action program (`act` phase).
    pub actions: Vec<Action>,
    /// Strategy configuration for membership-bearing clauses.
    pub strategy: Strategy,
    /// The original specification (kept for source emission).
    pub spec: Spec,
    /// Validation info (variable classes).
    pub info: SpecInfo,
}

impl CompiledOptimizer {
    /// Returns a copy configured with a different membership strategy
    /// (used by the §4 strategy experiments).
    #[must_use]
    pub fn with_strategy(&self, strategy: Strategy) -> CompiledOptimizer {
        CompiledOptimizer {
            strategy,
            ..self.clone()
        }
    }
}

/// Generates an optimizer from a validated specification.
///
/// # Errors
///
/// Returns [`GenerateError::Unsupported`] for the constructs the prototype
/// does not implement (mirroring the paper's listed restrictions):
/// `all` quantifiers in the `Code_Pattern` section and expression-valued
/// `forall` element lists.
pub fn generate(spec: Spec, info: SpecInfo) -> Result<CompiledOptimizer, GenerateError> {
    let decls: HashMap<&str, ElemType> = spec
        .decls
        .iter()
        .flat_map(|d| d.groups.iter().flatten().map(move |n| (n.as_str(), d.ty)))
        .collect();

    let mut patterns = Vec::new();
    for p in &spec.patterns {
        if p.quant == Quant::All {
            return Err(GenerateError::Unsupported(
                "`all` in Code_Pattern is not implemented by the prototype".into(),
            ));
        }
        let ty = match p.vars.len() {
            1 => decls[p.vars[0].as_str()],
            _ => decls[p.vars[0].as_str()], // pair: both share the decl type
        };
        patterns.push((p.clone(), ty));
    }

    let depends = spec
        .depends
        .iter()
        .map(|d| CompiledClause {
            clause: d.clone(),
            deps_first_ok: deps_first_applicable(&d.cond, &d.vars),
        })
        .collect();

    for a in &spec.actions {
        check_action(a)?;
    }

    Ok(CompiledOptimizer {
        name: spec.name.clone(),
        mode: spec.mode,
        patterns,
        depends,
        actions: spec.actions.clone(),
        strategy: Strategy::default(),
        spec,
        info,
    })
}

fn check_action(a: &Action) -> Result<(), GenerateError> {
    if let Action::ForAll { set, body, .. } = a {
        match set {
            SetExpr::Named(_) => {}
            _ => {
                return Err(GenerateError::Unsupported(
                    "expressions as forall element lists are not implemented (paper §3.1)".into(),
                ))
            }
        }
        for b in body {
            check_action(b)?;
        }
    }
    Ok(())
}

/// The dependence-driven strategy needs every clause variable to be
/// generatable from a *positive* dependence atom in a pure conjunction.
fn deps_first_applicable(cond: &BoolExpr, vars: &[String]) -> bool {
    let mut generatable = Vec::new();
    if !conjunction_atoms(cond, &mut generatable) {
        return false;
    }
    vars.iter().all(|v| generatable.iter().any(|g| g == v))
}

/// Walks an `And` tree; returns false on `Or`, or on `Not` containing a
/// dependence atom. Collects variables that appear as an endpoint of a
/// positive dependence atom.
fn conjunction_atoms(b: &BoolExpr, generatable: &mut Vec<String>) -> bool {
    match b {
        BoolExpr::And(l, r) => {
            conjunction_atoms(l, generatable) && conjunction_atoms(r, generatable)
        }
        BoolExpr::Or(_, _) => false,
        BoolExpr::Not(inner) => !contains_dep(inner),
        BoolExpr::Dep { from, to, .. } => {
            for side in [from, to] {
                if let ValExpr::Name(n) = side {
                    generatable.push(n.clone());
                }
            }
            true
        }
        _ => true,
    }
}

fn contains_dep(b: &BoolExpr) -> bool {
    match b {
        BoolExpr::And(l, r) | BoolExpr::Or(l, r) => contains_dep(l) || contains_dep(r),
        BoolExpr::Not(i) => contains_dep(i),
        BoolExpr::Dep { .. } => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_lang::parse_validated;

    #[test]
    fn generates_ctp() {
        let (spec, info) = parse_validated(crate::CTP_EXAMPLE_SPEC).unwrap();
        let opt = generate(spec, info).unwrap();
        assert_eq!(opt.name, "CTP");
        assert_eq!(opt.patterns.len(), 1);
        assert_eq!(opt.depends.len(), 2);
        // `any (Sj,pos): flow_dep(Si, Sj, (=))` can be driven by the edge
        // list: Sj appears as a dep endpoint.
        assert!(opt.depends[0].deps_first_ok);
    }

    #[test]
    fn rejects_all_in_pattern() {
        let src = "OPTIMIZATION X TYPE Stmt: S; PRECOND Code_Pattern all S; ACTION delete(S); END";
        let (spec, info) = parse_validated(src).unwrap();
        assert!(matches!(
            generate(spec, info),
            Err(GenerateError::Unsupported(_))
        ));
    }

    #[test]
    fn or_blocks_deps_first() {
        let src = r#"
OPTIMIZATION X
TYPE Stmt: S, T;
PRECOND
  Code_Pattern
    any S;
  Depend
    any T: flow_dep(S, T) OR anti_dep(S, T);
ACTION
  delete(T);
END
"#;
        let (spec, info) = parse_validated(src).unwrap();
        let opt = generate(spec, info).unwrap();
        assert!(!opt.depends[0].deps_first_ok);
    }

    #[test]
    fn strategy_override() {
        let (spec, info) = parse_validated(crate::CTP_EXAMPLE_SPEC).unwrap();
        let opt = generate(spec, info).unwrap();
        assert_eq!(opt.strategy, Strategy::Heuristic);
        assert_eq!(
            opt.with_strategy(Strategy::DepsFirst).strategy,
            Strategy::DepsFirst
        );
    }
}
