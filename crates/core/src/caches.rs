//! Session-scoped search state carried across `apply` calls.
//!
//! A [`SessionCaches`] bundles everything a [`crate::Driver`] run can
//! reuse from the previous run over the same program: the dependence
//! graph, the statement index, and — per optimizer — the negative match
//! cache and the per-clause anchor filters. The driver keeps each piece
//! consistent by replaying every committed [`EditDelta`] into it; any
//! path that cannot argue consistency (a corrupted commit, a user
//! restore) clears the whole bundle instead.
//!
//! The per-optimizer entries are keyed by upper-cased optimizer name, the
//! same normalization the guard's quarantine map uses. Re-registering a
//! specification under an existing name must call
//! [`SessionCaches::drop_optimizer`]: the old spec's remembered
//! rejections and filters describe the *old* clauses, and letting them
//! answer for the new spec would silently suppress matches.

use std::collections::HashMap;
use std::sync::Arc;

use gospel_dep::DepGraph;
use gospel_ir::{EditDelta, Program};
use gospel_lang::ast::ElemType;

use crate::automaton::FusedAutomaton;
use crate::compile::CompiledOptimizer;
use crate::index::{anchor_filter, AnchorFilter, MatchCache, StmtIndex};

/// Reusable driver state for one program, carried across `apply` calls.
#[derive(Clone, Debug, Default)]
pub struct SessionCaches {
    /// Dependence graph describing the current program exactly, when the
    /// last run kept it current (same contract as the old per-session
    /// `Option<DepGraph>` cache).
    pub deps: Option<DepGraph>,
    /// Statement index over the current program, maintained by delta
    /// replay across applies — including applies of optimizers that
    /// cannot consult it, so it never silently goes stale.
    pub index: Option<StmtIndex>,
    /// The fused anchor automaton over the registered catalog, maintained
    /// by delta replay like the index. Dropped whenever the catalog
    /// changes under it ([`SessionCaches::drop_optimizer`]) and rebuilt
    /// by the session before the next fused apply.
    pub automaton: Option<FusedAutomaton>,
    match_caches: HashMap<String, MatchCache>,
    anchor_filters: HashMap<String, Arc<Vec<Option<AnchorFilter>>>>,
}

impl SessionCaches {
    /// An empty bundle — every first use builds from scratch.
    pub fn new() -> SessionCaches {
        SessionCaches::default()
    }

    /// Drops everything. Called whenever the program changes outside the
    /// driver's journaled commits (a user restore, a corrupted commit).
    pub fn clear(&mut self) {
        self.deps = None;
        self.index = None;
        self.automaton = None;
        self.match_caches.clear();
        self.anchor_filters.clear();
    }

    /// Drops every entry derived from optimizer `name` (case-insensitive).
    /// Required when a specification is re-registered under an existing
    /// name — stale negative matches, filters, and fused-automaton states
    /// compiled from the old spec must not survive into the new one's
    /// runs. The automaton is catalog-scoped, so covering the name at all
    /// voids it outright (the session rebuilds it from the new catalog).
    pub fn drop_optimizer(&mut self, name: &str) {
        let key = normalize(name);
        self.match_caches.remove(&key);
        self.anchor_filters.remove(&key);
        if self
            .automaton
            .as_ref()
            .is_some_and(|a| a.names().contains(&key))
        {
            self.automaton = None;
        }
    }

    /// Ensures the parked automaton was built over exactly the registered
    /// catalog (normalized names, registration order) and describes
    /// `prog`; rebuilds it otherwise. Called by the session before each
    /// fused apply. Rebuilds announce themselves as an `automaton.build`
    /// span on `rec` (the state count lands in `search.fused.states` when
    /// the next driver run drains the build stats).
    pub(crate) fn ensure_automaton(
        &mut self,
        optimizers: &[CompiledOptimizer],
        prog: &Program,
        rec: Option<&Arc<gospel_trace::Recorder>>,
    ) {
        let names: Vec<String> = optimizers.iter().map(|o| normalize(&o.name)).collect();
        match &self.automaton {
            Some(a) if a.covers(&names) => {}
            _ => {
                let span = gospel_trace::Span::open(rec, "automaton.build", &[]);
                let a = FusedAutomaton::build(optimizers, prog);
                span.close(&[(
                    "states",
                    gospel_trace::Value::us(a.states()),
                )]);
                self.automaton = Some(a);
            }
        }
    }

    /// Whether a negative match cache is currently parked for `name`.
    pub fn has_match_cache(&self, name: &str) -> bool {
        self.match_caches.contains_key(&normalize(name))
    }

    /// Whether anchor filters are currently cached for `name`.
    pub fn has_anchor_filters(&self, name: &str) -> bool {
        self.anchor_filters.contains_key(&normalize(name))
    }

    /// Takes `opt`'s parked match cache, or builds a fresh one from its
    /// first pattern clause.
    pub(crate) fn take_match_cache(&mut self, opt: &CompiledOptimizer) -> MatchCache {
        self.match_caches
            .remove(&normalize(&opt.name))
            .unwrap_or_else(|| MatchCache::new(opt.patterns.first().map(|(c, _)| c)))
    }

    /// Parks a match cache for reuse by the next run of `name`. Caches
    /// that can never engage (ineligible first clause) are not worth
    /// keeping.
    pub(crate) fn store_match_cache(&mut self, name: &str, cache: MatchCache) {
        if cache.enabled() {
            self.match_caches.insert(normalize(name), cache);
        }
    }

    /// Replays a committed delta into every *parked* match cache (the
    /// active optimizer's cache is invalidated separately by the driver).
    pub(crate) fn invalidate_match_caches(&mut self, delta: &EditDelta) {
        for c in self.match_caches.values_mut() {
            c.invalidate(delta);
        }
    }

    /// Drops every parked match verdict — the conservative response when
    /// delta-replay consistency can no longer be argued (e.g. after the
    /// verifier catches a diverged dependence graph).
    pub(crate) fn drop_match_verdicts(&mut self) {
        self.match_caches.clear();
    }

    /// The per-pattern-clause anchor filters for `opt`, computed once and
    /// cached under its name. Entry `i` is `None` when clause `i` is not
    /// an anchor-filterable statement clause (the scan path runs there).
    pub(crate) fn filters_for(&mut self, opt: &CompiledOptimizer) -> Arc<Vec<Option<AnchorFilter>>> {
        self.anchor_filters
            .entry(normalize(&opt.name))
            .or_insert_with(|| {
                Arc::new(
                    opt.patterns
                        .iter()
                        .map(|(c, ty)| {
                            (*ty == ElemType::Stmt)
                                .then(|| c.vars.first().map(|v| anchor_filter(c, v)))
                                .flatten()
                        })
                        .collect(),
                )
            })
            .clone()
    }

    /// Audits every cached structure against a from-scratch rebuild and
    /// returns one line per inconsistency (empty = consistent). This is
    /// the chaos campaign's "no state divergence vs. a fresh rebuild"
    /// invariant: the dependence graph and statement index must agree
    /// with fresh analyses of `prog`, and every parked negative match
    /// cache must leave the optimizer's found bindings unchanged.
    pub fn audit(&self, prog: &Program, optimizers: &[CompiledOptimizer]) -> Vec<String> {
        let mut out = Vec::new();
        let fresh = match DepGraph::analyze(prog) {
            Ok(g) => g,
            Err(e) => {
                out.push(format!("program fails fresh dependence analysis: {e}"));
                return out;
            }
        };
        if let Some(g) = &self.deps {
            if !g.agrees_with(&fresh) {
                out.push("cached dependence graph disagrees with fresh analysis".into());
            }
        }
        if let Some(ix) = &self.index {
            if !ix.agrees_with(&StmtIndex::build(prog)) {
                out.push("cached statement index disagrees with fresh rebuild".into());
            }
        }
        if let Some(a) = &self.automaton {
            let mut catalog: Vec<&CompiledOptimizer> = Vec::with_capacity(a.names().len());
            let mut known = true;
            for key in a.names() {
                match optimizers.iter().find(|o| o.name.eq_ignore_ascii_case(key)) {
                    Some(o) => catalog.push(o),
                    None => {
                        out.push(format!(
                            "fused automaton covers unregistered optimizer {key}"
                        ));
                        known = false;
                    }
                }
            }
            if known && !a.agrees_with(&FusedAutomaton::build_refs(&catalog, prog)) {
                out.push("fused automaton disagrees with fresh rebuild".into());
            }
        }
        for (key, cache) in &self.match_caches {
            let Some(opt) = optimizers.iter().find(|o| o.name.eq_ignore_ascii_case(key)) else {
                out.push(format!("match cache parked for unregistered optimizer {key}"));
                continue;
            };
            match crate::driver::bindings_agree_with_cache(prog, &fresh, opt, cache) {
                Ok(true) => {}
                Ok(false) => out.push(format!(
                    "negative match cache of {key} changes the found bindings"
                )),
                Err(e) => out.push(format!("audit search of {key} failed: {e}")),
            }
        }
        out
    }
}

/// The shared cache/quarantine key normalization: upper-cased name.
pub(crate) fn normalize(name: &str) -> String {
    name.to_ascii_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;

    fn ctp() -> CompiledOptimizer {
        let (spec, info) = gospel_lang::parse_validated(crate::CTP_EXAMPLE_SPEC).unwrap();
        generate(spec, info).unwrap()
    }

    #[test]
    fn drop_optimizer_is_case_insensitive_and_surgical() {
        let opt = ctp();
        let mut caches = SessionCaches::new();
        let _ = caches.filters_for(&opt);
        caches.store_match_cache(&opt.name, MatchCache::new(opt.patterns.first().map(|(c, _)| c)));
        assert!(caches.has_anchor_filters("ctp"));
        assert!(caches.has_match_cache("CTP"));
        caches.drop_optimizer("ctp");
        assert!(!caches.has_anchor_filters("CTP"));
        assert!(!caches.has_match_cache("CTP"));
    }

    #[test]
    fn audit_flags_a_stale_index() {
        let prog =
            gospel_frontend::compile("program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend").unwrap();
        let other =
            gospel_frontend::compile("program q\ninteger a\na = 1\na = 2\nwrite a\nend").unwrap();
        let mut caches = SessionCaches::new();
        // An index built from a different program must be caught.
        caches.index = Some(StmtIndex::build(&other));
        let problems = caches.audit(&prog, &[]);
        assert!(
            problems.iter().any(|p| p.contains("statement index")),
            "{problems:?}"
        );
    }
}
