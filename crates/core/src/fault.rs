//! Deterministic fault injection for the driver's recovery paths.
//!
//! A [`FaultPlan`] names one fault to inject at one probe point inside
//! [`crate::Driver::apply`]: a failing dependence analysis, a failing
//! action, a corrupted scratch commit (the committed program is made
//! structurally invalid), a panic mid-search, an exhausted time or fuel
//! budget, or a silently skipped dependence refresh. Plans are matched by
//! optimizer name and application index, so a test — or the CLI's
//! `--inject` flag — can script *exactly* one failure and then assert
//! that the surrounding machinery (rollback, quarantine, degradation,
//! retry, diagnostics) contains it. Nothing here is random: the same plan
//! against the same program fails identically every run.
//!
//! A plan may additionally be **transient** (spelled with a `~` prefix in
//! the CLI syntax): it fires at most once over the plan's lifetime, no
//! matter how many probes match. Clones share the underlying fire
//! counter, so a supervisor that retries a failed apply with a clone of
//! the same session sees the fault *clear* on the retry — the scripted
//! analogue of a timeout caused by a scheduling hiccup rather than by the
//! workload itself.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which probe point fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Dependence analysis returns an error.
    Analysis,
    /// The action interpreter returns an error before running.
    Action,
    /// Actions succeed but the committed program is corrupted (an
    /// unmatched `end do` marker is appended), making it structurally
    /// invalid — the fault a validation gate must catch.
    CorruptCommit,
    /// The search panics (as buggy generated code might); only a
    /// `catch_unwind` boundary can contain it.
    Panic,
    /// The action interpreter panics *after* journaling its edits — the
    /// worst case for rollback, since the in-flight journal must still be
    /// replayed before the panic propagates.
    PanicInAction,
    /// The wall-clock budget "expires": the driver returns
    /// [`crate::RunError::Timeout`] as if the deadline had passed.
    Timeout,
    /// The search-cost budget "expires": the driver returns
    /// [`crate::RunError::FuelExhausted`] as if the fuel ran out.
    Fuel,
    /// The incremental dependence refresh after a committed application is
    /// silently skipped, leaving the maintained graph stale — the scripted
    /// analogue of a missed cache invalidation, and the fault the
    /// degradation ladder (verify → adopt fresh graph → rebuild caches)
    /// must heal.
    CorruptDeps,
}

impl FaultKind {
    /// The stable lowercase slug used by the `--inject` CLI syntax and
    /// campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Analysis => "analysis",
            FaultKind::Action => "action",
            FaultKind::CorruptCommit => "corrupt",
            FaultKind::Panic => "panic",
            FaultKind::PanicInAction => "panic-action",
            FaultKind::Timeout => "timeout",
            FaultKind::Fuel => "fuel",
            FaultKind::CorruptDeps => "corrupt-deps",
        }
    }
}

/// One scripted fault: *kind*, optionally restricted to one optimizer,
/// firing at one application index, optionally at most once ever.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Only fire while running this optimizer (case-insensitive); `None`
    /// fires for any optimizer.
    pub optimizer: Option<String>,
    /// Fire when the driver is about to perform this application
    /// (0-based; `0` = the first application of a matching `apply` call).
    pub at_application: usize,
    /// Fire at most once across the plan's lifetime. Clones share the
    /// fire counter, so a retry running under a clone of the plan sees
    /// the fault cleared.
    pub transient: bool,
    fired: Arc<AtomicUsize>,
}

// The fire counter is runtime bookkeeping, not part of the plan's
// identity — two plans are the same plan even when one has already fired.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &FaultPlan) -> bool {
        self.kind == other.kind
            && self.optimizer == other.optimizer
            && self.at_application == other.at_application
            && self.transient == other.transient
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// A plan injecting `kind` on the first application of any optimizer.
    pub fn new(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            kind,
            optimizer: None,
            at_application: 0,
            transient: false,
            fired: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Restricts the plan to one optimizer name.
    pub fn for_optimizer(mut self, name: impl Into<String>) -> FaultPlan {
        self.optimizer = Some(name.into());
        self
    }

    /// Fires at the given application index instead of the first.
    pub fn at(mut self, application: usize) -> FaultPlan {
        self.at_application = application;
        self
    }

    /// Makes the plan fire at most once over its lifetime (shared with
    /// clones).
    pub fn transient(mut self) -> FaultPlan {
        self.transient = true;
        self
    }

    /// How many times this plan (or any clone of it) has fired.
    pub fn times_fired(&self) -> usize {
        self.fired.load(Ordering::SeqCst)
    }

    /// A copy of this plan with a fresh (zeroed) fire counter — unlike
    /// `clone`, which shares the counter. Batch supervision uses this to
    /// arm the same scripted fault independently per file.
    pub fn rearmed(&self) -> FaultPlan {
        FaultPlan {
            kind: self.kind,
            optimizer: self.optimizer.clone(),
            at_application: self.at_application,
            transient: self.transient,
            fired: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Parses the CLI plan syntax `[~]kind[@OPT][:n]`, where *kind* is
    /// one of `analysis`, `action`, `corrupt`, `panic`, `panic-action`,
    /// `timeout`, `fuel`, `corrupt-deps`; `@OPT` restricts to one
    /// optimizer; `:n` selects the nth application (0-based); a leading
    /// `~` makes the fault transient (fires at most once ever).
    ///
    /// Examples: `panic`, `action@CTP`, `corrupt@LUR:2`, `~timeout@DCE`.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the syntax error.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (text, transient) = match text.strip_prefix('~') {
            Some(rest) => (rest, true),
            None => (text, false),
        };
        let (head, index) = match text.rsplit_once(':') {
            Some((h, n)) => {
                let idx: usize = n
                    .parse()
                    .map_err(|_| format!("`{n}` is not an application index"))?;
                (h, idx)
            }
            None => (text, 0),
        };
        let (kind_text, opt) = match head.split_once('@') {
            Some((k, o)) if !o.is_empty() => (k, Some(o.to_string())),
            Some((_, _)) => return Err("empty optimizer name after `@`".into()),
            None => (head, None),
        };
        let kind = match kind_text {
            "analysis" => FaultKind::Analysis,
            "action" => FaultKind::Action,
            "corrupt" => FaultKind::CorruptCommit,
            "panic" => FaultKind::Panic,
            "panic-action" => FaultKind::PanicInAction,
            "timeout" => FaultKind::Timeout,
            "fuel" => FaultKind::Fuel,
            "corrupt-deps" => FaultKind::CorruptDeps,
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` \
                     (expected analysis|action|corrupt|panic|panic-action\
                     |timeout|fuel|corrupt-deps)"
                ))
            }
        };
        Ok(FaultPlan {
            kind,
            optimizer: opt,
            at_application: index,
            transient,
            fired: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// True when a probe of `kind` in optimizer `optimizer` at
    /// application index `application` should fire. Firing is recorded;
    /// a transient plan consumes its single shot here.
    pub fn fires(&self, kind: FaultKind, optimizer: &str, application: usize) -> bool {
        let matches = self.kind == kind
            && self.at_application == application
            && self
                .optimizer
                .as_deref()
                .is_none_or(|o| o.eq_ignore_ascii_case(optimizer));
        if !matches {
            return false;
        }
        if self.transient {
            // Exactly one probe may claim the shot, even across threads.
            self.fired
                .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        } else {
            self.fired.fetch_add(1, Ordering::SeqCst);
            true
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.transient {
            write!(f, "~")?;
        }
        write!(f, "{}", self.kind.name())?;
        if let Some(o) = &self.optimizer {
            write!(f, "@{o}")?;
        }
        if self.at_application != 0 {
            write!(f, ":{}", self.at_application)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for text in [
            "panic",
            "action@CTP",
            "corrupt@LUR:2",
            "analysis:1",
            "panic-action@FUS:1",
            "timeout@DCE",
            "~timeout",
            "~fuel@CTP:3",
            "corrupt-deps@INX",
        ] {
            let plan = FaultPlan::parse(text).unwrap();
            assert_eq!(plan.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("frobnicate").is_err());
        assert!(FaultPlan::parse("panic@").is_err());
        assert!(FaultPlan::parse("panic:x").is_err());
        assert!(FaultPlan::parse("~~timeout").is_err());
    }

    #[test]
    fn matching_respects_name_and_index() {
        let plan = FaultPlan::new(FaultKind::Action).for_optimizer("CTP").at(1);
        assert!(plan.fires(FaultKind::Action, "ctp", 1));
        assert!(!plan.fires(FaultKind::Action, "ctp", 0));
        assert!(!plan.fires(FaultKind::Action, "DCE", 1));
        assert!(!plan.fires(FaultKind::Panic, "ctp", 1));
        let any = FaultPlan::new(FaultKind::Panic);
        assert!(any.fires(FaultKind::Panic, "whatever", 0));
    }

    #[test]
    fn transient_plans_fire_once_and_share_the_shot_across_clones() {
        let plan = FaultPlan::new(FaultKind::Timeout).transient();
        let clone = plan.clone();
        assert!(plan.fires(FaultKind::Timeout, "CTP", 0));
        assert!(!plan.fires(FaultKind::Timeout, "CTP", 0));
        assert!(
            !clone.fires(FaultKind::Timeout, "CTP", 0),
            "a clone must see the fault already consumed"
        );
        assert_eq!(plan.times_fired(), 1);
        let fresh = plan.rearmed();
        assert_eq!(fresh.times_fired(), 0);
        assert!(fresh.fires(FaultKind::Timeout, "CTP", 0));
    }

    #[test]
    fn persistent_plans_count_every_firing() {
        let plan = FaultPlan::new(FaultKind::Analysis);
        assert!(plan.fires(FaultKind::Analysis, "DCE", 0));
        assert!(plan.fires(FaultKind::Analysis, "DCE", 0));
        assert_eq!(plan.times_fired(), 2);
    }

    #[test]
    fn equality_ignores_the_fire_counter() {
        let a = FaultPlan::new(FaultKind::Timeout).transient();
        let b = a.clone();
        assert!(a.fires(FaultKind::Timeout, "X", 0));
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::new(FaultKind::Timeout));
    }
}
