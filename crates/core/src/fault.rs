//! Deterministic fault injection for the driver's recovery paths.
//!
//! A [`FaultPlan`] names one fault to inject at one probe point inside
//! [`crate::Driver::apply`]: a failing dependence analysis, a failing
//! action, a corrupted scratch commit (the committed program is made
//! structurally invalid), or a panic mid-search. Plans are matched by
//! optimizer name and application index, so a test — or the CLI's
//! `--inject` flag — can script *exactly* one failure and then assert
//! that the surrounding machinery (rollback, quarantine, diagnostics)
//! contains it. Nothing here is random: the same plan against the same
//! program fails identically every run.

use std::fmt;

/// Which probe point fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Dependence analysis returns an error.
    Analysis,
    /// The action interpreter returns an error before running.
    Action,
    /// Actions succeed but the committed program is corrupted (an
    /// unmatched `end do` marker is appended), making it structurally
    /// invalid — the fault a validation gate must catch.
    CorruptCommit,
    /// The search panics (as buggy generated code might); only a
    /// `catch_unwind` boundary can contain it.
    Panic,
    /// The action interpreter panics *after* journaling its edits — the
    /// worst case for rollback, since the in-flight journal must still be
    /// replayed before the panic propagates.
    PanicInAction,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Analysis => "analysis",
            FaultKind::Action => "action",
            FaultKind::CorruptCommit => "corrupt",
            FaultKind::Panic => "panic",
            FaultKind::PanicInAction => "panic-action",
        }
    }
}

/// One scripted fault: *kind*, optionally restricted to one optimizer,
/// firing at one application index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Only fire while running this optimizer (case-insensitive); `None`
    /// fires for any optimizer.
    pub optimizer: Option<String>,
    /// Fire when the driver is about to perform this application
    /// (0-based; `0` = the first application of a matching `apply` call).
    pub at_application: usize,
}

impl FaultPlan {
    /// A plan injecting `kind` on the first application of any optimizer.
    pub fn new(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            kind,
            optimizer: None,
            at_application: 0,
        }
    }

    /// Restricts the plan to one optimizer name.
    pub fn for_optimizer(mut self, name: impl Into<String>) -> FaultPlan {
        self.optimizer = Some(name.into());
        self
    }

    /// Fires at the given application index instead of the first.
    pub fn at(mut self, application: usize) -> FaultPlan {
        self.at_application = application;
        self
    }

    /// Parses the CLI plan syntax `kind[@OPT][:n]`, where *kind* is one
    /// of `analysis`, `action`, `corrupt`, `panic`; `@OPT` restricts to
    /// one optimizer; `:n` selects the nth application (0-based).
    ///
    /// Examples: `panic`, `action@CTP`, `corrupt@LUR:2`.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the syntax error.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (head, index) = match text.rsplit_once(':') {
            Some((h, n)) => {
                let idx: usize = n
                    .parse()
                    .map_err(|_| format!("`{n}` is not an application index"))?;
                (h, idx)
            }
            None => (text, 0),
        };
        let (kind_text, opt) = match head.split_once('@') {
            Some((k, o)) if !o.is_empty() => (k, Some(o.to_string())),
            Some((_, _)) => return Err("empty optimizer name after `@`".into()),
            None => (head, None),
        };
        let kind = match kind_text {
            "analysis" => FaultKind::Analysis,
            "action" => FaultKind::Action,
            "corrupt" => FaultKind::CorruptCommit,
            "panic" => FaultKind::Panic,
            "panic-action" => FaultKind::PanicInAction,
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` \
                     (expected analysis|action|corrupt|panic|panic-action)"
                ))
            }
        };
        Ok(FaultPlan {
            kind,
            optimizer: opt,
            at_application: index,
        })
    }

    /// True when a probe of `kind` in optimizer `optimizer` at
    /// application index `application` should fire.
    pub fn fires(&self, kind: FaultKind, optimizer: &str, application: usize) -> bool {
        self.kind == kind
            && self.at_application == application
            && self
                .optimizer
                .as_deref()
                .is_none_or(|o| o.eq_ignore_ascii_case(optimizer))
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.name())?;
        if let Some(o) = &self.optimizer {
            write!(f, "@{o}")?;
        }
        if self.at_application != 0 {
            write!(f, ":{}", self.at_application)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for text in [
            "panic",
            "action@CTP",
            "corrupt@LUR:2",
            "analysis:1",
            "panic-action@FUS:1",
        ] {
            let plan = FaultPlan::parse(text).unwrap();
            assert_eq!(plan.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("frobnicate").is_err());
        assert!(FaultPlan::parse("panic@").is_err());
        assert!(FaultPlan::parse("panic:x").is_err());
    }

    #[test]
    fn matching_respects_name_and_index() {
        let plan = FaultPlan::new(FaultKind::Action).for_optimizer("CTP").at(1);
        assert!(plan.fires(FaultKind::Action, "ctp", 1));
        assert!(!plan.fires(FaultKind::Action, "ctp", 0));
        assert!(!plan.fires(FaultKind::Action, "DCE", 1));
        assert!(!plan.fires(FaultKind::Panic, "ctp", 1));
        let any = FaultPlan::new(FaultKind::Panic);
        assert!(any.fires(FaultKind::Panic, "whatever", 0));
    }
}
