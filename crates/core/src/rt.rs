//! Runtime values and binding environments for specification evaluation.

use gospel_ir::{LoopId, Opcode, Operand, OperandPos, StmtId};
use std::collections::BTreeMap;

/// A runtime value a specification variable can hold while an optimizer
/// searches for (and acts on) an application point.
#[derive(Clone, Debug, PartialEq)]
pub enum RtVal {
    /// A statement.
    Stmt(StmtId),
    /// A loop (resolved against the dependence snapshot's loop table).
    Loop(LoopId),
    /// An operand value (what `Si.opr_2`, `L.init`, `operand(S, p)` yield).
    Operand(Operand),
    /// An opcode (what `Si.opc` yields).
    Opc(Opcode),
    /// An operand position bound by a `(var, pos)` dependence binding.
    Pos(OperandPos),
    /// A collected set from an `all` clause: statements with the position
    /// at which each matched (when the clause requested one).
    Set(Vec<(StmtId, Option<OperandPos>)>),
    /// An integer (literals in comparisons).
    Int(i64),
    /// A real literal.
    Real(f64),
    /// An unresolved bare name — an opcode spelling such as `assign` in
    /// `Si.opc == assign`.
    Name(String),
}

impl RtVal {
    /// The statement, if this value is one.
    pub fn as_stmt(&self) -> Option<StmtId> {
        match self {
            RtVal::Stmt(s) => Some(*s),
            _ => None,
        }
    }

    /// The loop, if this value is one.
    pub fn as_loop(&self) -> Option<LoopId> {
        match self {
            RtVal::Loop(l) => Some(*l),
            _ => None,
        }
    }

    /// The position, if this value is one (integer literals 1–3 coerce).
    pub fn as_pos(&self) -> Option<OperandPos> {
        match self {
            RtVal::Pos(p) => Some(*p),
            RtVal::Int(n) => OperandPos::from_index(usize::try_from(*n).ok()?),
            _ => None,
        }
    }

    /// The operand, if this value is one (numeric literals coerce to
    /// constants).
    pub fn as_operand(&self) -> Option<Operand> {
        match self {
            RtVal::Operand(o) => Some(o.clone()),
            RtVal::Int(n) => Some(Operand::int(*n)),
            RtVal::Real(r) => Some(Operand::real(*r)),
            _ => None,
        }
    }
}

/// An immutable-ish binding environment. Cloning is cheap enough for the
/// program sizes GENesis works on (the paper's optimizers search a few
/// hundred statements); a `BTreeMap` keeps candidate enumeration
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings {
    map: BTreeMap<String, RtVal>,
}

impl Bindings {
    /// Empty environment.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&RtVal> {
        self.map.get(name)
    }

    /// True if `name` is bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Returns a copy with `name` bound to `val`.
    #[must_use]
    pub fn with(&self, name: &str, val: RtVal) -> Bindings {
        let mut next = self.clone();
        next.map.insert(name.to_owned(), val);
        next
    }

    /// Binds in place.
    pub fn set(&mut self, name: &str, val: RtVal) {
        self.map.insert(name.to_owned(), val);
    }

    /// Iterates bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RtVal)> + '_ {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(RtVal::Int(2).as_pos(), Some(OperandPos::A));
        assert_eq!(RtVal::Int(7).as_pos(), None);
        assert_eq!(RtVal::Int(3).as_operand(), Some(Operand::int(3)));
        assert!(RtVal::Opc(Opcode::Assign).as_operand().is_none());
    }

    #[test]
    fn with_does_not_mutate() {
        let b = Bindings::new();
        let b2 = b.with("x", RtVal::Int(1));
        assert!(!b.is_bound("x"));
        assert!(b2.is_bound("x"));
        assert_eq!(b2.get("x"), Some(&RtVal::Int(1)));
    }
}
