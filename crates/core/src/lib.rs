//! # genesis — an optimizer generator
//!
//! This crate is the Rust reproduction of **GENesis** from *Automatic
//! Generation of Global Optimizers* (Whitfield & Soffa, PLDI 1991): it
//! analyzes a [GOSpeL](gospel_lang) specification and produces an
//! executable optimizer.
//!
//! The pieces correspond one-to-one to the paper's architecture:
//!
//! | Paper | Here |
//! |---|---|
//! | generator (LEX/YACC analysis → C code) | [`generate`] → [`CompiledOptimizer`] (plus [`emit`] for the Figure-6 C/Rust source) |
//! | `set_up_X` / `match_X` / `pre_X` / `act_X` | the compiled pattern, dependence and action phases |
//! | standard driver (Figure 5) | [`Driver`] |
//! | optimizer library | the pattern matchers, the dependence verifier over [`gospel_dep::DepGraph`], and the action interpreter |
//! | constructor + interactive interface | [`Session`] |
//!
//! The generator also reproduces the paper's §4 engineering results: it
//! counts precondition checks and transformation operations (the paper's
//! cost metric, [`Cost`]), and it implements both membership-checking
//! strategies — *members-then-dependences* and
//! *dependences-then-membership* — together with the heuristic that picks
//! the cheaper one per clause ([`Strategy`]).
//!
//! ```
//! use genesis::{generate, ApplyMode, Driver};
//!
//! let ctp = gospel_lang::parse_validated(genesis::CTP_EXAMPLE_SPEC).unwrap();
//! let opt = generate(ctp.0, ctp.1).unwrap();
//!
//! let mut prog = gospel_frontend::compile("
//! program p
//!   integer x, y
//!   x = 3
//!   y = x
//!   write y
//! end
//! ").unwrap();
//!
//! let mut driver = Driver::new(&opt);
//! let report = driver.apply(&mut prog, ApplyMode::AllPoints).unwrap();
//! assert_eq!(report.applications, 2); // y = x became y = 3, then write 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod automaton;
pub mod batch;
mod caches;
mod compile;
mod cost;
mod driver;
pub mod emit;
mod error;
mod explain;
pub mod fault;
pub mod index;
mod rt;
mod session;
mod solve;

pub use automaton::{AdmissionVerdict, FusedAutomaton};
pub use batch::{run_batch, BatchItem, BatchOutcome, BatchPolicy, BatchStatus, BatchSuccess};
pub use caches::SessionCaches;
pub use compile::{generate, CompiledClause, CompiledOptimizer, Strategy};
pub use cost::Cost;
pub use driver::{
    indexed_search_default, matcher_default, ApplyMode, ApplyReport, DegradeStats, Driver,
    MatchSet, MatcherKind,
};
pub use error::{GenerateError, RunError};
pub use explain::{explain, Blocker, CandidateExplanation, ExplainReport, ENV_CAP};
pub use fault::{FaultKind, FaultPlan};
pub use index::{anchor_filter, AnchorFilter, MatchCache, StmtIndex};
pub use rt::{Bindings, RtVal};
pub use session::{Session, SessionOptions};

/// The paper's Figure 1 constant-propagation specification in this
/// implementation's concrete syntax (used by examples and tests).
pub const CTP_EXAMPLE_SPEC: &str = r#"
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=))
                   AND operand(Sj, pos) == Si.opr_1;
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Sl != Si)
                   AND operand(Sj, pos2) == operand(Sj, pos);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
"#;
