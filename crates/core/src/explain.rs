//! The explain engine: *why didn't this optimizer fire here?*
//!
//! Where the match funnel ([`crate::Driver`]'s `funnel.*` counters) says
//! how many candidates died at each stage, this module says **which**
//! stage killed **this** candidate and names the exact discriminator.
//! For every anchor candidate of one optimizer it walks the same three
//! gates the searcher walks, in the same order, and stops at the first
//! one that fails:
//!
//! 1. **admission** — the fused automaton's trie path is replayed via
//!    [`FusedAutomaton::explain_admission`], reporting either the root
//!    opcode-bucket miss or the first failing discriminator edge;
//! 2. **anchor format** — the clause's top-level conjuncts are evaluated
//!    one by one and the first false conjunct is named in GOSpeL
//!    concrete syntax;
//! 3. **the rest of the precondition** — the surviving binding
//!    environments are pushed clause-by-clause through the remaining
//!    pattern clauses and the Depend section (reusing the searcher's own
//!    [`solve_clause`] machinery), and the first clause that kills every
//!    environment is reported.
//!
//! The walk is breadth-first over environments (capped at
//! [`ENV_CAP`] to bound pathological specs — the report says so when the
//! cap bites), so unlike the searcher it does not stop at the first
//! witness: it exists to attribute failure, not to find bindings fast.
//!
//! [`solve_clause`]: crate::solve::Searcher::solve_clause

use crate::automaton::{AdmissionVerdict, FusedAutomaton};
use crate::compile::CompiledOptimizer;
use crate::error::RunError;
use crate::rt::{Bindings, RtVal};
use crate::solve::{eval_format, Searcher};
use gospel_dep::DepGraph;
use gospel_ir::{LoopTable, Program, StmtId};
use gospel_lang::ast::{BoolExpr, ElemType, PatternClause, Quant};
use gospel_lang::{pretty_bool, pretty_depend_clause, pretty_pattern_clause};
use std::fmt;

/// Environment-frontier cap: clause-by-clause survival tracking keeps at
/// most this many binding environments alive. The catalog's optimizers
/// stay in single digits; the cap only guards degenerate specifications,
/// and [`ExplainReport::truncated`] records when it bit.
pub const ENV_CAP: usize = 512;

/// The first gate that killed one anchor candidate, with the exact
/// discriminator that failed.
#[derive(Clone, Debug, PartialEq)]
pub enum Blocker {
    /// The fused automaton's root opcode bucket rejected the statement.
    OpcodeMiss {
        /// The statement's opcode.
        got: String,
        /// The anchor's admissible opcode set.
        expected: Vec<String>,
    },
    /// A discriminator edge on the automaton's trie path rejected the
    /// statement.
    EdgeFailed {
        /// The failing edge in GOSpeL syntax, e.g. `type(opr_2) == const`.
        edge: String,
        /// The operand's actual class keyword.
        actual: String,
    },
    /// A top-level conjunct of a pattern clause's format is false.
    FormatFailed {
        /// 0-based pattern-clause index (0 = the anchor clause).
        clause: usize,
        /// The failing conjunct in GOSpeL syntax.
        conjunct: String,
    },
    /// An `any` pattern clause after the anchor found no witness under
    /// any surviving binding.
    NoWitness {
        /// 0-based pattern-clause index.
        clause: usize,
        /// The clause in GOSpeL syntax.
        clause_text: String,
    },
    /// A `no` pattern clause matched an element it forbids, under every
    /// surviving binding.
    Forbidden {
        /// 0-based pattern-clause index.
        clause: usize,
        /// The clause in GOSpeL syntax.
        clause_text: String,
        /// The matching element, e.g. `S4`.
        witness: String,
    },
    /// An `any` Depend clause has no solution under any surviving
    /// binding.
    DepUnsatisfied {
        /// 0-based Depend-clause index.
        clause: usize,
        /// The clause in GOSpeL syntax.
        clause_text: String,
    },
    /// A `no` Depend clause found a solution — a forbidden dependence —
    /// under every surviving binding.
    DepForbidden {
        /// 0-based Depend-clause index.
        clause: usize,
        /// The clause in GOSpeL syntax.
        clause_text: String,
        /// The forbidden solution's bindings, e.g. `Sl = S4`.
        witness: String,
    },
}

impl fmt::Display for Blocker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Blocker::OpcodeMiss { got, expected } => write!(
                f,
                "not admitted: opcode `{got}` is outside the anchor's \
                 opcode set {{{}}} (rejected at the automaton's root bucket)",
                expected.join(", ")
            ),
            Blocker::EdgeFailed { edge, actual } => write!(
                f,
                "not admitted: automaton edge `{edge}` failed (the operand is {actual})"
            ),
            Blocker::FormatFailed { clause, conjunct } => write!(
                f,
                "format of pattern clause {} failed at conjunct `{conjunct}`",
                clause + 1
            ),
            Blocker::NoWitness { clause, clause_text } => write!(
                f,
                "pattern clause {} (`{clause_text}`) found no witness",
                clause + 1
            ),
            Blocker::Forbidden {
                clause,
                clause_text,
                witness,
            } => write!(
                f,
                "pattern clause {} (`{clause_text}`) forbids {witness}, which matches",
                clause + 1
            ),
            Blocker::DepUnsatisfied { clause, clause_text } => write!(
                f,
                "dependence clause {} (`{clause_text}`) has no solution",
                clause + 1
            ),
            Blocker::DepForbidden {
                clause,
                clause_text,
                witness,
            } => write!(
                f,
                "dependence clause {} (`{clause_text}`) found a forbidden \
                 dependence: {witness}",
                clause + 1
            ),
        }
    }
}

/// One anchor candidate's verdict: the element examined and the first
/// gate that killed it (`None` = the optimizer fires here).
#[derive(Clone, Debug)]
pub struct CandidateExplanation {
    /// The anchor element, rendered (`S3 (assign)`, `L0`, `(L0, L1)`).
    pub anchor: String,
    /// The anchor statement, when the anchor is statement-shaped.
    pub stmt: Option<StmtId>,
    /// The first failing gate; `None` when the precondition holds.
    pub blocker: Option<Blocker>,
}

/// The full explain walk of one optimizer over one program.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// The optimizer's name as registered.
    pub optimizer: String,
    /// Whether the fused automaton narrows this optimizer's anchor.
    pub fused: bool,
    /// True when [`ENV_CAP`] truncated an environment frontier — blocker
    /// attribution past the truncation point may name a later clause
    /// than the searcher would.
    pub truncated: bool,
    /// One verdict per anchor candidate, in program order.
    pub candidates: Vec<CandidateExplanation>,
}

impl ExplainReport {
    /// How many anchor candidates satisfy the whole precondition.
    pub fn fired(&self) -> usize {
        self.candidates.iter().filter(|c| c.blocker.is_none()).count()
    }

    /// The first blocked candidate's blocker, if any.
    pub fn first_blocker(&self) -> Option<&Blocker> {
        self.candidates.iter().find_map(|c| c.blocker.as_ref())
    }

    /// Human-readable narrative, one line per candidate.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}: {} anchor candidate(s), {} satisfy the precondition{}",
            self.optimizer,
            self.candidates.len(),
            self.fired(),
            if self.fused { " [fused anchor]" } else { "" }
        );
        if self.truncated {
            let _ = writeln!(
                s,
                "  note: environment frontier truncated at {ENV_CAP}; \
                 attribution past that point is approximate"
            );
        }
        for c in &self.candidates {
            match &c.blocker {
                None => {
                    let _ = writeln!(s, "  {}: FIRES", c.anchor);
                }
                Some(b) => {
                    let _ = writeln!(s, "  {}: {b}", c.anchor);
                }
            }
        }
        s
    }
}

/// Anchor-shaped candidate tuples for one element type — the explain
/// engine's (unfiltered) counterpart of the searcher's candidate
/// enumeration.
fn element_candidates(prog: &Program, loops: &LoopTable, ty: ElemType) -> Vec<Vec<RtVal>> {
    match ty {
        ElemType::Stmt => prog.iter().map(|s| vec![RtVal::Stmt(s)]).collect(),
        ElemType::Loop => loops.iter().map(|l| vec![RtVal::Loop(l.id)]).collect(),
        ElemType::NestedLoops => loops
            .nested_pairs()
            .into_iter()
            .map(|(o, i)| vec![RtVal::Loop(o), RtVal::Loop(i)])
            .collect(),
        ElemType::TightLoops => loops
            .tight_pairs(prog)
            .into_iter()
            .map(|(o, i)| vec![RtVal::Loop(o), RtVal::Loop(i)])
            .collect(),
        ElemType::AdjacentLoops => loops
            .adjacent_pairs(prog)
            .into_iter()
            .map(|(a, b)| vec![RtVal::Loop(a), RtVal::Loop(b)])
            .collect(),
    }
}

fn render_val(v: &RtVal) -> String {
    match v {
        RtVal::Stmt(s) => s.to_string(),
        RtVal::Loop(l) => l.to_string(),
        other => format!("{other:?}"),
    }
}

fn render_candidate(prog: &Program, cand: &[RtVal]) -> String {
    let parts: Vec<String> = cand
        .iter()
        .map(|v| match v {
            RtVal::Stmt(s) => format!("{s} ({})", prog.quad(*s).op.gospel_name()),
            other => render_val(other),
        })
        .collect();
    if parts.len() == 1 {
        parts.into_iter().next().unwrap()
    } else {
        format!("({})", parts.join(", "))
    }
}

/// Splits a format into its top-level conjuncts, in source order.
fn conjuncts(b: &BoolExpr) -> Vec<&BoolExpr> {
    let mut out = Vec::new();
    fn walk<'b>(b: &'b BoolExpr, out: &mut Vec<&'b BoolExpr>) {
        match b {
            BoolExpr::And(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            other => out.push(other),
        }
    }
    walk(b, &mut out);
    out
}

/// Walks every anchor candidate of `opt` through admission, format and
/// the remaining precondition, and reports where each one stopped.
/// `only_stmt` restricts the walk to candidates anchored at that
/// statement (the CLI's `--stmt` flag).
///
/// # Errors
///
/// Propagates [`RunError`] from format or dependence evaluation — the
/// same errors the searcher itself would raise (e.g. an `all` quantifier
/// in `Code_Pattern`).
pub fn explain(
    prog: &Program,
    deps: &DepGraph,
    opt: &CompiledOptimizer,
    auto: &FusedAutomaton,
    only_stmt: Option<StmtId>,
) -> Result<ExplainReport, RunError> {
    let loops = deps.loops();
    let Some((anchor_clause, anchor_ty)) = opt.patterns.first() else {
        return Err(RunError::Action(
            "optimizer has no pattern clause to explain".into(),
        ));
    };
    if anchor_clause.quant != Quant::Any {
        return Err(RunError::Action(
            "`explain` requires an `any` anchor clause".into(),
        ));
    }
    let fused = auto.opt_id(&opt.name).is_some();
    let mut report = ExplainReport {
        optimizer: opt.name.clone(),
        fused,
        truncated: false,
        candidates: Vec::new(),
    };
    for cand in element_candidates(prog, loops, *anchor_ty) {
        let stmt = cand.first().and_then(RtVal::as_stmt);
        if let Some(only) = only_stmt {
            if stmt != Some(only) {
                continue;
            }
        }
        let blocker = explain_candidate(
            prog,
            deps,
            opt,
            auto,
            anchor_clause,
            &cand,
            &mut report.truncated,
        )?;
        report.candidates.push(CandidateExplanation {
            anchor: render_candidate(prog, &cand),
            stmt,
            blocker,
        });
    }
    Ok(report)
}

/// One candidate's walk; returns the first failing gate.
fn explain_candidate(
    prog: &Program,
    deps: &DepGraph,
    opt: &CompiledOptimizer,
    auto: &FusedAutomaton,
    anchor_clause: &PatternClause,
    cand: &[RtVal],
    truncated: &mut bool,
) -> Result<Option<Blocker>, RunError> {
    let loops = deps.loops();
    // Gate 1: the fused automaton's admission path.
    if let Some(RtVal::Stmt(s)) = cand.first() {
        match auto.explain_admission(&opt.name, prog.quad(*s)) {
            AdmissionVerdict::OpcodeMiss { got, expected } => {
                return Ok(Some(Blocker::OpcodeMiss {
                    got: got.to_owned(),
                    expected: expected.iter().map(|&e| e.to_owned()).collect(),
                }))
            }
            v @ AdmissionVerdict::EdgeFailed { actual, .. } => {
                return Ok(Some(Blocker::EdgeFailed {
                    edge: v.edge(),
                    actual: actual.keyword().to_owned(),
                }))
            }
            AdmissionVerdict::NotFused | AdmissionVerdict::Admitted => {}
        }
    }
    // Gate 2: the anchor format, conjunct by conjunct.
    let mut env = Bindings::new();
    for (v, val) in anchor_clause.vars.iter().zip(cand) {
        env.set(v, val.clone());
    }
    if let Some(format) = &anchor_clause.format {
        let mut checks = 0u64;
        for conjunct in conjuncts(format) {
            if !eval_format(prog, loops, &env, conjunct, &mut checks)? {
                return Ok(Some(Blocker::FormatFailed {
                    clause: 0,
                    conjunct: pretty_bool(conjunct),
                }));
            }
        }
    }
    // Gate 3: the remaining pattern clauses, breadth-first over
    // surviving environments.
    let mut envs = vec![env];
    for (idx, (clause, ty)) in opt.patterns.iter().enumerate().skip(1) {
        let cands = element_candidates(prog, loops, *ty);
        match clause.quant {
            Quant::Any => {
                let mut next = Vec::new();
                for env in &envs {
                    'cands: for c in &cands {
                        let mut env2 = env.clone();
                        for (v, val) in clause.vars.iter().zip(c) {
                            if let Some(existing) = env2.get(v) {
                                if existing != val {
                                    continue 'cands;
                                }
                            }
                            env2.set(v, val.clone());
                        }
                        if clause_format_holds(prog, loops, clause, &env2)? {
                            if next.len() < ENV_CAP {
                                next.push(env2);
                            } else {
                                *truncated = true;
                            }
                        }
                    }
                }
                if next.is_empty() {
                    return Ok(Some(Blocker::NoWitness {
                        clause: idx,
                        clause_text: pretty_pattern_clause(clause),
                    }));
                }
                envs = next;
            }
            Quant::No => {
                let mut surviving = Vec::new();
                let mut witness = String::new();
                for env in envs {
                    let mut dead = false;
                    for c in &cands {
                        let mut env2 = env.clone();
                        for (v, val) in clause.vars.iter().zip(c) {
                            env2.set(v, val.clone());
                        }
                        if clause_format_holds(prog, loops, clause, &env2)? {
                            dead = true;
                            witness = render_candidate(prog, c);
                            break;
                        }
                    }
                    if !dead {
                        surviving.push(env);
                    }
                }
                if surviving.is_empty() {
                    return Ok(Some(Blocker::Forbidden {
                        clause: idx,
                        clause_text: pretty_pattern_clause(clause),
                        witness,
                    }));
                }
                envs = surviving;
            }
            Quant::All => {
                return Err(RunError::Action(
                    "`all` in Code_Pattern is rejected at generation time".into(),
                ))
            }
        }
    }
    // Gate 4: the Depend section, clause by clause, reusing the
    // searcher's solver so strategy selection and edge semantics are
    // identical to a real run.
    let mut searcher = Searcher::new(prog, deps, opt);
    for (di, cc) in opt.depends.iter().enumerate() {
        match cc.clause.quant {
            Quant::Any => {
                let mut next = Vec::new();
                for env in &envs {
                    for sol in searcher.solve_clause(cc, env, false)? {
                        if next.len() < ENV_CAP {
                            next.push(sol);
                        } else {
                            *truncated = true;
                        }
                    }
                }
                if next.is_empty() {
                    return Ok(Some(Blocker::DepUnsatisfied {
                        clause: di,
                        clause_text: pretty_depend_clause(&cc.clause),
                    }));
                }
                envs = next;
            }
            Quant::No => {
                let mut surviving = Vec::new();
                let mut witness = String::new();
                for env in envs {
                    let sols = searcher.solve_clause(cc, &env, false)?;
                    match sols.first() {
                        Some(sol) => {
                            witness = cc
                                .clause
                                .vars
                                .iter()
                                .filter_map(|v| {
                                    sol.get(v).map(|val| format!("{v} = {}", render_val(val)))
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                        }
                        None => surviving.push(env),
                    }
                }
                if surviving.is_empty() {
                    return Ok(Some(Blocker::DepForbidden {
                        clause: di,
                        clause_text: pretty_depend_clause(&cc.clause),
                        witness,
                    }));
                }
                envs = surviving;
            }
            Quant::All => {
                // `all` collects a set; it never kills an environment.
                // Mirror the searcher's collection so later clauses see
                // the same bindings a real run would.
                let mut next = Vec::new();
                for env in &envs {
                    let sols = searcher.solve_clause(cc, env, true)?;
                    let mut env2 = env.clone();
                    for (v, pv) in cc.clause.vars.iter().zip(&cc.clause.pos_vars) {
                        let mut collected: Vec<(StmtId, Option<gospel_ir::OperandPos>)> =
                            Vec::new();
                        for sol in &sols {
                            let stmt = sol.get(v).and_then(RtVal::as_stmt);
                            let pos = pv
                                .as_ref()
                                .and_then(|p| sol.get(p))
                                .and_then(RtVal::as_pos);
                            if let Some(s) = stmt {
                                if !collected.iter().any(|(cs, cp)| *cs == s && *cp == pos) {
                                    collected.push((s, pos));
                                }
                            }
                        }
                        env2.set(v, RtVal::Set(collected));
                    }
                    next.push(env2);
                }
                envs = next;
            }
        }
    }
    Ok(None)
}

fn clause_format_holds(
    prog: &Program,
    loops: &LoopTable,
    clause: &PatternClause,
    env: &Bindings,
) -> Result<bool, RunError> {
    match &clause.format {
        None => Ok(true),
        Some(f) => {
            let mut checks = 0u64;
            eval_format(prog, loops, env, f, &mut checks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;
    use gospel_lang::parse_validated;

    fn opt_of(src: &str) -> CompiledOptimizer {
        let (s, i) = parse_validated(src).unwrap();
        generate(s, i).unwrap()
    }

    fn ctp() -> CompiledOptimizer {
        opt_of(crate::CTP_EXAMPLE_SPEC)
    }

    fn world(src: &str) -> (Program, DepGraph) {
        let p = gospel_frontend::compile(src).unwrap();
        let d = DepGraph::analyze(&p).unwrap();
        (p, d)
    }

    #[test]
    fn names_the_failing_automaton_edge_and_opcode_bucket() {
        let (p, d) = world("program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend");
        let opt = ctp();
        let auto = FusedAutomaton::build(std::slice::from_ref(&opt), &p);
        let report = explain(&p, &d, &opt, &auto, None).unwrap();
        assert!(report.fused);
        assert_eq!(report.candidates.len(), 3);
        // x = 3 propagates into y = x: the precondition holds.
        assert!(report.candidates[0].blocker.is_none());
        // y = x: admitted opcode, but the const edge fails.
        assert_eq!(
            report.candidates[1].blocker,
            Some(Blocker::EdgeFailed {
                edge: "type(opr_2) == const".into(),
                actual: "var".into(),
            })
        );
        // write y: rejected at the root bucket.
        assert_eq!(
            report.candidates[2].blocker,
            Some(Blocker::OpcodeMiss {
                got: "write".into(),
                expected: vec!["assign".into()],
            })
        );
        assert_eq!(report.fired(), 1);
        let text = report.to_text();
        assert!(text.contains("type(opr_2) == const"), "{text}");
        assert!(text.contains("FIRES"), "{text}");
    }

    #[test]
    fn names_the_unsatisfied_and_forbidden_dependence_clauses() {
        // x is never used: CTP's `any` flow-dep clause has no solution.
        let (p, d) = world("program p\ninteger x\nx = 3\nend");
        let opt = ctp();
        let auto = FusedAutomaton::build(std::slice::from_ref(&opt), &p);
        let report = explain(&p, &d, &opt, &auto, None).unwrap();
        match &report.candidates[0].blocker {
            Some(Blocker::DepUnsatisfied { clause: 0, clause_text }) => {
                assert!(clause_text.contains("flow_dep(Si, Sj"), "{clause_text}");
            }
            other => panic!("expected DepUnsatisfied, got {other:?}"),
        }

        // Two defs of x reach y = x: the `no` clause finds the second
        // (forbidden) reaching definition.
        let (p, d) = world(
            "program p\ninteger x, y, z\nread z\nx = 3\nif (z > 0) then\nx = 4\nend if\ny = x\nend",
        );
        let auto = FusedAutomaton::build(std::slice::from_ref(&opt), &p);
        let report = explain(&p, &d, &opt, &auto, None).unwrap();
        let anchors: Vec<&CandidateExplanation> = report
            .candidates
            .iter()
            .filter(|c| c.blocker.is_some())
            .collect();
        assert!(
            anchors.iter().any(|c| matches!(
                c.blocker,
                Some(Blocker::DepForbidden { clause: 1, .. })
            )),
            "expected a DepForbidden blocker on the second Depend clause: {:?}",
            report.candidates
        );
    }

    #[test]
    fn names_the_failing_format_conjunct_past_an_inexact_filter() {
        // The trailing self-comparison conjunct is not capturable by the
        // anchor filter, so admission passes and the format walk must
        // attribute the failure.
        let opt = opt_of(
            "OPTIMIZATION SELFA\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
             any S: S.opc == assign AND type(S.opr_2) == const AND S.opr_1 == S.opr_2;\n\
             ACTION\n  delete(S);\nEND",
        );
        let (p, d) = world("program p\ninteger x\nx = 3\nend");
        let auto = FusedAutomaton::build(std::slice::from_ref(&opt), &p);
        let report = explain(&p, &d, &opt, &auto, None).unwrap();
        assert_eq!(
            report.candidates[0].blocker,
            Some(Blocker::FormatFailed {
                clause: 0,
                conjunct: "S.opr_1 == S.opr_2".into(),
            })
        );
    }

    #[test]
    fn restricts_to_one_statement_and_counts_loop_anchors() {
        let (p, d) = world("program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend");
        let opt = ctp();
        let auto = FusedAutomaton::build(std::slice::from_ref(&opt), &p);
        let s1 = p.iter().nth(1).unwrap();
        let report = explain(&p, &d, &opt, &auto, Some(s1)).unwrap();
        assert_eq!(report.candidates.len(), 1);
        assert_eq!(report.candidates[0].stmt, Some(s1));

        // A loop-anchored optimizer enumerates the loop table and is not
        // narrowed by the automaton.
        let lur = opt_of(
            "OPTIMIZATION LOOPY\nTYPE\n  Loop: L;\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
             any L;\n  Depend\n    no S: mem(S, L), ctrl_dep(L.head, S);\n\
             ACTION\n  delete(L.head);\nEND",
        );
        let (p, d) = world(
            "program p\ninteger i, x\nreal a(10)\ndo i = 1, 10\na(i) = x\nend do\nend",
        );
        let auto = FusedAutomaton::build(std::slice::from_ref(&lur), &p);
        let report = explain(&p, &d, &lur, &auto, None).unwrap();
        assert!(!report.fused);
        assert_eq!(report.candidates.len(), 1);
        match &report.candidates[0].blocker {
            Some(Blocker::DepForbidden { clause: 0, witness, .. }) => {
                assert!(!witness.is_empty());
            }
            None => {} // no control dep recorded for loop bodies: fires
            other => panic!("unexpected blocker {other:?}"),
        }
    }
}
