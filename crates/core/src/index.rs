//! Indexed candidate search: a [`StmtIndex`] keying the program's
//! statements by opcode, defined variable, used variable and enclosing
//! loop, plus a delta-invalidated negative [`MatchCache`].
//!
//! Both structures serve the driver hot loop. The index lets
//! `Searcher::pattern_candidates` start from the opcode bucket named by
//! an anchor clause (`any Si: Si.opc == assign AND …`) instead of
//! scanning every statement per fixpoint iteration, and it answers the
//! members-then-deps cost model's "how big is this loop body" question
//! in O(1). The cache remembers anchors an optimizer's *anchor-local*
//! first pattern clause already rejected, so a converging run stops
//! re-checking clean regions.
//!
//! Maintenance follows the same contract as `DepGraph::update`: replay
//! the [`EditDelta`] journal in O(|delta| + touched-bucket) work, with a
//! full rebuild whenever the batch touched control structure
//! (`EditDelta::requires_full`).

use gospel_ir::{EditDelta, Opcode, Operand, Program, Quad, StmtId, Sym};
use gospel_lang::ast::{Attr, BoolExpr, CmpOp, OperandClass, PatternClause, ValExpr};
use std::collections::HashMap;

/// Reverse record for one indexed statement: everything needed to remove
/// it from the buckets without consulting the (possibly already-edited)
/// program.
#[derive(Clone, Debug)]
struct StmtEntry {
    /// `Opcode::gospel_name` — the `by_opcode` bucket key.
    op_key: &'static str,
    /// Operand class per position (`opr_1`..`opr_3`), for the
    /// [`AnchorFilter`] class constraints.
    cls: [OperandClass; 3],
    /// `Quad::def_base` — the `by_def` bucket key, if defining.
    def: Option<Sym>,
    /// `Quad::used_vars` — the `by_use` bucket keys.
    uses: Vec<Sym>,
    /// Innermost enclosing loop, identified by its header statement
    /// (a loop's own head/end belong to the surrounding context, the
    /// `LoopTable` convention).
    encl: Option<StmtId>,
}

pub(crate) fn class_of(o: &Operand) -> OperandClass {
    match o {
        Operand::Const(_) => OperandClass::Const,
        Operand::Var(_) => OperandClass::Var,
        Operand::Elem { .. } => OperandClass::Elem,
        Operand::None => OperandClass::None,
    }
}

/// Statements of one program keyed four ways — by opcode, by defined
/// variable, by used variable, and by enclosing loop — maintained
/// incrementally from [`EditDelta`] journals.
///
/// Bucket order is unspecified; consumers needing program order sort by
/// `DepGraph::order_of` (which the driver keeps fresh whenever the index
/// is in play).
#[derive(Clone, Debug, Default)]
pub struct StmtIndex {
    by_opcode: HashMap<&'static str, Vec<StmtId>>,
    by_def: HashMap<Sym, Vec<StmtId>>,
    by_use: HashMap<Sym, Vec<StmtId>>,
    /// Direct members of each loop, keyed by the loop's header statement.
    by_loop: HashMap<StmtId, Vec<StmtId>>,
    /// Transitive body size per loop header: exactly the number of live
    /// statements strictly between the header and its `end do` — what
    /// `LoopTable::body(..).count()` would report.
    body_count: HashMap<StmtId, usize>,
    /// Dense per-statement reverse records, indexed by `StmtId::index`.
    entries: Vec<Option<StmtEntry>>,
    live: usize,
}

fn is_head(op: Opcode) -> bool {
    op.is_loop_head()
}

impl StmtIndex {
    /// Builds the index from scratch with one walk over the program.
    pub fn build(prog: &Program) -> StmtIndex {
        let mut ix = StmtIndex {
            entries: Vec::new(),
            ..StmtIndex::default()
        };
        ix.entries.resize_with(prog.id_bound(), || None);
        // Marker-stack walk: no LoopTable needed, same enclosing-loop
        // semantics (head/end belong to the parent context).
        let mut stack: Vec<StmtId> = Vec::new();
        for id in prog.iter() {
            let quad = prog.quad(id);
            match quad.op {
                Opcode::DoHead | Opcode::ParDo => {
                    ix.insert(id, quad, stack.last().copied());
                    stack.push(id);
                }
                Opcode::EndDo => {
                    stack.pop();
                    ix.insert(id, quad, stack.last().copied());
                }
                _ => ix.insert(id, quad, stack.last().copied()),
            }
        }
        ix
    }

    /// Number of indexed (live) statements.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Statements whose opcode's `gospel_name` is `key` (unordered).
    pub fn by_opcode(&self, key: &str) -> &[StmtId] {
        self.by_opcode.get(key).map_or(&[], Vec::as_slice)
    }

    /// Statements defining `sym` (scalar, LCV, or array written into).
    pub fn by_def(&self, sym: Sym) -> &[StmtId] {
        self.by_def.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// Statements reading `sym` (including subscript reads).
    pub fn by_use(&self, sym: Sym) -> &[StmtId] {
        self.by_use.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// Direct members of the loop headed at `head` (unordered; nested
    /// statements belong to their own innermost loop's bucket).
    pub fn loop_members(&self, head: StmtId) -> &[StmtId] {
        self.by_loop.get(&head).map_or(&[], Vec::as_slice)
    }

    /// Transitive body size of the loop headed at `head`: the number of
    /// live statements strictly between the header and its `end do` —
    /// the value `LoopTable::body(prog, l).count()` computes in O(body).
    pub fn body_size(&self, head: StmtId) -> Option<usize> {
        self.body_count.get(&head).copied()
    }

    /// Innermost enclosing loop header of `id`, if the statement is
    /// indexed and inside a loop.
    pub fn enclosing(&self, id: StmtId) -> Option<StmtId> {
        self.entries.get(id.index())?.as_ref()?.encl
    }

    /// Every statement an [`AnchorFilter`] admits, unordered: the union
    /// of the filter's opcode buckets, narrowed by its operand-class
    /// constraints against the per-statement entries. `None` when the
    /// filter has no opcode bound (nothing to start from — the scan path
    /// is as good).
    ///
    /// The result over-approximates the clause: a statement outside it
    /// provably fails the clause's opcode disjunction or one of its
    /// top-level `type(var.opr_N)` conjuncts, so restricting any
    /// quantifier's candidates to it is sound.
    pub fn candidates(&self, filter: &AnchorFilter) -> Option<Vec<StmtId>> {
        let opcodes = filter.opcodes.as_ref()?;
        let mut out = Vec::new();
        for key in opcodes {
            for &id in self.by_opcode(key) {
                let entry = self.entries[id.index()]
                    .as_ref()
                    .expect("bucket members are indexed");
                if filter
                    .classes
                    .iter()
                    .all(|&(pos, cls, positive)| (entry.cls[pos] == cls) == positive)
                {
                    out.push(id);
                }
            }
        }
        Some(out)
    }

    fn insert(&mut self, id: StmtId, quad: &Quad, encl: Option<StmtId>) {
        let entry = StmtEntry {
            op_key: quad.op.gospel_name(),
            cls: [class_of(&quad.dst), class_of(&quad.a), class_of(&quad.b)],
            def: quad.def_base(),
            uses: quad.used_vars(),
            encl,
        };
        self.by_opcode.entry(entry.op_key).or_default().push(id);
        if let Some(d) = entry.def {
            self.by_def.entry(d).or_default().push(id);
        }
        for &u in &entry.uses {
            self.by_use.entry(u).or_default().push(id);
        }
        if is_head(quad.op) {
            self.body_count.entry(id).or_insert(0);
            self.by_loop.entry(id).or_default();
        }
        if let Some(h) = encl {
            self.by_loop.entry(h).or_default().push(id);
        }
        // Every enclosing head up the chain gains one body statement.
        let mut cur = encl;
        while let Some(h) = cur {
            *self.body_count.entry(h).or_insert(0) += 1;
            cur = self.entries[h.index()].as_ref().and_then(|e| e.encl);
        }
        if id.index() >= self.entries.len() {
            self.entries.resize_with(id.index() + 1, || None);
        }
        self.entries[id.index()] = Some(entry);
        self.live += 1;
    }

    fn remove(&mut self, id: StmtId) {
        let Some(entry) = self.entries[id.index()].take() else {
            return;
        };
        remove_from(self.by_opcode.get_mut(entry.op_key), id);
        if let Some(d) = entry.def {
            remove_from(self.by_def.get_mut(&d), id);
        }
        for u in &entry.uses {
            remove_from(self.by_use.get_mut(u), id);
        }
        if let Some(h) = entry.encl {
            remove_from(self.by_loop.get_mut(&h), id);
        }
        let mut cur = entry.encl;
        while let Some(h) = cur {
            if let Some(n) = self.body_count.get_mut(&h) {
                *n = n.saturating_sub(1);
            }
            cur = self.entries[h.index()].as_ref().and_then(|e| e.encl);
        }
        self.live -= 1;
    }

    /// Replays one committed edit batch, leaving the index exactly as
    /// [`StmtIndex::build`] over the post-edit program would.
    ///
    /// Non-structural batches are replayed in O(|delta| + touched
    /// buckets): every touched statement is unindexed from its recorded
    /// entry, then re-derived from the current program (the enclosing
    /// loop comes from a short backwards walk to the nearest untouched
    /// neighbour, sound because non-structural batches never add, remove
    /// or relocate loop markers). Structural batches rebuild from
    /// scratch, the same fallback `DepGraph::update` takes.
    pub fn update(&mut self, prog: &Program, delta: &EditDelta) {
        if delta.is_empty() {
            return;
        }
        if delta.requires_full() {
            *self = StmtIndex::build(prog);
            return;
        }
        if prog.id_bound() > self.entries.len() {
            self.entries.resize_with(prog.id_bound(), || None);
        }
        // Phase 1: unindex every touched statement. A statement can be
        // touched by several ops (modified then deleted); the entry take
        // in `remove` makes repeats harmless.
        let mut touched: Vec<StmtId> = Vec::with_capacity(delta.len());
        for op in delta.ops() {
            let id = op.stmt();
            if !touched.contains(&id) {
                touched.push(id);
            }
        }
        for &id in &touched {
            self.remove(id);
        }
        // Phase 2: re-index the survivors from the program. The
        // enclosing-loop walk skips other touched statements (their
        // entries are gone, but a non-structural touched statement is
        // never a loop marker, so skipping it cannot change the
        // context); it stops at a live loop header, at an untouched
        // statement's recorded context, or at the program start.
        for &id in &touched {
            if !prog.is_live(id) {
                continue;
            }
            let encl = self.derive_encl(prog, id);
            self.insert(id, prog.quad(id), encl);
        }
    }

    fn derive_encl(&self, prog: &Program, id: StmtId) -> Option<StmtId> {
        let mut cur = prog.prev(id);
        while let Some(p) = cur {
            let op = prog.quad(p).op;
            if is_head(op) {
                return Some(p);
            }
            if let Some(entry) = self.entries.get(p.index()).and_then(Option::as_ref) {
                return entry.encl;
            }
            // A touched, not-yet-reindexed plain statement: same context.
            cur = prog.prev(p);
        }
        None
    }

    /// Structural equality against another index, ignoring bucket order —
    /// the property-test oracle (incrementally-maintained vs
    /// rebuilt-from-scratch).
    pub fn agrees_with(&self, other: &StmtIndex) -> bool {
        fn norm<K: Ord + Copy>(m: &HashMap<K, Vec<StmtId>>) -> Vec<(K, Vec<StmtId>)> {
            let mut out: Vec<(K, Vec<StmtId>)> = m
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(k, v)| {
                    let mut v = v.clone();
                    v.sort_unstable();
                    (*k, v)
                })
                .collect();
            out.sort_unstable_by_key(|(k, _)| *k);
            out
        }
        fn norm_str(m: &HashMap<&'static str, Vec<StmtId>>) -> Vec<(&'static str, Vec<StmtId>)> {
            let mut out: Vec<(&'static str, Vec<StmtId>)> = m
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(k, v)| {
                    let mut v = v.clone();
                    v.sort_unstable();
                    (*k, v)
                })
                .collect();
            out.sort_unstable_by_key(|(k, _)| *k);
            out
        }
        let counts = |m: &HashMap<StmtId, usize>| {
            let mut out: Vec<(StmtId, usize)> = m.iter().map(|(k, v)| (*k, *v)).collect();
            out.sort_unstable();
            out
        };
        self.live == other.live
            && norm_str(&self.by_opcode) == norm_str(&other.by_opcode)
            && norm(&self.by_def) == norm(&other.by_def)
            && norm(&self.by_use) == norm(&other.by_use)
            && norm(&self.by_loop) == norm(&other.by_loop)
            && counts(&self.body_count) == counts(&other.body_count)
    }
}

fn remove_from(bucket: Option<&mut Vec<StmtId>>, id: StmtId) {
    if let Some(v) = bucket {
        if let Some(i) = v.iter().position(|&s| s == id) {
            v.swap_remove(i);
        }
    }
}

// ---------------------------------------------------------------------------
// the negative match cache
// ---------------------------------------------------------------------------

/// Per-optimizer negative cache over anchor statements: remembers
/// statements the optimizer's *first pattern clause* rejected, so later
/// fixpoint iterations skip them without re-evaluating the format.
///
/// Soundness rests on eligibility: the cache only engages when the first
/// clause is a `any`-quantified single-statement pattern whose format is
/// *anchor-local* — it reads nothing but the anchor's own opcode and
/// operands (no `.nxt`/`.prev` navigation, no other variables). Such a
/// format's verdict can only change when the anchor's own quad changes,
/// and every quad change appears in the committed [`EditDelta`] — the
/// driver calls [`MatchCache::invalidate`] per delta, which clears
/// exactly the touched statements (or everything, on structural
/// batches). Deeper clauses (dependence clauses, later pattern clauses)
/// are never cached: their verdicts depend on other statements.
#[derive(Clone, Debug)]
pub struct MatchCache {
    rejected: Vec<bool>,
    eligible: bool,
}

impl MatchCache {
    /// A cache for one optimizer's run; `eligible` is decided from the
    /// first pattern clause (see [`MatchCache::clause_eligible`]).
    pub fn new(first_clause: Option<&PatternClause>) -> MatchCache {
        MatchCache {
            rejected: Vec::new(),
            eligible: first_clause.is_some_and(Self::clause_eligible),
        }
    }

    /// Whether a first pattern clause qualifies for negative caching:
    /// `any`-quantified, one variable, and an anchor-local format.
    pub fn clause_eligible(clause: &PatternClause) -> bool {
        use gospel_lang::ast::Quant;
        clause.quant == Quant::Any
            && clause.vars.len() == 1
            && clause
                .format
                .as_ref()
                .is_some_and(|f| anchor_local(f, &clause.vars[0]))
    }

    /// True when the cache is active for this optimizer.
    pub fn enabled(&self) -> bool {
        self.eligible
    }

    /// True when `id` was rejected by the first clause and nothing has
    /// touched it since.
    pub fn is_rejected(&self, id: StmtId) -> bool {
        self.eligible && self.rejected.get(id.index()).copied().unwrap_or(false)
    }

    /// Remembers a first-clause format rejection of `id`.
    pub fn mark_rejected(&mut self, id: StmtId) {
        if !self.eligible {
            return;
        }
        if id.index() >= self.rejected.len() {
            self.rejected.resize(id.index() + 1, false);
        }
        self.rejected[id.index()] = true;
    }

    /// Drops cached verdicts for every statement the committed delta
    /// touched (all of them, on a structural batch — positions moved
    /// wholesale, and cheap full invalidation keeps the argument simple).
    pub fn invalidate(&mut self, delta: &EditDelta) {
        if !self.eligible || delta.is_empty() {
            return;
        }
        if delta.requires_full() {
            self.rejected.clear();
            return;
        }
        // Inserts land in fresh slots (which already default to "not
        // rejected"), so one uniform clear per touched id suffices.
        for op in delta.ops() {
            let i = op.stmt().index();
            if let Some(slot) = self.rejected.get_mut(i) {
                *slot = false;
            }
        }
    }

    /// Forgets every remembered rejection while keeping eligibility —
    /// the degradation ladder's "start over" rung when cache consistency
    /// can no longer be argued from the delta journal alone.
    pub fn clear(&mut self) {
        self.rejected.clear();
    }
}

/// True when `b` reads only the anchor statement itself: every element
/// reference is rooted at `var` with a path of local attributes
/// (`opr_N` / `opc` — never `.nxt`/`.prev`), and every leaf is a
/// literal. `operand()`, `eval()` and `bump()` calls are conservatively
/// non-local (they can reach other bindings).
fn anchor_local(b: &BoolExpr, var: &str) -> bool {
    match b {
        BoolExpr::And(l, r) | BoolExpr::Or(l, r) => {
            anchor_local(l, var) && anchor_local(r, var)
        }
        BoolExpr::Not(i) => anchor_local(i, var),
        BoolExpr::Cmp(l, _, r) => val_local(l, var) && val_local(r, var),
        BoolExpr::TypeIs(v, _, _) => val_local(v, var),
        BoolExpr::Dep { .. } => false,
    }
}

fn val_local(v: &ValExpr, var: &str) -> bool {
    match v {
        ValExpr::Int(_) | ValExpr::Real(_) => true,
        // A bare name only stays local when it is a literal (opcode or
        // keyword): a reference to the anchor variable itself, or to any
        // other binding, is a statement value we cannot track.
        ValExpr::Name(n) => n != var,
        ValExpr::Ref(r) => {
            r.base == var
                && !r.path.is_empty()
                && r.path.iter().all(|a| matches!(a, Attr::Opr(_) | Attr::Opc))
        }
        ValExpr::OperandFn(_, _) | ValExpr::Eval(_, _, _) | ValExpr::Bump(_, _, _) => false,
    }
}

// ---------------------------------------------------------------------------
// anchor-clause constraint extraction
// ---------------------------------------------------------------------------

/// What a pattern clause's format provably requires of its variable's
/// statement, extracted once per search and checked against
/// [`StmtIndex`] entries instead of evaluating the format:
/// an over-approximating opcode set and the operand classes pinned by
/// top-level `type(var.opr_N) ==/!= class` conjuncts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnchorFilter {
    /// Admissible `gospel_name` bucket keys — every statement satisfying
    /// the format carries one of these opcodes. `None` when the format
    /// does not bound the opcode (no narrowing possible).
    pub opcodes: Option<Vec<&'static str>>,
    /// `(position, class, positive)` requirements: position is 0-based
    /// (`opr_1` → 0), and `positive` distinguishes `==` from `!=`.
    pub classes: Vec<(usize, OperandClass, bool)>,
    /// True when admission *equals* the format: every top-level conjunct
    /// is either a pure opcode disjunction over the variable or an
    /// extracted `type(var.opr_N)` test, so a statement is in the
    /// admission set **iff** its format holds. The searcher then skips
    /// format evaluation for bucket members entirely. The equivalence
    /// rests on two invariants checked by the differential suite: the
    /// index buckets on [`gospel_ir::Opcode::gospel_name`], the same key
    /// the runtime's case-insensitive `opc ==` comparison uses, and the
    /// indexed operand classification matches the runtime
    /// `type()` test over a statically valid `opr_1..=3` position
    /// (which can never raise a navigation error).
    pub exact: bool,
}

impl AnchorFilter {
    /// True when the filter can narrow a candidate enumeration at all.
    pub fn narrows(&self) -> bool {
        self.opcodes.is_some()
    }

    /// Whether one statement is in this filter's admission set — the
    /// predicate form of [`StmtIndex::candidates`] bucket membership.
    /// The scan matcher's funnel accounting tests each visited anchor
    /// with this so all three matchers report identical
    /// automaton-admitted totals. A filter with no opcode bound admits
    /// every statement (no rung of the ladder narrows it either).
    pub fn admits(&self, quad: &Quad) -> bool {
        let Some(opcodes) = self.opcodes.as_ref() else {
            return true;
        };
        if !opcodes.contains(&quad.op.gospel_name()) {
            return false;
        }
        let cls = [class_of(&quad.dst), class_of(&quad.a), class_of(&quad.b)];
        self.classes
            .iter()
            .all(|&(pos, c, positive)| (cls[pos] == c) == positive)
    }
}

/// Extracts the [`AnchorFilter`] of `var` from a clause's format.
///
/// The opcode bound is computed over the whole boolean structure:
/// `var.opc == <name>` leaves bound to one opcode, conjunctions
/// intersect, disjunctions union (an unbounded disjunct unbounds the
/// whole disjunction). `any S: S.opc == assign OR S.opc == add` thus
/// yields the two-bucket union, and `(S.opc == div AND S.opr_3 != 0)
/// OR S.opc == mod` yields `{div, mod}`. Class constraints come from
/// the top-level conjuncts only — inside a disjunction they hold on
/// just one branch, so lifting them would over-narrow.
pub fn anchor_filter(clause: &PatternClause, var: &str) -> AnchorFilter {
    let Some(format) = clause.format.as_ref() else {
        return AnchorFilter::default();
    };
    let mut filter = AnchorFilter {
        opcodes: opcode_set(format, var),
        classes: Vec::new(),
        exact: false,
    };
    let mut atoms = Vec::new();
    flatten_conj(format, &mut atoms);
    let mut all_captured = true;
    for atom in atoms {
        if let BoolExpr::TypeIs(ValExpr::Ref(r), cls, positive) = atom {
            if r.base == var {
                if let [Attr::Opr(n)] = r.path.as_slice() {
                    if let Some(pos) = (*n as usize).checked_sub(1).filter(|&p| p < 3) {
                        filter.classes.push((pos, *cls, *positive));
                        continue;
                    }
                }
            }
        }
        if !pure_opcode(atom, var) {
            all_captured = false;
        }
    }
    filter.exact = filter.opcodes.is_some() && all_captured;
    filter
}

/// True when `b` is a disjunction of `var.opc == <known name>` leaves and
/// nothing else, so admission by the extracted opcode set is *equivalent*
/// to `b` — the condition under which [`AnchorFilter::exact`] may claim a
/// conjunct without evaluating it.
fn pure_opcode(b: &BoolExpr, var: &str) -> bool {
    match b {
        BoolExpr::Or(l, r) => pure_opcode(l, var) && pure_opcode(r, var),
        BoolExpr::Cmp(l, CmpOp::Eq, r) => [(l, r), (r, l)].into_iter().any(|(a, b)| {
            is_opc_ref(a, var) && matches!(b, ValExpr::Name(n) if opcode_key(n).is_some())
        }),
        _ => false,
    }
}

/// The set of opcodes that could satisfy `b`, or `None` when `b` does
/// not bound `var`'s opcode.
fn opcode_set(b: &BoolExpr, var: &str) -> Option<Vec<&'static str>> {
    match b {
        BoolExpr::And(l, r) => match (opcode_set(l, var), opcode_set(r, var)) {
            (Some(a), Some(b)) => Some(a.into_iter().filter(|k| b.contains(k)).collect()),
            (Some(s), None) | (None, Some(s)) => Some(s),
            (None, None) => None,
        },
        BoolExpr::Or(l, r) => {
            let mut a = opcode_set(l, var)?;
            let b = opcode_set(r, var)?;
            for k in b {
                if !a.contains(&k) {
                    a.push(k);
                }
            }
            Some(a)
        }
        BoolExpr::Cmp(l, CmpOp::Eq, r) => {
            for (a, b) in [(l, r), (r, l)] {
                if is_opc_ref(a, var) {
                    if let ValExpr::Name(n) = b {
                        return opcode_key(n).map(|k| vec![k]);
                    }
                }
            }
            None
        }
        _ => None,
    }
}

fn flatten_conj<'b>(b: &'b BoolExpr, out: &mut Vec<&'b BoolExpr>) {
    match b {
        BoolExpr::And(l, r) => {
            flatten_conj(l, out);
            flatten_conj(r, out);
        }
        other => out.push(other),
    }
}

fn is_opc_ref(v: &ValExpr, var: &str) -> bool {
    matches!(v, ValExpr::Ref(r) if r.base == var && r.path.as_slice() == [Attr::Opc])
}

/// Maps a GOSpeL opcode literal to the interned `gospel_name` key the
/// index buckets on (all `call` variants share one bucket).
fn opcode_key(name: &str) -> Option<&'static str> {
    const KEYS: [&str; 22] = [
        "assign", "add", "sub", "mul", "div", "mod", "neg", "call", "do", "pardo", "enddo",
        "if_lt", "if_le", "if_gt", "if_ge", "if_eq", "if_ne", "else", "endif", "read", "write",
        "nop",
    ];
    KEYS.iter()
        .find(|k| k.eq_ignore_ascii_case(name))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_ir::{Operand, OperandPos, ProgramBuilder};
    use gospel_lang::parse_validated;

    fn loopy() -> Program {
        // n = 10 ; do i = 1, n { a(i) = 0 ; do j = 1, 2 { x = i } } ; x = n
        let mut b = ProgramBuilder::new("loopy");
        let n = b.scalar_int("n");
        let i = b.scalar_int("i");
        let j = b.scalar_int("j");
        let x = b.scalar_int("x");
        let a = b.array_int("a", &[10]);
        b.assign(Operand::Var(n), Operand::int(10));
        let li = b.do_head(i, Operand::int(1), Operand::Var(n));
        b.assign(
            Operand::elem1(a, gospel_ir::AffineExpr::var(i)),
            Operand::int(0),
        );
        let lj = b.do_head(j, Operand::int(1), Operand::int(2));
        b.assign(Operand::Var(x), Operand::Var(i));
        b.end_do(lj);
        b.end_do(li);
        b.assign(Operand::Var(x), Operand::Var(n));
        b.finish()
    }

    #[test]
    fn build_buckets_by_all_four_keys() {
        let p = loopy();
        let ix = StmtIndex::build(&p);
        assert_eq!(ix.len(), p.len());
        assert_eq!(ix.by_opcode("assign").len(), 4);
        assert_eq!(ix.by_opcode("do").len(), 2);
        assert_eq!(ix.by_opcode("enddo").len(), 2);
        let syms = p.syms();
        let x = syms.lookup("x").unwrap();
        let n = syms.lookup("n").unwrap();
        let i = syms.lookup("i").unwrap();
        assert_eq!(ix.by_def(x).len(), 2);
        // n is read by the outer do header's bound and the final assign
        assert_eq!(ix.by_use(n).len(), 2);
        // i is read by the subscript of a(i) and by x = i
        assert_eq!(ix.by_use(i).len(), 2);

        let heads: Vec<StmtId> = p
            .iter()
            .filter(|&s| p.quad(s).op.is_loop_head())
            .collect();
        let (outer, inner) = (heads[0], heads[1]);
        // outer body: a(i)=0, inner head, x=i, inner enddo
        assert_eq!(ix.body_size(outer), Some(4));
        assert_eq!(ix.body_size(inner), Some(1));
        // direct members exclude the nested loop's own body
        assert_eq!(ix.loop_members(outer).len(), 3);
        assert_eq!(ix.loop_members(inner).len(), 1);
        let body_stmt = ix.loop_members(inner)[0];
        assert_eq!(ix.enclosing(body_stmt), Some(inner));
        assert_eq!(ix.enclosing(inner), Some(outer));
    }

    #[test]
    fn incremental_update_matches_rebuild() {
        let mut p = loopy();
        let mut ix = StmtIndex::build(&p);
        let stmts: Vec<StmtId> = p.iter().collect();
        let x = p.syms().lookup("x").unwrap();

        // modify: retarget the final assign's source
        let mut d = EditDelta::new();
        d.modify(&mut p, *stmts.last().unwrap(), OperandPos::A, Operand::Var(x));
        ix.update(&p, &d);
        assert!(ix.agrees_with(&StmtIndex::build(&p)), "after modify");

        // insert inside the inner loop, then delete the array write
        let mut d = EditDelta::new();
        let inner_body = stmts[4]; // x = i
        d.insert_after(
            &mut p,
            Some(inner_body),
            Quad::assign(Operand::Var(x), Operand::int(7)),
        );
        d.delete(&mut p, stmts[2]); // a(i) = 0
        ix.update(&p, &d);
        assert!(ix.agrees_with(&StmtIndex::build(&p)), "after insert+delete");

        // move the fresh statement out of the loops entirely
        let moved = p.iter().nth(4).unwrap();
        let mut d = EditDelta::new();
        d.move_after(&mut p, moved, Some(*stmts.last().unwrap()));
        ix.update(&p, &d);
        assert!(ix.agrees_with(&StmtIndex::build(&p)), "after move");
    }

    #[test]
    fn structural_batch_falls_back_to_rebuild() {
        let mut p = loopy();
        let mut ix = StmtIndex::build(&p);
        let last = p.iter().last().unwrap();
        let mut d = EditDelta::new();
        // Append a fresh (empty) loop — structural.
        let j2 = p.declare("j2", gospel_ir::VarType::Int, gospel_ir::VarKind::Scalar);
        let head = d.insert_after(
            &mut p,
            Some(last),
            Quad::new(
                Opcode::DoHead,
                Operand::Var(j2),
                Operand::int(1),
                Operand::int(3),
            ),
        );
        d.insert_after(&mut p, Some(head), Quad::marker(Opcode::EndDo));
        assert!(d.requires_full());
        ix.update(&p, &d);
        assert!(ix.agrees_with(&StmtIndex::build(&p)));
        assert_eq!(ix.body_size(head), Some(0));
    }

    #[test]
    fn cache_eligibility_and_invalidation() {
        let spec = "OPTIMIZATION T\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
                    any S: S.opc == assign AND type(S.opr_2) == const;\nACTION\n  \
                    delete(S);\nEND";
        let (ast, _) = parse_validated(spec).unwrap();
        assert!(MatchCache::clause_eligible(&ast.patterns[0]));
        let mut cache = MatchCache::new(Some(&ast.patterns[0]));
        assert!(cache.enabled());

        let mut p = loopy();
        let s0 = p.first().unwrap();
        let s_last = p.iter().last().unwrap();
        cache.mark_rejected(s0);
        cache.mark_rejected(s_last);
        assert!(cache.is_rejected(s0));

        // an edit touching s0 clears exactly s0
        let mut d = EditDelta::new();
        d.modify(&mut p, s0, OperandPos::A, Operand::int(11));
        cache.invalidate(&d);
        assert!(!cache.is_rejected(s0));
        assert!(cache.is_rejected(s_last));

        // a structural batch clears everything
        cache.mark_rejected(s0);
        let mut d = EditDelta::new();
        d.insert_after(&mut p, Some(s_last), Quad::marker(Opcode::EndIf));
        cache.invalidate(&d);
        assert!(!cache.is_rejected(s0));
        assert!(!cache.is_rejected(s_last));
    }

    #[test]
    fn neighbour_navigation_defeats_eligibility() {
        // `.nxt` reads a different statement: never cacheable.
        let spec = "OPTIMIZATION T\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
                    any S: S.nxt.opc == assign;\nACTION\n  delete(S);\nEND";
        let (ast, _) = parse_validated(spec).unwrap();
        assert!(!MatchCache::clause_eligible(&ast.patterns[0]));
    }

    fn clause_of(txt: &str) -> PatternClause {
        let spec = format!(
            "OPTIMIZATION T\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
             any S: {txt};\nACTION\n  delete(S);\nEND"
        );
        parse_validated(&spec).unwrap().0.patterns.remove(0)
    }

    #[test]
    fn anchor_filter_extraction() {
        let c = clause_of("S.opc == assign AND type(S.opr_2) == const");
        let f = anchor_filter(&c, "S");
        assert_eq!(f.opcodes, Some(vec!["assign"]));
        assert_eq!(f.classes, vec![(1, OperandClass::Const, true)]);
        assert!(f.exact, "opcode leaf + class conjunct capture the format");
        // reversed sides and case-insensitivity
        let c = clause_of("ASSIGN == S.opc");
        let f = anchor_filter(&c, "S");
        assert_eq!(f.opcodes, Some(vec!["assign"]));
        assert!(f.exact);
        // a disjunction unions buckets; branch-local conjuncts stay put
        let c = clause_of(
            "(S.opc == add OR (S.opc == div AND S.opr_3 != 0)) AND type(S.opr_3) == const",
        );
        let f = anchor_filter(&c, "S");
        assert_eq!(f.opcodes, Some(vec!["add", "div"]));
        assert_eq!(f.classes, vec![(2, OperandClass::Const, true)]);
        assert!(
            !f.exact,
            "the admission set over-approximates: `S.opr_3 != 0` is not enforced"
        );
        // a pure opcode disjunction is exact on its own
        let f = anchor_filter(&clause_of("S.opc == assign OR S.opc == do"), "S");
        assert!(f.exact);
        // a disjunct with no opcode bound unbounds the whole disjunction
        let c = clause_of("S.opc == assign OR type(S.opr_2) == const");
        let f = anchor_filter(&c, "S");
        assert!(f.opcodes.is_none());
        assert!(!f.exact);
        // an uncaptured conjunct forfeits exactness but keeps the bound
        let c = clause_of("S.opc == assign AND S.opr_1 == S.opr_2");
        let f = anchor_filter(&c, "S");
        assert_eq!(f.opcodes, Some(vec!["assign"]));
        assert!(!f.exact);
        // wrong variable pins nothing
        let c = clause_of("S.opc == assign");
        assert!(!anchor_filter(&c, "T").narrows());
    }

    #[test]
    fn filtered_candidates_respect_opcode_and_class() {
        let p = loopy();
        let ix = StmtIndex::build(&p);
        // loopy has four assigns; two of them assign a constant.
        let f = anchor_filter(&clause_of("S.opc == assign AND type(S.opr_2) == const"), "S");
        assert_eq!(ix.candidates(&f).unwrap().len(), 2);
        let f = anchor_filter(&clause_of("S.opc == assign OR S.opc == do"), "S");
        assert_eq!(ix.candidates(&f).unwrap().len(), 6);
        let f = anchor_filter(&clause_of("S.opr_1 == S.opr_2"), "S");
        assert!(ix.candidates(&f).is_none(), "no opcode bound, no bucket");
    }
}
