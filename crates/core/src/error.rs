//! Error types for generation and execution.

use gospel_lang::SpecError;
use std::fmt;

/// Error turning a specification into an optimizer.
#[derive(Clone, Debug, PartialEq)]
pub enum GenerateError {
    /// The specification failed validation.
    Spec(SpecError),
    /// A construct the generator does not support (mirrors the paper's
    /// listed prototype restrictions).
    Unsupported(String),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::Spec(e) => write!(f, "invalid specification: {e}"),
            GenerateError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<SpecError> for GenerateError {
    fn from(e: SpecError) -> Self {
        GenerateError::Spec(e)
    }
}

/// Error while running a generated optimizer.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// Dependence analysis failed (malformed program).
    Analyze(String),
    /// An action referenced something that no longer exists or evaluated to
    /// the wrong kind of value.
    Action(String),
    /// The optimizer kept finding the same application point; the driver
    /// aborted after its application budget (guards against specifications
    /// whose actions do not invalidate their own precondition).
    Diverged {
        /// The budget that was exhausted.
        limit: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Analyze(m) => write!(f, "dependence analysis failed: {m}"),
            RunError::Action(m) => write!(f, "action failed: {m}"),
            RunError::Diverged { limit } => {
                write!(f, "optimizer did not converge within {limit} applications")
            }
        }
    }
}

impl std::error::Error for RunError {}
