//! Error types for generation and execution.

use gospel_lang::SpecError;
use std::fmt;

/// Error turning a specification into an optimizer.
#[derive(Clone, Debug, PartialEq)]
pub enum GenerateError {
    /// The specification failed validation.
    Spec(SpecError),
    /// A construct the generator does not support (mirrors the paper's
    /// listed prototype restrictions).
    Unsupported(String),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::Spec(e) => write!(f, "invalid specification: {e}"),
            GenerateError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<SpecError> for GenerateError {
    fn from(e: SpecError) -> Self {
        GenerateError::Spec(e)
    }
}

/// Error while running a generated optimizer.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// Dependence analysis failed (malformed program).
    Analyze(String),
    /// An action referenced something that no longer exists or evaluated to
    /// the wrong kind of value.
    Action(String),
    /// The optimizer kept finding the same application point; the driver
    /// aborted after its application budget (guards against specifications
    /// whose actions do not invalidate their own precondition).
    Diverged {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// No optimizer with the requested name is registered.
    UnknownOptimizer {
        /// The name that failed to resolve.
        name: String,
    },
    /// A panic escaped search or action code and was contained at the
    /// session boundary (see `GuardedSession` in the guard crate).
    Internal(String),
    /// The wall-clock budget for one `apply` call ran out.
    Timeout {
        /// The configured budget, in milliseconds.
        ms: u64,
    },
    /// The search-cost budget (pattern checks + dependence checks +
    /// transformation operations) ran out.
    FuelExhausted {
        /// The configured budget.
        limit: u64,
    },
    /// The transformed program grew past the configured multiple of its
    /// original statement count — a runaway expansion (e.g. an unrolling
    /// spec with a broken guard).
    GrowthLimit {
        /// Statement count when the driver aborted.
        statements: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Analyze(m) => write!(f, "dependence analysis failed: {m}"),
            RunError::Action(m) => write!(f, "action failed: {m}"),
            RunError::Diverged { limit } => {
                write!(f, "optimizer did not converge within {limit} applications")
            }
            RunError::UnknownOptimizer { name } => {
                write!(f, "no optimizer named `{name}` registered")
            }
            RunError::Internal(m) => write!(f, "internal error (contained panic): {m}"),
            RunError::Timeout { ms } => write!(f, "optimizer exceeded its {ms} ms time budget"),
            RunError::FuelExhausted { limit } => {
                write!(f, "optimizer exhausted its search-cost budget of {limit}")
            }
            RunError::GrowthLimit { statements, limit } => write!(
                f,
                "program grew to {statements} statements, past the growth cap of {limit}"
            ),
        }
    }
}

impl std::error::Error for RunError {}
