//! Parallel batch driving: the same optimizer sequence over many
//! programs at once, one [`Session`] per program, fanned out over a
//! fixed worker pool with [`std::thread::scope`] (no extra
//! dependencies, honouring the workspace's offline constraint).
//!
//! Results come back in input order regardless of which worker finished
//! first, so batch output is deterministic. Each worker records into its
//! own [`Recorder`] and the pool merges them into the caller's recorder
//! after the scope joins ([`Recorder::merge_from`]), so `--metrics`
//! reports one coherent stream with no cross-thread lock traffic during
//! the run.

use crate::compile::CompiledOptimizer;
use crate::cost::Cost;
use crate::error::RunError;
use crate::session::{Session, SessionOptions};
use gospel_ir::Program;
use gospel_trace::Recorder;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One program going into a batch run.
#[derive(Debug)]
pub struct BatchItem {
    /// Caller's handle for the program (usually its file name); echoed
    /// back on the outcome so results can be reported by name.
    pub label: String,
    /// The program to optimize.
    pub prog: Program,
}

/// What one batch slot produced, in the input slot's position.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The label of the [`BatchItem`] this outcome belongs to.
    pub label: String,
    /// The optimized program (with run statistics) or the first error
    /// the sequence hit. An error in one slot never affects the others.
    pub result: Result<BatchSuccess, RunError>,
}

/// The success side of a [`BatchOutcome`].
#[derive(Debug)]
pub struct BatchSuccess {
    /// The program after the whole sequence ran.
    pub prog: Program,
    /// Total applications across the sequence.
    pub applications: usize,
    /// Accumulated search + transformation cost across the sequence.
    pub cost: Cost,
}

/// Runs `sequence` (optimizer names; empty means every registered
/// optimizer in registration order) over every item, using at most
/// `threads` worker threads, and returns one outcome per item **in
/// input order**.
///
/// Each item gets its own [`Session`] configured with `options` and a
/// clone of every optimizer in `optimizers`, so workers share nothing
/// mutable. When `recorder` is given, each worker traces into a private
/// recorder; the pool merges them into `recorder` (in worker order)
/// once every item is done.
pub fn run_batch(
    items: Vec<BatchItem>,
    optimizers: &[CompiledOptimizer],
    sequence: &[&str],
    options: SessionOptions,
    threads: usize,
    recorder: Option<&Arc<Recorder>>,
) -> Vec<BatchOutcome> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let sequence: Vec<&str> = if sequence.is_empty() {
        optimizers.iter().map(|o| o.name.as_str()).collect()
    } else {
        sequence.to_vec()
    };
    let workers = threads.max(1).min(n);

    // Slot-per-item hand-off without unsafe indexing tricks: a worker
    // takes item i out of its mutex, computes, and parks the outcome in
    // the matching output slot. Slots are claimed through one atomic
    // cursor, so each is touched by exactly one worker.
    let inputs: Vec<Mutex<Option<BatchItem>>> = items
        .into_iter()
        .map(|it| Mutex::new(Some(it)))
        .collect();
    let outputs: Vec<Mutex<Option<BatchOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    let mut worker_recs: Vec<Arc<Recorder>> = Vec::new();
    if recorder.is_some() {
        worker_recs = (0..workers).map(|_| Arc::new(Recorder::new())).collect();
    }

    std::thread::scope(|scope| {
        for w in 0..workers {
            let my_rec = worker_recs.get(w).cloned();
            let inputs = &inputs;
            let outputs = &outputs;
            let cursor = &cursor;
            let sequence = &sequence;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("slot claimed twice");
                let outcome = run_one(item, optimizers, sequence, options, my_rec.clone());
                *outputs[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
            });
        }
    });

    if let Some(rec) = recorder {
        for wr in &worker_recs {
            rec.merge_from(wr);
        }
    }

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("scope joined every worker, so every slot is filled")
        })
        .collect()
}

fn run_one(
    item: BatchItem,
    optimizers: &[CompiledOptimizer],
    sequence: &[&str],
    options: SessionOptions,
    rec: Option<Arc<Recorder>>,
) -> BatchOutcome {
    let BatchItem { label, prog } = item;
    let mut sess = Session::with_options(prog, options);
    for opt in optimizers {
        sess.register(opt.clone());
    }
    sess.set_recorder(rec);
    let result = match sess.run_sequence(sequence) {
        Ok(reports) => {
            let applications = reports.iter().map(|r| r.applications).sum();
            let cost = sess.total_cost();
            Ok(BatchSuccess {
                prog: sess.into_program(),
                applications,
                cost,
            })
        }
        Err(e) => Err(e),
    };
    BatchOutcome { label, result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;
    use gospel_frontend::compile as minifor;

    fn ctp() -> CompiledOptimizer {
        let (spec, info) = gospel_lang::parse_validated(crate::CTP_EXAMPLE_SPEC).unwrap();
        generate(spec, info).unwrap()
    }

    fn progs(k: usize) -> Vec<BatchItem> {
        (0..k)
            .map(|i| BatchItem {
                label: format!("p{i}"),
                prog: minifor(&format!(
                    "program p{i}\ninteger x, y\nx = {}\ny = x\nwrite y\nend",
                    i + 1
                ))
                .unwrap(),
            })
            .collect()
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let opts = [ctp()];
        for threads in [1, 4] {
            let out = run_batch(
                progs(6),
                &opts,
                &["CTP"],
                SessionOptions::default(),
                threads,
                None,
            );
            assert_eq!(out.len(), 6);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(o.label, format!("p{i}"));
                let ok = o.result.as_ref().unwrap();
                assert_eq!(ok.applications, 2, "CTP propagates twice per program");
                // the propagated constant is this program's own
                let shown = format!("{}", gospel_ir::DisplayProgram(&ok.prog));
                assert!(shown.contains(&format!("write {}", i + 1)), "{shown}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let opts = [ctp()];
        let seq = run_batch(progs(5), &opts, &[], SessionOptions::default(), 1, None);
        let par = run_batch(progs(5), &opts, &[], SessionOptions::default(), 4, None);
        for (a, b) in seq.iter().zip(&par) {
            let (pa, pb) = (
                &a.result.as_ref().unwrap().prog,
                &b.result.as_ref().unwrap().prog,
            );
            assert!(pa.structurally_eq(pb));
        }
    }

    #[test]
    fn per_item_errors_stay_per_item_and_recorders_merge() {
        let opts = [ctp()];
        let rec = Arc::new(Recorder::new());
        let out = run_batch(
            progs(3),
            &opts,
            &["NOPE"],
            SessionOptions::default(),
            2,
            Some(&rec),
        );
        assert!(out
            .iter()
            .all(|o| matches!(o.result, Err(RunError::UnknownOptimizer { .. }))));

        let rec2 = Arc::new(Recorder::new());
        let out = run_batch(
            progs(3),
            &opts,
            &["CTP"],
            SessionOptions::default(),
            2,
            Some(&rec2),
        );
        assert!(out.iter().all(|o| o.result.is_ok()));
        // 3 programs x 2 applications each, merged from both workers
        assert_eq!(rec2.counter("driver.applications"), 6);
    }
}
