//! Parallel batch driving: the same optimizer sequence over many
//! programs at once, one [`Session`] per program, fanned out over a
//! fixed worker pool with [`std::thread::scope`] (no extra
//! dependencies, honouring the workspace's offline constraint).
//!
//! Results come back in input order regardless of which worker finished
//! first, so batch output is deterministic. Each worker records into its
//! own [`Recorder`] and the pool merges them into the caller's recorder
//! after the scope joins ([`Recorder::merge_from`]), so `--metrics`
//! reports one coherent stream with no cross-thread lock traffic during
//! the run.
//!
//! The pool is **self-healing**: a panic escaping one file's session is
//! contained in that file's slot ([`RunError::Internal`]), transient
//! errors (timeout, fuel exhaustion, contained panics) earn up to
//! [`BatchPolicy::retries`] fresh attempts from the pristine input
//! program within the per-file deadline, and a failure either aborts the
//! remaining files ([`BatchStatus::Skipped`]) or — under
//! [`BatchPolicy::keep_going`] — leaves the other slots untouched.

use crate::compile::CompiledOptimizer;
use crate::cost::Cost;
use crate::error::RunError;
use crate::fault::FaultPlan;
use crate::session::{Session, SessionOptions};
use gospel_ir::Program;
use gospel_trace::{Recorder, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One program going into a batch run.
#[derive(Debug)]
pub struct BatchItem {
    /// Caller's handle for the program (usually its file name); echoed
    /// back on the outcome so results can be reported by name.
    pub label: String,
    /// The program to optimize.
    pub prog: Program,
}

/// Supervision policy for a batch run: what happens when a file fails.
#[derive(Clone, Debug)]
pub struct BatchPolicy {
    /// Keep driving the remaining files after one ultimately fails. Off,
    /// a failure aborts the batch: files not yet started come back
    /// [`BatchStatus::Skipped`] (in-flight files still finish).
    pub keep_going: bool,
    /// Extra attempts granted to a file whose run fails *transiently*
    /// (timeout, fuel exhaustion, or a contained panic). Each retry
    /// restarts from the pristine input program.
    pub retries: usize,
    /// Wall-clock deadline per file across all its attempts, clipping the
    /// per-apply timeout of every attempt. `None` = no file deadline.
    pub file_timeout_ms: Option<u64>,
    /// Scripted fault for chaos testing. Each file gets its own re-armed
    /// copy ([`FaultPlan::rearmed`]), so a transient fault fires once per
    /// file rather than once per batch.
    pub fault: Option<FaultPlan>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            keep_going: false,
            retries: 1,
            file_timeout_ms: None,
            fault: None,
        }
    }
}

/// What one batch slot produced, in the input slot's position.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The label of the [`BatchItem`] this outcome belongs to.
    pub label: String,
    /// How many attempts the file consumed (0 when skipped).
    pub attempts: usize,
    /// Wall-clock time the slot spent across all attempts.
    pub elapsed_ms: u64,
    /// How the slot ended.
    pub status: BatchStatus,
}

/// Terminal state of one batch slot.
#[derive(Debug)]
pub enum BatchStatus {
    /// The whole sequence ran; the optimized program and its statistics
    /// (boxed: the program dwarfs the other variants).
    Done(Box<BatchSuccess>),
    /// The final attempt failed with this error (earlier transient
    /// failures were retried per [`BatchPolicy::retries`]).
    Failed(RunError),
    /// Never attempted: an earlier file failed without
    /// [`BatchPolicy::keep_going`].
    Skipped,
}

impl BatchStatus {
    /// True for [`BatchStatus::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, BatchStatus::Done(_))
    }

    /// The success payload, when done.
    pub fn success(&self) -> Option<&BatchSuccess> {
        match self {
            BatchStatus::Done(s) => Some(s),
            _ => None,
        }
    }

    /// The terminal error, when failed.
    pub fn error(&self) -> Option<&RunError> {
        match self {
            BatchStatus::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// The success side of a [`BatchOutcome`].
#[derive(Debug)]
pub struct BatchSuccess {
    /// The program after the whole sequence ran.
    pub prog: Program,
    /// Total applications across the sequence.
    pub applications: usize,
    /// Accumulated search + transformation cost across the sequence.
    pub cost: Cost,
}

/// Runs `sequence` (optimizer names; empty means every registered
/// optimizer in registration order) over every item, using at most
/// `threads` worker threads, and returns one outcome per item **in
/// input order**.
///
/// Each item gets its own [`Session`] configured with `options` and a
/// clone of every optimizer in `optimizers`, so workers share nothing
/// mutable. When `recorder` is given, each worker traces into a private
/// recorder; the pool merges them into `recorder` (in worker order)
/// once every item is done. `policy` governs panic containment, retry,
/// per-file deadlines, and whether one failure aborts the rest.
pub fn run_batch(
    items: Vec<BatchItem>,
    optimizers: &[CompiledOptimizer],
    sequence: &[&str],
    options: SessionOptions,
    policy: &BatchPolicy,
    threads: usize,
    recorder: Option<&Arc<Recorder>>,
) -> Vec<BatchOutcome> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let sequence: Vec<&str> = if sequence.is_empty() {
        optimizers.iter().map(|o| o.name.as_str()).collect()
    } else {
        sequence.to_vec()
    };
    let workers = threads.max(1).min(n);

    // Slot-per-item hand-off without unsafe indexing tricks: a worker
    // takes item i out of its mutex, computes, and parks the outcome in
    // the matching output slot. Slots are claimed through one atomic
    // cursor, so each is touched by exactly one worker.
    let inputs: Vec<Mutex<Option<BatchItem>>> = items
        .into_iter()
        .map(|it| Mutex::new(Some(it)))
        .collect();
    let outputs: Vec<Mutex<Option<BatchOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    let mut worker_recs: Vec<Arc<Recorder>> = Vec::new();
    if recorder.is_some() {
        worker_recs = (0..workers).map(|_| Arc::new(Recorder::new())).collect();
    }

    std::thread::scope(|scope| {
        for w in 0..workers {
            let my_rec = worker_recs.get(w).cloned();
            let inputs = &inputs;
            let outputs = &outputs;
            let cursor = &cursor;
            let abort = &abort;
            let sequence = &sequence;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("slot claimed twice");
                let outcome = if abort.load(Ordering::Relaxed) {
                    BatchOutcome {
                        label: item.label,
                        attempts: 0,
                        elapsed_ms: 0,
                        status: BatchStatus::Skipped,
                    }
                } else {
                    let out =
                        run_supervised(item, optimizers, sequence, options, policy, my_rec.clone());
                    if !policy.keep_going && matches!(out.status, BatchStatus::Failed(_)) {
                        abort.store(true, Ordering::Relaxed);
                    }
                    out
                };
                *outputs[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
            });
        }
    });

    if let Some(rec) = recorder {
        for wr in &worker_recs {
            rec.merge_from(wr);
        }
    }

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("scope joined every worker, so every slot is filled")
        })
        .collect()
}

/// Errors worth a second attempt: budget exhaustion can be input-order
/// luck, and a contained panic may be a transient interaction the retry
/// (with its cleared session state) avoids. Everything else is
/// deterministic and would just fail again.
fn transient(e: &RunError) -> bool {
    matches!(
        e,
        RunError::Timeout { .. } | RunError::FuelExhausted { .. } | RunError::Internal(_)
    )
}

fn elapsed_ms(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Drives one file through the sequence with panic containment and
/// transient-retry supervision.
fn run_supervised(
    item: BatchItem,
    optimizers: &[CompiledOptimizer],
    sequence: &[&str],
    options: SessionOptions,
    policy: &BatchPolicy,
    rec: Option<Arc<Recorder>>,
) -> BatchOutcome {
    let BatchItem { label, prog } = item;
    let started = Instant::now();
    let fault = policy.fault.as_ref().map(FaultPlan::rearmed);
    let mut attempts = 0usize;
    let status = loop {
        attempts += 1;
        let mut opts = options;
        if let Some(total) = policy.file_timeout_ms {
            // Clip this attempt's timeout to what is left of the file
            // deadline (at least 1ms so the driver's probe still runs
            // and reports Timeout rather than an arbitrary other error).
            let left = total.saturating_sub(elapsed_ms(started)).max(1);
            opts.timeout_ms = Some(opts.timeout_ms.map_or(left, |t| t.min(left)));
        }
        match run_attempt(prog.clone(), optimizers, sequence, opts, fault.clone(), rec.clone()) {
            Ok(success) => break BatchStatus::Done(Box::new(success)),
            Err(e) => {
                let deadline_left = policy
                    .file_timeout_ms
                    .is_none_or(|total| elapsed_ms(started) < total);
                if transient(&e) && attempts <= policy.retries && deadline_left {
                    if let Some(r) = rec.as_ref() {
                        r.add("batch.file_retry", 1);
                        r.event(
                            "batch.file_retry",
                            &[
                                ("file", Value::str(label.clone())),
                                ("error", Value::str(e.to_string())),
                                ("attempt", Value::us(attempts)),
                            ],
                        );
                    }
                    continue;
                }
                break BatchStatus::Failed(e);
            }
        }
    };
    BatchOutcome {
        label,
        attempts,
        elapsed_ms: elapsed_ms(started),
        status,
    }
}

/// One attempt: a fresh session over a pristine copy of the program.
/// Panics escaping generated search/action code surface as
/// [`RunError::Internal`] instead of poisoning the worker pool.
fn run_attempt(
    prog: Program,
    optimizers: &[CompiledOptimizer],
    sequence: &[&str],
    options: SessionOptions,
    fault: Option<FaultPlan>,
    rec: Option<Arc<Recorder>>,
) -> Result<BatchSuccess, RunError> {
    let run = catch_unwind(AssertUnwindSafe(move || {
        let mut sess = Session::with_options(prog, options);
        for opt in optimizers {
            sess.register(opt.clone());
        }
        sess.set_fault(fault);
        sess.set_recorder(rec);
        let reports = sess.run_sequence(sequence)?;
        let applications = reports.iter().map(|r| r.applications).sum();
        let cost = sess.total_cost();
        Ok(BatchSuccess {
            prog: sess.into_program(),
            applications,
            cost,
        })
    }));
    match run {
        Ok(result) => result,
        Err(payload) => Err(RunError::Internal(panic_message(payload.as_ref()))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;
    use crate::fault::FaultKind;
    use gospel_frontend::compile as minifor;

    fn ctp() -> CompiledOptimizer {
        let (spec, info) = gospel_lang::parse_validated(crate::CTP_EXAMPLE_SPEC).unwrap();
        generate(spec, info).unwrap()
    }

    fn progs(k: usize) -> Vec<BatchItem> {
        (0..k)
            .map(|i| BatchItem {
                label: format!("p{i}"),
                prog: minifor(&format!(
                    "program p{i}\ninteger x, y\nx = {}\ny = x\nwrite y\nend",
                    i + 1
                ))
                .unwrap(),
            })
            .collect()
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let opts = [ctp()];
        for threads in [1, 4] {
            let out = run_batch(
                progs(6),
                &opts,
                &["CTP"],
                SessionOptions::default(),
                &BatchPolicy::default(),
                threads,
                None,
            );
            assert_eq!(out.len(), 6);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(o.label, format!("p{i}"));
                assert_eq!(o.attempts, 1);
                let ok = o.status.success().unwrap();
                assert_eq!(ok.applications, 2, "CTP propagates twice per program");
                // the propagated constant is this program's own
                let shown = format!("{}", gospel_ir::DisplayProgram(&ok.prog));
                assert!(shown.contains(&format!("write {}", i + 1)), "{shown}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let opts = [ctp()];
        let policy = BatchPolicy::default();
        let seq = run_batch(progs(5), &opts, &[], SessionOptions::default(), &policy, 1, None);
        let par = run_batch(progs(5), &opts, &[], SessionOptions::default(), &policy, 4, None);
        for (a, b) in seq.iter().zip(&par) {
            let (pa, pb) = (
                &a.status.success().unwrap().prog,
                &b.status.success().unwrap().prog,
            );
            assert!(pa.structurally_eq(pb));
        }
    }

    #[test]
    fn per_item_errors_stay_per_item_and_recorders_merge() {
        let opts = [ctp()];
        let keep_going = BatchPolicy {
            keep_going: true,
            ..BatchPolicy::default()
        };
        let rec = Arc::new(Recorder::new());
        let out = run_batch(
            progs(3),
            &opts,
            &["NOPE"],
            SessionOptions::default(),
            &keep_going,
            2,
            Some(&rec),
        );
        assert!(out
            .iter()
            .all(|o| matches!(o.status.error(), Some(RunError::UnknownOptimizer { .. }))));

        let rec2 = Arc::new(Recorder::new());
        let out = run_batch(
            progs(3),
            &opts,
            &["CTP"],
            SessionOptions::default(),
            &keep_going,
            2,
            Some(&rec2),
        );
        assert!(out.iter().all(|o| o.status.is_done()));
        // 3 programs x 2 applications each, merged from both workers
        assert_eq!(rec2.counter("driver.applications"), 6);
    }

    #[test]
    fn failure_without_keep_going_skips_the_rest() {
        let opts = [ctp()];
        // Single worker so the claim order is deterministic: p0 fails,
        // p1/p2 must be skipped and reported as such.
        let out = run_batch(
            progs(3),
            &opts,
            &["NOPE"],
            SessionOptions::default(),
            &BatchPolicy::default(),
            1,
            None,
        );
        assert!(matches!(
            out[0].status.error(),
            Some(RunError::UnknownOptimizer { .. })
        ));
        for o in &out[1..] {
            assert!(matches!(o.status, BatchStatus::Skipped), "{o:?}");
            assert_eq!(o.attempts, 0);
        }
    }

    #[test]
    fn injected_panic_is_contained_and_retried_per_file() {
        let opts = [ctp()];
        // A transient panic per file: every file's first attempt dies,
        // every retry succeeds — the pool self-heals and the batch is
        // fully green with exactly 2 attempts per slot.
        let policy = BatchPolicy {
            fault: Some(FaultPlan::new(FaultKind::Panic).transient()),
            ..BatchPolicy::default()
        };
        let rec = Arc::new(Recorder::new());
        let out = run_batch(
            progs(3),
            &opts,
            &["CTP"],
            SessionOptions::default(),
            &policy,
            2,
            Some(&rec),
        );
        for o in &out {
            assert!(o.status.is_done(), "{o:?}");
            assert_eq!(o.attempts, 2);
            assert_eq!(o.status.success().unwrap().applications, 2);
        }
        assert_eq!(rec.counter("batch.file_retry"), 3);
    }

    #[test]
    fn persistent_panic_fails_only_its_own_slot_under_keep_going() {
        let opts = [ctp()];
        let policy = BatchPolicy {
            keep_going: true,
            fault: Some(FaultPlan::new(FaultKind::Panic).at(1)),
            ..BatchPolicy::default()
        };
        let out = run_batch(
            progs(3),
            &opts,
            &["CTP"],
            SessionOptions::default(),
            &policy,
            1,
            None,
        );
        for o in &out {
            // Retries are allowed but the fault re-fires at the same
            // application index every attempt; the slot ultimately fails
            // as Internal without touching its neighbours.
            assert!(
                matches!(o.status.error(), Some(RunError::Internal(_))),
                "{o:?}"
            );
            assert_eq!(o.attempts, 1 + BatchPolicy::default().retries);
        }
    }
}
