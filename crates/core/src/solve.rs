//! Precondition evaluation: pattern matching, dependence verification and
//! the two membership-checking strategies of §4.

use crate::compile::{CompiledClause, CompiledOptimizer, Strategy};
use crate::cost::Cost;
use crate::error::RunError;
use crate::index::{anchor_filter, AnchorFilter, MatchCache, StmtIndex};
use crate::rt::{Bindings, RtVal};
use gospel_dep::{DepEdge, DepGraph, DepKind, DirElem, DirPattern};
use gospel_ir::{LoopTable, Operand, OperandPos, Program, StmtId};
use gospel_lang::ast::{
    Attr, BoolExpr, CmpOp, ElemType, OperandClass, PatternClause, Quant, SetExpr, ValExpr,
};
use gospel_lang::VarClass;
use std::collections::HashMap;
use std::time::Instant;

// ---------------------------------------------------------------------------
// value evaluation (shared with the action interpreter)
// ---------------------------------------------------------------------------

pub(crate) fn eval_val(
    prog: &Program,
    loops: &LoopTable,
    env: &Bindings,
    v: &ValExpr,
) -> Result<RtVal, RunError> {
    match v {
        ValExpr::Int(n) => Ok(RtVal::Int(*n)),
        ValExpr::Real(r) => Ok(RtVal::Real(*r)),
        ValExpr::Name(n) => Ok(env
            .get(n)
            .cloned()
            .unwrap_or_else(|| RtVal::Name(n.clone()))),
        ValExpr::Ref(r) => {
            let mut val = env
                .get(&r.base)
                .cloned()
                .ok_or_else(|| RunError::Action(format!("`{}` is not bound", r.base)))?;
            for attr in &r.path {
                val = step_attr(prog, loops, val, *attr)?;
            }
            Ok(val)
        }
        ValExpr::OperandFn(s, p) => {
            let (stmt, pos) = operand_fn_place(prog, loops, env, s, p)?;
            Ok(RtVal::Operand(prog.quad(stmt).operand(pos).clone()))
        }
        ValExpr::Eval(a, opexpr, b) => {
            let fa = const_of(eval_val(prog, loops, env, a)?)?;
            let fb = const_of(eval_val(prog, loops, env, b)?)?;
            let opname = match eval_val(prog, loops, env, opexpr)? {
                RtVal::Opc(o) => o.gospel_name().to_owned(),
                RtVal::Name(n) => n,
                other => {
                    return Err(RunError::Action(format!(
                        "eval(): operation is not an opcode: {other:?}"
                    )))
                }
            };
            let op = fold_op(&opname)
                .ok_or_else(|| RunError::Action(format!("eval(): unknown op `{opname}`")))?;
            let folded = gospel_ir::Value::fold(op, fa, fb)
                .ok_or_else(|| RunError::Action("eval(): fold failed".into()))?;
            Ok(RtVal::Operand(Operand::Const(folded)))
        }
        ValExpr::Bump(x, var, k) => {
            let ox = eval_val(prog, loops, env, x)?
                .as_operand()
                .ok_or_else(|| RunError::Action("bump(): first argument not an operand".into()))?;
            let ov = eval_val(prog, loops, env, var)?
                .as_operand()
                .and_then(|o| o.as_var())
                .ok_or_else(|| RunError::Action("bump(): second argument not a variable".into()))?;
            let amount = const_of(eval_val(prog, loops, env, k)?)?
                .as_int()
                .ok_or_else(|| RunError::Action("bump(): amount is not an integer".into()))?;
            let repl = gospel_ir::AffineExpr::var(ov).plus_const(amount);
            // A bare scalar use of the bumped variable cannot be rewritten
            // to `var + k` inside a single operand slot: fail loudly rather
            // than silently leaving it unbumped.
            if amount != 0 && ox.as_var() == Some(ov) {
                return Err(RunError::Action(
                    "bump(): the control variable is used as a direct scalar operand; \
                     the substitution is not expressible (prototype restriction)"
                        .into(),
                ));
            }
            Ok(RtVal::Operand(ox.substitute_affine(ov, &repl)))
        }
    }
}

fn const_of(v: RtVal) -> Result<gospel_ir::Value, RunError> {
    match v {
        RtVal::Operand(Operand::Const(c)) => Ok(c),
        RtVal::Int(n) => Ok(gospel_ir::Value::Int(n)),
        RtVal::Real(r) => Ok(gospel_ir::Value::Real(r)),
        other => Err(RunError::Action(format!(
            "expected a constant operand, got {other:?}"
        ))),
    }
}

fn fold_op(name: &str) -> Option<gospel_ir::FoldOp> {
    Some(match name.to_ascii_lowercase().as_str() {
        "add" => gospel_ir::FoldOp::Add,
        "sub" => gospel_ir::FoldOp::Sub,
        "mul" => gospel_ir::FoldOp::Mul,
        "div" => gospel_ir::FoldOp::Div,
        "mod" => gospel_ir::FoldOp::Mod,
        _ => return None,
    })
}

fn step_attr(
    prog: &Program,
    loops: &LoopTable,
    val: RtVal,
    attr: Attr,
) -> Result<RtVal, RunError> {
    let nav_err = || RunError::Action(format!("attribute `.{}` navigated off the program", attr.keyword()));
    match (val, attr) {
        (RtVal::Stmt(s), Attr::Nxt) => prog.next(s).map(RtVal::Stmt).ok_or_else(nav_err),
        (RtVal::Stmt(s), Attr::Prev) => prog.prev(s).map(RtVal::Stmt).ok_or_else(nav_err),
        (RtVal::Stmt(s), Attr::Opr(i)) => {
            let pos = OperandPos::from_index(i as usize).ok_or_else(nav_err)?;
            Ok(RtVal::Operand(prog.quad(s).operand(pos).clone()))
        }
        (RtVal::Stmt(s), Attr::Opc) => Ok(RtVal::Opc(prog.quad(s).op)),
        (RtVal::Loop(l), Attr::Head) => Ok(RtVal::Stmt(loops.get(l).head)),
        (RtVal::Loop(l), Attr::End) => Ok(RtVal::Stmt(loops.get(l).end)),
        // Live reads through the header statement so that modified bounds
        // are observed.
        (RtVal::Loop(l), Attr::Lcv) => Ok(RtVal::Operand(prog.quad(loops.get(l).head).dst.clone())),
        (RtVal::Loop(l), Attr::Init) => Ok(RtVal::Operand(prog.quad(loops.get(l).head).a.clone())),
        (RtVal::Loop(l), Attr::Final) => Ok(RtVal::Operand(prog.quad(loops.get(l).head).b.clone())),
        (RtVal::Loop(l), Attr::Nxt) => loops
            .by_index(l.index() + 1)
            .map(|info| RtVal::Loop(info.id))
            .ok_or_else(nav_err),
        (RtVal::Loop(l), Attr::Prev) => l
            .index()
            .checked_sub(1)
            .and_then(|i| loops.by_index(i))
            .map(|info| RtVal::Loop(info.id))
            .ok_or_else(nav_err),
        (other, a) => Err(RunError::Action(format!(
            "attribute `.{}` not defined on {other:?}",
            a.keyword()
        ))),
    }
}

/// Resolves an operand *place* — where `modify` writes.
pub(crate) fn eval_place(
    prog: &Program,
    loops: &LoopTable,
    env: &Bindings,
    v: &ValExpr,
) -> Result<(StmtId, OperandPos), RunError> {
    match v {
        ValExpr::OperandFn(s, p) => operand_fn_place(prog, loops, env, s, p),
        ValExpr::Ref(r) if !r.path.is_empty() => {
            let (prefix, last) = r.path.split_at(r.path.len() - 1);
            let base = ValExpr::Ref(gospel_lang::ast::ElemRef {
                base: r.base.clone(),
                path: prefix.to_vec(),
            });
            let holder = eval_val(prog, loops, env, &base)?;
            match (holder, last[0]) {
                (RtVal::Stmt(s), Attr::Opr(i)) => {
                    let pos = OperandPos::from_index(i as usize)
                        .ok_or_else(|| RunError::Action("bad operand index".into()))?;
                    Ok((s, pos))
                }
                (RtVal::Loop(l), Attr::Lcv) => Ok((loops.get(l).head, OperandPos::Dst)),
                (RtVal::Loop(l), Attr::Init) => Ok((loops.get(l).head, OperandPos::A)),
                (RtVal::Loop(l), Attr::Final) => Ok((loops.get(l).head, OperandPos::B)),
                (_h, a) => Err(RunError::Action(format!(
                    "`{}.{}` is not an operand place",
                    r.base,
                    a.keyword()
                ))),
            }
        }
        other => Err(RunError::Action(format!(
            "not an operand place: {other:?}"
        ))),
    }
}

fn operand_fn_place(
    prog: &Program,
    loops: &LoopTable,
    env: &Bindings,
    s: &ValExpr,
    p: &ValExpr,
) -> Result<(StmtId, OperandPos), RunError> {
    let stmt = eval_val(prog, loops, env, s)?
        .as_stmt()
        .ok_or_else(|| RunError::Action("operand(): first argument not a statement".into()))?;
    let pos = eval_val(prog, loops, env, p)?
        .as_pos()
        .ok_or_else(|| RunError::Action("operand(): second argument not a position".into()))?;
    Ok((stmt, pos))
}

// ---------------------------------------------------------------------------
// comparisons
// ---------------------------------------------------------------------------

fn numeric(v: &RtVal) -> Option<f64> {
    match v {
        RtVal::Int(n) => Some(*n as f64),
        RtVal::Real(r) => Some(*r),
        RtVal::Operand(Operand::Const(c)) => Some(c.to_f64()),
        _ => None,
    }
}

pub(crate) fn compare(a: &RtVal, op: CmpOp, b: &RtVal) -> Result<bool, RunError> {
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return Ok(match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        });
    }
    let eq = match (a, b) {
        (RtVal::Stmt(x), RtVal::Stmt(y)) => x == y,
        (RtVal::Loop(x), RtVal::Loop(y)) => x == y,
        (RtVal::Pos(x), RtVal::Pos(y)) => x == y,
        (RtVal::Pos(p), RtVal::Int(n)) | (RtVal::Int(n), RtVal::Pos(p)) => {
            usize::try_from(*n).ok() == Some(p.index())
        }
        (RtVal::Operand(x), RtVal::Operand(y)) => x == y,
        (RtVal::Opc(o), RtVal::Name(n)) | (RtVal::Name(n), RtVal::Opc(o)) => {
            o.gospel_name().eq_ignore_ascii_case(n)
        }
        (RtVal::Name(x), RtVal::Name(y)) => x.eq_ignore_ascii_case(y),
        // Values of different kinds are simply unequal.
        _ => false,
    };
    match op {
        CmpOp::Eq => Ok(eq),
        CmpOp::Ne => Ok(!eq),
        _ => Err(RunError::Action(format!(
            "ordering comparison on non-numeric values {a:?} / {b:?}"
        ))),
    }
}

fn class_matches(o: &Operand, cls: OperandClass) -> bool {
    match cls {
        OperandClass::Const => matches!(o, Operand::Const(_)),
        OperandClass::Var => matches!(o, Operand::Var(_)),
        OperandClass::Elem => matches!(o, Operand::Elem { .. }),
        OperandClass::None => matches!(o, Operand::None),
    }
}

// ---------------------------------------------------------------------------
// the searcher
// ---------------------------------------------------------------------------

/// One precondition search over a program snapshot. Owns the running cost
/// counters and the per-clause strategy log used by the §4 experiments.
pub(crate) struct Searcher<'a> {
    pub prog: &'a Program,
    pub deps: &'a DepGraph,
    pub opt: &'a CompiledOptimizer,
    pub cost: Cost,
    /// Restrict the first pattern clause's anchor to this statement
    /// ("select application points", §3 interface option).
    pub at_point: Option<StmtId>,
    /// Resume filter: skip first-clause anchors strictly before this
    /// statement in program order. Set by the driver to the dependence
    /// update's dirty frontier — anchors before it saw no change since
    /// they last failed to match. Ignored when `at_point` is set.
    pub resume_from: Option<StmtId>,
    /// Complement filter: keep only first-clause anchors strictly
    /// *before* this statement. The driver's fixpoint safety net pairs it
    /// with a missed `resume_from` search so together the two passes
    /// cover every anchor exactly once. Ignored when `at_point` is set.
    pub stop_before: Option<StmtId>,
    /// Skip the Depend section ("override dependence restrictions").
    pub ignore_depends: bool,
    /// Which strategy each Depend clause actually used, in evaluation
    /// order (introspection for the strategy experiments).
    pub strategies_used: Vec<Strategy>,
    /// Per-Depend-clause candidate kills, indexed by clause position: how
    /// often an `any` clause found no solution or a `no` clause found one,
    /// failing the candidate binding reached from the pattern section.
    pub dep_rejects: Vec<u64>,
    /// Statement index over `prog`, when the driver maintains one. Lets
    /// opcode-constrained pattern clauses start from the matching bucket
    /// instead of scanning the whole program, and answers the
    /// members-then-deps size estimate in O(1). Only consulted when the
    /// candidate bucket can be restored to program order (every member
    /// has a `deps.order_of`); otherwise the scan path runs unchanged.
    pub index: Option<&'a StmtIndex>,
    /// The catalog-wide fused automaton and this optimizer's id in it,
    /// when the driver runs the fused matcher and the automaton fuses
    /// this optimizer's anchor. The top rung of the degradation ladder:
    /// anchor candidates come from the optimizer's posting (admission
    /// already classified — zero per-search test evaluation), falling to
    /// the per-optimizer index and then the scan on stale order.
    pub fused: Option<(&'a crate::automaton::FusedAutomaton, usize)>,
    /// Negative anchor cache for this optimizer, when the driver keeps
    /// one across fixpoint iterations.
    pub cache: Option<&'a mut MatchCache>,
    /// Precomputed per-pattern-clause anchor filters (entry `i` belongs
    /// to clause `i`; `None` = not anchor-filterable). When absent, the
    /// filter is derived from the clause on every enumeration.
    pub filters: Option<&'a [Option<AnchorFilter>]>,
    /// How often the indexed candidate path bowed out because a bucket
    /// member's program order was unknown to the dependence snapshot —
    /// the first rung of the degradation ladder (indexed → scan). The
    /// driver surfaces it as `search.degraded.stale_order`.
    pub degraded_stale_order: u64,
    /// Anchor candidates skipped without a visit because the index bucket
    /// excluded them (they could never satisfy the clause's opcode
    /// constraint).
    pub candidates_pruned: u64,
    /// Anchor candidates skipped because the negative cache remembered a
    /// first-clause rejection that no later edit invalidated.
    pub cache_hits: u64,
    /// Anchor candidates dispatched from the fused automaton's posting
    /// (surfaced as `search.fused.dispatched.<OPT>`).
    pub fused_dispatched: u64,
    /// Accumulate wall time spent in the pattern-matching phase
    /// (candidate enumeration + clause format evaluation) into
    /// `pattern_ns`. Off by default — the driver turns it on when a
    /// recorder is attached, keeping the per-anchor timer calls out of
    /// untraced runs.
    pub time_pattern: bool,
    /// Nanoseconds spent in the pattern-matching phase, when
    /// `time_pattern` is set. Dependence-clause evaluation is excluded:
    /// the paper's cost model splits precondition checking into the two
    /// phases, and the statement index targets only this one.
    pub pattern_ns: u64,
    /// Set by the most recent `pattern_candidates` call when the
    /// candidates came from an index bucket whose [`crate::AnchorFilter`]
    /// is `exact` — the bucket *is* the format's satisfying set, so
    /// `rec_pattern` skips format evaluation for those candidates.
    format_known: bool,
    /// How the most recent anchor enumeration relates to the admission
    /// set, so funnel accounting stays matcher-independent (see
    /// [`AnchorAdmission`]). Set by `pattern_candidates` for the anchor
    /// clause only.
    anchor_admission: AnchorAdmission,
    /// Funnel: elements the anchor enumeration considered, before any
    /// admission narrowing — `prog.len()` for statement anchors, the
    /// loop-table candidate count for loop anchors. Matcher-independent
    /// by construction.
    pub funnel_classified: u64,
    /// Funnel: visited anchor candidates inside the admission set. The
    /// bucket/posting paths count every visit (membership *is*
    /// admission); the scan path tests each visit with
    /// [`AnchorFilter::admits`] — the same predicate — so totals agree
    /// across all three matchers over identical visited prefixes.
    pub funnel_admitted: u64,
    /// Funnel: admitted anchors whose clause format held (the exact
    /// `known_hold` shortcut counts here too — bucket membership already
    /// proved the format).
    pub funnel_matched: u64,
    /// Funnel: pattern-section bindings that entered the Depend section.
    /// Not part of the `classified ≥ admitted ≥ matched` chain — one
    /// matched anchor can reach dependence checking under several
    /// bindings, or under none when a later pattern clause fails.
    pub funnel_dep_checked: u64,
}

/// How anchor candidates produced by `pattern_candidates` relate to the
/// [`AnchorFilter`] admission set — the piece of bookkeeping that lets
/// all three matchers report the same `admitted` funnel totals.
enum AnchorAdmission {
    /// Candidates came from an index bucket or fused posting: every
    /// visited candidate is admitted by construction.
    Bucket,
    /// Scan candidates with a narrowing filter: each visited statement
    /// is tested with [`AnchorFilter::admits`].
    Filter(AnchorFilter),
    /// No admission set narrows this enumeration (loop anchors, or a
    /// format with no opcode bound): every visited candidate counts.
    All,
}

impl<'a> Searcher<'a> {
    pub fn new(prog: &'a Program, deps: &'a DepGraph, opt: &'a CompiledOptimizer) -> Searcher<'a> {
        Searcher {
            prog,
            deps,
            opt,
            cost: Cost::zero(),
            at_point: None,
            resume_from: None,
            stop_before: None,
            ignore_depends: false,
            strategies_used: Vec::new(),
            dep_rejects: vec![0; opt.depends.len()],
            index: None,
            fused: None,
            cache: None,
            filters: None,
            degraded_stale_order: 0,
            candidates_pruned: 0,
            cache_hits: 0,
            fused_dispatched: 0,
            time_pattern: false,
            pattern_ns: 0,
            format_known: false,
            anchor_admission: AnchorAdmission::All,
            funnel_classified: 0,
            funnel_admitted: 0,
            funnel_matched: 0,
            funnel_dep_checked: 0,
        }
    }

    /// Whether a visited anchor candidate is in the admission set, under
    /// the enumeration's [`AnchorAdmission`] accounting.
    fn anchor_admitted(&self, admission: &AnchorAdmission, cand: &[RtVal]) -> bool {
        match admission {
            AnchorAdmission::Bucket | AnchorAdmission::All => true,
            AnchorAdmission::Filter(f) => match cand.first() {
                Some(RtVal::Stmt(s)) => f.admits(self.prog.quad(*s)),
                _ => true,
            },
        }
    }

    fn loops(&self) -> &'a LoopTable {
        self.deps.loops()
    }

    /// Starts a pattern-phase timing interval when `time_pattern` is on.
    fn pattern_timer(&self) -> Option<Instant> {
        self.time_pattern.then(Instant::now)
    }

    /// Closes a [`Searcher::pattern_timer`] interval.
    fn note_pattern(&mut self, t: Option<Instant>) {
        if let Some(t) = t {
            self.pattern_ns += t.elapsed().as_nanos() as u64;
        }
    }

    /// Finds the first full binding satisfying the precondition.
    ///
    /// Short-circuits inside the search: `rec` with limit 1 returns
    /// `true` up through every active clause loop the moment the first
    /// full binding lands, so no anchor after the match is visited (see
    /// `find_first_short_circuits_anchor_visits`).
    pub fn find_first(&mut self) -> Result<Option<Bindings>, RunError> {
        let mut out = Vec::with_capacity(1);
        self.rec(0, Bindings::new(), &mut out, 1)?;
        Ok(out.pop())
    }

    /// Finds up to `limit` bindings (all application points).
    pub fn find_all(&mut self, limit: usize) -> Result<Vec<Bindings>, RunError> {
        let mut out = Vec::new();
        self.rec(0, Bindings::new(), &mut out, limit)?;
        Ok(out)
    }

    /// Recursive backtracking over pattern clauses then dependence clauses.
    /// Returns `true` when enough bindings were collected.
    fn rec(
        &mut self,
        idx: usize,
        env: Bindings,
        out: &mut Vec<Bindings>,
        limit: usize,
    ) -> Result<bool, RunError> {
        let opt = self.opt;
        let np = opt.patterns.len();
        if idx < np {
            let (clause, ty) = &opt.patterns[idx];
            return self.rec_pattern(idx, clause, *ty, env, out, limit);
        }
        let di = idx - np;
        let depends = if self.ignore_depends {
            0
        } else {
            opt.depends.len()
        };
        if di < depends {
            if di == 0 {
                self.funnel_dep_checked += 1;
            }
            let cc = &opt.depends[di];
            return self.rec_depend(idx, cc, env, out, limit);
        }
        out.push(env);
        Ok(out.len() >= limit)
    }

    fn rec_pattern(
        &mut self,
        idx: usize,
        clause: &PatternClause,
        ty: ElemType,
        env: Bindings,
        out: &mut Vec<Bindings>,
        limit: usize,
    ) -> Result<bool, RunError> {
        let t = self.pattern_timer();
        let candidates = self.pattern_candidates(clause, ty, idx);
        self.note_pattern(t);
        // Snapshot before recursing: nested clauses re-enter
        // `pattern_candidates` and overwrite the flag.
        let known_hold = self.format_known;
        let admission =
            std::mem::replace(&mut self.anchor_admission, AnchorAdmission::All);
        match clause.quant {
            Quant::Any => {
                // The negative cache only ever covers the anchor clause:
                // its verdict there is anchor-local by construction
                // (`MatchCache::clause_eligible`), so a remembered
                // rejection stays valid until an edit touches the
                // statement itself.
                let caching = idx == 0
                    && ty == ElemType::Stmt
                    && self.cache.as_ref().is_some_and(|c| c.enabled());
                'cands: for cand in candidates {
                    if caching {
                        if let Some(RtVal::Stmt(s)) = cand.first() {
                            if self.cache.as_ref().is_some_and(|c| c.is_rejected(*s)) {
                                self.cache_hits += 1;
                                // A remembered rejection still passed
                                // admission when it was first visited;
                                // count it so cached and cold fixpoint
                                // iterations report the same funnel.
                                if self.anchor_admitted(&admission, &cand) {
                                    self.funnel_admitted += 1;
                                }
                                continue 'cands;
                            }
                        }
                    }
                    let admitted = idx == 0 && self.anchor_admitted(&admission, &cand);
                    if idx == 0 {
                        self.cost.anchor_visits += 1;
                        if admitted {
                            self.funnel_admitted += 1;
                        }
                    }
                    let mut env2 = env.clone();
                    for (v, val) in clause.vars.iter().zip(&cand) {
                        // A variable bound by an earlier clause (loop pairs
                        // chained through a shared loop) must agree.
                        if let Some(existing) = env2.get(v) {
                            if existing != val {
                                continue 'cands;
                            }
                        }
                        env2.set(v, val.clone());
                    }
                    let holds = if known_hold {
                        true
                    } else {
                        let t = self.pattern_timer();
                        let h = self.format_holds(clause, &env2)?;
                        self.note_pattern(t);
                        h
                    };
                    if admitted && holds {
                        self.funnel_matched += 1;
                    }
                    if !holds {
                        if caching {
                            if let (Some(RtVal::Stmt(s)), Some(c)) =
                                (cand.first(), self.cache.as_mut())
                            {
                                c.mark_rejected(*s);
                            }
                        }
                        continue 'cands;
                    }
                    if self.rec(idx + 1, env2, out, limit)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Quant::No => {
                for cand in candidates {
                    let admitted = idx == 0 && self.anchor_admitted(&admission, &cand);
                    if idx == 0 {
                        self.cost.anchor_visits += 1;
                        if admitted {
                            self.funnel_admitted += 1;
                        }
                    }
                    let mut env2 = env.clone();
                    for (v, val) in clause.vars.iter().zip(&cand) {
                        env2.set(v, val.clone());
                    }
                    let holds = if known_hold {
                        true
                    } else {
                        let t = self.pattern_timer();
                        let h = self.format_holds(clause, &env2)?;
                        self.note_pattern(t);
                        h
                    };
                    if holds {
                        if admitted {
                            self.funnel_matched += 1;
                        }
                        return Ok(false); // an element matches: clause fails
                    }
                }
                self.rec(idx + 1, env, out, limit)
            }
            Quant::All => Err(RunError::Action(
                "`all` in Code_Pattern is rejected at generation time".into(),
            )),
        }
    }

    fn format_holds(&mut self, clause: &PatternClause, env: &Bindings) -> Result<bool, RunError> {
        match &clause.format {
            None => Ok(true),
            Some(f) => {
                let mut checks = 0u64;
                let ok = eval_format(self.prog, self.loops(), env, f, &mut checks)?;
                self.cost.pattern_checks += checks;
                Ok(ok)
            }
        }
    }

    /// The candidate bucket for one opcode-constrained statement clause,
    /// in program order, or `None` when the scan path must run: no
    /// index, a format with no opcode bound, or a bucket member whose
    /// program position is unknown to the dependence snapshot (stale
    /// order — the scan stays authoritative).
    ///
    /// Restricting candidates to the [`crate::AnchorFilter`]'s admission
    /// set is sound for both `any` and `no` quantifiers: a statement
    /// outside it provably fails the clause's opcode disjunction or one
    /// of its top-level `type(var.opr_N)` conjuncts, so its format can
    /// never hold.
    /// The second component reports [`crate::AnchorFilter::exact`]: the
    /// admission set *equals* the format's satisfying set, so the caller
    /// may treat every returned candidate as already format-checked.
    fn indexed_stmt_candidates(
        &mut self,
        idx: usize,
        clause: &PatternClause,
    ) -> Option<(Vec<StmtId>, bool)> {
        let ix = self.index?;
        // Prefer the driver's precomputed per-clause filter; derive one
        // from the clause only when none was provided.
        let derived;
        let filter: &AnchorFilter = match self.filters {
            Some(fs) => fs.get(idx)?.as_ref()?,
            None => {
                let var = clause.vars.first()?;
                derived = anchor_filter(clause, var);
                &derived
            }
        };
        let bucket = ix.candidates(filter)?;
        let exact = filter.exact;
        let mut ordered = Vec::with_capacity(bucket.len());
        for s in bucket {
            match self.deps.order_of(s) {
                Some(o) => ordered.push((o, s)),
                None => {
                    // First ladder rung: the dependence snapshot cannot
                    // order this bucket member (stale order), so the scan
                    // path stays authoritative for this enumeration.
                    self.degraded_stale_order += 1;
                    return None;
                }
            }
        }
        ordered.sort_unstable();
        Some((ordered.into_iter().map(|(_, s)| s).collect(), exact))
    }

    /// This optimizer's anchor posting from the fused automaton, in
    /// program order, or `None` when the next ladder rung must run: no
    /// automaton, the optimizer is not fused, or a posting member whose
    /// program position is unknown to the dependence snapshot (stale
    /// order). Admission soundness is the same [`crate::AnchorFilter`]
    /// argument as [`Searcher::indexed_stmt_candidates`] — the automaton
    /// compiles the very same filters into its trie, and the `exact`
    /// flag carries over identically.
    fn fused_stmt_candidates(&mut self) -> Option<(Vec<StmtId>, bool)> {
        let (auto, id) = self.fused?;
        let exact = auto.exact(id);
        let posting = auto.posting(id);
        let mut ordered = Vec::with_capacity(posting.len());
        for &s in posting {
            match self.deps.order_of(s) {
                Some(o) => ordered.push((o, s)),
                None => {
                    self.degraded_stale_order += 1;
                    return None;
                }
            }
        }
        ordered.sort_unstable();
        Some((ordered.into_iter().map(|(_, s)| s).collect(), exact))
    }

    fn pattern_candidates(
        &mut self,
        clause: &PatternClause,
        ty: ElemType,
        idx: usize,
    ) -> Vec<Vec<RtVal>> {
        let first = idx == 0;
        self.format_known = false;
        // Hoisted ahead of the anchor_ok closure: candidate enumeration
        // may mutate the searcher (stale-order accounting), while the
        // closure holds a shared borrow for the rest of the function.
        // Ladder order: fused posting (anchor clause only — the automaton
        // compiles anchor filters), then index bucket, then scan.
        let fused = (first && ty == ElemType::Stmt)
            .then(|| self.fused_stmt_candidates())
            .flatten();
        let from_fused = fused.is_some();
        let indexed = fused.or_else(|| {
            (ty == ElemType::Stmt)
                .then(|| self.indexed_stmt_candidates(idx, clause))
                .flatten()
        });
        let loops = self.loops();
        if first {
            // Funnel accounting, fixed before `anchor_ok` borrows the
            // searcher. `classified` counts the enumeration's universe
            // (pre-admission, pre-resume-filter), identical for every
            // matcher; `anchor_admission` tells the visit loop how to
            // recognise the admission set among visited candidates.
            self.funnel_classified += match ty {
                ElemType::Stmt => self.prog.len() as u64,
                ElemType::Loop => loops.iter().count() as u64,
                ElemType::NestedLoops => loops.nested_pairs().len() as u64,
                ElemType::TightLoops => loops.tight_pairs(self.prog).len() as u64,
                ElemType::AdjacentLoops => loops.adjacent_pairs(self.prog).len() as u64,
            };
            self.anchor_admission = if ty != ElemType::Stmt {
                AnchorAdmission::All
            } else if indexed.is_some() {
                AnchorAdmission::Bucket
            } else {
                let filter = match self.filters {
                    Some(fs) => fs.get(idx).and_then(|f| f.clone()),
                    None => clause.vars.first().map(|v| anchor_filter(clause, v)),
                };
                match filter {
                    Some(f) if f.narrows() => AnchorAdmission::Filter(f),
                    _ => AnchorAdmission::All,
                }
            };
        }
        let resume_bar = self
            .resume_from
            .and_then(|r| self.deps.order_of(r));
        let stop_bar = self
            .stop_before
            .and_then(|r| self.deps.order_of(r));
        let anchor_ok = |head: StmtId| -> bool {
            if !first {
                return true;
            }
            if let Some(p) = self.at_point {
                return p == head;
            }
            match (resume_bar, self.deps.order_of(head)) {
                // Anchors strictly before the dirty frontier saw no change
                // since they last failed to match.
                (Some(bar), Some(h)) if h < bar => return false,
                _ => {}
            }
            match (stop_bar, self.deps.order_of(head)) {
                (Some(bar), Some(h)) => h < bar,
                // Unknown order (stale snapshot): stay conservative.
                _ => true,
            }
        };
        match ty {
            ElemType::Stmt => {
                let mut pruned = 0u64;
                let out: Vec<Vec<RtVal>> =
                    if let Some((bucket, exact)) = indexed {
                        pruned = (self.prog.len().saturating_sub(bucket.len())) as u64;
                        self.format_known = exact;
                        bucket
                            .into_iter()
                            .filter(|&s| anchor_ok(s))
                            .map(|s| vec![RtVal::Stmt(s)])
                            .collect()
                    } else {
                        self.prog
                            .iter()
                            .filter(|&s| anchor_ok(s))
                            .map(|s| vec![RtVal::Stmt(s)])
                            .collect()
                    };
                self.candidates_pruned += pruned;
                if from_fused {
                    self.fused_dispatched += out.len() as u64;
                }
                out
            }
            ElemType::Loop => loops
                .iter()
                .filter(|l| anchor_ok(l.head))
                .map(|l| vec![RtVal::Loop(l.id)])
                .collect(),
            ElemType::NestedLoops => loops
                .nested_pairs()
                .into_iter()
                .filter(|&(o, _)| anchor_ok(loops.get(o).head))
                .map(|(o, i)| vec![RtVal::Loop(o), RtVal::Loop(i)])
                .collect(),
            ElemType::TightLoops => loops
                .tight_pairs(self.prog)
                .into_iter()
                .filter(|&(o, _)| anchor_ok(loops.get(o).head))
                .map(|(o, i)| vec![RtVal::Loop(o), RtVal::Loop(i)])
                .collect(),
            ElemType::AdjacentLoops => loops
                .adjacent_pairs(self.prog)
                .into_iter()
                .filter(|&(l1, _)| anchor_ok(loops.get(l1).head))
                .map(|(l1, l2)| vec![RtVal::Loop(l1), RtVal::Loop(l2)])
                .collect(),
        }
    }

    fn rec_depend(
        &mut self,
        idx: usize,
        cc: &CompiledClause,
        env: Bindings,
        out: &mut Vec<Bindings>,
        limit: usize,
    ) -> Result<bool, RunError> {
        let di = idx - self.opt.patterns.len();
        match cc.clause.quant {
            Quant::Any => {
                let solutions = self.solve_clause(cc, &env, false)?;
                if solutions.is_empty() {
                    self.dep_rejects[di] += 1;
                    return Ok(false);
                }
                for sol in solutions {
                    if self.rec(idx + 1, sol, out, limit)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Quant::No => {
                let solutions = self.solve_clause(cc, &env, false)?;
                if solutions.is_empty() {
                    self.rec(idx + 1, env, out, limit)
                } else {
                    self.dep_rejects[di] += 1;
                    Ok(false)
                }
            }
            Quant::All => {
                let solutions = self.solve_clause(cc, &env, true)?;
                let mut env2 = env;
                for (v, pv) in cc.clause.vars.iter().zip(&cc.clause.pos_vars) {
                    let mut collected: Vec<(StmtId, Option<OperandPos>)> = Vec::new();
                    for sol in &solutions {
                        let stmt = sol.get(v).and_then(RtVal::as_stmt);
                        let pos = pv
                            .as_ref()
                            .and_then(|p| sol.get(p))
                            .and_then(RtVal::as_pos);
                        if let Some(s) = stmt {
                            if !collected.iter().any(|(cs, cp)| *cs == s && *cp == pos) {
                                collected.push((s, pos));
                            }
                        }
                    }
                    env2.set(v, RtVal::Set(collected));
                }
                self.rec(idx + 1, env2, out, limit)
            }
        }
    }

    /// Solves one dependence clause: returns every extension of `env`
    /// binding the clause's variables (and position variables) that makes
    /// the membership constraints and conditions true.
    pub(crate) fn solve_clause(
        &mut self,
        cc: &CompiledClause,
        env: &Bindings,
        _want_all: bool,
    ) -> Result<Vec<Bindings>, RunError> {
        let strategy = self.pick_strategy(cc, env);
        self.strategies_used.push(strategy);
        match strategy {
            Strategy::MembersFirst => self.solve_members_first(cc, env),
            Strategy::DepsFirst => self.solve_deps_first(cc, env),
            Strategy::Heuristic => unreachable!("pick_strategy resolves Heuristic"),
        }
    }

    fn pick_strategy(&self, cc: &CompiledClause, env: &Bindings) -> Strategy {
        let forced = self.opt.strategy;
        match forced {
            Strategy::MembersFirst => Strategy::MembersFirst,
            Strategy::DepsFirst if cc.deps_first_ok => Strategy::DepsFirst,
            Strategy::DepsFirst => Strategy::MembersFirst,
            Strategy::Heuristic => {
                if !cc.deps_first_ok {
                    return Strategy::MembersFirst;
                }
                let members_cost = self.estimate_members(cc, env);
                let deps_cost = self.estimate_deps(cc, env);
                if deps_cost <= members_cost {
                    Strategy::DepsFirst
                } else {
                    Strategy::MembersFirst
                }
            }
        }
    }

    /// Cost estimate for members-then-deps: the product of candidate-set
    /// sizes (the number of tuples enumerated).
    fn estimate_members(&self, cc: &CompiledClause, env: &Bindings) -> usize {
        let mut product = 1usize;
        for v in &cc.clause.vars {
            let size = self
                .member_set_size(cc, v, env)
                .unwrap_or_else(|| self.prog.len());
            product = product.saturating_mul(size.max(1));
        }
        product
    }

    /// Size of the candidate set `member_generator` would produce for
    /// `var`, without materializing it when the index can answer: a
    /// loop-body membership constraint reads `StmtIndex::body_size` in
    /// O(1), which is by construction the exact count
    /// `LoopTable::body(..).count()` reports. The value — and therefore
    /// the strategy the heuristic picks — is identical either way; only
    /// the estimation cost changes.
    fn member_set_size(&self, cc: &CompiledClause, var: &str, env: &Bindings) -> Option<usize> {
        for m in &cc.clause.members {
            if m.negated {
                continue;
            }
            if let ValExpr::Name(n) = &m.elem {
                if n == var {
                    if let (Some(ix), SetExpr::Named(s)) = (self.index, &m.set) {
                        if let Some(RtVal::Loop(l)) = env.get(s) {
                            if let Some(sz) = ix.body_size(self.loops().get(*l).head) {
                                return Some(sz);
                            }
                        }
                    }
                    return self.set_elements(&m.set, env).ok().map(|els| els.len());
                }
            }
        }
        None
    }

    /// Cost estimate for deps-then-membership: the number of edges the
    /// first binding atom would enumerate.
    fn estimate_deps(&self, cc: &CompiledClause, env: &Bindings) -> usize {
        let mut atoms = Vec::new();
        flatten_and(&cc.clause.cond, &mut atoms);
        for atom in atoms {
            if let BoolExpr::Dep { from, to, .. } = atom {
                let from_bound = self.side_stmt(from, env);
                let to_bound = self.side_stmt(to, env);
                return match (from_bound, to_bound) {
                    (Some(s), _) => self.deps.from(s).count(),
                    (_, Some(s)) => self.deps.to(s).count(),
                    _ => self.deps.len(),
                };
            }
        }
        usize::MAX
    }

    fn side_stmt(&self, side: &ValExpr, env: &Bindings) -> Option<StmtId> {
        match side {
            ValExpr::Name(n) => env.get(n).and_then(RtVal::as_stmt),
            ValExpr::Ref(_) => eval_val(self.prog, self.loops(), env, side)
                .ok()
                .and_then(|v| v.as_stmt()),
            _ => None,
        }
    }

    /// The candidate set for `var` from a positive `mem(var, set)`
    /// constraint, if one exists.
    fn member_generator(
        &self,
        cc: &CompiledClause,
        var: &str,
        env: &Bindings,
    ) -> Option<Vec<StmtId>> {
        for m in &cc.clause.members {
            if m.negated {
                continue;
            }
            if let ValExpr::Name(n) = &m.elem {
                if n == var {
                    return self.set_elements(&m.set, env).ok();
                }
            }
        }
        None
    }

    fn set_elements(&self, set: &SetExpr, env: &Bindings) -> Result<Vec<StmtId>, RunError> {
        match set {
            SetExpr::Named(n) => match env.get(n) {
                Some(RtVal::Loop(l)) => Ok(self.loops().body(self.prog, *l).collect()),
                Some(RtVal::Set(items)) => Ok(items.iter().map(|(s, _)| *s).collect()),
                other => Err(RunError::Action(format!(
                    "`{n}` is not a set (bound to {other:?})"
                ))),
            },
            SetExpr::Path(a, b) => {
                let sa = eval_val(self.prog, self.loops(), env, a)?
                    .as_stmt()
                    .ok_or_else(|| RunError::Action("path(): not a statement".into()))?;
                let sb = eval_val(self.prog, self.loops(), env, b)?
                    .as_stmt()
                    .ok_or_else(|| RunError::Action("path(): not a statement".into()))?;
                let mut out = vec![sa];
                out.extend(self.prog.iter_between(sa, sb));
                if sa != sb {
                    out.push(sb);
                }
                Ok(out)
            }
            SetExpr::Union(a, b) => {
                let mut out = self.set_elements(a, env)?;
                for s in self.set_elements(b, env)? {
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
                Ok(out)
            }
            SetExpr::Inter(a, b) => {
                let right = self.set_elements(b, env)?;
                Ok(self
                    .set_elements(a, env)?
                    .into_iter()
                    .filter(|s| right.contains(s))
                    .collect())
            }
        }
    }

    // ---- strategy (1): members first --------------------------------------

    fn solve_members_first(
        &mut self,
        cc: &CompiledClause,
        env: &Bindings,
    ) -> Result<Vec<Bindings>, RunError> {
        // Candidate list per clause variable.
        let mut lists: Vec<(String, Vec<RtVal>)> = Vec::new();
        for v in &cc.clause.vars {
            let class = self.opt.info.classes.get(v).copied();
            let cands: Vec<RtVal> = if let Some(set) = self.member_generator(cc, v, env) {
                set.into_iter().map(RtVal::Stmt).collect()
            } else if class == Some(VarClass::Loop) {
                self.loops().iter().map(|l| RtVal::Loop(l.id)).collect()
            } else {
                self.prog.iter().map(RtVal::Stmt).collect()
            };
            lists.push((v.clone(), cands));
        }

        let mut results = Vec::new();
        let mut stack = vec![env.clone()];
        for (v, cands) in &lists {
            let mut next = Vec::new();
            for e in &stack {
                for c in cands {
                    next.push(e.with(v, c.clone()));
                }
            }
            stack = next;
        }
        for e in stack {
            // Residual membership checks (negated or non-generator ones).
            if !self.members_hold(cc, &e)? {
                continue;
            }
            let mut envs = self.eval_bool_envs(&cc.clause.cond, e, cc)?;
            results.append(&mut envs);
        }
        dedup_envs(&mut results);
        Ok(results)
    }

    fn members_hold(&mut self, cc: &CompiledClause, env: &Bindings) -> Result<bool, RunError> {
        for m in &cc.clause.members {
            self.cost.dep_checks += 1;
            let elem = eval_val(self.prog, self.loops(), env, &m.elem)?
                .as_stmt()
                .ok_or_else(|| RunError::Action("mem(): element is not a statement".into()))?;
            let members = self.set_elements(&m.set, env)?;
            let inside = members.contains(&elem);
            if inside == m.negated {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ---- strategy (2): dependences first -----------------------------------

    fn solve_deps_first(
        &mut self,
        cc: &CompiledClause,
        env: &Bindings,
    ) -> Result<Vec<Bindings>, RunError> {
        let mut envs = self.eval_bool_envs(&cc.clause.cond, env.clone(), cc)?;
        // Filter by membership afterwards.
        let mut out = Vec::new();
        for e in envs.drain(..) {
            if self.members_hold(cc, &e)? {
                out.push(e);
            }
        }
        dedup_envs(&mut out);
        Ok(out)
    }

    // ---- relational condition evaluation ------------------------------------

    /// Evaluates a condition, returning every extension of `env` that makes
    /// it true. Dependence atoms may bind the clause's still-unbound
    /// variables (edge-driven generation) and position variables.
    fn eval_bool_envs(
        &mut self,
        b: &BoolExpr,
        env: Bindings,
        cc: &CompiledClause,
    ) -> Result<Vec<Bindings>, RunError> {
        match b {
            BoolExpr::And(l, r) => {
                let left = self.eval_bool_envs(l, env, cc)?;
                let mut out = Vec::new();
                for e in left {
                    out.extend(self.eval_bool_envs(r, e, cc)?);
                }
                Ok(out)
            }
            BoolExpr::Or(l, r) => {
                let mut out = self.eval_bool_envs(l, env.clone(), cc)?;
                out.extend(self.eval_bool_envs(r, env, cc)?);
                dedup_envs(&mut out);
                Ok(out)
            }
            BoolExpr::Not(inner) => {
                let inner_envs = self.eval_bool_envs(inner, env.clone(), cc)?;
                if inner_envs.is_empty() {
                    Ok(vec![env])
                } else {
                    Ok(Vec::new())
                }
            }
            BoolExpr::Cmp(l, op, r) => {
                self.cost.dep_checks += 1;
                let lv = eval_val(self.prog, self.loops(), &env, l)?;
                let rv = eval_val(self.prog, self.loops(), &env, r)?;
                if compare(&lv, *op, &rv)? {
                    Ok(vec![env])
                } else {
                    Ok(Vec::new())
                }
            }
            BoolExpr::TypeIs(v, cls, positive) => {
                self.cost.dep_checks += 1;
                let val = eval_val(self.prog, self.loops(), &env, v)?;
                let o = val
                    .as_operand()
                    .ok_or_else(|| RunError::Action("type(): not an operand".into()))?;
                if class_matches(&o, *cls) == *positive {
                    Ok(vec![env])
                } else {
                    Ok(Vec::new())
                }
            }
            BoolExpr::Dep {
                kind,
                from,
                to,
                dirs,
            } => self.eval_dep_atom(*kind, from, to, dirs.as_deref(), env, cc),
        }
    }

    fn eval_dep_atom(
        &mut self,
        kind: DepKind,
        from: &ValExpr,
        to: &ValExpr,
        dirs: Option<&[DirElem]>,
        env: Bindings,
        cc: &CompiledClause,
    ) -> Result<Vec<Bindings>, RunError> {
        let pattern = match dirs {
            Some(d) => DirPattern::new(d.to_vec()),
            None => DirPattern::any(),
        };
        // position variable associated with each clause variable
        let posmap: HashMap<&str, &str> = cc
            .clause
            .vars
            .iter()
            .zip(&cc.clause.pos_vars)
            .filter_map(|(v, p)| p.as_ref().map(|p| (v.as_str(), p.as_str())))
            .collect();

        let from_state = self.side_state(from, &env, cc)?;
        let to_state = self.side_state(to, &env, cc)?;

        // The cost of this atom is the number of candidate edges scanned —
        // this is what makes the two §4 strategies measurably different.
        let scanned: usize;
        let edges: Vec<&DepEdge> = match (&from_state, &to_state) {
            (Side::Bound(f), Side::Bound(t)) => {
                scanned = self.deps.from(*f).count();
                self.deps
                    .from(*f)
                    .filter(|e| e.dst == *t && e.kind == kind && pattern.matches(&e.dirvec))
                    .collect()
            }
            (Side::Bound(f), Side::Unbound(_)) => {
                scanned = self.deps.from(*f).count();
                self.deps
                    .from(*f)
                    .filter(|e| e.kind == kind && pattern.matches(&e.dirvec))
                    .collect()
            }
            (Side::Unbound(_), Side::Bound(t)) => {
                scanned = self.deps.to(*t).count();
                self.deps
                    .to(*t)
                    .filter(|e| e.kind == kind && pattern.matches(&e.dirvec))
                    .collect()
            }
            (Side::Unbound(_), Side::Unbound(_)) => {
                scanned = self.deps.len();
                self.deps
                    .edges()
                    .iter()
                    .filter(|e| e.kind == kind && pattern.matches(&e.dirvec))
                    .collect()
            }
        };
        self.cost.dep_checks += scanned.max(1) as u64;

        let mut out = Vec::new();
        for e in edges {
            let mut env2 = env.clone();
            let mut ok = true;
            if let Side::Unbound(v) = &from_state {
                env2.set(v, RtVal::Stmt(e.src));
            }
            if let Side::Unbound(v) = &to_state {
                env2.set(v, RtVal::Stmt(e.dst));
            }
            // Bind the position variables of any clause variable that is an
            // endpoint of this atom. The position reported is the paper's
            // "position of the dependence within the statement": the
            // operand position at the dependence's *sink*.
            for side in [from, to] {
                if let ValExpr::Name(v) = side {
                    if let Some(pv) = posmap.get(v.as_str()) {
                        let posval = RtVal::Pos(e.dst_pos);
                        match env2.get(pv) {
                            None => env2.set(pv, posval),
                            Some(existing) => {
                                if *existing != posval {
                                    ok = false;
                                }
                            }
                        }
                    }
                }
            }
            if ok {
                out.push(env2);
            }
        }
        dedup_envs(&mut out);
        Ok(out)
    }

    fn side_state(
        &self,
        side: &ValExpr,
        env: &Bindings,
        cc: &CompiledClause,
    ) -> Result<Side, RunError> {
        if let ValExpr::Name(n) = side {
            if !env.is_bound(n) {
                if cc.clause.vars.iter().any(|v| v == n) {
                    return Ok(Side::Unbound(n.clone()));
                }
                return Err(RunError::Action(format!(
                    "dependence endpoint `{n}` is unbound and not a clause variable"
                )));
            }
        }
        let stmt = eval_val(self.prog, self.loops(), env, side)?
            .as_stmt()
            .ok_or_else(|| {
                RunError::Action("dependence endpoints must be statements".into())
            })?;
        Ok(Side::Bound(stmt))
    }
}

enum Side {
    Bound(StmtId),
    Unbound(String),
}

fn dedup_envs(envs: &mut Vec<Bindings>) {
    let mut seen: Vec<Bindings> = Vec::new();
    envs.retain(|e| {
        if seen.contains(e) {
            false
        } else {
            seen.push(e.clone());
            true
        }
    });
}

fn flatten_and<'b>(b: &'b BoolExpr, out: &mut Vec<&'b BoolExpr>) {
    match b {
        BoolExpr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other),
    }
}

/// Pattern-format evaluation (no dependence atoms; short-circuit with
/// per-atom counting, which the §4 "specification variants" experiment
/// relies on).
pub(crate) fn eval_format(
    prog: &Program,
    loops: &LoopTable,
    env: &Bindings,
    b: &BoolExpr,
    checks: &mut u64,
) -> Result<bool, RunError> {
    match b {
        BoolExpr::And(l, r) => {
            Ok(eval_format(prog, loops, env, l, checks)?
                && eval_format(prog, loops, env, r, checks)?)
        }
        BoolExpr::Or(l, r) => {
            Ok(eval_format(prog, loops, env, l, checks)?
                || eval_format(prog, loops, env, r, checks)?)
        }
        BoolExpr::Not(i) => Ok(!eval_format(prog, loops, env, i, checks)?),
        BoolExpr::Cmp(l, op, r) => {
            *checks += 1;
            // Navigation off the program edge (e.g. `.nxt` of the last
            // statement) makes the comparison false rather than an error.
            let lv = match eval_val(prog, loops, env, l) {
                Ok(v) => v,
                Err(_) => return Ok(false),
            };
            let rv = match eval_val(prog, loops, env, r) {
                Ok(v) => v,
                Err(_) => return Ok(false),
            };
            compare(&lv, *op, &rv)
        }
        BoolExpr::TypeIs(v, cls, positive) => {
            *checks += 1;
            let val = match eval_val(prog, loops, env, v) {
                Ok(v) => v,
                Err(_) => return Ok(false),
            };
            let o = val
                .as_operand()
                .ok_or_else(|| RunError::Action("type(): not an operand".into()))?;
            Ok(class_matches(&o, *cls) == *positive)
        }
        BoolExpr::Dep { .. } => Err(RunError::Action(
            "dependence test in Code_Pattern (rejected at validation)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;
    use gospel_frontend::compile as minifor;
    use gospel_lang::ast::ElemRef;
    use gospel_lang::parse_validated;

    fn world(src: &str) -> (Program, DepGraph) {
        let p = minifor(src).unwrap();
        let d = DepGraph::analyze(&p).unwrap();
        (p, d)
    }

    fn opt_of(spec: &str) -> CompiledOptimizer {
        let (s, i) = parse_validated(spec).unwrap();
        generate(s, i).unwrap()
    }

    const LOOPY: &str =
        "program p\ninteger i, n, x\nreal a(10)\nn = 10\ndo i = 1, n\na(i) = 0.0\nend do\nx = n\nend";

    #[test]
    fn attribute_navigation_on_statements_and_loops() {
        let (p, d) = world(LOOPY);
        let loops = d.loops();
        let first = p.first().unwrap();
        let mut env = Bindings::new();
        env.set("S", RtVal::Stmt(first));
        env.set("L", RtVal::Loop(loops.iter().next().unwrap().id));

        let r = |base: &str, path: Vec<Attr>| {
            eval_val(
                &p,
                loops,
                &env,
                &ValExpr::Ref(ElemRef {
                    base: base.into(),
                    path,
                }),
            )
        };
        // S.nxt is the do header; S.opc is assign; S.opr_2 the constant.
        assert!(matches!(r("S", vec![Attr::Nxt]).unwrap(), RtVal::Stmt(_)));
        assert_eq!(
            r("S", vec![Attr::Opc]).unwrap(),
            RtVal::Opc(gospel_ir::Opcode::Assign)
        );
        assert_eq!(
            r("S", vec![Attr::Opr(2)]).unwrap(),
            RtVal::Operand(Operand::int(10))
        );
        // L.head.nxt is the body statement; L.lcv / L.init / L.final read live.
        assert!(matches!(
            r("L", vec![Attr::Head, Attr::Nxt]).unwrap(),
            RtVal::Stmt(_)
        ));
        assert!(matches!(
            r("L", vec![Attr::Lcv]).unwrap(),
            RtVal::Operand(Operand::Var(_))
        ));
        assert_eq!(
            r("L", vec![Attr::Init]).unwrap(),
            RtVal::Operand(Operand::int(1))
        );
        // navigating off the program is an error
        assert!(r("S", vec![Attr::Prev]).is_err());
    }

    #[test]
    fn eval_place_forms() {
        let (p, d) = world(LOOPY);
        let loops = d.loops();
        let first = p.first().unwrap();
        let head = loops.iter().next().unwrap().head;
        let mut env = Bindings::new();
        env.set("S", RtVal::Stmt(first));
        env.set("L", RtVal::Loop(loops.iter().next().unwrap().id));
        env.set("p", RtVal::Pos(OperandPos::A));

        // S.opr_2
        let place = eval_place(
            &p,
            loops,
            &env,
            &ValExpr::Ref(ElemRef {
                base: "S".into(),
                path: vec![Attr::Opr(2)],
            }),
        )
        .unwrap();
        assert_eq!(place, (first, OperandPos::A));
        // operand(S, p)
        let place2 = eval_place(
            &p,
            loops,
            &env,
            &ValExpr::OperandFn(
                Box::new(ValExpr::Name("S".into())),
                Box::new(ValExpr::Name("p".into())),
            ),
        )
        .unwrap();
        assert_eq!(place2, (first, OperandPos::A));
        // L.final is the head's third slot
        let place3 = eval_place(
            &p,
            loops,
            &env,
            &ValExpr::Ref(ElemRef {
                base: "L".into(),
                path: vec![Attr::Final],
            }),
        )
        .unwrap();
        assert_eq!(place3, (head, OperandPos::B));
        // a bare statement is not a place
        assert!(eval_place(&p, loops, &env, &ValExpr::Name("S".into())).is_err());
    }

    #[test]
    fn compare_semantics() {
        use CmpOp::*;
        let t = |a: &RtVal, op, b: &RtVal| compare(a, op, b).unwrap();
        // numerics compare across Int/Real/Const operands
        assert!(t(&RtVal::Int(3), Eq, &RtVal::Operand(Operand::int(3))));
        assert!(t(&RtVal::Real(2.5), Gt, &RtVal::Int(2)));
        // positions coerce against ints
        assert!(t(&RtVal::Pos(OperandPos::B), Eq, &RtVal::Int(3)));
        // opcode vs name, case-insensitive
        assert!(t(
            &RtVal::Opc(gospel_ir::Opcode::Assign),
            Eq,
            &RtVal::Name("ASSIGN".into())
        ));
        // mismatched kinds are unequal, not an error (for ==/!=)
        assert!(t(&RtVal::Int(1), Ne, &RtVal::Name("assign".into())));
        // …but ordering them is an error
        assert!(compare(
            &RtVal::Name("x".into()),
            Lt,
            &RtVal::Name("y".into())
        )
        .is_err());
    }

    #[test]
    fn format_counting_short_circuits() {
        let (p, d) = world(LOOPY);
        let loops = d.loops();
        let first = p.first().unwrap(); // n := 10
        let mut env = Bindings::new();
        env.set("S", RtVal::Stmt(first));
        let cond = |txt: &str| -> BoolExpr {
            // reuse the spec parser to build conditions succinctly
            let spec = format!(
                "OPTIMIZATION T TYPE Stmt: S; PRECOND Code_Pattern any S: {txt}; ACTION delete(S); END"
            );
            let (ast, _) = parse_validated(&spec).unwrap();
            ast.patterns[0].format.clone().unwrap()
        };
        // first conjunct false => one check only
        let mut checks = 0;
        let ok = eval_format(
            &p,
            loops,
            &env,
            &cond("S.opc == add AND type(S.opr_2) == const"),
            &mut checks,
        )
        .unwrap();
        assert!(!ok);
        assert_eq!(checks, 1);
        // first true => both evaluated
        checks = 0;
        let ok = eval_format(
            &p,
            loops,
            &env,
            &cond("S.opc == assign AND type(S.opr_2) == const"),
            &mut checks,
        )
        .unwrap();
        assert!(ok);
        assert_eq!(checks, 2);
    }

    #[test]
    fn strategies_agree_on_solutions() {
        // Whatever the strategy, the set of application points must match.
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: Si, Sm; Loop: L;
PRECOND
  Code_Pattern
    any L;
  Depend
    any Si, Sm: mem(Si, L), flow_dep(Si, Sm) OR anti_dep(Si, Sm);
ACTION
  delete(Si);
END
"#;
        // note: this clause is deps_first-incompatible (OR) — exercise the
        // fallback too.
        let base = opt_of(spec);
        let src = "program p\ninteger i, x\nreal a(10)\ndo i = 1, 5\nx = i\na(i) = x\nend do\nwrite a(1)\nend";
        let (p, d) = world(src);
        let mut results = Vec::new();
        for strat in [Strategy::MembersFirst, Strategy::DepsFirst, Strategy::Heuristic] {
            let opt = base.with_strategy(strat);
            let mut s = Searcher::new(&p, &d, &opt);
            let found = s.find_all(usize::MAX).unwrap();
            results.push(found);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn deps_first_binds_from_edges_members_first_from_sets() {
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: Sm, Sn; Loop: L;
PRECOND
  Code_Pattern
    any L;
  Depend
    any Sm, Sn: mem(Sm, L) AND mem(Sn, L), flow_dep(Sm, Sn);
ACTION
  modify(Sm.opr_1, 1);
END
"#;
        let base = opt_of(spec);
        let src = "program p\ninteger i, x, y\ndo i = 1, 5\nx = i\ny = x\nend do\nwrite y\nend";
        let (p, d) = world(src);
        for strat in [Strategy::MembersFirst, Strategy::DepsFirst] {
            let opt = base.with_strategy(strat);
            let mut s = Searcher::new(&p, &d, &opt);
            let found = s.find_first().unwrap();
            assert!(found.is_some(), "{strat:?} found nothing");
            assert_eq!(s.strategies_used, vec![strat]);
        }
        // …and their costs differ (the E6 effect, in miniature)
        let cost_of = |strat| {
            let opt = base.with_strategy(strat);
            let mut s = Searcher::new(&p, &d, &opt);
            s.find_all(usize::MAX).unwrap();
            s.cost.dep_checks
        };
        assert_ne!(
            cost_of(Strategy::MembersFirst),
            cost_of(Strategy::DepsFirst)
        );
    }

    #[test]
    fn no_clause_with_empty_binding_is_a_pure_check() {
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: Sa, Sb;
PRECOND
  Code_Pattern
    any Sa: Sa.opc == assign;
    any Sb: Sb.opc == assign;
  Depend
    no: flow_dep(Sa, Sb);
ACTION
  delete(Sb);
END
"#;
        let opt = opt_of(spec);
        // x = 1; y = x: the pair (Sa=x, Sb=y-stmt) is rejected; the search
        // backtracks to independent pairs.
        let (p, d) = world("program p\ninteger x, y\nx = 1\ny = x\nwrite y\nend");
        let mut s = Searcher::new(&p, &d, &opt);
        let found = s.find_first().unwrap().expect("some pair is independent");
        let sa = found.get("Sa").unwrap().as_stmt().unwrap();
        let sb = found.get("Sb").unwrap().as_stmt().unwrap();
        assert!(!d.exists(
            DepKind::Flow,
            sa,
            sb,
            &DirPattern::any()
        ));
    }

    #[test]
    fn resume_skips_anchors_before_the_frontier() {
        // One first-clause Stmt pattern: every live statement is an anchor
        // candidate, and each candidate visit bumps `anchor_visits`.
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: S;
PRECOND
  Code_Pattern
    any S: S.opc == assign;
ACTION
  delete(S);
END
"#;
        let opt = opt_of(spec);
        let (p, d) = world("program p\ninteger a, b, c, e\na = 1\nb = 2\nc = 3\ne = 4\nend");
        let n = p.iter().count() as u64;

        let mut s = Searcher::new(&p, &d, &opt);
        s.find_all(usize::MAX).unwrap();
        assert_eq!(s.cost.anchor_visits, n, "baseline visits every statement");

        // Resuming from the statement at program order k must visit exactly
        // the anchors at or after k — none before the frontier.
        let frontier = p.iter().nth(2).unwrap();
        assert_eq!(d.order_of(frontier), Some(2));
        let mut s = Searcher::new(&p, &d, &opt);
        s.resume_from = Some(frontier);
        let found = s.find_all(usize::MAX).unwrap();
        assert_eq!(s.cost.anchor_visits, n - 2);
        assert!(found
            .iter()
            .all(|b| d.order_of(b.get("S").unwrap().as_stmt().unwrap()) >= Some(2)));

        // The complement pass (`stop_before`) covers exactly the skipped
        // prefix, so the two searches partition the anchor space.
        let mut s = Searcher::new(&p, &d, &opt);
        s.stop_before = Some(frontier);
        s.find_all(usize::MAX).unwrap();
        assert_eq!(s.cost.anchor_visits, 2);
    }

    #[test]
    fn path_sets_are_inclusive_and_ordered() {
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: Sa, Sb, Sm;
PRECOND
  Code_Pattern
    any Sa: Sa.opc == assign;
    any Sb: Sb.opc == write;
  Depend
    all Sm: mem(Sm, path(Sa, Sb)), Sm.opc == assign;
ACTION
  delete(Sa);
END
"#;
        let opt = opt_of(spec);
        let (p, d) = world("program p\ninteger x, y\nx = 1\ny = 2\nwrite y\nend");
        let mut s = Searcher::new(&p, &d, &opt);
        let found = s.find_first().unwrap().unwrap();
        match found.get("Sm") {
            Some(RtVal::Set(items)) => {
                // both assignments are on the path from the first assign to
                // the write
                assert_eq!(items.len(), 2, "{items:?}");
            }
            other => panic!("expected a set, got {other:?}"),
        }
    }

    #[test]
    fn find_first_short_circuits_anchor_visits() {
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: S;
PRECOND
  Code_Pattern
    any S: S.opc == assign;
ACTION
  delete(S);
END
"#;
        let opt = opt_of(spec);
        let (p, d) = world("program p\ninteger a, b, c, e\na = 1\nb = 2\nc = 3\ne = 4\nend");
        let n = p.iter().count() as u64;
        assert!(n >= 4);

        let mut s = Searcher::new(&p, &d, &opt);
        s.find_all(usize::MAX).unwrap();
        assert_eq!(s.cost.anchor_visits, n, "find_all visits every anchor");

        // The very first statement matches, so `find_first` must stop
        // there: one anchor visit, not a collect-then-discard pass.
        let mut s = Searcher::new(&p, &d, &opt);
        let found = s.find_first().unwrap();
        assert!(found.is_some());
        assert_eq!(s.cost.anchor_visits, 1);
    }

    #[test]
    fn indexed_candidates_agree_with_scan_and_prune() {
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: S;
PRECOND
  Code_Pattern
    any S: S.opc == assign;
ACTION
  delete(S);
END
"#;
        let opt = opt_of(spec);
        let (p, d) = world(LOOPY);
        let ix = StmtIndex::build(&p);

        let stmts_of = |found: &[Bindings]| -> Vec<StmtId> {
            found
                .iter()
                .map(|b| b.get("S").unwrap().as_stmt().unwrap())
                .collect()
        };

        let mut scan = Searcher::new(&p, &d, &opt);
        let scan_found = scan.find_all(usize::MAX).unwrap();
        assert_eq!(scan.candidates_pruned, 0);

        let mut fast = Searcher::new(&p, &d, &opt);
        fast.index = Some(&ix);
        let fast_found = fast.find_all(usize::MAX).unwrap();

        // Identical bindings in identical order; the index merely skipped
        // the statements that could never carry the pinned opcode.
        assert_eq!(stmts_of(&scan_found), stmts_of(&fast_found));
        let assigns = ix.by_opcode("assign").len() as u64;
        assert_eq!(fast.cost.anchor_visits, assigns);
        assert_eq!(fast.candidates_pruned, p.len() as u64 - assigns);
        assert!(fast.candidates_pruned > 0);
    }

    #[test]
    fn negative_cache_skips_remembered_rejections() {
        let spec = r#"
OPTIMIZATION T
TYPE Stmt: S;
PRECOND
  Code_Pattern
    any S: S.opc == assign AND type(S.opr_2) == const;
ACTION
  delete(S);
END
"#;
        let opt = opt_of(spec);
        let (p, d) = world("program p\ninteger a, b, x\nx = 2\na = x\nb = 3\nend");
        let mut cache = MatchCache::new(Some(&opt.patterns[0].0));
        assert!(cache.enabled());

        let stmts_of = |found: &[Bindings]| -> Vec<StmtId> {
            found
                .iter()
                .map(|b| b.get("S").unwrap().as_stmt().unwrap())
                .collect()
        };

        let mut s = Searcher::new(&p, &d, &opt);
        s.cache = Some(&mut cache);
        let first_pass = s.find_all(usize::MAX).unwrap();
        assert_eq!(s.cache_hits, 0, "an empty cache skips nothing");
        let cold_visits = s.cost.anchor_visits;

        // Same program, same cache: every statement the first pass
        // rejected is now skipped without a visit, and the solutions are
        // unchanged.
        let mut s = Searcher::new(&p, &d, &opt);
        s.cache = Some(&mut cache);
        let second_pass = s.find_all(usize::MAX).unwrap();
        assert_eq!(stmts_of(&first_pass), stmts_of(&second_pass));
        assert!(s.cache_hits > 0);
        assert_eq!(s.cost.anchor_visits + s.cache_hits, cold_visits);
    }
}
