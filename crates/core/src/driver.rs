//! The standard driver of Figure 5: search for an application point
//! (`match_OPT`, `pre_OPT`), apply the actions (`act_OPT`), repeat.

use crate::actions::run_actions;
use crate::automaton::FusedAutomaton;
use crate::caches::SessionCaches;
use crate::compile::{CompiledOptimizer, Strategy};
use crate::cost::Cost;
use crate::error::RunError;
use crate::fault::{FaultKind, FaultPlan};
use crate::index::{MatchCache, StmtIndex};
use crate::rt::Bindings;
use crate::solve::Searcher;
use gospel_dep::{DepGraph, UpdateKind};
use gospel_ir::{EditDelta, Opcode, Program, Quad, StmtId};
use gospel_trace::{Name, Recorder, Span, Value};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Which candidate-enumeration machinery drives the search.
///
/// All three produce identical bindings (the differential suite and the
/// bench cross-checks hold them to it); they differ only in how anchor
/// candidates are enumerated, and each rung degrades to the next on
/// stale state: fused → per-optimizer index → scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatcherKind {
    /// Full program scans — the authoritative baseline.
    Scan,
    /// Per-optimizer [`StmtIndex`] bucket probes with [`AnchorFilter`]
    /// narrowing and the negative [`MatchCache`] (the PR-4 machinery).
    ///
    /// [`AnchorFilter`]: crate::AnchorFilter
    Indexed,
    /// The catalog-wide [`FusedAutomaton`]: every registered anchor
    /// clause compiled into one shared trie, one classification pass
    /// admitting all optimizers per statement at once.
    Fused,
}

impl MatcherKind {
    /// Parses the CLI/environment spelling (`fused`/`indexed`/`scan`,
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<MatcherKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fused" => Some(MatcherKind::Fused),
            "indexed" => Some(MatcherKind::Indexed),
            "scan" => Some(MatcherKind::Scan),
            _ => None,
        }
    }

    /// The canonical spelling, for traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            MatcherKind::Scan => "scan",
            MatcherKind::Indexed => "indexed",
            MatcherKind::Fused => "fused",
        }
    }
}

/// How the driver should apply the optimizer (the §3 interface options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyMode {
    /// Apply at every application point, recomputing dependences between
    /// applications, until none remain.
    AllPoints,
    /// Apply at the first application point only.
    FirstPoint,
    /// Apply once, anchored at the given statement (the first pattern
    /// element — a statement, or a loop's header — must be this point).
    AtPoint(StmtId),
    /// Like [`ApplyMode::AtPoint`] but skipping the `Depend` section —
    /// the paper's "override dependence restrictions" option.
    AtPointUnchecked(StmtId),
}

/// What one [`Driver::apply`] run did.
#[derive(Clone, Debug, Default)]
pub struct ApplyReport {
    /// Number of times the actions ran.
    pub applications: usize,
    /// Accumulated search + transformation cost (the paper's metric).
    pub cost: Cost,
    /// The bindings of each application, in order.
    pub points: Vec<Bindings>,
    /// Which membership strategy each dependence-clause evaluation used.
    pub strategies_used: Vec<Strategy>,
    /// Dependence-graph refreshes served by the incremental updater.
    pub incremental_updates: usize,
    /// Dependence-graph refreshes that ran a full `analyze` (structural
    /// edits, or `incremental_deps` disabled).
    pub full_recomputes: usize,
    /// Dirty symbols considered across all incremental refreshes.
    pub dep_dirty_syms: usize,
    /// Edges dropped across all incremental refreshes.
    pub dep_edges_dropped: usize,
    /// Edges re-derived (or rebuilt, for full refreshes) across all
    /// dependence-graph refreshes.
    pub dep_edges_added: usize,
    /// Anchor candidates the statement index excluded without a visit
    /// (they could never carry the clause's pinned opcode). Zero when the
    /// indexed searcher is off.
    pub candidates_pruned: u64,
    /// Anchor candidates the negative match cache skipped (a remembered
    /// first-clause rejection no later edit invalidated).
    pub cache_hits: u64,
    /// How many candidate bindings each PRECOND dependence clause killed,
    /// indexed by clause position in the Depend section. A clause kills a
    /// candidate when an `any` clause finds no solution or a `no` clause
    /// finds one.
    pub dep_clause_rejects: Vec<u64>,
    /// How often each degradation-ladder rung fired during this run (each
    /// fall is also emitted as a `search.degraded.<reason>` counter).
    pub degraded: DegradeStats,
}

/// Per-rung degradation-ladder fall counts for one `apply` run.
///
/// The ladder replaces hard aborts with progressively cheaper-to-trust
/// strategies: indexed candidate enumeration falls back to the
/// authoritative scan (`stale_order`), a failed incremental dependence
/// update falls back to a full re-analysis (`dep_update_failed`), and a
/// verifier-caught graph divergence is healed by adopting the fresh
/// analysis and rebuilding the derived caches (`dep_divergence`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Indexed candidate enumeration met a bucket member with unknown
    /// program order and bowed out to the scan path.
    pub stale_order: u64,
    /// The verifier caught the maintained graph diverging; the run
    /// adopted the fresh analysis and rebuilt index + match caches.
    pub dep_divergence: u64,
    /// `DepGraph::update` failed; the run fell back to a full analysis.
    pub dep_update_failed: u64,
}

impl DegradeStats {
    /// Total falls across all rungs.
    pub fn total(&self) -> u64 {
        self.stale_order + self.dep_divergence + self.dep_update_failed
    }
}

/// All application points found by [`Driver::matches`], without applying.
#[derive(Clone, Debug, Default)]
pub struct MatchSet {
    /// One binding per application point, in search order.
    pub bindings: Vec<Bindings>,
    /// Search cost.
    pub cost: Cost,
}

/// The driver that runs one compiled optimizer over a program.
#[derive(Clone, Debug)]
pub struct Driver<'o> {
    opt: &'o CompiledOptimizer,
    /// Application budget for [`ApplyMode::AllPoints`]; exceeded → the
    /// specification's actions do not invalidate its precondition.
    pub max_applications: usize,
    /// Recompute the dependence graph between applications (the paper lets
    /// the user decide; correctness of chained applications needs it).
    pub recompute_deps: bool,
    /// Refresh the graph with [`DepGraph::update`] from the application's
    /// edit delta instead of a full re-`analyze` (falls back automatically
    /// on structural edits). Also lets the next search resume from the
    /// delta's dirty frontier instead of rescanning from the top.
    pub incremental_deps: bool,
    /// After every incremental refresh, cross-check the maintained graph
    /// against a fresh full analysis and fail loudly on any disagreement.
    pub verify_deps: bool,
    /// Wall-clock budget for one [`Driver::apply`] call, checked between
    /// applications (a single search is never interrupted mid-flight).
    pub timeout_ms: Option<u64>,
    /// Search-cost budget: abort once the accumulated [`Cost::total`]
    /// passes this.
    pub fuel: Option<u64>,
    /// Absolute statement-count cap, checked after each commit; the
    /// caller usually derives it as k× the original program size.
    pub max_stmts: Option<usize>,
    /// Which candidate-enumeration machinery to search with — the fused
    /// catalog automaton, the per-optimizer [`StmtIndex`], or full
    /// program scans. Identical bindings in every mode; defaults from
    /// [`matcher_default`] (`GENESIS_MATCHER`, falling back to the
    /// legacy `GENESIS_INDEXED_SEARCH` toggle). Index and automaton are
    /// only consulted while `recompute_deps` keeps program order fresh.
    pub matcher: MatcherKind,
    /// Degrade instead of hard-aborting on dependence-maintenance
    /// trouble: a failed [`DepGraph::update`] falls back to a full
    /// analysis, and a verifier-caught divergence adopts the fresh graph
    /// and rebuilds the derived caches, each recorded via
    /// `search.degraded.<reason>` counters. Off by default so the bare
    /// driver keeps its strict fail-loudly semantics (the differential
    /// and bench oracles depend on it); sessions enable it.
    pub degraded_recovery: bool,
    /// Scripted fault to inject at the matching probe point (tests the
    /// recovery machinery around the driver).
    pub fault: Option<FaultPlan>,
    /// Structured-event sink: when set, the driver emits per-attempt
    /// spans, match outcomes, dependence-refresh counters and cost
    /// counters into it. `None` (the default) records nothing; with the
    /// `trace` feature off every call below compiles to a no-op anyway.
    pub recorder: Option<Arc<Recorder>>,
    /// Attempt-span sampling: record the `driver.attempt` span and its
    /// per-attempt timing observations for one in every N attempts
    /// (`0`/`1` = every attempt). Sampled-in spans carry a `sample`
    /// field and their histogram observations are weighted by N, so
    /// latency estimates stay unbiased; counters are exact regardless —
    /// they flush through [`RunTotals`], not the span stream. This is
    /// what keeps large generator programs under the trace-overhead
    /// gate.
    pub trace_sample: u64,
}

impl<'o> Driver<'o> {
    /// A driver with the defaults the paper's interface uses: recompute
    /// dependences, generous application budget, no resource limits.
    pub fn new(opt: &'o CompiledOptimizer) -> Driver<'o> {
        Driver {
            opt,
            max_applications: 10_000,
            recompute_deps: true,
            incremental_deps: true,
            verify_deps: false,
            timeout_ms: None,
            fuel: None,
            max_stmts: None,
            matcher: matcher_default(),
            degraded_recovery: false,
            fault: None,
            recorder: None,
            trace_sample: 1,
        }
    }

    /// True when the configured fault plan fires at this probe.
    fn fault_fires(&self, kind: FaultKind, application: usize) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|p| p.fires(kind, &self.opt.name, application))
    }

    /// The optimizer this driver runs.
    pub fn optimizer(&self) -> &CompiledOptimizer {
        self.opt
    }

    /// Lists every application point in the current program without
    /// transforming anything.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Analyze`] if the program fails dependence
    /// analysis.
    pub fn matches(&self, prog: &Program) -> Result<MatchSet, RunError> {
        let deps = analyze(prog)?;
        self.matches_with(prog, &deps)
    }

    /// Like [`Driver::matches`] but reusing an already-computed dependence
    /// graph — callers that maintain one incrementally (or know the program
    /// has not changed since the last analysis) skip the re-`analyze`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the search fails (e.g. a malformed
    /// dependence atom).
    pub fn matches_with(&self, prog: &Program, deps: &DepGraph) -> Result<MatchSet, RunError> {
        let mut s = Searcher::new(prog, deps, self.opt);
        let bindings = s.find_all(usize::MAX)?;
        Ok(MatchSet {
            bindings,
            cost: s.cost,
        })
    }

    /// Runs the optimizer per `mode`, transforming `prog` in place.
    ///
    /// # Errors
    ///
    /// [`RunError::Analyze`] for malformed programs, [`RunError::Action`]
    /// for action failures, [`RunError::Diverged`] when `AllPoints`
    /// exceeds the application budget, and [`RunError::Timeout`] /
    /// [`RunError::FuelExhausted`] / [`RunError::GrowthLimit`] when a
    /// configured resource budget runs out (the program is left at the
    /// last committed application — callers wanting atomicity snapshot
    /// first, as `GuardedSession` does).
    pub fn apply(&mut self, prog: &mut Program, mode: ApplyMode) -> Result<ApplyReport, RunError> {
        let mut caches = SessionCaches::new();
        self.apply_with(prog, mode, &mut caches)
    }

    /// Like [`Driver::apply`] but reusing (and refreshing) a dependence
    /// graph carried across calls — a session chaining several optimizers
    /// over one program skips every per-optimizer initial analysis.
    ///
    /// On entry a `Some` cache must describe `prog` exactly as a fresh
    /// [`DepGraph::analyze`] would. On success the cache holds the final
    /// program's graph whenever the driver kept it current; it is left
    /// `None` after a run with `recompute_deps` off, after a one-shot
    /// mode without incremental maintenance, and on any error.
    ///
    /// # Errors
    ///
    /// Same as [`Driver::apply`].
    pub fn apply_cached(
        &mut self,
        prog: &mut Program,
        mode: ApplyMode,
        cache: &mut Option<DepGraph>,
    ) -> Result<ApplyReport, RunError> {
        let mut caches = SessionCaches::new();
        caches.deps = cache.take();
        let result = self.apply_with(prog, mode, &mut caches);
        *cache = caches.deps.take();
        result
    }

    /// The full cached-state entry point: runs the optimizer per `mode`
    /// while reusing *and maintaining* every piece of session search
    /// state in `caches` — the dependence graph, the statement index, and
    /// the per-optimizer negative match caches and anchor filters. Each
    /// committed delta is replayed into every live structure; any exit
    /// that cannot argue a structure's consistency drops it instead of
    /// publishing it back.
    ///
    /// # Errors
    ///
    /// Same as [`Driver::apply`].
    pub fn apply_with(
        &mut self,
        prog: &mut Program,
        mode: ApplyMode,
        caches: &mut SessionCaches,
    ) -> Result<ApplyReport, RunError> {
        let mut report = ApplyReport::default();
        let rec = self.recorder.clone();
        let mut totals = RunTotals::new(rec.clone(), &self.opt.name);
        let started = Instant::now();
        if self.fault_fires(FaultKind::Analysis, 0) {
            return Err(RunError::Analyze("injected fault: analysis failure".into()));
        }
        let mut deps = match caches.deps.take() {
            Some(g) => g,
            None => {
                let t = Instant::now();
                let g = analyze(prog)?;
                totals.analyze_full += 1;
                if let Some(r) = rec.as_ref() {
                    r.observe("dep.analyze_ns", ns_since(t));
                }
                g
            }
        };
        // Whether `deps` still describes `prog` when the loop exits.
        let mut current = true;
        // Earliest statement the next search must reconsider; `None` means
        // scan from the top. Set from the incremental updater's dirty
        // frontier after each committed application.
        let mut resume_pt: Option<StmtId> = None;
        // Per-clause anchor filters, computed once per optimizer and
        // parked in the session caches across calls (indexed mode; the
        // fused automaton embeds the same filters in its trie).
        let filters =
            (self.matcher == MatcherKind::Indexed).then(|| caches.filters_for(self.opt));
        // Whether this optimizer can be served from an index bucket at
        // all; building one it cannot consult is pure overhead. The index
        // also needs fresh program order (`deps.order_of`) to keep
        // candidate enumeration identical to a scan, so consultation
        // stays off in stale-graph mode — a stale order discovered
        // mid-bucket degrades to the scan (`search.degraded.stale_order`).
        let consult_index = self.recompute_deps
            && filters
                .as_ref()
                .is_some_and(|fs| fs.iter().flatten().any(|f| f.narrows()));
        // A session-carried index is adopted and kept fresh by delta
        // replay even when this optimizer cannot consult it — otherwise
        // it would silently go stale for the next optimizer that can.
        let mut sidx = match caches.index.take() {
            Some(ix) => Some(ix),
            None => consult_index.then(|| StmtIndex::build(prog)),
        };
        let mut mcache = (self.matcher != MatcherKind::Scan)
            .then(|| caches.take_match_cache(self.opt));
        // The fused automaton: adopted from the session (which builds it
        // over the whole catalog) or built here over just this optimizer
        // for the standalone-driver case. Same ordering contract as the
        // index, so the same `recompute_deps` gate applies. A
        // session-carried automaton is kept fresh by delta replay even
        // under another matcher, like the index above.
        let use_fused = self.matcher == MatcherKind::Fused && self.recompute_deps;
        let mut auto = match caches.automaton.take() {
            Some(a) => Some(a),
            None => use_fused.then(|| {
                let span = Span::open(rec.as_ref(), "automaton.build", &[]);
                let a = FusedAutomaton::build(std::slice::from_ref(self.opt), prog);
                span.close(&[("states", Value::us(a.states()))]);
                a
            }),
        };
        let fused_id = if use_fused {
            auto.as_ref().and_then(|a| a.opt_id(&self.opt.name))
        } else {
            None
        };
        if let Some(a) = auto.as_mut() {
            let (states, visits) = a.take_stats();
            totals.fused_states += states;
            totals.fused_visits += visits;
        }

        loop {
            if let Some(ms) = self.timeout_ms {
                if started.elapsed().as_millis() as u64 > ms {
                    return Err(RunError::Timeout { ms });
                }
            }
            if self.fault_fires(FaultKind::Timeout, report.applications) {
                return Err(RunError::Timeout {
                    ms: self.timeout_ms.unwrap_or(0),
                });
            }
            if self.fault_fires(FaultKind::Fuel, report.applications) {
                return Err(RunError::FuelExhausted {
                    limit: self.fuel.unwrap_or(0),
                });
            }
            if self.fault_fires(FaultKind::Panic, report.applications) {
                panic!("injected fault: panic mid-search");
            }

            totals.attempts += 1;
            // Sampling controller: 1-in-N attempts get a span and timing
            // observations (the first always does); the rest stay
            // completely silent in the event stream. Counter totals are
            // unaffected — they flush through `RunTotals`.
            let sample = self.trace_sample.max(1);
            let sampled = sample == 1 || (totals.attempts - 1).is_multiple_of(sample);
            let attempt_rec = if sampled { rec.as_ref() } else { None };
            // The span closes on every exit from this iteration: explicitly
            // on the applied/fixpoint paths, via its drop guard on the
            // error returns below.
            let attempt_span = Span::open(
                attempt_rec,
                "driver.attempt",
                &[
                    ("optimizer", Value::str(self.opt.name.clone())),
                    ("application", Value::us(report.applications)),
                ],
            );

            let search_started = Instant::now();
            let mut pattern_ns = 0u64;
            let found = {
                let mut s = Searcher::new(prog, &deps, self.opt);
                match mode {
                    ApplyMode::AtPoint(p) => s.at_point = Some(p),
                    ApplyMode::AtPointUnchecked(p) => {
                        s.at_point = Some(p);
                        s.ignore_depends = true;
                    }
                    _ => {}
                }
                s.resume_from = resume_pt;
                s.index = if consult_index { sidx.as_ref() } else { None };
                s.fused = fused_id.and_then(|id| auto.as_ref().map(|a| (a, id)));
                s.filters = filters.as_deref().map(|v| v.as_slice());
                s.cache = mcache.as_mut();
                s.time_pattern = rec.is_some();
                let mut found = s.find_first()?;
                report.cost += s.cost;
                totals.cost += s.cost;
                report.candidates_pruned += s.candidates_pruned;
                report.cache_hits += s.cache_hits;
                totals.candidates_pruned += s.candidates_pruned;
                totals.cache_hits += s.cache_hits;
                totals.fused_dispatched += s.fused_dispatched;
                report.degraded.stale_order += s.degraded_stale_order;
                totals.degraded_stale_order += s.degraded_stale_order;
                report.strategies_used.append(&mut s.strategies_used);
                merge_rejects(&mut report.dep_clause_rejects, &s.dep_rejects);
                merge_rejects(&mut totals.rejects, &s.dep_rejects);
                totals.funnel_classified += s.funnel_classified;
                totals.funnel_admitted += s.funnel_admitted;
                totals.funnel_matched += s.funnel_matched;
                totals.funnel_dep_checked += s.funnel_dep_checked;
                pattern_ns += s.pattern_ns;
                if found.is_none() && resume_pt.is_some() {
                    // Safety net: the frontier filter only rescans anchors
                    // at or after the dirty frontier, but a pattern with
                    // dependence-free later elements can gain a match at
                    // an earlier anchor. Before declaring a fixpoint,
                    // sweep the complement — the two passes together
                    // cover every anchor exactly once.
                    let mut s = Searcher::new(prog, &deps, self.opt);
                    s.stop_before = resume_pt;
                    s.index = if consult_index { sidx.as_ref() } else { None };
                    s.fused = fused_id.and_then(|id| auto.as_ref().map(|a| (a, id)));
                    s.filters = filters.as_deref().map(|v| v.as_slice());
                    s.cache = mcache.as_mut();
                    s.time_pattern = rec.is_some();
                    found = s.find_first()?;
                    report.cost += s.cost;
                    totals.cost += s.cost;
                    report.candidates_pruned += s.candidates_pruned;
                    report.cache_hits += s.cache_hits;
                    totals.candidates_pruned += s.candidates_pruned;
                    totals.cache_hits += s.cache_hits;
                    totals.fused_dispatched += s.fused_dispatched;
                    report.degraded.stale_order += s.degraded_stale_order;
                    totals.degraded_stale_order += s.degraded_stale_order;
                    report.strategies_used.append(&mut s.strategies_used);
                    merge_rejects(&mut report.dep_clause_rejects, &s.dep_rejects);
                    merge_rejects(&mut totals.rejects, &s.dep_rejects);
                    totals.funnel_classified += s.funnel_classified;
                    totals.funnel_admitted += s.funnel_admitted;
                    totals.funnel_matched += s.funnel_matched;
                    totals.funnel_dep_checked += s.funnel_dep_checked;
                    pattern_ns += s.pattern_ns;
                }
                found
            };
            // `search.match` is emitted only for successful matches — a
            // failed search is already explicit in the attempt span's
            // `fixpoint` close, and the extra event would double the
            // per-attempt stream for no information. Sampled-out
            // attempts skip the whole block; sampled-in observations
            // carry weight N so the histograms stay unbiased.
            let search_ns = ns_since(search_started);
            if let Some(r) = attempt_rec {
                r.observe_n("driver.search_ns", search_ns, sample);
                r.observe_n("driver.pattern_ns", pattern_ns, sample);
                if let Some(env) = found.as_ref() {
                    let mut fields = vec![
                        ("optimizer", Value::str(self.opt.name.clone())),
                        ("outcome", Value::str("found")),
                        ("resumed", Value::b(resume_pt.is_some())),
                    ];
                    if let Some(a) = anchor_of(self.opt, env) {
                        fields.push(("anchor", Value::str(a)));
                    }
                    r.event("search.match", &fields);
                }
            }
            if let Some(fuel) = self.fuel {
                if report.cost.total() > fuel {
                    return Err(RunError::FuelExhausted { limit: fuel });
                }
            }

            let Some(mut env) = found else {
                let mut fields = vec![
                    ("outcome", Value::str("fixpoint")),
                    ("search_ns", Value::u(search_ns)),
                    ("pattern_ns", Value::u(pattern_ns)),
                ];
                if sample > 1 {
                    fields.push(("sample", Value::u(sample)));
                }
                attempt_span.close(&fields);
                break;
            };

            if self.fault_fires(FaultKind::Action, report.applications) {
                return Err(RunError::Action("injected fault: action failure".into()));
            }

            // Actions run in place, journaled into an edit delta; a
            // mid-action failure unwinds the journal, so a failed
            // application can never leave a half-transformed program.
            // Panics get the same treatment: without the catch_unwind the
            // in-flight journal would be dropped un-replayed and a panic
            // caught further out (GuardedSession) would observe a
            // half-transformed program.
            let actions_started = Instant::now();
            let mut delta = EditDelta::new();
            let panic_after_actions =
                self.fault_fires(FaultKind::PanicInAction, report.applications);
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let r = run_actions(prog, deps.loops(), &mut env, &self.opt.actions, &mut delta);
                if r.is_ok() && panic_after_actions {
                    panic!("injected fault: panic mid-action");
                }
                r
            }));
            let ops = match attempt {
                Ok(Ok(ops)) => ops,
                Ok(Err(e)) => {
                    delta.undo(prog);
                    totals.action_rollbacks += 1;
                    if let Some(r) = rec.as_ref() {
                        r.event(
                            "driver.action_rollback",
                            &[
                                ("optimizer", Value::str(self.opt.name.clone())),
                                ("error", Value::str(e.to_string())),
                            ],
                        );
                    }
                    return Err(e);
                }
                Err(payload) => {
                    delta.undo(prog);
                    totals.action_rollbacks += 1;
                    if let Some(r) = rec.as_ref() {
                        r.event(
                            "driver.action_rollback",
                            &[
                                ("optimizer", Value::str(self.opt.name.clone())),
                                ("error", Value::str("panic")),
                            ],
                        );
                    }
                    drop(attempt_span);
                    resume_unwind(payload);
                }
            };
            if let Some(r) = rec.as_ref() {
                r.observe("driver.actions_ns", ns_since(actions_started));
            }
            let corrupted = self.fault_fires(FaultKind::CorruptCommit, report.applications);
            if corrupted {
                // An unmatched marker makes the commit structurally
                // invalid — exactly what a validation gate must catch.
                prog.push(Quad::marker(Opcode::EndDo));
            }
            report.cost.transform_ops += ops;
            report.applications += 1;
            report.points.push(env);
            totals.applications += 1;
            totals.transform_ops += ops;
            let mut close_fields = vec![
                ("outcome", Value::str("applied")),
                ("ops", Value::u(ops)),
                ("stmts", Value::us(prog.len())),
                ("search_ns", Value::u(search_ns)),
                ("pattern_ns", Value::u(pattern_ns)),
            ];
            if sample > 1 {
                close_fields.push(("sample", Value::u(sample)));
            }
            attempt_span.close(&close_fields);
            if corrupted {
                // Return "success" with the bad commit in place: the fault
                // models corruption the driver itself does not notice, so
                // it must escape this loop for an outer gate to catch. The
                // unjournaled edit broke every cache's delta-replay
                // argument, so none of them may survive.
                caches.clear();
                return Ok(report);
            }

            if let Some(cap) = self.max_stmts {
                if prog.len() > cap {
                    return Err(RunError::GrowthLimit {
                        statements: prog.len(),
                        limit: cap,
                    });
                }
            }

            // Replay the committed delta into the search index and drop
            // the cached verdicts of every touched statement — same
            // journal, same O(|delta|) contract as `DepGraph::update`.
            // Parked caches of *other* optimizers see the same replay, so
            // they stay truthful while this optimizer edits the program.
            if !delta.is_empty() {
                if let Some(ix) = sidx.as_mut() {
                    ix.update(prog, &delta);
                }
                if let Some(a) = auto.as_mut() {
                    let span = Span::open(rec.as_ref(), "automaton.update", &[]);
                    a.update(prog, &delta);
                    let (states, visits) = a.take_stats();
                    totals.fused_states += states;
                    totals.fused_visits += visits;
                    span.close(&[("visits", Value::u(visits))]);
                }
                if let Some(c) = mcache.as_mut() {
                    c.invalidate(&delta);
                }
                caches.invalidate_match_caches(&delta);
            }

            let one_shot = !matches!(mode, ApplyMode::AllPoints);
            if !one_shot && report.applications >= self.max_applications {
                return Err(RunError::Diverged {
                    limit: self.max_applications,
                });
            }
            if !self.recompute_deps {
                // Stale-graph mode: positions in the old graph no longer
                // track the program, so never filter the next search.
                current = false;
                resume_pt = None;
            } else {
                if delta.is_empty() {
                    // Zero-edit application: the program is untouched, so
                    // the graph is still exact — skip the refresh entirely.
                    resume_pt = None;
                } else if self.incremental_deps {
                    // Probe: a "missed invalidation" — the refresh below is
                    // silently skipped, leaving the graph stale. Only the
                    // verifier (or a later healing full analysis) can
                    // restore exactness, so the graph is unpublishable
                    // until one of them runs.
                    let skip_update = self
                        .fault_fires(FaultKind::CorruptDeps, report.applications.saturating_sub(1));
                    if skip_update {
                        current = false;
                        resume_pt = None;
                    } else {
                        let update_started = Instant::now();
                        match deps.update(prog, &delta) {
                            Ok(up) => {
                                match up.kind {
                                    UpdateKind::Full => report.full_recomputes += 1,
                                    UpdateKind::Incremental
                                    | UpdateKind::Structural
                                    | UpdateKind::Noop => {
                                        report.incremental_updates += 1;
                                    }
                                }
                                report.dep_dirty_syms += up.stats.dirty_syms;
                                report.dep_edges_dropped += up.stats.edges_dropped;
                                report.dep_edges_added += up.stats.edges_added;
                                match up.kind {
                                    UpdateKind::Full => totals.update_full += 1,
                                    UpdateKind::Incremental => totals.update_incremental += 1,
                                    UpdateKind::Structural => totals.update_structural += 1,
                                    UpdateKind::Noop => totals.update_noop += 1,
                                }
                                totals.edges_dropped += up.stats.edges_dropped as u64;
                                totals.edges_added += up.stats.edges_added as u64;
                                if let Some(r) = rec.as_ref() {
                                    r.observe("dep.update_ns", ns_since(update_started));
                                    let kind = match up.kind {
                                        UpdateKind::Full => "full",
                                        UpdateKind::Incremental => "incremental",
                                        UpdateKind::Structural => "structural",
                                        UpdateKind::Noop => "noop",
                                    };
                                    let frontier = up.frontier.map(|f| f.to_string());
                                    let mut fields = vec![
                                        ("kind", Value::str(kind)),
                                        ("dirty_syms", Value::us(up.stats.dirty_syms)),
                                        ("edges_dropped", Value::us(up.stats.edges_dropped)),
                                        ("edges_added", Value::us(up.stats.edges_added)),
                                    ];
                                    if let Some(fr) = frontier {
                                        fields.push(("frontier", Value::str(fr)));
                                    }
                                    r.event("dep.update", &fields);
                                }
                                resume_pt = up.frontier;
                            }
                            Err(e) if self.degraded_recovery => {
                                // Ladder: a failed incremental update falls
                                // back to a full analysis instead of
                                // aborting the run.
                                report.degraded.dep_update_failed += 1;
                                totals.degraded_update_failed += 1;
                                if let Some(r) = rec.as_ref() {
                                    r.event(
                                        "search.degraded",
                                        &[
                                            ("optimizer", Value::str(self.opt.name.clone())),
                                            ("reason", Value::str("dep_update_failed")),
                                            ("error", Value::str(e.to_string())),
                                        ],
                                    );
                                }
                                let t = Instant::now();
                                deps = analyze(prog)?;
                                report.full_recomputes += 1;
                                totals.analyze_full += 1;
                                if let Some(r) = rec.as_ref() {
                                    r.observe("dep.analyze_ns", ns_since(t));
                                }
                                resume_pt = None;
                                current = true;
                            }
                            Err(e) => return Err(RunError::Analyze(e.to_string())),
                        }
                    }
                    if self.verify_deps {
                        let fresh = analyze(prog)?;
                        let ok = deps.agrees_with(&fresh);
                        if let Some(r) = rec.as_ref() {
                            r.event("dep.verify", &[("ok", Value::b(ok))]);
                        }
                        if ok {
                            // Verified exact — even a skipped refresh turned
                            // out to have no dependence effect.
                            current = true;
                        } else if self.degraded_recovery {
                            // Ladder: adopt the fresh graph and rebuild
                            // every structure whose delta-replay argument
                            // the divergence just voided.
                            report.degraded.dep_divergence += 1;
                            totals.degraded_divergence += 1;
                            if let Some(r) = rec.as_ref() {
                                r.event(
                                    "search.degraded",
                                    &[
                                        ("optimizer", Value::str(self.opt.name.clone())),
                                        ("reason", Value::str("dep_divergence")),
                                        ("application", Value::us(report.applications)),
                                    ],
                                );
                            }
                            deps = fresh;
                            resume_pt = None;
                            current = true;
                            if let Some(ix) = sidx.as_mut() {
                                *ix = StmtIndex::build(prog);
                            }
                            if let Some(a) = auto.as_mut() {
                                a.reclassify(prog);
                                let (states, visits) = a.take_stats();
                                totals.fused_states += states;
                                totals.fused_visits += visits;
                            }
                            if let Some(c) = mcache.as_mut() {
                                c.clear();
                            }
                            caches.drop_match_verdicts();
                        } else {
                            if std::env::var("GENESIS_DEBUG_DEPS").is_ok() {
                                eprintln!("delta: {delta:?}");
                                eprintln!("program:\n{}", gospel_ir::DisplayProgram(prog));
                                for s in prog.iter() {
                                    eprintln!("  {s}: {:?}", prog.quad(s));
                                }
                                for e in deps.edges() {
                                    if !fresh.edges().contains(e) {
                                        eprintln!("incr-only: {e:?}");
                                    }
                                }
                                for e in fresh.edges() {
                                    if !deps.edges().contains(e) {
                                        eprintln!("fresh-only: {e:?}");
                                    }
                                }
                            }
                            return Err(RunError::Analyze(format!(
                                "incremental dependence graph diverged from full \
                                 analysis after application {} of {}",
                                report.applications, self.opt.name
                            )));
                        }
                    }
                } else if one_shot {
                    // Full-recompute one-shot: the refreshed graph would
                    // never be searched again; skip the wasted analysis.
                    current = false;
                } else {
                    let t = Instant::now();
                    deps = analyze(prog)?;
                    report.full_recomputes += 1;
                    totals.analyze_full += 1;
                    if let Some(r) = rec.as_ref() {
                        r.observe("dep.analyze_ns", ns_since(t));
                    }
                    resume_pt = None;
                }
            }
            if one_shot {
                break;
            }
        }
        if current {
            caches.deps = Some(deps);
        }
        // The index, automaton and match cache saw every committed delta
        // replayed into them (and are rebuilt outright when the ladder
        // voids the replay argument), so they are exact for the final
        // program even when the dependence graph is not.
        caches.index = sidx.take();
        caches.automaton = auto.take();
        if let Some(c) = mcache.take() {
            caches.store_match_cache(&self.opt.name, c);
        }
        Ok(report)
    }
}

/// Audit helper for [`SessionCaches::audit`]: runs `opt`'s full search
/// twice — once consulting a clone of `cache`'s remembered rejections,
/// once from scratch — and reports whether both find the same bindings
/// in the same order.
pub(crate) fn bindings_agree_with_cache(
    prog: &Program,
    deps: &DepGraph,
    opt: &CompiledOptimizer,
    cache: &MatchCache,
) -> Result<bool, RunError> {
    let mut cached = cache.clone();
    let mut s = Searcher::new(prog, deps, opt);
    s.cache = Some(&mut cached);
    let with_cache = s.find_all(usize::MAX)?;
    let mut s = Searcher::new(prog, deps, opt);
    let without = s.find_all(usize::MAX)?;
    Ok(with_cache == without)
}

/// The session-wide default for [`Driver::matcher`]: `GENESIS_MATCHER`
/// (`fused`/`indexed`/`scan`) when set to a recognized value, else the
/// legacy `GENESIS_INDEXED_SEARCH` toggle (`0`/`off`/`false` → scan,
/// any other value → indexed), else fused. Read once per process; the
/// CI differential suite runs all three settings.
pub fn matcher_default() -> MatcherKind {
    static DEFAULT: std::sync::OnceLock<MatcherKind> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Some(kind) = std::env::var("GENESIS_MATCHER")
            .ok()
            .and_then(|v| MatcherKind::parse(&v))
        {
            return kind;
        }
        match std::env::var("GENESIS_INDEXED_SEARCH") {
            Ok(v) => {
                let v = v.trim();
                if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    MatcherKind::Scan
                } else {
                    MatcherKind::Indexed
                }
            }
            Err(_) => MatcherKind::Fused,
        }
    })
}

/// Legacy spelling of [`matcher_default`]: true for any non-scan
/// matcher.
pub fn indexed_search_default() -> bool {
    matcher_default() != MatcherKind::Scan
}

fn analyze(prog: &Program) -> Result<DepGraph, RunError> {
    DepGraph::analyze(prog).map_err(|e| RunError::Analyze(e.to_string()))
}

fn ns_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn merge_rejects(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (acc, n) in into.iter_mut().zip(from) {
        *acc += n;
    }
}

/// The anchor of a found binding: the value bound to the first pattern
/// clause's first variable, rendered for the trace.
fn anchor_of(opt: &CompiledOptimizer, env: &Bindings) -> Option<String> {
    let (clause, _) = opt.patterns.first()?;
    let var = clause.vars.first()?;
    let val = env.get(var)?;
    Some(match val {
        crate::rt::RtVal::Stmt(s) => s.to_string(),
        other => format!("{other:?}"),
    })
}

/// Counters accumulated locally across one `apply` run and flushed to
/// the recorder in a single batch when the run ends — on *every* exit
/// path, including `?` returns and panics, because the flush lives in
/// `Drop`. Keeping the hot loop out of the recorder lock bounds tracing
/// overhead to the spans and structured events that genuinely need
/// per-attempt timestamps.
struct RunTotals {
    rec: Option<Arc<Recorder>>,
    opt_name: String,
    attempts: u64,
    applications: u64,
    action_rollbacks: u64,
    transform_ops: u64,
    analyze_full: u64,
    update_full: u64,
    update_incremental: u64,
    update_structural: u64,
    update_noop: u64,
    edges_dropped: u64,
    edges_added: u64,
    candidates_pruned: u64,
    cache_hits: u64,
    fused_states: u64,
    fused_visits: u64,
    fused_dispatched: u64,
    degraded_stale_order: u64,
    degraded_divergence: u64,
    degraded_update_failed: u64,
    /// Match-funnel totals (see `Searcher::funnel_classified` and
    /// friends), flushed as `funnel.<OPT>.<phase>` counters plus one
    /// `search.funnel` event per run. `applied` and `rolled_back` reuse
    /// `applications` / `action_rollbacks`.
    funnel_classified: u64,
    funnel_admitted: u64,
    funnel_matched: u64,
    funnel_dep_checked: u64,
    cost: Cost,
    /// Per-dependence-clause rejection counts (clause counters are
    /// emitted as `search.dep_reject.<OPT>.clause<i>`).
    rejects: Vec<u64>,
}

impl RunTotals {
    fn new(rec: Option<Arc<Recorder>>, opt_name: &str) -> RunTotals {
        RunTotals {
            rec,
            opt_name: opt_name.to_string(),
            attempts: 0,
            applications: 0,
            action_rollbacks: 0,
            transform_ops: 0,
            analyze_full: 0,
            update_full: 0,
            update_incremental: 0,
            update_structural: 0,
            update_noop: 0,
            edges_dropped: 0,
            edges_added: 0,
            candidates_pruned: 0,
            cache_hits: 0,
            fused_states: 0,
            fused_visits: 0,
            fused_dispatched: 0,
            degraded_stale_order: 0,
            degraded_divergence: 0,
            degraded_update_failed: 0,
            funnel_classified: 0,
            funnel_admitted: 0,
            funnel_matched: 0,
            funnel_dep_checked: 0,
            cost: Cost::default(),
            rejects: Vec::new(),
        }
    }
}

impl Drop for RunTotals {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        if self.funnel_classified > 0 {
            // One structured funnel event per run: the whole
            // classified → admitted → matched → dep-checked →
            // applied/rolled-back pipeline in a single record, so the
            // report engine and the explain narrative need no counter
            // joins. The per-phase counters below carry the same totals
            // for metric consumers.
            rec.event(
                "search.funnel",
                &[
                    ("optimizer", Value::str(self.opt_name.clone())),
                    ("classified", Value::u(self.funnel_classified)),
                    ("admitted", Value::u(self.funnel_admitted)),
                    ("matched", Value::u(self.funnel_matched)),
                    ("dep_checked", Value::u(self.funnel_dep_checked)),
                    ("applied", Value::u(self.applications)),
                    ("rolled_back", Value::u(self.action_rollbacks)),
                ],
            );
        }
        let mut items: Vec<(Name, u64)> = Vec::with_capacity(16);
        if self.funnel_classified > 0 {
            for (phase, n) in [
                ("classified", self.funnel_classified),
                ("admitted", self.funnel_admitted),
                ("matched", self.funnel_matched),
                ("dep_checked", self.funnel_dep_checked),
                ("applied", self.applications),
                ("rolled_back", self.action_rollbacks),
            ] {
                if n > 0 {
                    items.push((
                        Name::Owned(format!("funnel.{}.{phase}", self.opt_name)),
                        n,
                    ));
                }
            }
        }
        for (name, n) in [
            ("driver.attempts", self.attempts),
            ("driver.applications", self.applications),
            ("driver.action_rollbacks", self.action_rollbacks),
            ("cost.pattern_checks", self.cost.pattern_checks),
            ("cost.dep_checks", self.cost.dep_checks),
            ("cost.anchor_visits", self.cost.anchor_visits),
            ("cost.transform_ops", self.transform_ops),
            ("dep.analyze.full", self.analyze_full),
            ("dep.update.full", self.update_full),
            ("dep.update.incremental", self.update_incremental),
            ("dep.update.structural", self.update_structural),
            ("dep.update.noop", self.update_noop),
            ("dep.update.edges_dropped", self.edges_dropped),
            ("dep.update.edges_added", self.edges_added),
            ("search.dep_reject", self.rejects.iter().sum()),
            ("search.candidates_pruned", self.candidates_pruned),
            ("search.fused.states", self.fused_states),
            ("search.fused.visits", self.fused_visits),
            ("search.degraded.stale_order", self.degraded_stale_order),
            ("search.degraded.dep_divergence", self.degraded_divergence),
            (
                "search.degraded.dep_update_failed",
                self.degraded_update_failed,
            ),
        ] {
            if n > 0 {
                items.push((Name::Borrowed(name), n));
            }
        }
        if self.cache_hits > 0 {
            items.push((
                Name::Owned(format!("search.cache_hit.{}", self.opt_name)),
                self.cache_hits,
            ));
        }
        if self.fused_dispatched > 0 {
            items.push((
                Name::Owned(format!("search.fused.dispatched.{}", self.opt_name)),
                self.fused_dispatched,
            ));
        }
        for (i, &n) in self.rejects.iter().enumerate() {
            if n > 0 {
                items.push((
                    Name::Owned(format!("search.dep_reject.{}.clause{i}", self.opt_name)),
                    n,
                ));
            }
        }
        rec.add_many(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;
    use gospel_frontend::compile as minifor;
    use gospel_ir::{DisplayProgram, Operand};

    fn ctp() -> CompiledOptimizer {
        let (spec, info) = gospel_lang::parse_validated(crate::CTP_EXAMPLE_SPEC).unwrap();
        generate(spec, info).unwrap()
    }

    #[test]
    fn ctp_propagates_a_constant() {
        let mut prog = minifor(
            "program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend",
        )
        .unwrap();
        let opt = ctp();
        let mut d = Driver::new(&opt);
        let report = d.apply(&mut prog, ApplyMode::AllPoints).unwrap();
        // two points: x into `y = x`, then the new constant y into `write y`
        assert_eq!(report.applications, 2);
        let y_stmt = prog.iter().nth(1).unwrap();
        assert_eq!(prog.quad(y_stmt).a, Operand::int(3));
        let w_stmt = prog.iter().nth(2).unwrap();
        assert_eq!(prog.quad(w_stmt).a, Operand::int(3));
        assert!(report.cost.total() > 0);
    }

    #[test]
    fn ctp_blocked_by_second_definition() {
        // two defs of x reach the use: no propagation
        let mut prog = minifor(
            "program p\ninteger x, y, c\nx = 3\nif (c > 0) then\nx = 4\nend if\ny = x\nwrite y\nend",
        )
        .unwrap();
        let opt = ctp();
        let mut d = Driver::new(&opt);
        let report = d.apply(&mut prog, ApplyMode::AllPoints).unwrap();
        // The only possible propagations are blocked (both defs reach y=x).
        let listing = DisplayProgram(&prog).to_string();
        assert!(listing.contains("y := x"), "{listing}");
        assert_eq!(report.applications, 0);
    }

    #[test]
    fn ctp_cascades_through_copies() {
        // x = 3; y = x; z = y; write z — three applications (the chain
        // y, then z, then the write).
        let mut prog = minifor(
            "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
        )
        .unwrap();
        let opt = ctp();
        let mut d = Driver::new(&opt);
        let report = d.apply(&mut prog, ApplyMode::AllPoints).unwrap();
        assert_eq!(report.applications, 3);
        let z_stmt = prog.iter().nth(2).unwrap();
        assert_eq!(prog.quad(z_stmt).a, Operand::int(3));
    }

    #[test]
    fn first_point_applies_once() {
        let mut prog = minifor(
            "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
        )
        .unwrap();
        let opt = ctp();
        let mut d = Driver::new(&opt);
        let report = d.apply(&mut prog, ApplyMode::FirstPoint).unwrap();
        assert_eq!(report.applications, 1);
    }

    #[test]
    fn at_point_restricts_anchor() {
        let mut prog = minifor(
            "program p\ninteger x, y, a, b\nx = 3\na = 5\ny = x\nb = a\nwrite y\nwrite b\nend",
        )
        .unwrap();
        let a_def = prog.iter().nth(1).unwrap(); // a = 5
        let opt = ctp();
        let mut d = Driver::new(&opt);
        let report = d.apply(&mut prog, ApplyMode::AtPoint(a_def)).unwrap();
        assert_eq!(report.applications, 1);
        // only b = a was rewritten
        let b_stmt = prog.iter().nth(3).unwrap();
        assert_eq!(prog.quad(b_stmt).a, Operand::int(5));
        let y_stmt = prog.iter().nth(2).unwrap();
        assert_ne!(prog.quad(y_stmt).a, Operand::int(3));
    }

    #[test]
    fn matches_lists_without_applying() {
        let prog = minifor(
            "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
        )
        .unwrap();
        let opt = ctp();
        let d = Driver::new(&opt);
        let ms = d.matches(&prog).unwrap();
        // before any transformation, only x=3 → y=x is a valid point
        assert_eq!(ms.bindings.len(), 1);
        let listing = DisplayProgram(&prog).to_string();
        assert!(listing.contains("y := x"), "unchanged: {listing}");
    }

    #[test]
    fn incremental_resume_visits_fewer_anchors_than_restart() {
        // A cascade with work spread across the program: after each commit
        // the incremental driver resumes from the dirty frontier instead of
        // restarting at the top, so it must reach the same fixpoint (same
        // program, same application count) with strictly fewer first-clause
        // anchor visits than the full-restart driver.
        let src = "program p\ninteger x, y, z, w\nx = 3\ny = x\nz = y\nw = z\nwrite w\nend";
        let opt = ctp();

        let mut full_prog = minifor(src).unwrap();
        let mut d = Driver::new(&opt);
        d.incremental_deps = false;
        let full = d.apply(&mut full_prog, ApplyMode::AllPoints).unwrap();

        let mut incr_prog = minifor(src).unwrap();
        let mut d = Driver::new(&opt);
        d.incremental_deps = true;
        let incr = d.apply(&mut incr_prog, ApplyMode::AllPoints).unwrap();

        assert_eq!(full.applications, incr.applications);
        assert_eq!(
            DisplayProgram(&full_prog).to_string(),
            DisplayProgram(&incr_prog).to_string()
        );
        assert_eq!(full.incremental_updates, 0);
        assert!(incr.incremental_updates > 0);
        assert!(
            incr.cost.anchor_visits < full.cost.anchor_visits,
            "resume should revisit fewer anchors: incremental {} vs full {}",
            incr.cost.anchor_visits,
            full.cost.anchor_visits
        );
    }

    #[test]
    fn panic_mid_action_unwinds_the_journal() {
        // A panic after the actions have journaled edits must not leak the
        // half-transformed program: the driver replays the undo log before
        // letting the panic propagate.
        let src = "program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend";
        let mut prog = minifor(src).unwrap();
        let before = DisplayProgram(&prog).to_string();
        let opt = ctp();
        let mut d = Driver::new(&opt);
        d.fault = Some(
            crate::fault::FaultPlan::new(crate::fault::FaultKind::PanicInAction),
        );
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = d.apply(&mut prog, ApplyMode::AllPoints);
        }));
        std::panic::set_hook(hook);
        assert!(outcome.is_err(), "the injected panic must propagate");
        assert_eq!(
            DisplayProgram(&prog).to_string(),
            before,
            "the in-flight journal must be replayed before the panic escapes"
        );
    }

    #[test]
    fn recorder_sees_attempts_and_balanced_spans() {
        let mut prog = minifor(
            "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
        )
        .unwrap();
        let opt = ctp();
        let mut d = Driver::new(&opt);
        let rec = std::sync::Arc::new(gospel_trace::Recorder::new());
        d.recorder = Some(rec.clone());
        let report = d.apply(&mut prog, ApplyMode::AllPoints).unwrap();
        assert_eq!(rec.open_spans(), 0, "every attempt span must close");
        assert_eq!(
            rec.counter("driver.applications"),
            report.applications as u64
        );
        // attempts = applications + the final fixpoint probe
        assert_eq!(
            rec.counter("driver.attempts"),
            report.applications as u64 + 1
        );
        let events = rec.drain_events();
        assert!(events.iter().any(|e| e.name == "search.match"));
        assert!(events.iter().any(|e| e.name == "dep.update"));
    }

    #[test]
    fn diverging_spec_hits_budget() {
        // A pathological spec whose action does not invalidate its own
        // precondition: copy a statement after itself forever.
        let src = r#"
OPTIMIZATION LOOPY
TYPE Stmt: S;
PRECOND
  Code_Pattern
    any S: S.opc == assign;
ACTION
  copy(S, S, S2);
END
"#;
        let (spec, info) = gospel_lang::parse_validated(src).unwrap();
        let opt = generate(spec, info).unwrap();
        let mut prog = minifor("program p\ninteger x\nx = 1\nend").unwrap();
        let mut d = Driver::new(&opt);
        d.max_applications = 5;
        assert!(matches!(
            d.apply(&mut prog, ApplyMode::AllPoints),
            Err(RunError::Diverged { limit: 5 })
        ));
    }
}
