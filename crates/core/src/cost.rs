//! The paper's cost metric.
//!
//! §4: "The cost of applying an optimization was estimated using the number
//! of checks to determine preconditions and the number of operations to
//! apply the code transformation." The driver accumulates both while it
//! runs; the experiment harness validates the counts against wall-clock
//! time, as the paper did.

use std::ops::{Add, AddAssign};

/// Precondition checks plus transformation operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Code-pattern format tests performed.
    pub pattern_checks: u64,
    /// Dependence-condition tests performed (including membership tests).
    pub dep_checks: u64,
    /// Transformation primitives executed.
    pub transform_ops: u64,
    /// First-clause anchor candidates actually visited by the searcher.
    /// Not part of [`Cost::checks`] / [`Cost::total`] (the paper's metric);
    /// it instruments how much of the program a resumed search rescans.
    pub anchor_visits: u64,
}

impl Cost {
    /// The zero cost.
    pub fn zero() -> Cost {
        Cost::default()
    }

    /// Total precondition checks (pattern + dependence).
    pub fn checks(&self) -> u64 {
        self.pattern_checks + self.dep_checks
    }

    /// The paper's scalar cost: checks plus transformation operations.
    pub fn total(&self) -> u64 {
        self.checks() + self.transform_ops
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            pattern_checks: self.pattern_checks + rhs.pattern_checks,
            dep_checks: self.dep_checks + rhs.dep_checks,
            transform_ops: self.transform_ops + rhs.transform_ops,
            anchor_visits: self.anchor_visits + rhs.anchor_visits,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} checks ({} pattern + {} dependence) + {} ops = {}",
            self.checks(),
            self.pattern_checks,
            self.dep_checks,
            self.transform_ops,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cost {
            pattern_checks: 1,
            dep_checks: 2,
            transform_ops: 3,
            anchor_visits: 4,
        };
        let b = a + a;
        assert_eq!(b.checks(), 6);
        assert_eq!(b.total(), 12, "anchor visits stay out of the metric");
        assert_eq!(b.anchor_visits, 8);
        let mut c = Cost::zero();
        c += a;
        assert_eq!(c, a);
    }
}
