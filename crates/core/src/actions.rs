//! The action interpreter: executes the five transformation primitives
//! (plus `forall`) against a program, using the bindings found by the
//! precondition search.

use crate::error::RunError;
use crate::rt::{Bindings, RtVal};
use crate::solve::{eval_place, eval_val};
use gospel_ir::{EditDelta, LoopTable, Opcode, Operand, Program, Quad, StmtId};
use gospel_lang::ast::{Action, ElemDesc, SetExpr, ValExpr};

/// Executes an action list; returns the number of primitive operations
/// performed (the paper's transformation-cost component). Every program
/// mutation is journaled into `delta`, which doubles as the change
/// summary for incremental dependence maintenance and as the undo log
/// that rolls the program back if a later action in the list fails.
pub(crate) fn run_actions(
    prog: &mut Program,
    loops: &LoopTable,
    env: &mut Bindings,
    actions: &[Action],
    delta: &mut EditDelta,
) -> Result<u64, RunError> {
    let mut ops = 0u64;
    for a in actions {
        ops += run_action(prog, loops, env, a, delta)?;
    }
    Ok(ops)
}

fn run_action(
    prog: &mut Program,
    loops: &LoopTable,
    env: &mut Bindings,
    action: &Action,
    delta: &mut EditDelta,
) -> Result<u64, RunError> {
    match action {
        Action::Delete(x) => {
            let val = eval_val(prog, loops, env, x)?;
            match val {
                RtVal::Stmt(s) => {
                    ensure_live(prog, s)?;
                    delta.delete(prog, s);
                }
                // Deleting a loop removes its header and end markers and
                // splices the body into the surrounding code — exactly what
                // loop fusion needs for the second loop's shell.
                RtVal::Loop(l) => {
                    let info = loops.get(l);
                    ensure_live(prog, info.head)?;
                    ensure_live(prog, info.end)?;
                    delta.delete(prog, info.head);
                    delta.delete(prog, info.end);
                }
                other => return Err(RunError::Action(format!("cannot delete {other:?}"))),
            }
            Ok(1)
        }
        Action::Move(x, after) => {
            let target = eval_val(prog, loops, env, after)?
                .as_stmt()
                .ok_or_else(|| RunError::Action("move(): target is not a statement".into()))?;
            ensure_live(prog, target)?;
            match eval_val(prog, loops, env, x)? {
                RtVal::Stmt(s) => {
                    ensure_live(prog, s)?;
                    delta.move_after(prog, s, Some(target));
                }
                RtVal::Loop(l) => {
                    // Move the whole region head..end, preserving order.
                    let info = loops.get(l);
                    let region: Vec<StmtId> = std::iter::once(info.head)
                        .chain(prog.iter_between(info.head, info.end))
                        .chain(std::iter::once(info.end))
                        .collect();
                    let mut anchor = target;
                    for s in region {
                        delta.move_after(prog, s, Some(anchor));
                        anchor = s;
                    }
                }
                other => return Err(RunError::Action(format!("cannot move {other:?}"))),
            }
            Ok(1)
        }
        Action::Copy(x, after, name) => {
            let target = eval_val(prog, loops, env, after)?
                .as_stmt()
                .ok_or_else(|| RunError::Action("copy(): target is not a statement".into()))?;
            ensure_live(prog, target)?;
            match eval_val(prog, loops, env, x)? {
                RtVal::Stmt(s) => {
                    ensure_live(prog, s)?;
                    let c = delta.copy_after(prog, s, Some(target));
                    env.set(name, RtVal::Stmt(c));
                }
                RtVal::Loop(l) => {
                    let info = loops.get(l);
                    let region: Vec<StmtId> = std::iter::once(info.head)
                        .chain(prog.iter_between(info.head, info.end))
                        .chain(std::iter::once(info.end))
                        .collect();
                    let mut anchor = target;
                    let mut first_copy = None;
                    for s in region {
                        let c = delta.copy_after(prog, s, Some(anchor));
                        first_copy.get_or_insert(c);
                        anchor = c;
                    }
                    let first = first_copy.ok_or_else(|| {
                        RunError::Action("copy(): loop region is empty".into())
                    })?;
                    env.set(name, RtVal::Stmt(first));
                }
                other => return Err(RunError::Action(format!("cannot copy {other:?}"))),
            }
            Ok(1)
        }
        Action::Add(after, desc, name) => {
            let target = eval_val(prog, loops, env, after)?
                .as_stmt()
                .ok_or_else(|| RunError::Action("add(): target is not a statement".into()))?;
            ensure_live(prog, target)?;
            let quad = build_quad(prog, loops, env, desc)?;
            let s = delta.insert_after(prog, Some(target), quad);
            env.set(name, RtVal::Stmt(s));
            Ok(1)
        }
        Action::Modify(place, new) => {
            let (stmt, pos) = eval_place(prog, loops, env, place)?;
            ensure_live(prog, stmt)?;
            let val = eval_val(prog, loops, env, new)?
                .as_operand()
                .ok_or_else(|| RunError::Action("modify(): replacement is not an operand".into()))?;
            delta.modify(prog, stmt, pos, val);
            Ok(1)
        }
        Action::ForAll {
            var,
            pos_var,
            set,
            body,
        } => {
            let items: Vec<(StmtId, Option<gospel_ir::OperandPos>)> = match set {
                SetExpr::Named(n) => match env.get(n) {
                    Some(RtVal::Set(items)) => items.clone(),
                    Some(RtVal::Loop(l)) => loops
                        .body(prog, *l)
                        .map(|s| (s, None))
                        .collect(),
                    other => {
                        return Err(RunError::Action(format!(
                            "forall set `{n}` is not a set (bound to {other:?})"
                        )))
                    }
                },
                _ => {
                    return Err(RunError::Action(
                        "forall element expressions are rejected at generation time".into(),
                    ))
                }
            };
            let mut ops = 0u64;
            for (stmt, pos) in items {
                // Elements deleted by earlier iterations are skipped.
                if !prog.is_live(stmt) {
                    continue;
                }
                let mut inner = env.clone();
                inner.set(var, RtVal::Stmt(stmt));
                if let Some(pv) = pos_var {
                    match pos {
                        Some(p) => inner.set(pv, RtVal::Pos(p)),
                        None => {
                            return Err(RunError::Action(format!(
                                "forall binds `{pv}` but the set has no positions"
                            )))
                        }
                    }
                }
                ops += run_actions(prog, loops, &mut inner, body, delta)?;
            }
            Ok(ops)
        }
    }
}

fn ensure_live(prog: &Program, s: StmtId) -> Result<(), RunError> {
    if prog.is_live(s) {
        Ok(())
    } else {
        Err(RunError::Action(format!("statement {s} was deleted")))
    }
}

fn build_quad(
    prog: &mut Program,
    loops: &LoopTable,
    env: &Bindings,
    desc: &ElemDesc,
) -> Result<Quad, RunError> {
    let op = opcode_by_name(&desc.opc)
        .ok_or_else(|| RunError::Action(format!("unknown opcode `{}` in template", desc.opc)))?;
    let eval_opr = |prog: &Program, e: &Option<ValExpr>| -> Result<Operand, RunError> {
        match e {
            None => Ok(Operand::None),
            Some(v) => eval_val(prog, loops, env, v)?
                .as_operand()
                .ok_or_else(|| RunError::Action("template operand is not an operand".into())),
        }
    };
    let dst = eval_opr(prog, &desc.opr_1)?;
    let a = eval_opr(prog, &desc.opr_2)?;
    let b = eval_opr(prog, &desc.opr_3)?;
    Ok(Quad::new(op, dst, a, b))
}

/// Opcode spellings usable in `add` templates (and matched by
/// `Si.opc == name` comparisons).
pub(crate) fn opcode_by_name(name: &str) -> Option<Opcode> {
    Some(match name.to_ascii_lowercase().as_str() {
        "assign" => Opcode::Assign,
        "add" => Opcode::Add,
        "sub" => Opcode::Sub,
        "mul" => Opcode::Mul,
        "div" => Opcode::Div,
        "mod" => Opcode::Mod,
        "neg" => Opcode::Neg,
        "do" => Opcode::DoHead,
        "pardo" => Opcode::ParDo,
        "enddo" => Opcode::EndDo,
        "if_lt" => Opcode::IfLt,
        "if_le" => Opcode::IfLe,
        "if_gt" => Opcode::IfGt,
        "if_ge" => Opcode::IfGe,
        "if_eq" => Opcode::IfEq,
        "if_ne" => Opcode::IfNe,
        "else" => Opcode::Else,
        "endif" => Opcode::EndIf,
        "read" => Opcode::Read,
        "write" => Opcode::Write,
        "nop" => Opcode::Nop,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::RtVal;
    use gospel_dep::DepGraph;
    use gospel_ir::DisplayProgram;
    use gospel_lang::ast::{ElemDesc, ElemRef, ValExpr};

    fn world(src: &str) -> (Program, gospel_ir::LoopTable) {
        let p = gospel_frontend::compile(src).unwrap();
        let loops = DepGraph::analyze(&p).unwrap().loops().clone();
        (p, loops)
    }

    /// Test shorthand: run with a throwaway journal.
    fn run(
        prog: &mut Program,
        loops: &gospel_ir::LoopTable,
        env: &mut Bindings,
        actions: &[Action],
    ) -> Result<u64, RunError> {
        run_actions(prog, loops, env, actions, &mut gospel_ir::EditDelta::new())
    }

    const NEST: &str = "program p\ninteger i, x\nreal a(10)\nx = 5\ndo i = 1, 3\na(i) = 1.0\nend do\nwrite a(1)\nend";

    fn loop_binding(loops: &gospel_ir::LoopTable) -> Bindings {
        let mut env = Bindings::new();
        env.set("L", RtVal::Loop(loops.iter().next().unwrap().id));
        env
    }

    fn name(s: &str) -> ValExpr {
        ValExpr::Name(s.into())
    }

    fn lref(path: Vec<gospel_lang::ast::Attr>) -> ValExpr {
        ValExpr::Ref(ElemRef {
            base: "L".into(),
            path,
        })
    }

    #[test]
    fn delete_loop_removes_only_the_shell() {
        let (mut p, loops) = world(NEST);
        let mut env = loop_binding(&loops);
        let before = p.len();
        let ops = run(&mut p, &loops, &mut env, &[Action::Delete(name("L"))]).unwrap();
        assert_eq!(ops, 1);
        assert_eq!(p.len(), before - 2); // head and end only
        let listing = DisplayProgram(&p).to_string();
        assert!(!listing.contains("do i"), "{listing}");
        assert!(listing.contains("a(i) := 1.0"), "{listing}");
    }

    #[test]
    fn move_loop_moves_the_whole_region_in_order() {
        let (mut p, loops) = world(NEST);
        let mut env = loop_binding(&loops);
        let last = p.last().unwrap(); // the write
        env.set("W", RtVal::Stmt(last));
        run(
            &mut p,
            &loops,
            &mut env,
            &[Action::Move(name("L"), name("W"))],
        )
        .unwrap();
        gospel_ir::validate(&p).unwrap();
        let listing = DisplayProgram(&p).to_string();
        let w = listing.lines().position(|l| l.contains("write")).unwrap();
        let d = listing.lines().position(|l| l.contains("do i")).unwrap();
        let b = listing.lines().position(|l| l.contains("a(i)")).unwrap();
        let e = listing.lines().position(|l| l.contains("end do")).unwrap();
        assert!(w < d && d < b && b < e, "{listing}");
    }

    #[test]
    fn copy_loop_binds_the_new_head() {
        let (mut p, loops) = world(NEST);
        let mut env = loop_binding(&loops);
        let last = p.last().unwrap();
        env.set("W", RtVal::Stmt(last));
        run(
            &mut p,
            &loops,
            &mut env,
            &[Action::Copy(name("L"), name("W"), "L2".into())],
        )
        .unwrap();
        gospel_ir::validate(&p).unwrap();
        // the copy's head is bound and is a loop header
        let RtVal::Stmt(h) = env.get("L2").unwrap() else {
            panic!("L2 not bound to a statement");
        };
        assert!(p.quad(*h).op.is_loop_head());
        let listing = DisplayProgram(&p).to_string();
        assert_eq!(listing.matches("do i").count(), 2, "{listing}");
    }

    #[test]
    fn add_builds_from_template_and_binds() {
        let (mut p, loops) = world(NEST);
        let mut env = loop_binding(&loops);
        let first = p.first().unwrap();
        env.set("S", RtVal::Stmt(first));
        run(
            &mut p,
            &loops,
            &mut env,
            &[Action::Add(
                name("S"),
                ElemDesc {
                    opc: "add".into(),
                    opr_1: Some(ValExpr::Ref(ElemRef {
                        base: "S".into(),
                        path: vec![gospel_lang::ast::Attr::Opr(1)],
                    })),
                    opr_2: Some(ValExpr::Int(1)),
                    opr_3: Some(ValExpr::Int(2)),
                },
                "Snew".into(),
            )],
        )
        .unwrap();
        let RtVal::Stmt(snew) = env.get("Snew").unwrap() else {
            panic!()
        };
        assert_eq!(p.quad(*snew).op, gospel_ir::Opcode::Add);
        assert_eq!(p.next(first), Some(*snew));
    }

    #[test]
    fn forall_over_loop_body_skips_deleted() {
        let (mut p, loops) = world(NEST);
        let mut env = loop_binding(&loops);
        // delete every body statement, twice nested in one forall list —
        // the second pass over the same set must skip dead statements.
        let acts = vec![
            Action::ForAll {
                var: "S".into(),
                pos_var: None,
                set: gospel_lang::ast::SetExpr::Named("L".into()),
                body: vec![Action::Delete(name("S"))],
            },
            Action::ForAll {
                var: "S".into(),
                pos_var: None,
                set: gospel_lang::ast::SetExpr::Named("L".into()),
                body: vec![Action::Delete(name("S"))],
            },
        ];
        let ops = run(&mut p, &loops, &mut env, &acts);
        // the loop body set reads through live statements only
        assert!(ops.is_ok(), "{ops:?}");
        let listing = DisplayProgram(&p).to_string();
        assert!(!listing.contains("a(i)"), "{listing}");
    }

    #[test]
    fn modify_via_loop_bound_place() {
        let (mut p, loops) = world(NEST);
        let mut env = loop_binding(&loops);
        run(
            &mut p,
            &loops,
            &mut env,
            &[Action::Modify(
                lref(vec![gospel_lang::ast::Attr::Final]),
                ValExpr::Int(9),
            )],
        )
        .unwrap();
        let head = loops.iter().next().unwrap().head;
        assert_eq!(p.quad(head).b, gospel_ir::Operand::int(9));
    }

    #[test]
    fn action_on_deleted_statement_errors() {
        let (mut p, loops) = world(NEST);
        let mut env = Bindings::new();
        let first = p.first().unwrap();
        env.set("S", RtVal::Stmt(first));
        p.delete(first);
        let r = run(&mut p, &loops, &mut env, &[Action::Delete(name("S"))]);
        assert!(r.is_err());
    }

    #[test]
    fn opcode_names_cover_all_template_spellings() {
        for n in [
            "assign", "add", "sub", "mul", "div", "mod", "neg", "do", "pardo", "enddo",
            "if_lt", "if_le", "if_gt", "if_ge", "if_eq", "if_ne", "else", "endif", "read",
            "write", "nop",
        ] {
            assert!(opcode_by_name(n).is_some(), "missing opcode {n}");
        }
        assert!(opcode_by_name("bogus").is_none());
    }
}
