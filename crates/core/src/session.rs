//! The constructor's interactive interface (paper Figure 4, Step 3): a
//! session holds the program, a set of generated optimizers, and the
//! user-facing options — select optimizations, select application points,
//! override dependence restrictions, control dependence recomputation.

use crate::caches::SessionCaches;
use crate::compile::CompiledOptimizer;
use crate::cost::Cost;
use crate::driver::{ApplyMode, ApplyReport, Driver, MatchSet, MatcherKind};
use crate::error::RunError;
use crate::fault::FaultPlan;
use gospel_ir::Program;
use gospel_trace::Recorder;
use std::sync::Arc;

/// Session configuration.
#[derive(Clone, Copy, Debug)]
pub struct SessionOptions {
    /// Recompute the dependence graph between applications of one
    /// optimizer (Figure 5 note: "the data flow analyzer may have to be
    /// called after each application").
    pub recompute_deps: bool,
    /// Maintain the dependence graph incrementally from each application's
    /// edit delta instead of re-running the full analysis (the driver
    /// falls back to a full `analyze` on structural edits).
    pub incremental_deps: bool,
    /// Cross-check every incremental graph refresh against a fresh full
    /// analysis; a disagreement fails the `apply` call loudly.
    pub verify_deps: bool,
    /// Per-optimizer application budget.
    pub max_applications: usize,
    /// Wall-clock budget per `apply` call, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Search-cost budget per `apply` call (see [`Cost::total`]).
    pub fuel: Option<u64>,
    /// Growth cap: abort an `apply` once the program exceeds this
    /// multiple of its statement count at the start of the call.
    pub max_growth: Option<u32>,
    /// Which candidate-enumeration machinery drives searches — the fused
    /// catalog automaton, the per-optimizer statement index, or full
    /// scans (see [`MatcherKind`]); bindings are identical in every
    /// mode. Defaults from [`crate::matcher_default`] (`GENESIS_MATCHER`
    /// / legacy `GENESIS_INDEXED_SEARCH` environment toggles).
    pub matcher: MatcherKind,
    /// Degrade instead of hard-aborting on dependence-maintenance
    /// trouble (see [`crate::Driver::degraded_recovery`]). On by default
    /// for sessions: an interactive or batch run prefers a slower, healed
    /// apply over an aborted one, and every fall is visible through the
    /// `search.degraded.<reason>` counters.
    pub degraded_recovery: bool,
    /// Attempt-span sampling rate: trace one in every N
    /// `driver.attempt` spans (`0`/`1` = every attempt). Counters stay
    /// exact; sampled-in timing observations are weighted by N (see
    /// [`crate::Driver::trace_sample`]).
    pub trace_sample: u64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            recompute_deps: true,
            incremental_deps: true,
            verify_deps: false,
            max_applications: 10_000,
            timeout_ms: None,
            fuel: None,
            max_growth: None,
            matcher: crate::driver::matcher_default(),
            degraded_recovery: true,
            trace_sample: 1,
        }
    }
}

/// One entry in the session log.
#[derive(Clone, Debug)]
pub struct SessionEvent {
    /// Optimizer name.
    pub optimizer: String,
    /// How it was applied.
    pub mode: ApplyMode,
    /// What happened.
    pub report: ApplyReport,
}

/// An interactive optimization session: "the user may execute any number
/// of optimizations in any order".
#[derive(Debug)]
pub struct Session {
    prog: Program,
    optimizers: Vec<CompiledOptimizer>,
    options: SessionOptions,
    log: Vec<SessionEvent>,
    fault: Option<FaultPlan>,
    /// Search state carried across applies — the dependence graph, the
    /// statement index, and per-optimizer match caches and anchor
    /// filters. The driver maintains all of it by delta replay; see
    /// [`SessionCaches`].
    caches: SessionCaches,
    /// Structured-event sink handed to every driver this session runs.
    recorder: Option<Arc<Recorder>>,
}

impl Session {
    /// Starts a session over `prog`.
    pub fn new(prog: Program) -> Session {
        Session {
            prog,
            optimizers: Vec::new(),
            options: SessionOptions::default(),
            log: Vec::new(),
            fault: None,
            caches: SessionCaches::new(),
            recorder: None,
        }
    }

    /// Starts a session with explicit options.
    pub fn with_options(prog: Program, options: SessionOptions) -> Session {
        Session {
            options,
            ..Session::new(prog)
        }
    }

    /// Registers a generated optimizer; it becomes selectable by name.
    /// Re-registering an existing name replaces the old specification
    /// *and* drops its cached match verdicts, anchor filters, and
    /// fused-automaton states — the old spec's remembered rejections and
    /// compiled anchor tests must not answer for the new one.
    pub fn register(&mut self, opt: CompiledOptimizer) {
        self.caches.drop_optimizer(&opt.name);
        self.optimizers.retain(|o| o.name != opt.name);
        self.optimizers.push(opt);
    }

    /// Names of the registered optimizers, in registration order.
    pub fn optimizer_names(&self) -> Vec<&str> {
        self.optimizers.iter().map(|o| o.name.as_str()).collect()
    }

    /// The current program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Consumes the session, returning the optimized program.
    pub fn into_program(self) -> Program {
        self.prog
    }

    /// The session log.
    pub fn log(&self) -> &[SessionEvent] {
        &self.log
    }

    /// Total cost spent so far.
    pub fn total_cost(&self) -> Cost {
        self.log
            .iter()
            .fold(Cost::zero(), |acc, e| acc + e.report.cost)
    }

    /// Arms (or clears) a scripted fault for subsequent `apply` calls —
    /// the probe points live in the driver; see [`FaultPlan`].
    pub fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Attaches (or detaches) a structured-event recorder; every driver
    /// run by subsequent `apply` calls emits its spans and counters there.
    pub fn set_recorder(&mut self, rec: Option<Arc<Recorder>>) {
        self.recorder = rec;
    }

    /// The attached recorder, if any (shared, so callers can drain events
    /// while the session holds on to it).
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// The current session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// The session options (mutable, so budgets can be tuned mid-session).
    pub fn options_mut(&mut self) -> &mut SessionOptions {
        &mut self.options
    }

    /// Replaces the session's program, e.g. to restore a checkpoint. The
    /// program changed outside the driver's journaled commits, so every
    /// carried cache is dropped.
    pub fn restore_program(&mut self, prog: Program) {
        self.prog = prog;
        self.caches.clear();
    }

    /// The search state carried across applies — read-only introspection
    /// for tests and the chaos campaign's consistency audit.
    pub fn caches(&self) -> &SessionCaches {
        &self.caches
    }

    fn find_index(&self, name: &str) -> Result<usize, RunError> {
        self.optimizers
            .iter()
            .position(|o| o.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| RunError::UnknownOptimizer { name: name.into() })
    }

    fn find(&self, name: &str) -> Result<&CompiledOptimizer, RunError> {
        self.find_index(name).map(|i| &self.optimizers[i])
    }

    /// Lists the application points of `name` in the current program.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the optimizer is unknown or analysis fails.
    pub fn matches(&self, name: &str) -> Result<MatchSet, RunError> {
        let opt = self.find(name)?;
        let d = Driver::new(opt);
        match &self.caches.deps {
            // The carried graph already describes the current program.
            Some(g) => d.matches_with(&self.prog, g),
            None => d.matches(&self.prog),
        }
    }

    /// Applies optimizer `name` with the given mode and logs the result.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the optimizer is unknown, analysis fails,
    /// an action fails, or an application/resource budget is exceeded.
    pub fn apply(&mut self, name: &str, mode: ApplyMode) -> Result<&ApplyReport, RunError> {
        let idx = self.find_index(name)?;
        // Destructure so the optimizer borrow (from `optimizers`) and the
        // program borrow are disjoint — no clone of the compiled plan.
        let Session {
            prog,
            optimizers,
            options,
            log,
            fault,
            caches,
            recorder,
        } = self;
        // A fused apply dispatches from the catalog-wide automaton: build
        // (or rebuild) it here whenever the registered catalog changed
        // under the parked one — registration and quarantine transitions
        // drop it via `SessionCaches::drop_optimizer`.
        if options.matcher == MatcherKind::Fused {
            caches.ensure_automaton(optimizers, prog, recorder.as_ref());
        }
        let opt = &optimizers[idx];
        let mut driver = Driver::new(opt);
        driver.recompute_deps = options.recompute_deps;
        driver.incremental_deps = options.incremental_deps;
        driver.verify_deps = options.verify_deps;
        driver.max_applications = options.max_applications;
        driver.timeout_ms = options.timeout_ms;
        driver.fuel = options.fuel;
        driver.max_stmts = options
            .max_growth
            .map(|k| (k as usize).saturating_mul(prog.len().max(1)));
        driver.matcher = options.matcher;
        driver.degraded_recovery = options.degraded_recovery;
        driver.trace_sample = options.trace_sample;
        driver.fault = fault.clone();
        driver.recorder = recorder.clone();
        // `apply_with` takes each cache on entry, so an early error below
        // leaves the bundle empty — never stale.
        let report = driver.apply_with(prog, mode, caches)?;
        log.push(SessionEvent {
            optimizer: opt.name.clone(),
            mode,
            report,
        });
        match log.last() {
            Some(event) => Ok(&event.report),
            None => Err(RunError::Internal("session log lost its last event".into())),
        }
    }

    /// Applies a sequence of optimizers, each at all points — the workflow
    /// of the §4 ordering experiments. Returns one report per optimizer.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failure.
    pub fn run_sequence(&mut self, names: &[&str]) -> Result<Vec<ApplyReport>, RunError> {
        let mut out = Vec::new();
        for n in names {
            let report = self.apply(n, ApplyMode::AllPoints)?.clone();
            out.push(report);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::generate;

    fn ctp() -> CompiledOptimizer {
        let (spec, info) = gospel_lang::parse_validated(crate::CTP_EXAMPLE_SPEC).unwrap();
        generate(spec, info).unwrap()
    }

    #[test]
    fn session_applies_and_logs() {
        let prog = gospel_frontend::compile(
            "program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend",
        )
        .unwrap();
        let mut s = Session::new(prog);
        s.register(ctp());
        assert_eq!(s.optimizer_names(), vec!["CTP"]);
        let report = s.apply("ctp", ApplyMode::AllPoints).unwrap();
        assert_eq!(report.applications, 2); // y = x, then write y
        assert_eq!(s.log().len(), 1);
        assert!(s.total_cost().total() > 0);
    }

    #[test]
    fn unknown_optimizer_is_an_error() {
        let prog = gospel_frontend::compile("program p\ninteger x\nx = 1\nend").unwrap();
        let mut s = Session::new(prog);
        assert!(s.apply("nope", ApplyMode::FirstPoint).is_err());
    }

    #[test]
    fn reregistering_a_name_drops_its_stale_negative_cache() {
        // Spec A's anchor-local `opr_1 == opr_2` test is cacheable but not
        // index-expressible, so a failed run parks real negative verdicts.
        // Spec B under the same name matches exactly the statements A
        // rejected — if A's parked cache answered for B, the match would
        // be silently suppressed.
        let reject_all = "OPTIMIZATION T\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
                          any S: S.opc == assign AND S.opr_1 == S.opr_2;\nACTION\n  \
                          delete(S);\nEND";
        let match_assign = "OPTIMIZATION T\nTYPE\n  Stmt: S;\nPRECOND\n  Code_Pattern\n    \
                            any S: S.opc == assign;\nACTION\n  delete(S);\nEND";
        let compile_opt = |src: &str| {
            let (spec, info) = gospel_lang::parse_validated(src).unwrap();
            generate(spec, info).unwrap()
        };
        let prog =
            gospel_frontend::compile("program p\ninteger x, y\nx = y\nwrite x\nend").unwrap();
        let mut s = Session::new(prog);
        s.options_mut().matcher = MatcherKind::Indexed;
        s.register(compile_opt(reject_all));
        let r = s.apply("T", ApplyMode::AllPoints).unwrap();
        assert_eq!(r.applications, 0);
        assert!(
            s.caches().has_match_cache("T"),
            "the failed run must park its negative verdicts"
        );
        s.register(compile_opt(match_assign));
        assert!(
            !s.caches().has_match_cache("T"),
            "re-registration must drop the old spec's cache entries"
        );
        let r = s.apply("T", ApplyMode::AllPoints).unwrap();
        assert_eq!(
            r.applications, 1,
            "stale negative matches must not survive re-registration"
        );
    }

    #[test]
    fn sequence_runs_in_order() {
        let prog = gospel_frontend::compile(
            "program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend",
        )
        .unwrap();
        let mut s = Session::new(prog);
        s.register(ctp());
        let reports = s.run_sequence(&["CTP"]).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].applications, 3); // y, z, then the write
    }
}
