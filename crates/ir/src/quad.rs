//! Quad statements and operand positions.

use crate::{Opcode, Operand, Sym};

/// Names the three operand slots of a quad: the paper's `opr_1` (destination),
/// `opr_2` and `opr_3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OperandPos {
    /// `opr_1` — the destination of a defining statement (or the first
    /// compared operand of an `if`, or the LCV of a loop header).
    Dst,
    /// `opr_2`.
    A,
    /// `opr_3`.
    B,
}

impl OperandPos {
    /// All three positions, in `opr_1`, `opr_2`, `opr_3` order.
    pub const ALL: [OperandPos; 3] = [OperandPos::Dst, OperandPos::A, OperandPos::B];

    /// The 1-based index used in GOSpeL (`opr_1` = 1 …).
    pub fn index(self) -> usize {
        match self {
            OperandPos::Dst => 1,
            OperandPos::A => 2,
            OperandPos::B => 3,
        }
    }

    /// Parses a 1-based GOSpeL operand index.
    pub fn from_index(i: usize) -> Option<OperandPos> {
        match i {
            1 => Some(OperandPos::Dst),
            2 => Some(OperandPos::A),
            3 => Some(OperandPos::B),
            _ => None,
        }
    }
}

/// A single IR statement: `dst := a opc b` plus structured markers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Quad {
    /// The operation.
    pub op: Opcode,
    /// `opr_1`: the destination (for defining statements).
    pub dst: Operand,
    /// `opr_2`.
    pub a: Operand,
    /// `opr_3`.
    pub b: Operand,
}

impl Quad {
    /// Builds a quad.
    pub fn new(op: Opcode, dst: Operand, a: Operand, b: Operand) -> Quad {
        Quad { op, dst, a, b }
    }

    /// A plain assignment `dst := a`.
    pub fn assign(dst: Operand, a: Operand) -> Quad {
        Quad::new(Opcode::Assign, dst, a, Operand::None)
    }

    /// A marker statement with no operands (`enddo`, `else`, `endif`, `nop`).
    pub fn marker(op: Opcode) -> Quad {
        Quad::new(op, Operand::None, Operand::None, Operand::None)
    }

    /// The operand at `pos`.
    pub fn operand(&self, pos: OperandPos) -> &Operand {
        match pos {
            OperandPos::Dst => &self.dst,
            OperandPos::A => &self.a,
            OperandPos::B => &self.b,
        }
    }

    /// Mutable access to the operand at `pos`.
    pub fn operand_mut(&mut self, pos: OperandPos) -> &mut Operand {
        match pos {
            OperandPos::Dst => &mut self.dst,
            OperandPos::A => &mut self.a,
            OperandPos::B => &mut self.b,
        }
    }

    /// The destination *variable or array element* defined by this
    /// statement, if it defines one.
    pub fn def_operand(&self) -> Option<&Operand> {
        if self.op.defines() && !self.dst.is_none() {
            Some(&self.dst)
        } else {
            None
        }
    }

    /// The base symbol defined here (scalar, LCV, or array written into).
    pub fn def_base(&self) -> Option<Sym> {
        self.def_operand().and_then(Operand::base)
    }

    /// The operand positions *read* by this statement.
    ///
    /// For a defining statement the destination is not read — except its
    /// subscripts, which [`Quad::used_vars`] accounts for. For `if`s both
    /// compared operands (`dst` and `a` slots are *not* used for `if`s; the
    /// comparison reads `a` and `b`)… the layout is: `if a RELOP b` stores
    /// the left operand in `a` and the right in `b`.
    pub fn used_positions(&self) -> Vec<OperandPos> {
        use Opcode::*;
        match self.op {
            Assign | Neg => vec![OperandPos::A],
            Add | Sub | Mul | Div | Mod | Call(_) => vec![OperandPos::A, OperandPos::B],
            DoHead | ParDo => vec![OperandPos::A, OperandPos::B],
            IfLt | IfLe | IfGt | IfGe | IfEq | IfNe => vec![OperandPos::A, OperandPos::B],
            Write => vec![OperandPos::A],
            Read | EndDo | Else | EndIf | Nop => vec![],
        }
    }

    /// Every scalar variable read by this statement, including subscript
    /// variables of array references in *any* position (a write to `a(i)`
    /// reads `i`).
    pub fn used_vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for pos in self.used_positions() {
            match self.operand(pos) {
                Operand::Var(s) => out.push(*s),
                e @ Operand::Elem { .. } => out.extend(e.subscript_vars()),
                _ => {}
            }
        }
        // Subscripts of a written element are also read.
        if let Some(Operand::Elem { .. }) = self.def_operand() {
            out.extend(self.dst.subscript_vars());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Array bases read by this statement (element operands in used
    /// positions).
    pub fn used_arrays(&self) -> Vec<(OperandPos, Sym)> {
        let mut out = Vec::new();
        for pos in self.used_positions() {
            if let Operand::Elem { array, .. } = self.operand(pos) {
                out.push((pos, *array));
            }
        }
        out
    }

    /// True if any operand (in any position) mentions the scalar `v`.
    pub fn mentions_var(&self, v: Sym) -> bool {
        OperandPos::ALL
            .iter()
            .any(|&p| self.operand(p).mentions_var(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AffineExpr, SymbolTable};

    #[test]
    fn positions_roundtrip() {
        for pos in OperandPos::ALL {
            assert_eq!(OperandPos::from_index(pos.index()), Some(pos));
        }
        assert_eq!(OperandPos::from_index(0), None);
        assert_eq!(OperandPos::from_index(4), None);
    }

    #[test]
    fn uses_and_defs() {
        let mut t = SymbolTable::new();
        let x = t.intern("x");
        let y = t.intern("y");
        let a = t.intern("a");
        let i = t.intern("i");

        // x := y + a(i)
        let q = Quad::new(
            Opcode::Add,
            Operand::Var(x),
            Operand::Var(y),
            Operand::elem1(a, AffineExpr::var(i)),
        );
        assert_eq!(q.def_base(), Some(x));
        assert_eq!(q.used_vars(), vec![y, i]);
        assert_eq!(q.used_arrays(), vec![(OperandPos::B, a)]);

        // a(i) := x : write reads the subscript i
        let w = Quad::assign(Operand::elem1(a, AffineExpr::var(i)), Operand::Var(x));
        assert_eq!(w.def_base(), Some(a));
        assert_eq!(w.used_vars(), vec![x, i]);
    }

    #[test]
    fn markers_have_no_uses() {
        let q = Quad::marker(Opcode::EndDo);
        assert!(q.used_vars().is_empty());
        assert!(q.def_operand().is_none());
    }

    #[test]
    fn operand_mut_modifies() {
        let mut q = Quad::assign(Operand::int(0), Operand::int(1));
        *q.operand_mut(OperandPos::A) = Operand::int(9);
        assert_eq!(q.a, Operand::int(9));
    }
}
