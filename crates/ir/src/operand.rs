//! Statement operands.

use crate::{AffineExpr, Sym, Value};

/// An operand of a quad statement (`opr_1`, `opr_2` or `opr_3` in the paper).
///
/// Array references are kept whole ([`Operand::Elem`]) rather than being
/// lowered to address arithmetic, matching the paper's prototype.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Operand {
    /// No operand in this position (e.g. `opr_3` of a plain assignment).
    #[default]
    None,
    /// A constant.
    Const(Value),
    /// A scalar variable (or compiler temporary).
    Var(Sym),
    /// A high-level array element reference `array(sub_1, …, sub_k)`.
    Elem {
        /// The array symbol.
        array: Sym,
        /// One affine subscript per dimension.
        subs: Vec<AffineExpr>,
    },
}

impl Operand {
    /// Convenience integer-constant constructor.
    pub fn int(i: i64) -> Operand {
        Operand::Const(Value::Int(i))
    }

    /// Convenience real-constant constructor.
    pub fn real(r: f64) -> Operand {
        Operand::Const(Value::Real(r))
    }

    /// Convenience one-dimensional element constructor.
    pub fn elem1(array: Sym, sub: AffineExpr) -> Operand {
        Operand::Elem {
            array,
            subs: vec![sub],
        }
    }

    /// True for [`Operand::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, Operand::None)
    }

    /// True for constants.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Const(_))
    }

    /// The constant payload, if any.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Operand::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// The scalar variable, if this is a plain [`Operand::Var`].
    pub fn as_var(&self) -> Option<Sym> {
        match self {
            Operand::Var(s) => Some(*s),
            _ => None,
        }
    }

    /// The base symbol accessed by this operand: the scalar for `Var`, the
    /// array for `Elem`, `None` otherwise.
    pub fn base(&self) -> Option<Sym> {
        match self {
            Operand::Var(s) => Some(*s),
            Operand::Elem { array, .. } => Some(*array),
            _ => None,
        }
    }

    /// All variables *read* when this operand is evaluated as an rvalue:
    /// the scalar itself, or every subscript variable of an element access
    /// plus (for reads) the array base handled separately by the dependence
    /// analyzer.
    pub fn subscript_vars(&self) -> Vec<Sym> {
        match self {
            Operand::Elem { subs, .. } => {
                let mut out = Vec::new();
                for s in subs {
                    out.extend(s.vars());
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            _ => Vec::new(),
        }
    }

    /// Renames every occurrence of scalar `from` (including inside
    /// subscripts) to `to`.
    #[must_use]
    pub fn rename_var(&self, from: Sym, to: Sym) -> Operand {
        match self {
            Operand::Var(s) if *s == from => Operand::Var(to),
            Operand::Elem { array, subs } => Operand::Elem {
                array: *array,
                subs: subs.iter().map(|e| e.rename(from, to)).collect(),
            },
            other => other.clone(),
        }
    }

    /// Substitutes scalar `var` with an affine expression inside subscripts,
    /// and replaces a plain `Var(var)` rvalue when the replacement is itself
    /// representable as an operand. Used by loop unrolling ("bumping" the
    /// loop control variable) and by bounds normalization.
    #[must_use]
    pub fn substitute_affine(&self, var: Sym, replacement: &AffineExpr) -> Operand {
        match self {
            Operand::Var(s) if *s == var => {
                if let Some(v) = replacement.as_single_var() {
                    Operand::Var(v)
                } else if replacement.is_constant() {
                    Operand::int(replacement.constant())
                } else {
                    // Not expressible as a single operand; leave unchanged.
                    // Callers that need full generality lower through a temp.
                    self.clone()
                }
            }
            Operand::Elem { array, subs } => Operand::Elem {
                array: *array,
                subs: subs.iter().map(|e| e.substitute(var, replacement)).collect(),
            },
            other => other.clone(),
        }
    }

    /// True if the operand mentions `v` (as the scalar itself or inside a
    /// subscript). Array bases do **not** count as mentioning.
    pub fn mentions_var(&self, v: Sym) -> bool {
        match self {
            Operand::Var(s) => *s == v,
            Operand::Elem { subs, .. } => subs.iter().any(|e| e.mentions(v)),
            _ => false,
        }
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Const(v)
    }
}

impl From<Sym> for Operand {
    fn from(s: Sym) -> Self {
        Operand::Var(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolTable;

    #[test]
    fn accessors() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let i = t.intern("i");
        let e = Operand::elem1(a, AffineExpr::var(i));
        assert_eq!(e.base(), Some(a));
        assert_eq!(e.subscript_vars(), vec![i]);
        assert!(Operand::int(3).is_const());
        assert!(Operand::None.is_none());
        assert_eq!(Operand::Var(i).as_var(), Some(i));
    }

    #[test]
    fn rename_inside_subscript() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let i = t.intern("i");
        let j = t.intern("j");
        let e = Operand::elem1(a, AffineExpr::var(i).plus_const(1));
        let r = e.rename_var(i, j);
        assert_eq!(r, Operand::elem1(a, AffineExpr::var(j).plus_const(1)));
        assert!(!r.mentions_var(i));
        assert!(r.mentions_var(j));
    }

    #[test]
    fn substitute_bumps_subscript() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let i = t.intern("i");
        // a(i) with i := i + 1 -> a(i+1)
        let e = Operand::elem1(a, AffineExpr::var(i));
        let bumped = e.substitute_affine(i, &AffineExpr::var(i).plus_const(1));
        assert_eq!(bumped, Operand::elem1(a, AffineExpr::var(i).plus_const(1)));
        // scalar i with i := 4 -> constant 4
        let s = Operand::Var(i).substitute_affine(i, &AffineExpr::constant_expr(4));
        assert_eq!(s, Operand::int(4));
    }
}
