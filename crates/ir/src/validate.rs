//! Structural validation of programs.

use crate::{Opcode, Operand, OperandPos, Program, StmtId};
use std::fmt;

/// A structural defect found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// `end do` with no open loop.
    UnmatchedEndDo(StmtId),
    /// `else`/`end if` with no open conditional.
    UnmatchedEndIf(StmtId),
    /// A loop or conditional left open at the end of the program.
    Unclosed(StmtId),
    /// `do`/`end do` and `if`/`end if` regions interleave improperly.
    Interleaved(StmtId),
    /// A defining statement with no destination, or a non-defining statement
    /// with one.
    BadDestination(StmtId),
    /// An operand refers to an undeclared variable.
    UndeclaredVar(StmtId, String),
    /// An array is used with the wrong number of subscripts, or a scalar is
    /// subscripted.
    BadSubscript(StmtId, String),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnmatchedEndDo(s) => write!(f, "unmatched end do at {s}"),
            ValidateError::UnmatchedEndIf(s) => write!(f, "unmatched else/end if at {s}"),
            ValidateError::Unclosed(s) => write!(f, "unclosed region opened at {s}"),
            ValidateError::Interleaved(s) => write!(f, "improperly interleaved regions at {s}"),
            ValidateError::BadDestination(s) => write!(f, "bad destination at {s}"),
            ValidateError::UndeclaredVar(s, v) => write!(f, "undeclared variable `{v}` at {s}"),
            ValidateError::BadSubscript(s, v) => write!(f, "bad subscript usage of `{v}` at {s}"),
        }
    }
}

impl std::error::Error for ValidateError {}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Region {
    Loop(StmtId),
    If(StmtId),
}

/// Checks a program's structural invariants: balanced `do`/`end do` and
/// `if`/`else`/`end if` (properly nested with each other), sane
/// destinations, declared variables, and subscript counts matching
/// declarations.
///
/// # Errors
///
/// Returns the first defect found in program order.
pub fn validate(prog: &Program) -> Result<(), ValidateError> {
    let mut stack: Vec<Region> = Vec::new();
    for id in prog.iter() {
        let quad = prog.quad(id);
        match quad.op {
            Opcode::DoHead | Opcode::ParDo => {
                if quad.dst.as_var().is_none() {
                    return Err(ValidateError::BadDestination(id));
                }
                stack.push(Region::Loop(id));
            }
            Opcode::EndDo => match stack.pop() {
                Some(Region::Loop(_)) => {}
                Some(Region::If(_)) => return Err(ValidateError::Interleaved(id)),
                None => return Err(ValidateError::UnmatchedEndDo(id)),
            },
            op if op.is_if() => stack.push(Region::If(id)),
            Opcode::Else => match stack.last() {
                Some(Region::If(_)) => {}
                _ => return Err(ValidateError::UnmatchedEndIf(id)),
            },
            Opcode::EndIf => match stack.pop() {
                Some(Region::If(_)) => {}
                Some(Region::Loop(_)) => return Err(ValidateError::Interleaved(id)),
                None => return Err(ValidateError::UnmatchedEndIf(id)),
            },
            _ => {
                if quad.op.defines() && quad.dst.is_none() {
                    return Err(ValidateError::BadDestination(id));
                }
            }
        }
        check_operands(prog, id)?;
    }
    if let Some(r) = stack.first() {
        let at = match r {
            Region::Loop(s) | Region::If(s) => *s,
        };
        return Err(ValidateError::Unclosed(at));
    }
    Ok(())
}

/// Per-statement validity: destination shape and operand references,
/// without the whole-program marker-nesting scan.
///
/// A batch of non-structural journaled edits cannot change nesting (no
/// markers were added, removed or relocated), so incremental dependence
/// maintenance revalidates only the statements the batch touched —
/// `O(|delta|)` instead of `O(program)`. Running this on every statement
/// of a program whose nesting is known-good is equivalent to [`validate`].
///
/// # Errors
///
/// Returns the statement's first defect.
pub fn validate_stmt(prog: &Program, id: StmtId) -> Result<(), ValidateError> {
    let quad = prog.quad(id);
    match quad.op {
        Opcode::DoHead | Opcode::ParDo => {
            if quad.dst.as_var().is_none() {
                return Err(ValidateError::BadDestination(id));
            }
        }
        Opcode::EndDo | Opcode::Else | Opcode::EndIf => {}
        op if op.is_if() => {}
        _ => {
            if quad.op.defines() && quad.dst.is_none() {
                return Err(ValidateError::BadDestination(id));
            }
        }
    }
    check_operands(prog, id)
}

fn check_operands(prog: &Program, id: StmtId) -> Result<(), ValidateError> {
    for pos in OperandPos::ALL {
        match prog.quad(id).operand(pos) {
            Operand::Var(s) => {
                let info = prog
                    .var_info(*s)
                    .ok_or_else(|| ValidateError::UndeclaredVar(id, prog.syms().name(*s).into()))?;
                if let crate::VarKind::Array(_) = info.kind {
                    // A bare array name as an operand is not allowed.
                    return Err(ValidateError::BadSubscript(
                        id,
                        prog.syms().name(*s).into(),
                    ));
                }
            }
            Operand::Elem { array, subs } => {
                let info = prog.var_info(*array).ok_or_else(|| {
                    ValidateError::UndeclaredVar(id, prog.syms().name(*array).into())
                })?;
                match &info.kind {
                    crate::VarKind::Array(dims) if dims.len() == subs.len() => {}
                    _ => {
                        return Err(ValidateError::BadSubscript(
                            id,
                            prog.syms().name(*array).into(),
                        ))
                    }
                }
                for e in subs {
                    for v in e.vars() {
                        if prog.var_info(v).is_none() {
                            return Err(ValidateError::UndeclaredVar(
                                id,
                                prog.syms().name(v).into(),
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AffineExpr, ProgramBuilder, Quad};

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("ok");
        let i = b.scalar_int("i");
        let a = b.array_real("a", &[10]);
        let l = b.do_head(i, Operand::int(1), Operand::int(10));
        b.assign(Operand::elem1(a, AffineExpr::var(i)), Operand::real(0.0));
        b.end_do(l);
        assert_eq!(validate(&b.finish()), Ok(()));
    }

    #[test]
    fn interleaved_regions_rejected() {
        // do ... if ... end do  — illegal
        let mut p = Program::new("bad");
        let i = p.declare("i", crate::VarType::Int, crate::VarKind::Scalar);
        p.push(Quad::new(
            Opcode::DoHead,
            Operand::Var(i),
            Operand::int(1),
            Operand::int(2),
        ));
        p.push(Quad::new(
            Opcode::IfGt,
            Operand::None,
            Operand::Var(i),
            Operand::int(0),
        ));
        p.push(Quad::marker(Opcode::EndDo));
        assert!(matches!(validate(&p), Err(ValidateError::Interleaved(_))));
    }

    #[test]
    fn bare_array_operand_rejected() {
        let mut p = Program::new("bad");
        let x = p.declare("x", crate::VarType::Int, crate::VarKind::Scalar);
        let a = p.declare("a", crate::VarType::Real, crate::VarKind::Array(vec![5]));
        p.push(Quad::assign(Operand::Var(x), Operand::Var(a)));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::BadSubscript(_, _))
        ));
    }

    #[test]
    fn wrong_subscript_count_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let i = b.scalar_int("i");
        let a = b.array_real("a", &[10, 10]);
        let mut p = b.finish();
        p.push(Quad::assign(
            Operand::elem1(a, AffineExpr::var(i)), // 1 subscript for 2-D array
            Operand::real(0.0),
        ));
        assert!(matches!(
            validate(&p),
            Err(ValidateError::BadSubscript(_, _))
        ));
    }

    #[test]
    fn unclosed_loop_detected() {
        let mut p = Program::new("bad");
        let i = p.declare("i", crate::VarType::Int, crate::VarKind::Scalar);
        p.push(Quad::new(
            Opcode::DoHead,
            Operand::Var(i),
            Operand::int(1),
            Operand::int(2),
        ));
        assert!(matches!(validate(&p), Err(ValidateError::Unclosed(_))));
    }
}
