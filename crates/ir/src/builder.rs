//! Convenience builder for constructing well-formed programs in tests and
//! examples (the front end builds programs the same way from source text).

use crate::{Opcode, Operand, Program, Quad, StmtId, Sym, VarKind, VarType};

/// Token returned by [`ProgramBuilder::do_head`]; closing the loop with
/// [`ProgramBuilder::end_do`] checks that loops are closed innermost-first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopToken {
    head: StmtId,
}

/// Token returned by [`ProgramBuilder::if_head`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IfToken {
    head: StmtId,
}

/// Incremental [`Program`] constructor with structural checking.
///
/// ```
/// use gospel_ir::{ProgramBuilder, Operand};
/// let mut b = ProgramBuilder::new("sum");
/// let i = b.scalar_int("i");
/// let s = b.scalar_int("s");
/// b.assign(Operand::Var(s), Operand::int(0));
/// let l = b.do_head(i, Operand::int(1), Operand::int(10));
/// b.add(Operand::Var(s), Operand::Var(s), Operand::Var(i));
/// b.end_do(l);
/// let prog = b.finish();
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
    open_loops: Vec<LoopToken>,
    open_ifs: Vec<IfToken>,
}

impl ProgramBuilder {
    /// Starts building a program called `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            prog: Program::new(name),
            open_loops: Vec::new(),
            open_ifs: Vec::new(),
        }
    }

    /// Declares an integer scalar.
    pub fn scalar_int(&mut self, name: &str) -> Sym {
        self.prog.declare(name, VarType::Int, VarKind::Scalar)
    }

    /// Declares a real scalar.
    pub fn scalar_real(&mut self, name: &str) -> Sym {
        self.prog.declare(name, VarType::Real, VarKind::Scalar)
    }

    /// Declares an integer array with the given extents.
    pub fn array_int(&mut self, name: &str, dims: &[i64]) -> Sym {
        self.prog
            .declare(name, VarType::Int, VarKind::Array(dims.to_vec()))
    }

    /// Declares a real array with the given extents.
    pub fn array_real(&mut self, name: &str, dims: &[i64]) -> Sym {
        self.prog
            .declare(name, VarType::Real, VarKind::Array(dims.to_vec()))
    }

    /// Appends an arbitrary quad.
    pub fn stmt(&mut self, op: Opcode, dst: Operand, a: Operand, b: Operand) -> StmtId {
        self.prog.push(Quad::new(op, dst, a, b))
    }

    /// Appends `dst := a`.
    pub fn assign(&mut self, dst: Operand, a: Operand) -> StmtId {
        self.stmt(Opcode::Assign, dst, a, Operand::None)
    }

    /// Appends `dst := a + b`.
    pub fn add(&mut self, dst: Operand, a: Operand, b: Operand) -> StmtId {
        self.stmt(Opcode::Add, dst, a, b)
    }

    /// Appends `dst := a - b`.
    pub fn sub(&mut self, dst: Operand, a: Operand, b: Operand) -> StmtId {
        self.stmt(Opcode::Sub, dst, a, b)
    }

    /// Appends `dst := a * b`.
    pub fn mul(&mut self, dst: Operand, a: Operand, b: Operand) -> StmtId {
        self.stmt(Opcode::Mul, dst, a, b)
    }

    /// Appends `dst := a / b`.
    pub fn div(&mut self, dst: Operand, a: Operand, b: Operand) -> StmtId {
        self.stmt(Opcode::Div, dst, a, b)
    }

    /// Appends `read dst`.
    pub fn read(&mut self, dst: Operand) -> StmtId {
        self.stmt(Opcode::Read, dst, Operand::None, Operand::None)
    }

    /// Appends `write a`.
    pub fn write(&mut self, a: Operand) -> StmtId {
        self.stmt(Opcode::Write, Operand::None, a, Operand::None)
    }

    /// Appends an intrinsic call `dst := f(a)`. The function name is
    /// interned under a reserved `@fn:` spelling so it cannot collide with
    /// program variables.
    pub fn call1(&mut self, dst: Operand, f: &str, a: Operand) -> StmtId {
        let fsym = self
            .prog
            .declare(&format!("@fn:{f}"), VarType::Real, VarKind::Scalar);
        self.stmt(Opcode::Call(fsym), dst, a, Operand::None)
    }

    /// Opens a sequential loop `do lcv := init, fin`.
    pub fn do_head(&mut self, lcv: Sym, init: Operand, fin: Operand) -> LoopToken {
        let head = self.stmt(Opcode::DoHead, Operand::Var(lcv), init, fin);
        let tok = LoopToken { head };
        self.open_loops.push(tok);
        tok
    }

    /// Closes the innermost open loop.
    ///
    /// # Panics
    ///
    /// Panics if `tok` is not the innermost open loop.
    pub fn end_do(&mut self, tok: LoopToken) -> StmtId {
        let top = self.open_loops.pop().expect("no open loop");
        assert_eq!(top, tok, "loops must be closed innermost-first");
        self.prog.push(Quad::marker(Opcode::EndDo))
    }

    /// Opens a structured conditional `if a RELOP b then`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not one of the `If*` opcodes.
    pub fn if_head(&mut self, op: Opcode, a: Operand, b: Operand) -> IfToken {
        assert!(op.is_if(), "if_head requires an If* opcode, got {op}");
        let head = self.stmt(op, Operand::None, a, b);
        let tok = IfToken { head };
        self.open_ifs.push(tok);
        tok
    }

    /// Appends the `else` marker of the innermost open conditional.
    pub fn else_mark(&mut self, tok: IfToken) -> StmtId {
        assert_eq!(self.open_ifs.last(), Some(&tok), "else outside its if");
        self.prog.push(Quad::marker(Opcode::Else))
    }

    /// Closes the innermost open conditional.
    pub fn end_if(&mut self, tok: IfToken) -> StmtId {
        let top = self.open_ifs.pop().expect("no open if");
        assert_eq!(top, tok, "ifs must be closed innermost-first");
        self.prog.push(Quad::marker(Opcode::EndIf))
    }

    /// Read-only access to the program built so far.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Mutable access to the program built so far (for callers that need
    /// to patch a just-emitted statement, e.g. rewriting a `do` header to
    /// `pardo`). Structural edits through this handle are the caller's
    /// responsibility; the builder's own balance checks still apply at
    /// [`ProgramBuilder::finish`].
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.prog
    }

    /// Finishes building.
    ///
    /// # Panics
    ///
    /// Panics if any loop or conditional is still open.
    pub fn finish(self) -> Program {
        assert!(self.open_loops.is_empty(), "unclosed loop at finish");
        assert!(self.open_ifs.is_empty(), "unclosed if at finish");
        self.prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_structured_program() {
        let mut b = ProgramBuilder::new("p");
        let i = b.scalar_int("i");
        let x = b.scalar_real("x");
        let l = b.do_head(i, Operand::int(1), Operand::int(3));
        let t = b.if_head(Opcode::IfGt, Operand::Var(i), Operand::int(1));
        b.assign(Operand::Var(x), Operand::real(1.0));
        b.else_mark(t);
        b.assign(Operand::Var(x), Operand::real(2.0));
        b.end_if(t);
        b.end_do(l);
        let p = b.finish();
        assert_eq!(p.len(), 7);
        crate::validate(&p).unwrap();
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn unclosed_loop_panics() {
        let mut b = ProgramBuilder::new("p");
        let i = b.scalar_int("i");
        b.do_head(i, Operand::int(1), Operand::int(3));
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "innermost-first")]
    fn wrong_close_order_panics() {
        let mut b = ProgramBuilder::new("p");
        let i = b.scalar_int("i");
        let j = b.scalar_int("j");
        let l1 = b.do_head(i, Operand::int(1), Operand::int(3));
        let _l2 = b.do_head(j, Operand::int(1), Operand::int(3));
        b.end_do(l1);
    }
}
