//! The program container: a statement arena threaded on program order.

use crate::{Opcode, Operand, OperandPos, Quad, Sym, SymbolTable};
use std::collections::HashMap;

/// A stable handle to a statement inside a [`Program`].
///
/// Ids survive every transformation primitive except `delete` of the
/// statement itself; copies get fresh ids. This mirrors the paper's
/// generated code, which names statements by quad number and navigates with
/// `.NXT`/`.PREV`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub(crate) u32);

impl StmtId {
    /// Raw index (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from the number shown by its `Display` form
    /// (`s7` → `from_raw(7)`). Intended for tools that accept ids typed
    /// back by a user; an id that does not name a live statement simply
    /// matches nothing.
    pub fn from_raw(n: u32) -> StmtId {
        StmtId(n)
    }
}

impl std::fmt::Debug for StmtId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::fmt::Display for StmtId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Scalar element type of a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarType {
    /// Integer.
    Int,
    /// Real (floating point).
    Real,
}

/// Shape of a variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A scalar.
    Scalar,
    /// An array with the given per-dimension extents (1-based, inclusive).
    Array(Vec<i64>),
}

/// Declaration record for a program variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarInfo {
    /// The interned name.
    pub sym: Sym,
    /// Element type.
    pub ty: VarType,
    /// Scalar or array shape.
    pub kind: VarKind,
    /// True for compiler-generated temporaries.
    pub is_temp: bool,
}

#[derive(Clone, Debug)]
struct Slot {
    quad: Quad,
    prev: Option<StmtId>,
    next: Option<StmtId>,
    alive: bool,
}

/// A whole program: declarations plus an ordered list of [`Quad`]s.
///
/// Editing goes through the five GOSpeL transformation primitives
/// ([`delete`](Program::delete), [`copy_after`](Program::copy_after),
/// [`move_after`](Program::move_after), [`insert_after`](Program::insert_after)
/// — the paper's `add` — and [`modify`](Program::modify)).
///
/// # Panics
///
/// All statement-id arguments must refer to live statements of this program;
/// methods panic otherwise, since a stale id is a logic error in the caller.
#[derive(Clone, Debug)]
pub struct Program {
    name: String,
    slots: Vec<Slot>,
    head: Option<StmtId>,
    tail: Option<StmtId>,
    syms: SymbolTable,
    vars: HashMap<Sym, VarInfo>,
    len: usize,
    temp_counter: u32,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            slots: Vec::new(),
            head: None,
            tail: None,
            syms: SymbolTable::new(),
            vars: HashMap::new(),
            len: 0,
            temp_counter: 0,
        }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symbol table.
    pub fn syms(&self) -> &SymbolTable {
        &self.syms
    }

    /// Number of live statements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no statements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Upper bound on `StmtId::index` values ever allocated (for dense side
    /// tables).
    pub fn id_bound(&self) -> usize {
        self.slots.len()
    }

    // ---- declarations -----------------------------------------------------

    /// Declares a variable, interning its name. Re-declaring an existing
    /// name returns the existing symbol and leaves its info unchanged.
    pub fn declare(&mut self, name: &str, ty: VarType, kind: VarKind) -> Sym {
        let sym = self.syms.intern(name);
        self.vars.entry(sym).or_insert(VarInfo {
            sym,
            ty,
            kind,
            is_temp: false,
        });
        sym
    }

    /// Declaration info for `sym`, if declared.
    pub fn var_info(&self, sym: Sym) -> Option<&VarInfo> {
        self.vars.get(&sym)
    }

    /// True if `sym` is declared as an array.
    pub fn is_array(&self, sym: Sym) -> bool {
        matches!(
            self.vars.get(&sym),
            Some(VarInfo {
                kind: VarKind::Array(_),
                ..
            })
        )
    }

    /// Allocates a fresh compiler temporary of type `ty`.
    pub fn new_temp(&mut self, ty: VarType) -> Sym {
        loop {
            self.temp_counter += 1;
            let name = format!("@t{}", self.temp_counter);
            if self.syms.lookup(&name).is_none() {
                let sym = self.syms.intern(&name);
                self.vars.insert(
                    sym,
                    VarInfo {
                        sym,
                        ty,
                        kind: VarKind::Scalar,
                        is_temp: true,
                    },
                );
                return sym;
            }
        }
    }

    /// All declared variables, in a deterministic (interning) order.
    pub fn variables(&self) -> impl Iterator<Item = &VarInfo> + '_ {
        self.syms.iter().filter_map(move |s| self.vars.get(&s))
    }

    // ---- access -----------------------------------------------------------

    fn slot(&self, id: StmtId) -> &Slot {
        let s = &self.slots[id.index()];
        assert!(s.alive, "use of deleted statement {id}");
        s
    }

    fn slot_mut(&mut self, id: StmtId) -> &mut Slot {
        let s = &mut self.slots[id.index()];
        assert!(s.alive, "use of deleted statement {id}");
        s
    }

    /// The quad at `id`.
    pub fn quad(&self, id: StmtId) -> &Quad {
        &self.slot(id).quad
    }

    /// Whether `id` refers to a live statement.
    pub fn is_live(&self, id: StmtId) -> bool {
        self.slots
            .get(id.index())
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// First statement in program order.
    pub fn first(&self) -> Option<StmtId> {
        self.head
    }

    /// Last statement in program order.
    pub fn last(&self) -> Option<StmtId> {
        self.tail
    }

    /// Successor in program order (the paper's `.NXT`).
    pub fn next(&self, id: StmtId) -> Option<StmtId> {
        self.slot(id).next
    }

    /// Predecessor in program order (the paper's `.PREV`).
    pub fn prev(&self, id: StmtId) -> Option<StmtId> {
        self.slot(id).prev
    }

    /// Iterates over statement ids in program order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            prog: self,
            cur: self.head,
        }
    }

    /// Iterates over ids strictly between `from` and `to` (both exclusive),
    /// in program order. Used for loop bodies (`head` … `end`).
    pub fn iter_between(&self, from: StmtId, to: StmtId) -> impl Iterator<Item = StmtId> + '_ {
        let mut cur = self.next(from);
        std::iter::from_fn(move || {
            let id = cur?;
            if id == to {
                return None;
            }
            cur = self.next(id);
            Some(id)
        })
    }

    /// Dense order index: maps each live statement to its 0-based position.
    pub fn order_index(&self) -> HashMap<StmtId, usize> {
        self.iter().enumerate().map(|(i, id)| (id, i)).collect()
    }

    // ---- the five transformation primitives --------------------------------

    /// GOSpeL `add`: inserts `quad` after `after` (or at the very front when
    /// `after` is `None`) and returns its id.
    pub fn insert_after(&mut self, after: Option<StmtId>, quad: Quad) -> StmtId {
        let id = StmtId(u32::try_from(self.slots.len()).expect("program too large"));
        self.slots.push(Slot {
            quad,
            prev: None,
            next: None,
            alive: true,
        });
        self.len += 1;
        self.link_after(id, after);
        id
    }

    /// Appends a statement at the end.
    pub fn push(&mut self, quad: Quad) -> StmtId {
        self.insert_after(self.tail, quad)
    }

    /// Inserts `quad` immediately before `before`.
    pub fn insert_before(&mut self, before: StmtId, quad: Quad) -> StmtId {
        let prev = self.prev(before);
        self.insert_after(prev, quad)
    }

    /// GOSpeL `delete`: removes the statement. Its id becomes invalid.
    pub fn delete(&mut self, id: StmtId) {
        self.unlink(id);
        let s = &mut self.slots[id.index()];
        s.alive = false;
        self.len -= 1;
    }

    /// Undoes a [`delete`](Program::delete): relinks the dead slot (whose
    /// quad is still intact) following `after`. Only meaningful from an
    /// [`EditDelta`](crate::EditDelta) undo replay, where `after` is the
    /// recorded pre-delete predecessor.
    pub(crate) fn restore(&mut self, id: StmtId, after: Option<StmtId>) {
        let s = &mut self.slots[id.index()];
        assert!(!s.alive, "restore of a live statement {id}");
        s.alive = true;
        self.len += 1;
        self.link_after(id, after);
    }

    /// GOSpeL `move`: unlinks `id` and re-inserts it following `after`
    /// (or at the front when `after` is `None`).
    ///
    /// # Panics
    ///
    /// Panics if `after == Some(id)`.
    pub fn move_after(&mut self, id: StmtId, after: Option<StmtId>) {
        assert_ne!(after, Some(id), "cannot move a statement after itself");
        self.unlink(id);
        self.link_after(id, after);
    }

    /// GOSpeL `copy`: duplicates `id`, placing the copy after `after`, and
    /// returns the copy's id.
    pub fn copy_after(&mut self, id: StmtId, after: Option<StmtId>) -> StmtId {
        let quad = self.quad(id).clone();
        self.insert_after(after, quad)
    }

    /// GOSpeL `modify`: replaces the operand at `pos`.
    pub fn modify(&mut self, id: StmtId, pos: OperandPos, operand: Operand) {
        *self.slot_mut(id).quad.operand_mut(pos) = operand;
    }

    /// Replaces the whole quad (used by hand-coded optimizers; a GOSpeL
    /// `modify` of every slot).
    pub fn replace(&mut self, id: StmtId, quad: Quad) {
        self.slot_mut(id).quad = quad;
    }

    // ---- linking helpers ----------------------------------------------------

    fn link_after(&mut self, id: StmtId, after: Option<StmtId>) {
        match after {
            None => {
                let old_head = self.head;
                self.slots[id.index()].prev = None;
                self.slots[id.index()].next = old_head;
                if let Some(h) = old_head {
                    self.slots[h.index()].prev = Some(id);
                } else {
                    self.tail = Some(id);
                }
                self.head = Some(id);
            }
            Some(a) => {
                assert!(self.slots[a.index()].alive, "insert after dead statement");
                let nxt = self.slots[a.index()].next;
                self.slots[id.index()].prev = Some(a);
                self.slots[id.index()].next = nxt;
                self.slots[a.index()].next = Some(id);
                match nxt {
                    Some(n) => self.slots[n.index()].prev = Some(id),
                    None => self.tail = Some(id),
                }
            }
        }
    }

    fn unlink(&mut self, id: StmtId) {
        let (prev, next) = {
            let s = self.slot(id);
            (s.prev, s.next)
        };
        match prev {
            Some(p) => self.slots[p.index()].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n.index()].prev = prev,
            None => self.tail = prev,
        }
        self.slots[id.index()].prev = None;
        self.slots[id.index()].next = None;
    }

    // ---- structural comparison ---------------------------------------------

    /// Compares two programs for structural equality: same statement
    /// sequence with operands matched by *name* (so independently built
    /// programs with different interning orders still compare equal).
    pub fn structurally_eq(&self, other: &Program) -> bool {
        if self.len != other.len {
            return false;
        }
        self.iter().zip(other.iter()).all(|(a, b)| {
            quads_eq_by_name(self, self.quad(a), other, other.quad(b))
        })
    }
}

fn operand_eq_by_name(pa: &Program, a: &Operand, pb: &Program, b: &Operand) -> bool {
    use crate::AffineExpr;
    fn affine_eq(pa: &Program, a: &AffineExpr, pb: &Program, b: &AffineExpr) -> bool {
        if a.constant() != b.constant() {
            return false;
        }
        let av: Vec<_> = a.vars().collect();
        let bv: Vec<_> = b.vars().collect();
        if av.len() != bv.len() {
            return false;
        }
        // Compare term-by-term after sorting by name.
        let mut an: Vec<_> = av
            .iter()
            .map(|&v| (pa.syms().name(v).to_owned(), a.coeff(v)))
            .collect();
        let mut bn: Vec<_> = bv
            .iter()
            .map(|&v| (pb.syms().name(v).to_owned(), b.coeff(v)))
            .collect();
        an.sort();
        bn.sort();
        an == bn
    }
    match (a, b) {
        (Operand::None, Operand::None) => true,
        (Operand::Const(x), Operand::Const(y)) => x == y,
        (Operand::Var(x), Operand::Var(y)) => pa.syms().name(*x) == pb.syms().name(*y),
        (
            Operand::Elem { array: x, subs: xs },
            Operand::Elem { array: y, subs: ys },
        ) => {
            pa.syms().name(*x) == pb.syms().name(*y)
                && xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|(ea, eb)| affine_eq(pa, ea, pb, eb))
        }
        _ => false,
    }
}

fn quads_eq_by_name(pa: &Program, a: &Quad, pb: &Program, b: &Quad) -> bool {
    let ops_eq = match (a.op, b.op) {
        (Opcode::Call(f), Opcode::Call(g)) => pa.syms().name(f) == pb.syms().name(g),
        (x, y) => x == y,
    };
    ops_eq
        && OperandPos::ALL
            .iter()
            .all(|&p| operand_eq_by_name(pa, a.operand(p), pb, b.operand(p)))
}

/// Program-order statement iterator. See [`Program::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    prog: &'a Program,
    cur: Option<StmtId>,
}

impl Iterator for Iter<'_> {
    type Item = StmtId;

    fn next(&mut self) -> Option<StmtId> {
        let id = self.cur?;
        self.cur = self.prog.slot(id).next;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog3() -> (Program, Vec<StmtId>) {
        let mut p = Program::new("t");
        let x = p.declare("x", VarType::Int, VarKind::Scalar);
        let ids = vec![
            p.push(Quad::assign(Operand::Var(x), Operand::int(1))),
            p.push(Quad::assign(Operand::Var(x), Operand::int(2))),
            p.push(Quad::assign(Operand::Var(x), Operand::int(3))),
        ];
        (p, ids)
    }

    #[test]
    fn push_orders_statements() {
        let (p, ids) = prog3();
        assert_eq!(p.iter().collect::<Vec<_>>(), ids);
        assert_eq!(p.first(), Some(ids[0]));
        assert_eq!(p.last(), Some(ids[2]));
        assert_eq!(p.next(ids[0]), Some(ids[1]));
        assert_eq!(p.prev(ids[2]), Some(ids[1]));
        assert_eq!(p.prev(ids[0]), None);
    }

    #[test]
    fn delete_relinks() {
        let (mut p, ids) = prog3();
        p.delete(ids[1]);
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![ids[0], ids[2]]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_live(ids[1]));
        assert_eq!(p.next(ids[0]), Some(ids[2]));
    }

    #[test]
    fn move_to_front_and_middle() {
        let (mut p, ids) = prog3();
        p.move_after(ids[2], None);
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![ids[2], ids[0], ids[1]]);
        p.move_after(ids[2], Some(ids[1]));
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![ids[0], ids[1], ids[2]]);
        assert_eq!(p.last(), Some(ids[2]));
    }

    #[test]
    fn copy_duplicates_content() {
        let (mut p, ids) = prog3();
        let c = p.copy_after(ids[0], Some(ids[2]));
        assert_eq!(p.quad(c), p.quad(ids[0]));
        assert_eq!(p.len(), 4);
        assert_eq!(p.last(), Some(c));
    }

    #[test]
    fn modify_changes_operand() {
        let (mut p, ids) = prog3();
        p.modify(ids[0], OperandPos::A, Operand::int(99));
        assert_eq!(p.quad(ids[0]).a, Operand::int(99));
    }

    #[test]
    fn iter_between_is_exclusive() {
        let (p, ids) = prog3();
        let mid: Vec<_> = p.iter_between(ids[0], ids[2]).collect();
        assert_eq!(mid, vec![ids[1]]);
        let none: Vec<_> = p.iter_between(ids[0], ids[1]).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn temps_are_fresh_and_flagged() {
        let mut p = Program::new("t");
        let t1 = p.new_temp(VarType::Real);
        let t2 = p.new_temp(VarType::Real);
        assert_ne!(t1, t2);
        assert!(p.var_info(t1).unwrap().is_temp);
    }

    #[test]
    fn structural_equality_by_name() {
        let mk = |swap: bool| {
            let mut p = Program::new("t");
            // intern in different orders
            let (x, y);
            if swap {
                y = p.declare("y", VarType::Int, VarKind::Scalar);
                x = p.declare("x", VarType::Int, VarKind::Scalar);
            } else {
                x = p.declare("x", VarType::Int, VarKind::Scalar);
                y = p.declare("y", VarType::Int, VarKind::Scalar);
            }
            p.push(Quad::assign(Operand::Var(x), Operand::Var(y)));
            p
        };
        assert!(mk(false).structurally_eq(&mk(true)));
        let mut other = mk(false);
        let first = other.first().unwrap();
        other.modify(first, OperandPos::A, Operand::int(3));
        assert!(!mk(false).structurally_eq(&other));
    }

    #[test]
    #[should_panic(expected = "deleted statement")]
    fn stale_id_panics() {
        let (mut p, ids) = prog3();
        p.delete(ids[1]);
        let _ = p.quad(ids[1]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// A random sequence of edit operations keeps the program-order list
    /// self-consistent: `len` matches the iterator, forward order is the
    /// reverse of backward order, and next/prev are inverses.
    #[derive(Clone, Debug)]
    enum Edit {
        Push(i64),
        InsertFront(i64),
        InsertAfter(usize, i64),
        Delete(usize),
        MoveAfter(usize, usize),
        CopyAfter(usize, usize),
    }

    fn edit_strategy() -> impl Strategy<Value = Edit> {
        prop_oneof![
            any::<i64>().prop_map(Edit::Push),
            any::<i64>().prop_map(Edit::InsertFront),
            (any::<usize>(), any::<i64>()).prop_map(|(i, v)| Edit::InsertAfter(i, v)),
            any::<usize>().prop_map(Edit::Delete),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Edit::MoveAfter(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Edit::CopyAfter(a, b)),
        ]
    }

    fn nth_live(p: &Program, i: usize) -> Option<StmtId> {
        let n = p.len();
        if n == 0 {
            None
        } else {
            p.iter().nth(i % n)
        }
    }

    proptest! {
        #[test]
        fn edit_sequences_preserve_list_invariants(
            edits in proptest::collection::vec(edit_strategy(), 1..40),
        ) {
            let mut p = Program::new("prop");
            let x = p.declare("x", VarType::Int, VarKind::Scalar);
            let mk = |v: i64| Quad::assign(Operand::Var(x), Operand::int(v));

            for e in edits {
                match e {
                    Edit::Push(v) => {
                        p.push(mk(v));
                    }
                    Edit::InsertFront(v) => {
                        p.insert_after(None, mk(v));
                    }
                    Edit::InsertAfter(i, v) => {
                        if let Some(after) = nth_live(&p, i) {
                            p.insert_after(Some(after), mk(v));
                        }
                    }
                    Edit::Delete(i) => {
                        if let Some(s) = nth_live(&p, i) {
                            p.delete(s);
                        }
                    }
                    Edit::MoveAfter(a, b) => {
                        if let (Some(sa), Some(sb)) = (nth_live(&p, a), nth_live(&p, b)) {
                            if sa != sb {
                                p.move_after(sa, Some(sb));
                            }
                        }
                    }
                    Edit::CopyAfter(a, b) => {
                        if let (Some(sa), Some(sb)) = (nth_live(&p, a), nth_live(&p, b)) {
                            p.copy_after(sa, Some(sb));
                        }
                    }
                }

                // Invariants after every step:
                let forward: Vec<StmtId> = p.iter().collect();
                prop_assert_eq!(forward.len(), p.len());
                prop_assert_eq!(forward.first().copied(), p.first());
                prop_assert_eq!(forward.last().copied(), p.last());
                // next/prev are mutual inverses along the whole list
                for w in forward.windows(2) {
                    prop_assert_eq!(p.next(w[0]), Some(w[1]));
                    prop_assert_eq!(p.prev(w[1]), Some(w[0]));
                }
                if let Some(&h) = forward.first() {
                    prop_assert_eq!(p.prev(h), None);
                }
                if let Some(&t) = forward.last() {
                    prop_assert_eq!(p.next(t), None);
                }
                // ids are unique
                let mut sorted = forward.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), forward.len());
            }
        }
    }
}
