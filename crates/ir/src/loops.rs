//! Loop structure recovery: the GOSpeL loop attributes (`HEAD`, `END`,
//! `BODY`, `LCV`, `INIT`, `FINAL`) and the loop-pair classifications
//! (`Nested Loops`, `Tight Loops`, `Adjacent Loops`).

use crate::{Opcode, Operand, Program, StmtId, Sym};
use std::collections::HashMap;
use std::fmt;

/// Handle to a loop inside a [`LoopTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(u32);

impl LoopId {
    /// Raw index into the owning table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Everything GOSpeL can ask about one loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// This loop's id.
    pub id: LoopId,
    /// The `do` header statement (`.HEAD`).
    pub head: StmtId,
    /// The `end do` statement (`.END`).
    pub end: StmtId,
    /// The loop control variable (`.LCV`).
    pub lcv: Sym,
    /// Initial value (`.INIT`).
    pub init: Operand,
    /// Final value (`.FINAL`).
    pub fin: Operand,
    /// 0-based nesting depth (0 = outermost).
    pub depth: usize,
    /// Directly enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops, in program order.
    pub children: Vec<LoopId>,
    /// True if the header is a `pardo` (produced by the PAR optimization).
    pub is_parallel: bool,
}

/// Error recovering loop structure from a malformed program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoopStructureError {
    /// An `end do` with no open loop.
    UnmatchedEnd(StmtId),
    /// A loop header whose loop is never closed.
    UnclosedLoop(StmtId),
    /// A loop header without a scalar LCV destination.
    BadHeader(StmtId),
}

impl fmt::Display for LoopStructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopStructureError::UnmatchedEnd(s) => write!(f, "unmatched end do at {s}"),
            LoopStructureError::UnclosedLoop(s) => write!(f, "unclosed loop headed at {s}"),
            LoopStructureError::BadHeader(s) => {
                write!(f, "loop header at {s} lacks a scalar control variable")
            }
        }
    }
}

impl std::error::Error for LoopStructureError {}

/// The loop nest of a program at one point in time.
///
/// Recompute after transformations that add, remove or move loop markers
/// (the analyses are snapshot-based, exactly like the paper's optimizer,
/// which lets the user decide when dependences are recomputed).
#[derive(Clone, Debug, Default)]
pub struct LoopTable {
    loops: Vec<LoopInfo>,
    /// Innermost loop whose *body* contains each statement. A loop's own
    /// head/end statements belong to the enclosing context, not to the loop.
    enclosing: HashMap<StmtId, LoopId>,
    head_of: HashMap<StmtId, LoopId>,
    end_of: HashMap<StmtId, LoopId>,
    roots: Vec<LoopId>,
}

impl LoopTable {
    /// Recovers the loop structure of `prog`.
    ///
    /// # Errors
    ///
    /// Returns a [`LoopStructureError`] if `do`/`end do` markers are not
    /// properly nested or a header is malformed.
    pub fn of(prog: &Program) -> Result<LoopTable, LoopStructureError> {
        let mut table = LoopTable::default();
        let mut stack: Vec<LoopId> = Vec::new();
        for id in prog.iter() {
            let quad = prog.quad(id);
            match quad.op {
                Opcode::DoHead | Opcode::ParDo => {
                    if let Some(&top) = stack.last() {
                        table.enclosing.insert(id, top);
                    }
                    let lcv = quad
                        .dst
                        .as_var()
                        .ok_or(LoopStructureError::BadHeader(id))?;
                    let lid = LoopId(table.loops.len() as u32);
                    table.loops.push(LoopInfo {
                        id: lid,
                        head: id,
                        end: id, // patched when the end is seen
                        lcv,
                        init: quad.a.clone(),
                        fin: quad.b.clone(),
                        depth: stack.len(),
                        parent: stack.last().copied(),
                        children: Vec::new(),
                        is_parallel: quad.op == Opcode::ParDo,
                    });
                    if let Some(&parent) = stack.last() {
                        table.loops[parent.index()].children.push(lid);
                    } else {
                        table.roots.push(lid);
                    }
                    table.head_of.insert(id, lid);
                    stack.push(lid);
                }
                Opcode::EndDo => {
                    let lid = stack.pop().ok_or(LoopStructureError::UnmatchedEnd(id))?;
                    table.loops[lid.index()].end = id;
                    table.end_of.insert(id, lid);
                    if let Some(&top) = stack.last() {
                        table.enclosing.insert(id, top);
                    }
                }
                _ => {
                    if let Some(&top) = stack.last() {
                        table.enclosing.insert(id, top);
                    }
                }
            }
        }
        if let Some(&open) = stack.last() {
            return Err(LoopStructureError::UnclosedLoop(table.loops[open.index()].head));
        }
        Ok(table)
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the program has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Info for one loop.
    pub fn get(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// Info for the loop at table position `i` (the same order `iter`
    /// yields — program order of the headers), or `None` past the end.
    /// O(1), unlike `iter().nth(i)`.
    pub fn by_index(&self, i: usize) -> Option<&LoopInfo> {
        self.loops.get(i)
    }

    /// All loops in program order of their headers.
    pub fn iter(&self) -> impl Iterator<Item = &LoopInfo> + '_ {
        self.loops.iter()
    }

    /// Outermost loops in program order.
    pub fn roots(&self) -> &[LoopId] {
        &self.roots
    }

    /// The loop whose header is `stmt`, if any.
    pub fn loop_of_head(&self, stmt: StmtId) -> Option<LoopId> {
        self.head_of.get(&stmt).copied()
    }

    /// The loop whose `end do` is `stmt`, if any.
    pub fn loop_of_end(&self, stmt: StmtId) -> Option<LoopId> {
        self.end_of.get(&stmt).copied()
    }

    /// Innermost loop whose body contains `stmt` (a loop's own head/end
    /// belong to the surrounding context).
    pub fn innermost_at(&self, stmt: StmtId) -> Option<LoopId> {
        self.enclosing.get(&stmt).copied()
    }

    /// GOSpeL `mem(S, L)`: true if `stmt` is inside the body of `l`
    /// (at any nesting depth).
    pub fn contains(&self, l: LoopId, stmt: StmtId) -> bool {
        let mut cur = self.innermost_at(stmt);
        while let Some(c) = cur {
            if c == l {
                return true;
            }
            cur = self.get(c).parent;
        }
        false
    }

    /// The chain of loops enclosing `stmt`, outermost first.
    pub fn nest_of(&self, stmt: StmtId) -> Vec<LoopId> {
        let mut chain = Vec::new();
        let mut cur = self.innermost_at(stmt);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.get(c).parent;
        }
        chain.reverse();
        chain
    }

    /// Loops containing *both* statements, outermost first — the loops whose
    /// direction-vector entries a dependence between the two statements has.
    pub fn common_nest(&self, s1: StmtId, s2: StmtId) -> Vec<LoopId> {
        let a = self.nest_of(s1);
        let b = self.nest_of(s2);
        a.into_iter()
            .zip(b)
            .take_while(|(x, y)| x == y)
            .map(|(x, _)| x)
            .collect()
    }

    /// Statements in the body of `l` (exclusive of its head and end),
    /// including the markers of nested loops.
    pub fn body<'p>(&self, prog: &'p Program, l: LoopId) -> impl Iterator<Item = StmtId> + 'p {
        let info = self.get(l);
        prog.iter_between(info.head, info.end)
    }

    /// Directly nested loop pairs `(outer, inner)`.
    pub fn nested_pairs(&self) -> Vec<(LoopId, LoopId)> {
        let mut out = Vec::new();
        for info in &self.loops {
            for &c in &info.children {
                out.push((info.id, c));
            }
        }
        out
    }

    /// Tightly nested pairs: directly nested with *no statements between
    /// them* — `inner.head` immediately follows `outer.head` and `outer.end`
    /// immediately follows `inner.end` (the paper's definition, citing
    /// Wolfe).
    pub fn tight_pairs(&self, prog: &Program) -> Vec<(LoopId, LoopId)> {
        self.nested_pairs()
            .into_iter()
            .filter(|&(o, i)| self.is_tight_pair(prog, o, i))
            .collect()
    }

    /// Whether `(outer, inner)` is a tightly nested pair.
    pub fn is_tight_pair(&self, prog: &Program, outer: LoopId, inner: LoopId) -> bool {
        let o = self.get(outer);
        let i = self.get(inner);
        i.parent == Some(outer)
            && prog.next(o.head) == Some(i.head)
            && prog.next(i.end) == Some(o.end)
    }

    /// Adjacent loop pairs at the same nesting level: `l2.head` immediately
    /// follows `l1.end` (used by loop fusion).
    pub fn adjacent_pairs(&self, prog: &Program) -> Vec<(LoopId, LoopId)> {
        let mut out = Vec::new();
        for info in &self.loops {
            if let Some(next) = prog.next(info.end) {
                if let Some(l2) = self.loop_of_head(next) {
                    out.push((info.id, l2));
                }
            }
        }
        out
    }

    /// Compile-time trip count, when both bounds are integer constants and
    /// the (unit) step makes the count non-negative.
    pub fn trip_count(&self, l: LoopId) -> Option<i64> {
        let info = self.get(l);
        let lo = info.init.as_const()?.as_int()?;
        let hi = info.fin.as_const()?.as_int()?;
        Some((hi - lo + 1).max(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Quad};

    /// do i = 1,10 { do j = 1,20 { a ; } } ; do k = 1,5 { }
    fn nest() -> (Program, LoopTable) {
        let mut b = ProgramBuilder::new("nest");
        let i = b.scalar_int("i");
        let j = b.scalar_int("j");
        let k = b.scalar_int("k");
        let x = b.scalar_int("x");
        let li = b.do_head(i, Operand::int(1), Operand::int(10));
        let lj = b.do_head(j, Operand::int(1), Operand::int(20));
        b.assign(Operand::Var(x), Operand::int(0));
        b.end_do(lj);
        b.end_do(li);
        let lk = b.do_head(k, Operand::int(1), Operand::int(5));
        b.end_do(lk);
        let p = b.finish();
        let t = LoopTable::of(&p).unwrap();
        (p, t)
    }

    #[test]
    fn discovers_loops_and_nesting() {
        let (_, t) = nest();
        assert_eq!(t.len(), 3);
        let outer = &t.loops[0];
        let inner = &t.loops[1];
        let third = &t.loops[2];
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.children, vec![inner.id]);
        assert_eq!(third.depth, 0);
        assert_eq!(t.roots().len(), 2);
    }

    #[test]
    fn membership_and_nest_chains() {
        let (p, t) = nest();
        let outer = t.loops[0].id;
        let inner = t.loops[1].id;
        // the x := 0 statement
        let body_stmt = t.body(&p, inner).next().unwrap();
        assert!(t.contains(inner, body_stmt));
        assert!(t.contains(outer, body_stmt));
        assert_eq!(t.nest_of(body_stmt), vec![outer, inner]);
        // inner head is a member of outer, not of inner
        let ih = t.get(inner).head;
        assert!(t.contains(outer, ih));
        assert!(!t.contains(inner, ih));
        assert_eq!(t.common_nest(body_stmt, ih), vec![outer]);
    }

    #[test]
    fn pair_classification() {
        let (p, t) = nest();
        let outer = t.loops[0].id;
        let inner = t.loops[1].id;
        assert_eq!(t.nested_pairs(), vec![(outer, inner)]);
        // inner loop body contains a statement, so the pair IS tight
        // (tightness is about statements between the heads/ends).
        assert!(t.is_tight_pair(&p, outer, inner));
        assert_eq!(t.tight_pairs(&p), vec![(outer, inner)]);
        // outer loop and the k loop are adjacent
        let lk = t.loops[2].id;
        assert_eq!(t.adjacent_pairs(&p), vec![(outer, lk)]);
    }

    #[test]
    fn not_tight_when_statement_intervenes() {
        let mut b = ProgramBuilder::new("loose");
        let i = b.scalar_int("i");
        let j = b.scalar_int("j");
        let x = b.scalar_int("x");
        let li = b.do_head(i, Operand::int(1), Operand::int(10));
        b.assign(Operand::Var(x), Operand::int(0)); // intervening statement
        let lj = b.do_head(j, Operand::int(1), Operand::int(10));
        b.end_do(lj);
        b.end_do(li);
        let p = b.finish();
        let t = LoopTable::of(&p).unwrap();
        assert_eq!(t.nested_pairs().len(), 1);
        assert!(t.tight_pairs(&p).is_empty());
    }

    #[test]
    fn trip_counts() {
        let (_, t) = nest();
        assert_eq!(t.trip_count(t.loops[0].id), Some(10));
        assert_eq!(t.trip_count(t.loops[1].id), Some(20));
    }

    #[test]
    fn unbalanced_structure_is_an_error() {
        let mut p = Program::new("bad");
        p.push(Quad::marker(Opcode::EndDo));
        assert!(matches!(
            LoopTable::of(&p),
            Err(LoopStructureError::UnmatchedEnd(_))
        ));
    }
}
