//! Constant values carried by [`crate::Operand::Const`].

use std::fmt;
use std::hash::{Hash, Hasher};

/// A compile-time constant: integer or real.
///
/// Reals compare by bit pattern so that [`Value`] can be `Eq`/`Hash` (needed
/// for structural program equality); this matches constant-folding semantics
/// where two textually identical literals are the same constant.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A real (floating point) constant.
    Real(f64),
}

impl Value {
    /// True if the value is integral.
    pub fn is_int(self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// The integer payload, if integral.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Real(_) => None,
        }
    }

    /// Numeric value as an `f64` (exact for small integers).
    pub fn to_f64(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::Real(r) => r,
        }
    }

    /// Constant-folds a binary arithmetic operation, promoting to real when
    /// either side is real. Returns `None` for division by zero or untypable
    /// combinations (e.g. `Mod` on reals).
    pub fn fold(op: FoldOp, a: Value, b: Value) -> Option<Value> {
        use FoldOp::*;
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Some(Value::Int(match op {
                Add => x.checked_add(y)?,
                Sub => x.checked_sub(y)?,
                Mul => x.checked_mul(y)?,
                Div => {
                    if y == 0 {
                        return None;
                    }
                    x.checked_div(y)?
                }
                Mod => {
                    if y == 0 {
                        return None;
                    }
                    x.checked_rem(y)?
                }
            })),
            _ => {
                let (x, y) = (a.to_f64(), b.to_f64());
                Some(Value::Real(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            return None;
                        }
                        x / y
                    }
                    Mod => return None,
                }))
            }
        }
    }

    /// Negates the value (named `negated` to avoid colliding with
    /// `std::ops::Neg::neg`, which `Value` deliberately does not implement —
    /// folding is explicit in this codebase).
    pub fn negated(self) -> Value {
        match self {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Real(r) => Value::Real(-r),
        }
    }
}

/// Binary operations understood by [`Value::fold`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on two ints).
    Div,
    /// Remainder (ints only).
    Mod,
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Real(r) => {
                1u8.hash(state);
                r.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_int_arithmetic() {
        assert_eq!(
            Value::fold(FoldOp::Add, Value::Int(2), Value::Int(3)),
            Some(Value::Int(5))
        );
        assert_eq!(
            Value::fold(FoldOp::Div, Value::Int(7), Value::Int(2)),
            Some(Value::Int(3))
        );
        assert_eq!(Value::fold(FoldOp::Div, Value::Int(1), Value::Int(0)), None);
        assert_eq!(
            Value::fold(FoldOp::Mod, Value::Int(7), Value::Int(4)),
            Some(Value::Int(3))
        );
    }

    #[test]
    fn folding_promotes_to_real() {
        assert_eq!(
            Value::fold(FoldOp::Mul, Value::Int(2), Value::Real(1.5)),
            Some(Value::Real(3.0))
        );
        assert_eq!(
            Value::fold(FoldOp::Mod, Value::Real(1.0), Value::Real(2.0)),
            None
        );
    }

    #[test]
    fn overflow_does_not_fold() {
        assert_eq!(
            Value::fold(FoldOp::Mul, Value::Int(i64::MAX), Value::Int(2)),
            None
        );
    }

    #[test]
    fn real_equality_is_bitwise() {
        assert_eq!(Value::Real(1.0), Value::Real(1.0));
        assert_ne!(Value::Real(0.0), Value::Real(-0.0));
        assert_ne!(Value::Int(1), Value::Real(1.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::Real(2.5).to_string(), "2.5");
    }
}
