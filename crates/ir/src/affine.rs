//! Affine expressions used as array subscripts.

use crate::{Sym, SymbolTable};
use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `c0 + c1*v1 + … + ck*vk` over program variables.
///
/// Array references stay high-level in this IR (the paper's prototype "did
/// not include address calculations for array accesses"), so a subscript like
/// `a(2*i + 1)` is stored symbolically as an `AffineExpr`. The dependence
/// analyzer runs ZIV/SIV/GCD subscript tests directly on this form.
///
/// Terms are kept in a sorted map so that structurally equal expressions
/// compare equal.
///
/// ```
/// use gospel_ir::{AffineExpr, SymbolTable};
/// let mut t = SymbolTable::new();
/// let i = t.intern("i");
/// let e = AffineExpr::var(i).scaled(2).plus_const(1); // 2*i + 1
/// assert_eq!(e.coeff(i), 2);
/// assert_eq!(e.constant(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    terms: BTreeMap<Sym, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant_expr(c: i64) -> Self {
        AffineExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1*v`.
    pub fn var(v: Sym) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        AffineExpr { terms, constant: 0 }
    }

    /// The constant term.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Sym) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// Variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.terms.keys().copied()
    }

    /// True if the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True if the expression is exactly `1*v + 0`.
    pub fn as_single_var(&self) -> Option<Sym> {
        if self.constant == 0 && self.terms.len() == 1 {
            let (&v, &c) = self.terms.iter().next().unwrap();
            if c == 1 {
                return Some(v);
            }
        }
        None
    }

    /// Adds another affine expression.
    #[must_use]
    pub fn plus(&self, other: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        out.constant = out.constant.wrapping_add(other.constant);
        for (&v, &c) in &other.terms {
            let e = out.terms.entry(v).or_insert(0);
            *e = e.wrapping_add(c);
            if *e == 0 {
                out.terms.remove(&v);
            }
        }
        out
    }

    /// Subtracts another affine expression.
    #[must_use]
    pub fn minus(&self, other: &AffineExpr) -> AffineExpr {
        self.plus(&other.scaled(-1))
    }

    /// Adds a constant.
    #[must_use]
    pub fn plus_const(&self, c: i64) -> AffineExpr {
        let mut out = self.clone();
        out.constant = out.constant.wrapping_add(c);
        out
    }

    /// Multiplies every coefficient (and the constant) by `k`.
    #[must_use]
    pub fn scaled(&self, k: i64) -> AffineExpr {
        if k == 0 {
            return AffineExpr::zero();
        }
        AffineExpr {
            terms: self
                .terms
                .iter()
                .map(|(&v, &c)| (v, c.wrapping_mul(k)))
                .collect(),
            constant: self.constant.wrapping_mul(k),
        }
    }

    /// Substitutes `v := replacement` into the expression, if the result is
    /// still affine.
    #[must_use]
    pub fn substitute(&self, v: Sym, replacement: &AffineExpr) -> AffineExpr {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out.plus(&replacement.scaled(c))
    }

    /// Renames variable `from` to `to`.
    #[must_use]
    pub fn rename(&self, from: Sym, to: Sym) -> AffineExpr {
        self.substitute(from, &AffineExpr::var(to))
    }

    /// True if `v` occurs with non-zero coefficient.
    pub fn mentions(&self, v: Sym) -> bool {
        self.terms.contains_key(&v)
    }

    /// Renders the expression with variable names from `syms`.
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> DisplayAffine<'a> {
        DisplayAffine { expr: self, syms }
    }
}

/// Helper returned by [`AffineExpr::display`].
#[derive(Debug)]
pub struct DisplayAffine<'a> {
    expr: &'a AffineExpr,
    syms: &'a SymbolTable,
}

impl fmt::Display for DisplayAffine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&v, &c) in &self.expr.terms {
            if first {
                match c {
                    1 => write!(f, "{}", self.syms.name(v))?,
                    -1 => write!(f, "-{}", self.syms.name(v))?,
                    _ => write!(f, "{}*{}", c, self.syms.name(v))?,
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, "+{}", self.syms.name(v))?;
                } else {
                    write!(f, "+{}*{}", c, self.syms.name(v))?;
                }
            } else if c == -1 {
                write!(f, "-{}", self.syms.name(v))?;
            } else {
                write!(f, "{}*{}", c, self.syms.name(v))?;
            }
        }
        let k = self.expr.constant;
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, "+{k}")?;
        } else if k < 0 {
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> (SymbolTable, Sym, Sym) {
        let mut t = SymbolTable::new();
        let i = t.intern("i");
        let j = t.intern("j");
        (t, i, j)
    }

    #[test]
    fn arithmetic_and_cancellation() {
        let (_, i, j) = syms();
        let e = AffineExpr::var(i).plus(&AffineExpr::var(j)).plus_const(3);
        let f = e.minus(&AffineExpr::var(j));
        assert_eq!(f, AffineExpr::var(i).plus_const(3));
        assert!(!f.mentions(j));
    }

    #[test]
    fn scaling_and_zero() {
        let (_, i, _) = syms();
        let e = AffineExpr::var(i).plus_const(2).scaled(3);
        assert_eq!(e.coeff(i), 3);
        assert_eq!(e.constant(), 6);
        assert_eq!(e.scaled(0), AffineExpr::zero());
    }

    #[test]
    fn substitution() {
        let (_, i, j) = syms();
        // 2*i + 1 with i := j + 4  ==>  2*j + 9
        let e = AffineExpr::var(i).scaled(2).plus_const(1);
        let r = AffineExpr::var(j).plus_const(4);
        let s = e.substitute(i, &r);
        assert_eq!(s.coeff(j), 2);
        assert_eq!(s.constant(), 9);
    }

    #[test]
    fn single_var_detection() {
        let (_, i, _) = syms();
        assert_eq!(AffineExpr::var(i).as_single_var(), Some(i));
        assert_eq!(AffineExpr::var(i).plus_const(1).as_single_var(), None);
        assert_eq!(AffineExpr::var(i).scaled(2).as_single_var(), None);
    }

    #[test]
    fn display_formatting() {
        let (t, i, j) = syms();
        let e = AffineExpr::var(i)
            .scaled(2)
            .plus(&AffineExpr::var(j).scaled(-1))
            .plus_const(-3);
        assert_eq!(e.display(&t).to_string(), "2*i-j-3");
        assert_eq!(AffineExpr::constant_expr(7).display(&t).to_string(), "7");
    }
}
