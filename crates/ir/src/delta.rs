//! Structured edit deltas over a [`Program`].
//!
//! An [`EditDelta`] is both things the driver hot loop needs from one
//! batch of transformation primitives:
//!
//! * a **change summary** the dependence analyzer can consume to update a
//!   `DepGraph` incrementally instead of recomputing it from scratch
//!   (which statements were added/removed/moved, which operands changed,
//!   and whether the loop/branch *structure* was touched at all), and
//! * an **undo journal**: every recorded operation stores enough of the
//!   pre-edit state ([`Program::delete`] keeps the dead slot's quad, so a
//!   delete only needs its old predecessor) to replay the batch in
//!   reverse, which lets the driver mutate the program in place and still
//!   roll back a failed action list — no whole-program scratch clone.
//!
//! The delta records edits by *performing* them: call
//! [`EditDelta::delete`] instead of [`Program::delete`] and so on, and
//! the journal can never disagree with the program.

use crate::{Opcode, Operand, OperandPos, Program, Quad, StmtId};

/// One journaled transformation primitive, with the pre-edit state its
/// undo needs.
#[derive(Clone, Debug)]
pub enum EditOp {
    /// `add`/`copy`: a fresh statement was inserted.
    Insert {
        /// The new statement.
        id: StmtId,
    },
    /// `delete`: the statement was unlinked (its slot retains the quad).
    Delete {
        /// The deleted statement.
        id: StmtId,
        /// Its predecessor at deletion time (`None` = it was first).
        prev: Option<StmtId>,
        /// Snapshot of the deleted quad, for dirty-symbol extraction
        /// after the fact (the dead slot cannot be queried).
        quad: Quad,
    },
    /// `move`: the statement was relinked elsewhere.
    Move {
        /// The moved statement.
        id: StmtId,
        /// Its predecessor before the move.
        old_prev: Option<StmtId>,
    },
    /// `modify`: one operand was replaced.
    Modify {
        /// The modified statement.
        id: StmtId,
        /// Which operand slot.
        pos: OperandPos,
        /// The operand it held before.
        old: Operand,
    },
}

impl EditOp {
    /// The statement this operation touched.
    pub fn stmt(&self) -> StmtId {
        match self {
            EditOp::Insert { id }
            | EditOp::Delete { id, .. }
            | EditOp::Move { id, .. }
            | EditOp::Modify { id, .. } => *id,
        }
    }
}

/// A journal of transformation primitives applied to one program, usable
/// as a change summary for incremental dependence maintenance and as an
/// undo log. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct EditDelta {
    ops: Vec<EditOp>,
    structural: bool,
}

/// True for opcodes that shape the CFG and loop structure: inserting,
/// deleting or relocating one invalidates loop nests and direction
/// vectors wholesale, not just the edges of the touched variables.
fn is_structural(op: Opcode) -> bool {
    op.is_loop_head() || op.is_if() || matches!(op, Opcode::EndDo | Opcode::Else | Opcode::EndIf)
}

impl EditDelta {
    /// An empty delta.
    pub fn new() -> EditDelta {
        EditDelta::default()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// The journal, in application order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// True when the batch touched control structure (loop or branch
    /// markers added, removed or relocated, or a loop header's operands
    /// rewritten). Incremental dependence maintenance must fall back to a
    /// full re-analysis in that case.
    pub fn requires_full(&self) -> bool {
        self.structural
    }

    // ---- journaling editors -----------------------------------------------

    /// GOSpeL `add` through the journal; see [`Program::insert_after`].
    pub fn insert_after(
        &mut self,
        prog: &mut Program,
        after: Option<StmtId>,
        quad: Quad,
    ) -> StmtId {
        self.structural |= is_structural(quad.op);
        let id = prog.insert_after(after, quad);
        self.ops.push(EditOp::Insert { id });
        id
    }

    /// GOSpeL `copy` through the journal; see [`Program::copy_after`].
    pub fn copy_after(&mut self, prog: &mut Program, id: StmtId, after: Option<StmtId>) -> StmtId {
        self.structural |= is_structural(prog.quad(id).op);
        let c = prog.copy_after(id, after);
        self.ops.push(EditOp::Insert { id: c });
        c
    }

    /// GOSpeL `delete` through the journal; see [`Program::delete`].
    pub fn delete(&mut self, prog: &mut Program, id: StmtId) {
        let quad = prog.quad(id).clone();
        self.structural |= is_structural(quad.op);
        let prev = prog.prev(id);
        prog.delete(id);
        self.ops.push(EditOp::Delete { id, prev, quad });
    }

    /// GOSpeL `move` through the journal; see [`Program::move_after`].
    ///
    /// # Panics
    ///
    /// Panics if `after == Some(id)` (as [`Program::move_after`] does).
    pub fn move_after(&mut self, prog: &mut Program, id: StmtId, after: Option<StmtId>) {
        self.structural |= is_structural(prog.quad(id).op);
        let old_prev = prog.prev(id);
        prog.move_after(id, after);
        self.ops.push(EditOp::Move { id, old_prev });
    }

    /// GOSpeL `modify` through the journal; see [`Program::modify`].
    pub fn modify(&mut self, prog: &mut Program, id: StmtId, pos: OperandPos, operand: Operand) {
        // Rewriting a loop header's *control variable* changes the
        // induction structure direction vectors are keyed on — that is
        // structural. Bound rewrites (A/B) only change trip counts, which
        // feed nothing but the array subscript tests; the incremental
        // analyzer repairs those by re-deriving the whole array layer.
        self.structural |= prog.quad(id).op.is_loop_head() && pos == OperandPos::Dst;
        let old = prog.quad(id).operand(pos).clone();
        prog.modify(id, pos, operand);
        self.ops.push(EditOp::Modify { id, pos, old });
    }

    // ---- undo --------------------------------------------------------------

    /// Replays the journal in reverse, restoring the program to the state
    /// it had when this delta was created. Consumes the delta.
    ///
    /// Each inverse runs against exactly the program state that existed
    /// just after its forward op, so the recorded predecessors are live
    /// by construction.
    pub fn undo(self, prog: &mut Program) {
        for op in self.ops.into_iter().rev() {
            match op {
                EditOp::Insert { id } => prog.delete(id),
                EditOp::Delete { id, prev, .. } => prog.restore(id, prev),
                EditOp::Move { id, old_prev } => prog.move_after(id, old_prev),
                EditOp::Modify { id, pos, old } => prog.modify(id, pos, old),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VarKind, VarType};

    fn prog3() -> (Program, Vec<StmtId>) {
        let mut p = Program::new("t");
        let x = p.declare("x", VarType::Int, VarKind::Scalar);
        let ids = vec![
            p.push(Quad::assign(Operand::Var(x), Operand::int(1))),
            p.push(Quad::assign(Operand::Var(x), Operand::int(2))),
            p.push(Quad::assign(Operand::Var(x), Operand::int(3))),
        ];
        (p, ids)
    }

    fn listing(p: &Program) -> Vec<Quad> {
        p.iter().map(|s| p.quad(s).clone()).collect()
    }

    #[test]
    fn undo_restores_after_every_primitive() {
        let (mut p, ids) = prog3();
        let before = listing(&p);
        let mut d = EditDelta::new();
        d.delete(&mut p, ids[1]);
        d.modify(&mut p, ids[0], OperandPos::A, Operand::int(99));
        let dst = p.quad(ids[0]).dst.clone();
        let n = d.insert_after(&mut p, Some(ids[2]), Quad::assign(dst, Operand::int(7)));
        d.move_after(&mut p, ids[0], Some(n));
        d.copy_after(&mut p, ids[2], None);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        d.undo(&mut p);
        assert_eq!(listing(&p), before);
        assert_eq!(p.len(), 3);
        assert_eq!(p.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn undo_handles_interleaved_deletes() {
        // Delete a statement, then its recorded predecessor: the reverse
        // replay restores the predecessor first, so the anchor is live.
        let (mut p, ids) = prog3();
        let before = listing(&p);
        let mut d = EditDelta::new();
        d.delete(&mut p, ids[1]); // prev = ids[0]
        d.delete(&mut p, ids[0]); // prev = None
        d.undo(&mut p);
        assert_eq!(listing(&p), before);
    }

    #[test]
    fn structural_flag_tracks_markers_and_headers() {
        let (mut p, ids) = prog3();
        let mut d = EditDelta::new();
        d.modify(&mut p, ids[0], OperandPos::A, Operand::int(5));
        assert!(!d.requires_full(), "plain operand rewrite is incremental");

        let mut d2 = EditDelta::new();
        d2.insert_after(&mut p, Some(ids[2]), Quad::marker(Opcode::EndDo));
        assert!(d2.requires_full(), "marker insertion is structural");

        // A loop-header *bound* modify is incremental (trip counts feed
        // only the array layer); rewriting the control variable itself is
        // structural.
        let mut p2 = Program::new("loopy");
        let i = p2.declare("i", VarType::Int, VarKind::Scalar);
        let j = p2.declare("j", VarType::Int, VarKind::Scalar);
        let head = p2.push(Quad::new(
            Opcode::DoHead,
            Operand::Var(i),
            Operand::int(1),
            Operand::int(10),
        ));
        p2.push(Quad::marker(Opcode::EndDo));
        let mut d3 = EditDelta::new();
        d3.modify(&mut p2, head, OperandPos::B, Operand::int(20));
        assert!(!d3.requires_full(), "bound rewrite is incremental");
        let mut d4 = EditDelta::new();
        d4.modify(&mut p2, head, OperandPos::Dst, Operand::Var(j));
        assert!(d4.requires_full(), "control-variable rewrite is structural");
    }

    #[test]
    fn ops_expose_touched_statements() {
        let (mut p, ids) = prog3();
        let mut d = EditDelta::new();
        d.delete(&mut p, ids[1]);
        d.modify(&mut p, ids[2], OperandPos::A, Operand::int(4));
        let touched: Vec<StmtId> = d.ops().iter().map(EditOp::stmt).collect();
        assert_eq!(touched, vec![ids[1], ids[2]]);
        match &d.ops()[0] {
            EditOp::Delete { prev, quad, .. } => {
                assert_eq!(*prev, Some(ids[0]));
                assert_eq!(quad.a, Operand::int(2));
            }
            other => panic!("expected Delete, got {other:?}"),
        }
    }
}
