//! Statement-level control-flow graph derived from the structured markers.
//!
//! Programs in this IR are small and structured, so the dependence analyzer
//! runs its bit-vector dataflow at statement granularity; nodes are
//! statements and edges follow the `do`/`if` structure:
//!
//! * `do` header → first body statement, and → statement after `end do`
//!   (the loop may execute zero times);
//! * `end do` → its `do` header (back edge) and → following statement;
//! * `if` header → first then-statement and → first else-statement (or the
//!   `end if` when there is no `else`);
//! * `else` → its `end if` (the then branch jumps over the else branch);
//! * everything else → following statement.

use crate::{Opcode, Program, StmtId};
use std::collections::HashMap;

/// The control-flow graph of a [`Program`] snapshot.
#[derive(Clone, Debug)]
pub struct Cfg {
    nodes: Vec<StmtId>,
    index: HashMap<StmtId, usize>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG for the current statement sequence of `prog`.
    ///
    /// # Panics
    ///
    /// Panics if structured markers are unbalanced; run
    /// [`crate::validate`] first for a diagnosable error.
    pub fn of(prog: &Program) -> Cfg {
        let nodes: Vec<StmtId> = prog.iter().collect();
        let index: HashMap<StmtId, usize> =
            nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let n = nodes.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];

        // Match up structured markers.
        let mut do_stack: Vec<usize> = Vec::new();
        let mut if_stack: Vec<usize> = Vec::new();
        // For each `if` node: (else position, endif position)
        let mut if_else: HashMap<usize, usize> = HashMap::new();
        let mut if_end: HashMap<usize, usize> = HashMap::new();
        let mut do_end: HashMap<usize, usize> = HashMap::new();
        for (i, &s) in nodes.iter().enumerate() {
            match prog.quad(s).op {
                Opcode::DoHead | Opcode::ParDo => do_stack.push(i),
                Opcode::EndDo => {
                    let h = do_stack.pop().expect("unmatched end do");
                    do_end.insert(h, i);
                }
                op if op.is_if() => if_stack.push(i),
                Opcode::Else => {
                    let h = *if_stack.last().expect("else outside if");
                    if_else.insert(h, i);
                }
                Opcode::EndIf => {
                    let h = if_stack.pop().expect("unmatched end if");
                    if_end.insert(h, i);
                }
                _ => {}
            }
        }
        assert!(do_stack.is_empty(), "unclosed loop");
        assert!(if_stack.is_empty(), "unclosed if");

        for (i, &s) in nodes.iter().enumerate() {
            let op = prog.quad(s).op;
            match op {
                Opcode::DoHead | Opcode::ParDo => {
                    let end = do_end[&i];
                    if i + 1 < n {
                        succs[i].push(i + 1); // into the body (or directly to end do)
                    }
                    if end + 1 < n {
                        succs[i].push(end + 1); // zero-trip exit
                    }
                }
                Opcode::EndDo => {
                    // back edge to the header (re-test / next iteration)
                    let head = *do_end
                        .iter()
                        .find(|&(_, &e)| e == i)
                        .map(|(h, _)| h)
                        .expect("end do without head");
                    succs[i].push(head);
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    }
                }
                _ if op.is_if() => {
                    if i + 1 < n {
                        succs[i].push(i + 1); // then branch
                    }
                    let target = if_else
                        .get(&i)
                        .map(|&e| e + 1)
                        .unwrap_or_else(|| if_end[&i]);
                    if target < n && target != i + 1 {
                        succs[i].push(target);
                    }
                }
                Opcode::Else => {
                    // reached from the then branch: skip to end if
                    let head = *if_else
                        .iter()
                        .find(|&(_, &e)| e == i)
                        .map(|(h, _)| h)
                        .expect("else without if");
                    succs[i].push(if_end[&head]);
                }
                _ => {
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    }
                }
            }
        }

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for &t in ss {
                preds[t].push(i);
            }
        }
        Cfg {
            nodes,
            index,
            succs,
            preds,
        }
    }

    /// Number of nodes (statements).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Statements in program order (node `k` is `nodes()[k]`).
    pub fn nodes(&self) -> &[StmtId] {
        &self.nodes
    }

    /// The node index of a statement.
    pub fn node_of(&self, s: StmtId) -> usize {
        self.index[&s]
    }

    /// Successor node indices of node `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Predecessor node indices of node `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operand, ProgramBuilder};

    #[test]
    fn straight_line_chain() {
        let mut b = ProgramBuilder::new("p");
        let x = b.scalar_int("x");
        b.assign(Operand::Var(x), Operand::int(1));
        b.assign(Operand::Var(x), Operand::int(2));
        let p = b.finish();
        let c = Cfg::of(&p);
        assert_eq!(c.len(), 2);
        assert_eq!(c.succs(0), &[1]);
        assert!(c.succs(1).is_empty());
        assert_eq!(c.preds(1), &[0]);
    }

    #[test]
    fn loop_has_back_edge_and_exit() {
        let mut b = ProgramBuilder::new("p");
        let i = b.scalar_int("i");
        let x = b.scalar_int("x");
        let l = b.do_head(i, Operand::int(1), Operand::int(3));
        b.assign(Operand::Var(x), Operand::Var(i));
        b.end_do(l);
        b.assign(Operand::Var(x), Operand::int(0));
        let p = b.finish();
        let c = Cfg::of(&p);
        // 0: do, 1: body, 2: end do, 3: after
        assert_eq!(c.succs(0), &[1, 3]); // body + zero-trip exit
        assert_eq!(c.succs(1), &[2]);
        assert_eq!(c.succs(2), &[0, 3]); // back edge + exit
        assert_eq!(c.preds(0), &[2]);
    }

    #[test]
    fn if_with_else_branches() {
        let mut b = ProgramBuilder::new("p");
        let x = b.scalar_int("x");
        let t = b.if_head(crate::Opcode::IfGt, Operand::Var(x), Operand::int(0));
        b.assign(Operand::Var(x), Operand::int(1)); // then
        b.else_mark(t);
        b.assign(Operand::Var(x), Operand::int(2)); // else
        b.end_if(t);
        let p = b.finish();
        let c = Cfg::of(&p);
        // 0: if, 1: then, 2: else-mark, 3: else-stmt, 4: endif
        assert_eq!(c.succs(0), &[1, 3]);
        assert_eq!(c.succs(1), &[2]);
        assert_eq!(c.succs(2), &[4]); // then branch skips else body
        assert_eq!(c.succs(3), &[4]);
        let mut preds4 = c.preds(4).to_vec();
        preds4.sort_unstable();
        assert_eq!(preds4, vec![2, 3]);
    }

    #[test]
    fn if_without_else_falls_to_endif() {
        let mut b = ProgramBuilder::new("p");
        let x = b.scalar_int("x");
        let t = b.if_head(crate::Opcode::IfEq, Operand::Var(x), Operand::int(0));
        b.assign(Operand::Var(x), Operand::int(1));
        b.end_if(t);
        let p = b.finish();
        let c = Cfg::of(&p);
        // 0: if, 1: then, 2: endif
        assert_eq!(c.succs(0), &[1, 2]);
        assert_eq!(c.succs(1), &[2]);
    }
}
