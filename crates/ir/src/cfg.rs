//! Statement-level control-flow graph derived from the structured markers.
//!
//! Programs in this IR are small and structured, so the dependence analyzer
//! runs its bit-vector dataflow at statement granularity; nodes are
//! statements and edges follow the `do`/`if` structure:
//!
//! * `do` header → first body statement, and → statement after `end do`
//!   (the loop may execute zero times);
//! * `end do` → its `do` header (back edge) and → following statement;
//! * `if` header → first then-statement and → first else-statement (or the
//!   `end if` when there is no `else`);
//! * `else` → its `end if` (the then branch jumps over the else branch);
//! * everything else → following statement.

use crate::{Opcode, Program, StmtId};

const NONE: usize = usize::MAX;

/// The control-flow graph of a [`Program`] snapshot.
///
/// Stored densely: every node has at most two successors (structured
/// control flow), so successors live in a fixed-stride array, and
/// predecessors in a compressed-sparse-row layout. The graph is rebuilt
/// after every incremental dependence update, so construction avoids
/// hashing and per-node allocations.
#[derive(Clone, Debug)]
pub struct Cfg {
    nodes: Vec<StmtId>,
    /// Node index per `StmtId::index()` (`usize::MAX` = not live).
    index: Vec<usize>,
    /// Two successor slots per node; `succ_cnt[i]` of them are valid.
    succ_flat: Vec<usize>,
    succ_cnt: Vec<u8>,
    /// CSR predecessors: `pred_idx[pred_off[i]..pred_off[i+1]]`.
    pred_off: Vec<usize>,
    pred_idx: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for the current statement sequence of `prog`.
    ///
    /// # Panics
    ///
    /// Panics if structured markers are unbalanced; run
    /// [`crate::validate`] first for a diagnosable error.
    pub fn of(prog: &Program) -> Cfg {
        let nodes: Vec<StmtId> = prog.iter().collect();
        let n = nodes.len();
        let mut index = vec![NONE; prog.id_bound()];
        for (i, &s) in nodes.iter().enumerate() {
            index[s.index()] = i;
        }

        // Match up structured markers (position-indexed tables).
        let mut do_stack: Vec<usize> = Vec::new();
        let mut if_stack: Vec<usize> = Vec::new();
        let mut do_end = vec![NONE; n]; // do head pos -> end do pos
        let mut end_do = vec![NONE; n]; // end do pos -> do head pos
        let mut if_else = vec![NONE; n]; // if pos -> else pos
        let mut if_end = vec![NONE; n]; // if pos -> end if pos
        let mut else_if = vec![NONE; n]; // else pos -> if pos
        for (i, &s) in nodes.iter().enumerate() {
            match prog.quad(s).op {
                Opcode::DoHead | Opcode::ParDo => do_stack.push(i),
                Opcode::EndDo => {
                    let h = do_stack.pop().expect("unmatched end do");
                    do_end[h] = i;
                    end_do[i] = h;
                }
                op if op.is_if() => if_stack.push(i),
                Opcode::Else => {
                    let h = *if_stack.last().expect("else outside if");
                    if_else[h] = i;
                    else_if[i] = h;
                }
                Opcode::EndIf => {
                    let h = if_stack.pop().expect("unmatched end if");
                    if_end[h] = i;
                }
                _ => {}
            }
        }
        assert!(do_stack.is_empty(), "unclosed loop");
        assert!(if_stack.is_empty(), "unclosed if");

        let mut succ_flat = vec![NONE; 2 * n];
        let mut succ_cnt = vec![0u8; n];
        let push = |succ_flat: &mut [usize], succ_cnt: &mut [u8], i: usize, t: usize| {
            succ_flat[2 * i + succ_cnt[i] as usize] = t;
            succ_cnt[i] += 1;
        };
        for (i, &s) in nodes.iter().enumerate() {
            let op = prog.quad(s).op;
            match op {
                Opcode::DoHead | Opcode::ParDo => {
                    let end = do_end[i];
                    if i + 1 < n {
                        push(&mut succ_flat, &mut succ_cnt, i, i + 1); // into the body
                    }
                    if end + 1 < n {
                        push(&mut succ_flat, &mut succ_cnt, i, end + 1); // zero-trip exit
                    }
                }
                Opcode::EndDo => {
                    // back edge to the header (re-test / next iteration)
                    push(&mut succ_flat, &mut succ_cnt, i, end_do[i]);
                    if i + 1 < n {
                        push(&mut succ_flat, &mut succ_cnt, i, i + 1);
                    }
                }
                _ if op.is_if() => {
                    if i + 1 < n {
                        push(&mut succ_flat, &mut succ_cnt, i, i + 1); // then branch
                    }
                    let target = match if_else[i] {
                        NONE => if_end[i],
                        e => e + 1,
                    };
                    if target < n && target != i + 1 {
                        push(&mut succ_flat, &mut succ_cnt, i, target);
                    }
                }
                Opcode::Else => {
                    // reached from the then branch: skip to end if
                    push(&mut succ_flat, &mut succ_cnt, i, if_end[else_if[i]]);
                }
                _ => {
                    if i + 1 < n {
                        push(&mut succ_flat, &mut succ_cnt, i, i + 1);
                    }
                }
            }
        }

        // Predecessors as CSR: count, prefix-sum, fill.
        let mut pred_off = vec![0usize; n + 1];
        for i in 0..n {
            for k in 0..succ_cnt[i] as usize {
                pred_off[succ_flat[2 * i + k] + 1] += 1;
            }
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let mut next = pred_off[..n].to_vec();
        let mut pred_idx = vec![0usize; pred_off[n]];
        for i in 0..n {
            for k in 0..succ_cnt[i] as usize {
                let t = succ_flat[2 * i + k];
                pred_idx[next[t]] = i;
                next[t] += 1;
            }
        }
        Cfg {
            nodes,
            index,
            succ_flat,
            succ_cnt,
            pred_off,
            pred_idx,
        }
    }

    /// Number of nodes (statements).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Statements in program order (node `k` is `nodes()[k]`).
    pub fn nodes(&self) -> &[StmtId] {
        &self.nodes
    }

    /// The node index of a statement.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not live in the snapshot this CFG was built from.
    pub fn node_of(&self, s: StmtId) -> usize {
        let i = self.index[s.index()];
        assert!(i != NONE, "statement not live in this CFG");
        i
    }

    /// Successor node indices of node `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succ_flat[2 * i..2 * i + self.succ_cnt[i] as usize]
    }

    /// Predecessor node indices of node `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.pred_idx[self.pred_off[i]..self.pred_off[i + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operand, ProgramBuilder};

    #[test]
    fn straight_line_chain() {
        let mut b = ProgramBuilder::new("p");
        let x = b.scalar_int("x");
        b.assign(Operand::Var(x), Operand::int(1));
        b.assign(Operand::Var(x), Operand::int(2));
        let p = b.finish();
        let c = Cfg::of(&p);
        assert_eq!(c.len(), 2);
        assert_eq!(c.succs(0), &[1]);
        assert!(c.succs(1).is_empty());
        assert_eq!(c.preds(1), &[0]);
    }

    #[test]
    fn loop_has_back_edge_and_exit() {
        let mut b = ProgramBuilder::new("p");
        let i = b.scalar_int("i");
        let x = b.scalar_int("x");
        let l = b.do_head(i, Operand::int(1), Operand::int(3));
        b.assign(Operand::Var(x), Operand::Var(i));
        b.end_do(l);
        b.assign(Operand::Var(x), Operand::int(0));
        let p = b.finish();
        let c = Cfg::of(&p);
        // 0: do, 1: body, 2: end do, 3: after
        assert_eq!(c.succs(0), &[1, 3]); // body + zero-trip exit
        assert_eq!(c.succs(1), &[2]);
        assert_eq!(c.succs(2), &[0, 3]); // back edge + exit
        assert_eq!(c.preds(0), &[2]);
    }

    #[test]
    fn if_with_else_branches() {
        let mut b = ProgramBuilder::new("p");
        let x = b.scalar_int("x");
        let t = b.if_head(crate::Opcode::IfGt, Operand::Var(x), Operand::int(0));
        b.assign(Operand::Var(x), Operand::int(1)); // then
        b.else_mark(t);
        b.assign(Operand::Var(x), Operand::int(2)); // else
        b.end_if(t);
        let p = b.finish();
        let c = Cfg::of(&p);
        // 0: if, 1: then, 2: else-mark, 3: else-stmt, 4: endif
        assert_eq!(c.succs(0), &[1, 3]);
        assert_eq!(c.succs(1), &[2]);
        assert_eq!(c.succs(2), &[4]); // then branch skips else body
        assert_eq!(c.succs(3), &[4]);
        let mut preds4 = c.preds(4).to_vec();
        preds4.sort_unstable();
        assert_eq!(preds4, vec![2, 3]);
    }

    #[test]
    fn if_without_else_falls_to_endif() {
        let mut b = ProgramBuilder::new("p");
        let x = b.scalar_int("x");
        let t = b.if_head(crate::Opcode::IfEq, Operand::Var(x), Operand::int(0));
        b.assign(Operand::Var(x), Operand::int(1));
        b.end_if(t);
        let p = b.finish();
        let c = Cfg::of(&p);
        // 0: if, 1: then, 2: endif
        assert_eq!(c.succs(0), &[1, 2]);
        assert_eq!(c.succs(1), &[2]);
    }
}
