//! # gospel-ir — the intermediate representation assumed by GENesis
//!
//! The PLDI 1991 paper *Automatic Generation of Global Optimizers*
//! (Whitfield & Soffa) assumes "a high level intermediate representation that
//! retains the loop structures from the source program", with assignment
//! statements in quad form
//!
//! ```text
//! opr_1 := opr_2 opc opr_3
//! ```
//!
//! This crate provides that representation:
//!
//! * [`Program`] — an arena of [`Quad`] statements threaded on a doubly
//!   linked program order (the paper's `.NXT` / `.PREV` attributes), with the
//!   five GOSpeL transformation primitives (`delete`, `copy`, `move`, `add`,
//!   `modify`) as safe editing operations.
//! * Structured control flow — `do`/`end do`, `if`/`else`/`end if` marker
//!   statements instead of gotos, so loop structure survives optimization
//!   exactly as the paper requires. Array accesses stay high-level
//!   ([`Operand::Elem`]); there is no address arithmetic, which is why the
//!   paper's ICM experiment finds no application points.
//! * [`LoopTable`] — the loop attributes GOSpeL exposes (`HEAD`, `END`,
//!   `BODY`, `LCV`, `INIT`, `FINAL`), plus nested / tightly-nested / adjacent
//!   loop-pair queries.
//! * [`Cfg`] — a basic-block control-flow graph derived from the structured
//!   statements, used by the dependence analyzer.
//!
//! ## Example
//!
//! ```
//! use gospel_ir::{ProgramBuilder, Opcode, Operand};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let n = b.scalar_int("n");
//! let i = b.scalar_int("i");
//! b.assign(Operand::Var(n), Operand::int(10));
//! let l = b.do_head(i, Operand::int(1), Operand::Var(n));
//! b.stmt(Opcode::Add, Operand::Var(n), Operand::Var(n), Operand::int(1));
//! b.end_do(l);
//! let prog = b.finish();
//! assert_eq!(prog.iter().count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod builder;
mod cfg;
mod delta;
mod loops;
mod opcode;
mod operand;
mod pretty;
mod program;
mod quad;
mod sym;
mod validate;
mod value;

pub use affine::AffineExpr;
pub use builder::{IfToken, LoopToken, ProgramBuilder};
pub use cfg::Cfg;
pub use delta::{EditDelta, EditOp};
pub use loops::{LoopId, LoopInfo, LoopStructureError, LoopTable};
pub use opcode::Opcode;
pub use operand::Operand;
pub use pretty::DisplayProgram;
pub use program::{Program, StmtId, VarInfo, VarKind, VarType};
pub use quad::{OperandPos, Quad};
pub use sym::{Sym, SymbolTable};
pub use validate::{validate, validate_stmt, ValidateError};
pub use value::{FoldOp, Value};
