//! Statement opcodes.

use crate::Sym;
use std::fmt;

/// The operation of a quad `opr_1 := opr_2 opc opr_3`, plus the structured
/// control-flow markers that let the IR retain source loop structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Plain copy/constant assignment: `dst := a`.
    Assign,
    /// `dst := a + b`.
    Add,
    /// `dst := a - b`.
    Sub,
    /// `dst := a * b`.
    Mul,
    /// `dst := a / b`.
    Div,
    /// `dst := a mod b`.
    Mod,
    /// `dst := -a`.
    Neg,
    /// `dst := f(a, b)` for an intrinsic function `f` (sin, sqrt, …).
    Call(Sym),

    /// Sequential loop header: `do dst := a, b` (`dst` is the loop control
    /// variable, `a` the initial value, `b` the final value; the prototype
    /// restricts the step to one, as the paper's did).
    DoHead,
    /// Parallel loop header produced by the PAR optimization. Same operand
    /// layout as [`Opcode::DoHead`].
    ParDo,
    /// End of the innermost open loop.
    EndDo,

    /// Structured conditional `if a RELOP b then`; the relation is part of
    /// the opcode so statements stay uniform quads.
    IfLt,
    /// `if a <= b then`.
    IfLe,
    /// `if a > b then`.
    IfGt,
    /// `if a >= b then`.
    IfGe,
    /// `if a == b then`.
    IfEq,
    /// `if a != b then`.
    IfNe,
    /// `else` marker of the innermost open conditional.
    Else,
    /// `end if` marker.
    EndIf,

    /// Input statement `read dst`.
    Read,
    /// Output statement `write a` (keeps its operand live — DCE roots).
    Write,
    /// No operation (left behind by deletions in some transformation
    /// strategies; the canonical `delete` primitive removes statements).
    Nop,
}

impl Opcode {
    /// True for the arithmetic value-producing opcodes (those whose `dst` is
    /// a definition).
    pub fn defines(self) -> bool {
        matches!(
            self,
            Opcode::Assign
                | Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::Div
                | Opcode::Mod
                | Opcode::Neg
                | Opcode::Call(_)
                | Opcode::Read
                | Opcode::DoHead
                | Opcode::ParDo
        )
    }

    /// True for the structured conditional headers.
    pub fn is_if(self) -> bool {
        matches!(
            self,
            Opcode::IfLt
                | Opcode::IfLe
                | Opcode::IfGt
                | Opcode::IfGe
                | Opcode::IfEq
                | Opcode::IfNe
        )
    }

    /// True for loop headers (sequential or parallel).
    pub fn is_loop_head(self) -> bool {
        matches!(self, Opcode::DoHead | Opcode::ParDo)
    }

    /// True for binary arithmetic opcodes (both `a` and `b` read).
    pub fn is_binary_arith(self) -> bool {
        matches!(
            self,
            Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Div | Opcode::Mod
        )
    }

    /// The GOSpeL spelling of the opcode (what `Si.opc == assign` matches).
    pub fn gospel_name(self) -> &'static str {
        match self {
            Opcode::Assign => "assign",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Mod => "mod",
            Opcode::Neg => "neg",
            Opcode::Call(_) => "call",
            Opcode::DoHead => "do",
            Opcode::ParDo => "pardo",
            Opcode::EndDo => "enddo",
            Opcode::IfLt => "if_lt",
            Opcode::IfLe => "if_le",
            Opcode::IfGt => "if_gt",
            Opcode::IfGe => "if_ge",
            Opcode::IfEq => "if_eq",
            Opcode::IfNe => "if_ne",
            Opcode::Else => "else",
            Opcode::EndIf => "endif",
            Opcode::Read => "read",
            Opcode::Write => "write",
            Opcode::Nop => "nop",
        }
    }

    /// The infix symbol for binary arithmetic, if any.
    pub fn infix(self) -> Option<&'static str> {
        Some(match self {
            Opcode::Add => "+",
            Opcode::Sub => "-",
            Opcode::Mul => "*",
            Opcode::Div => "/",
            Opcode::Mod => "mod",
            _ => return None,
        })
    }

    /// The comparison symbol for conditional headers, if any.
    pub fn relop(self) -> Option<&'static str> {
        Some(match self {
            Opcode::IfLt => "<",
            Opcode::IfLe => "<=",
            Opcode::IfGt => ">",
            Opcode::IfGe => ">=",
            Opcode::IfEq => "==",
            Opcode::IfNe => "!=",
            _ => return None,
        })
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.gospel_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Opcode::Assign.defines());
        assert!(Opcode::DoHead.defines()); // defines the LCV
        assert!(!Opcode::Write.defines());
        assert!(!Opcode::EndDo.defines());
        assert!(Opcode::IfLt.is_if());
        assert!(!Opcode::Else.is_if());
        assert!(Opcode::ParDo.is_loop_head());
        assert!(Opcode::Mul.is_binary_arith());
    }

    #[test]
    fn spellings() {
        assert_eq!(Opcode::Assign.gospel_name(), "assign");
        assert_eq!(Opcode::Add.infix(), Some("+"));
        assert_eq!(Opcode::IfGe.relop(), Some(">="));
        assert_eq!(Opcode::Assign.infix(), None);
        assert_eq!(format!("{}", Opcode::EndDo), "enddo");
    }
}
