//! Human-readable program listing.

use crate::{Opcode, Operand, Program, StmtId};
use std::fmt;

/// Display adapter: `format!("{}", DisplayProgram(&prog))` prints an
/// indented listing with
/// statement ids, suitable for diffs in tests and experiment reports.
///
/// ```
/// use gospel_ir::{DisplayProgram, ProgramBuilder, Operand};
/// let mut b = ProgramBuilder::new("p");
/// let x = b.scalar_int("x");
/// b.assign(Operand::Var(x), Operand::int(1));
/// let text = DisplayProgram(&b.finish()).to_string();
/// assert!(text.contains("x := 1"));
/// ```
#[derive(Debug)]
pub struct DisplayProgram<'a>(pub &'a Program);

fn fmt_operand(prog: &Program, o: &Operand, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match o {
        Operand::None => write!(f, "_"),
        Operand::Const(v) => write!(f, "{v}"),
        Operand::Var(s) => write!(f, "{}", prog.syms().name(*s)),
        Operand::Elem { array, subs } => {
            write!(f, "{}(", prog.syms().name(*array))?;
            for (k, e) in subs.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", e.display(prog.syms()))?;
            }
            write!(f, ")")
        }
    }
}

fn fmt_stmt(prog: &Program, id: StmtId, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let q = prog.quad(id);
    write!(f, "{:>5}: {:width$}", id.to_string(), "", width = indent * 2)?;
    match q.op {
        Opcode::Assign => {
            fmt_operand(prog, &q.dst, f)?;
            write!(f, " := ")?;
            fmt_operand(prog, &q.a, f)
        }
        Opcode::Neg => {
            fmt_operand(prog, &q.dst, f)?;
            write!(f, " := -")?;
            fmt_operand(prog, &q.a, f)
        }
        op if op.infix().is_some() => {
            fmt_operand(prog, &q.dst, f)?;
            write!(f, " := ")?;
            fmt_operand(prog, &q.a, f)?;
            write!(f, " {} ", op.infix().unwrap())?;
            fmt_operand(prog, &q.b, f)
        }
        Opcode::Call(fn_sym) => {
            fmt_operand(prog, &q.dst, f)?;
            write!(f, " := {}(", prog.syms().name(fn_sym))?;
            fmt_operand(prog, &q.a, f)?;
            if !q.b.is_none() {
                write!(f, ", ")?;
                fmt_operand(prog, &q.b, f)?;
            }
            write!(f, ")")
        }
        Opcode::DoHead | Opcode::ParDo => {
            write!(
                f,
                "{} ",
                if q.op == Opcode::ParDo { "pardo" } else { "do" }
            )?;
            fmt_operand(prog, &q.dst, f)?;
            write!(f, " = ")?;
            fmt_operand(prog, &q.a, f)?;
            write!(f, ", ")?;
            fmt_operand(prog, &q.b, f)
        }
        Opcode::EndDo => write!(f, "end do"),
        op if op.is_if() => {
            write!(f, "if ")?;
            fmt_operand(prog, &q.a, f)?;
            write!(f, " {} ", op.relop().unwrap())?;
            fmt_operand(prog, &q.b, f)?;
            write!(f, " then")
        }
        Opcode::Else => write!(f, "else"),
        Opcode::EndIf => write!(f, "end if"),
        Opcode::Read => {
            write!(f, "read ")?;
            fmt_operand(prog, &q.dst, f)
        }
        Opcode::Write => {
            write!(f, "write ")?;
            fmt_operand(prog, &q.a, f)
        }
        Opcode::Nop => write!(f, "nop"),
        _ => unreachable!("all opcodes handled"),
    }
}

impl fmt::Display for DisplayProgram<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prog = self.0;
        writeln!(f, "program {}", prog.name())?;
        let mut indent = 0usize;
        for id in prog.iter() {
            let op = prog.quad(id).op;
            if matches!(op, Opcode::EndDo | Opcode::EndIf | Opcode::Else) {
                indent = indent.saturating_sub(1);
            }
            fmt_stmt(prog, id, indent + 1, f)?;
            writeln!(f)?;
            if op.is_loop_head() || op.is_if() || op == Opcode::Else {
                indent += 1;
            }
        }
        writeln!(f, "end program")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AffineExpr, ProgramBuilder};

    #[test]
    fn listing_is_indented_and_complete() {
        let mut b = ProgramBuilder::new("demo");
        let i = b.scalar_int("i");
        let a = b.array_real("a", &[10]);
        let l = b.do_head(i, Operand::int(1), Operand::int(10));
        b.assign(Operand::elem1(a, AffineExpr::var(i)), Operand::real(0.0));
        b.end_do(l);
        b.write(Operand::elem1(a, AffineExpr::constant_expr(1)));
        let p = b.finish();
        let s = DisplayProgram(&p).to_string();
        assert!(s.contains("program demo"));
        assert!(s.contains("do i = 1, 10"));
        assert!(s.contains("a(i) := 0.0"));
        assert!(s.contains("end do"));
        assert!(s.contains("write a(1)"));
        // body is indented deeper than the loop header
        let head_line = s.lines().find(|l| l.contains("do i")).unwrap();
        let body_line = s.lines().find(|l| l.contains("a(i) :=")).unwrap();
        let indent = |l: &str| l.split(':').nth(1).unwrap().chars().take_while(|c| *c == ' ').count();
        assert!(indent(body_line) > indent(head_line));
    }
}
