//! Interned identifiers.

use std::collections::HashMap;
use std::fmt;

/// An interned identifier (variable, array or intrinsic-function name).
///
/// `Sym`s are cheap to copy and compare; the owning [`SymbolTable`] recovers
/// the spelling.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Index of this symbol inside its [`SymbolTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// Bidirectional map between identifier spellings and [`Sym`] values.
///
/// ```
/// use gospel_ir::SymbolTable;
/// let mut t = SymbolTable::new();
/// let a = t.intern("alpha");
/// assert_eq!(t.intern("alpha"), a);
/// assert_eq!(t.name(a), "alpha");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), s);
        s
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The spelling of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` does not belong to this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in interning order.
    pub fn iter(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.names.len()).map(|i| Sym(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        assert_ne!(a, b);
        assert_eq!(t.intern("x"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        assert_eq!(t.lookup("foo"), Some(a));
        assert_eq!(t.lookup("bar"), None);
        assert_eq!(t.name(a), "foo");
    }

    #[test]
    fn iter_covers_all() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let names: Vec<_> = t.iter().map(|s| t.name(s).to_owned()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
