//! Criterion bench: dependence-graph construction vs program size
//! (an extension beyond the paper: the analyzer is the substrate every
//! generated optimizer re-runs between applications).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gospel_dep::DepGraph;
use gospel_workloads::generator::{generate, GenConfig};

fn bench_depgraph(c: &mut Criterion) {
    let mut g = c.benchmark_group("depgraph");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    for statements in [50usize, 100, 200, 400] {
        let prog = generate(
            42,
            GenConfig {
                statements,
                ..GenConfig::default()
            },
        );
        g.bench_with_input(
            BenchmarkId::new("analyze", prog.len()),
            &prog,
            |b, prog| b.iter(|| DepGraph::analyze(prog).expect("analyzes")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_depgraph);
criterion_main!(benches);
