//! Criterion bench: a generated optimizer vs its hand-coded twin on the
//! same workload (the overhead of interpretation over the compiled plan —
//! the engineering counterpart of the paper's E1 quality comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesis_bench::{apply_generated, apply_hand};
use gospel_opts::by_name;

fn bench_generated_vs_hand(c: &mut Criterion) {
    let mut g = c.benchmark_group("generated_vs_hand");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    for opt_name in ["CTP", "DCE", "PAR", "FUS"] {
        let opt = by_name(opt_name);
        for prog_name in ["matmul", "interact"] {
            let prog = gospel_workloads::program(prog_name);
            g.bench_with_input(
                BenchmarkId::new(format!("{opt_name}/generated"), prog_name),
                &prog,
                |b, prog| b.iter(|| apply_generated(&opt, prog).expect("applies")),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{opt_name}/hand"), prog_name),
                &prog,
                |b, prog| {
                    b.iter(|| {
                        let mut scratch = prog.clone();
                        apply_hand(opt_name, &mut scratch).expect("applies")
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generated_vs_hand);
criterion_main!(benches);
