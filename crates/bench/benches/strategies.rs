//! Criterion bench: the two §4 membership-checking strategies plus the
//! heuristic, on the membership-heavy optimizations (E6's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesis::{Driver, Strategy};
use gospel_opts::by_name;

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategies");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    for opt_name in ["ICM", "INX", "FUS", "PAR"] {
        let base = by_name(opt_name);
        for (prog_name, prog) in gospel_workloads::suite() {
            for (label, strat) in [
                ("members_first", Strategy::MembersFirst),
                ("deps_first", Strategy::DepsFirst),
                ("heuristic", Strategy::Heuristic),
            ] {
                let opt = base.with_strategy(strat);
                g.bench_with_input(
                    BenchmarkId::new(format!("{opt_name}/{label}"), prog_name),
                    &prog,
                    |b, prog| {
                        b.iter(|| Driver::new(&opt).matches(prog).expect("scans"));
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
