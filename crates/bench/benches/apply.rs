//! Criterion bench: applying each generated optimizer to each suite
//! program (the wall-clock side of the §4 cost experiment, E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesis_bench::apply_generated;
use gospel_opts::catalog;

fn bench_apply(c: &mut Criterion) {
    let opts = catalog().expect("catalog generates");
    let suite = gospel_workloads::suite();
    let mut g = c.benchmark_group("apply");
    g.sample_size(15);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    for (name, prog) in &suite {
        for opt in &opts {
            g.bench_with_input(
                BenchmarkId::new(opt.name.clone(), name),
                prog,
                |b, prog| b.iter(|| apply_generated(opt, prog).expect("applies")),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
