//! # genesis-bench — the evaluation harness
//!
//! One module per experiment of the paper's §4 (see DESIGN.md's experiment
//! index E1–E7), plus the [`model`] machine model used to estimate
//! optimization *benefit* "taking into account code that was parallelized
//! and code that was eliminated … including vectorization and
//! multi-processing".
//!
//! Binaries under `src/bin/` print each experiment's table; the Criterion
//! benches measure the wall-clock side of the cost metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod model;

pub use experiments::*;
pub use model::MachineModel;
