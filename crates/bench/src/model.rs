//! A parameterized machine model for benefit estimation.
//!
//! The paper computes expected benefit "by estimating the impact the
//! optimization has on execution time, taking into account code that was
//! parallelized and code that was eliminated. Different architectural
//! characteristics were considered, including vectorization and
//! multi-processing." This model walks the loop structure, multiplies
//! statement costs by trip counts, divides parallel (`pardo`) loops by the
//! processor count, and divides vectorizable innermost loops by the vector
//! width.

use gospel_dep::DepGraph;
use gospel_ir::{Opcode, Program, StmtId};

/// Architectural parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Processors available to `pardo` loops.
    pub processors: f64,
    /// Vector lanes applied to vectorizable innermost loops (1 = scalar).
    pub vector_width: f64,
    /// Assumed trip count for loops with non-constant bounds.
    pub default_trip: f64,
    /// Per-parallel-loop startup/synchronization overhead (cycles).
    pub parallel_overhead: f64,
}

impl MachineModel {
    /// A single sequential processor.
    pub fn sequential() -> MachineModel {
        MachineModel {
            processors: 1.0,
            vector_width: 1.0,
            default_trip: 32.0,
            parallel_overhead: 0.0,
        }
    }

    /// A multiprocessor with `p` processors.
    pub fn multiprocessor(p: f64) -> MachineModel {
        MachineModel {
            processors: p,
            vector_width: 1.0,
            default_trip: 32.0,
            parallel_overhead: 16.0,
        }
    }

    /// A vector machine with `w` lanes.
    pub fn vector(w: f64) -> MachineModel {
        MachineModel {
            processors: 1.0,
            vector_width: w,
            default_trip: 32.0,
            parallel_overhead: 0.0,
        }
    }

    fn stmt_cost(op: Opcode) -> f64 {
        match op {
            Opcode::Assign | Opcode::Neg => 1.0,
            Opcode::Add | Opcode::Sub => 1.0,
            Opcode::Mul => 2.0,
            Opcode::Div | Opcode::Mod => 8.0,
            Opcode::Call(_) => 16.0,
            Opcode::Read | Opcode::Write => 4.0,
            op if op.is_if() => 1.0,
            Opcode::DoHead | Opcode::ParDo => 1.0, // per-iteration control
            _ => 0.0,
        }
    }

    /// Estimated execution time (abstract cycles) of the program.
    ///
    /// `deps` must be an analysis of the same snapshot (it supplies loop
    /// structure and the vectorizability of innermost loops).
    pub fn estimate(&self, prog: &Program, deps: &DepGraph) -> f64 {
        let loops = deps.loops();
        // Per-statement multiplier maintained with a stack while walking
        // program order.
        let mut total = 0.0;
        let mut mult_stack: Vec<f64> = vec![1.0];
        for stmt in prog.iter() {
            let op = prog.quad(stmt).op;
            let cur = *mult_stack.last().expect("non-empty stack");
            match op {
                Opcode::DoHead | Opcode::ParDo => {
                    let l = loops.loop_of_head(stmt).expect("header is a loop");
                    let trip = loops
                        .trip_count(l)
                        .map(|t| t as f64)
                        .unwrap_or(self.default_trip)
                        .max(0.0);
                    let mut per_iter = trip;
                    if op == Opcode::ParDo {
                        per_iter = (trip / self.processors).max(1.0);
                        total += cur * self.parallel_overhead;
                    } else if self.vector_width > 1.0 && self.vectorizable(prog, deps, l) {
                        per_iter = (trip / self.vector_width).max(1.0);
                    }
                    // header cost paid once per executed iteration
                    total += cur * per_iter * Self::stmt_cost(op);
                    mult_stack.push(cur * per_iter);
                }
                Opcode::EndDo => {
                    mult_stack.pop();
                }
                _ => {
                    total += cur * Self::stmt_cost(op);
                }
            }
        }
        total
    }

    /// A sequential innermost loop is vectorizable when none of its body
    /// statements depend on each other with a dependence carried at the
    /// loop's own level.
    fn vectorizable(&self, prog: &Program, deps: &DepGraph, l: gospel_ir::LoopId) -> bool {
        let loops = deps.loops();
        let info = loops.get(l);
        let body: Vec<StmtId> = loops.body(prog, l).collect();
        let innermost = body.iter().all(|&s| !prog.quad(s).op.is_loop_head());
        if !innermost {
            return false;
        }
        !body.iter().any(|&s| {
            deps.from(s)
                .any(|e| body.contains(&e.dst) && e.kind != gospel_dep::DepKind::Control && e.carried_at(info.depth))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;

    fn est(src: &str, m: MachineModel) -> f64 {
        let p = compile(src).unwrap();
        let d = DepGraph::analyze(&p).unwrap();
        m.estimate(&p, &d)
    }

    const SEQ_LOOP: &str =
        "program p\ninteger i\nreal a(100)\ndo i = 1, 100\na(i) = 1.0\nend do\nend";

    #[test]
    fn loops_multiply_cost() {
        let one = est("program p\nreal x\nx = 1.0\nend", MachineModel::sequential());
        let hundred = est(SEQ_LOOP, MachineModel::sequential());
        assert!(hundred > 50.0 * one, "{hundred} vs {one}");
    }

    #[test]
    fn parallel_loops_are_cheaper() {
        let seq = est(SEQ_LOOP, MachineModel::multiprocessor(8.0));
        // Build the parallel version through the PAR optimizer instead of
        // fabricating IR by hand.
        let mut p = compile(SEQ_LOOP).unwrap();
        gospel_opts::hand::par(&mut p).unwrap();
        let d = DepGraph::analyze(&p).unwrap();
        let par_est = MachineModel::multiprocessor(8.0).estimate(&p, &d);
        assert!(par_est < seq, "{par_est} vs {seq}");
    }

    #[test]
    fn vector_model_rewards_clean_inner_loops() {
        let scalar = est(SEQ_LOOP, MachineModel::sequential());
        let vector = est(SEQ_LOOP, MachineModel::vector(8.0));
        assert!(vector < scalar, "{vector} vs {scalar}");
        // a recurrence must not be vectorized
        let rec = "program p\ninteger i\nreal a(100)\ndo i = 2, 100\na(i) = a(i-1)\nend do\nend";
        let v = est(rec, MachineModel::vector(8.0));
        let s = est(rec, MachineModel::sequential());
        assert!((v - s).abs() < 1e-9, "{v} vs {s}");
    }
}
