//! The §4 experiments (E1–E7 in DESIGN.md), each as a function returning a
//! structured, printable report.

use crate::model::MachineModel;
use genesis::{emit, ApplyMode, CompiledOptimizer, Cost, Driver, Strategy};
use gospel_dep::DepGraph;
use gospel_ir::Program;
use gospel_opts::interaction::{self, natural_mode};
use gospel_opts::{by_name, catalog, hand, specs};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

fn suite() -> Vec<(&'static str, Program)> {
    gospel_workloads::suite()
}

// ===========================================================================
// E1 — generated vs hand-coded optimizers
// ===========================================================================

/// One (program, optimization) comparison.
#[derive(Clone, Debug)]
pub struct QualityRow {
    /// Workload name.
    pub program: String,
    /// Optimization acronym.
    pub opt: String,
    /// Applications made by the generated optimizer.
    pub generated: usize,
    /// Applications made by the hand-coded optimizer.
    pub hand: usize,
    /// Whether the two final programs are structurally identical.
    pub same_result: bool,
}

/// Runs every catalog optimization on every suite program, generated and
/// hand-coded, and compares application counts and final programs.
///
/// # Errors
///
/// Returns a description of the first driver failure.
pub fn e1_quality() -> Result<Vec<QualityRow>, String> {
    let opts = catalog().map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for (name, prog) in suite() {
        for opt in &opts {
            let mut gen_prog = prog.clone();
            let mut d = Driver::new(opt);
            let report = d
                .apply(&mut gen_prog, natural_mode(opt))
                .map_err(|e| format!("{name}/{}: {e}", opt.name))?;

            let mut hand_prog = prog.clone();
            let hand_apps =
                apply_hand(&opt.name, &mut hand_prog).map_err(|e| format!("{name}: {e}"))?;

            rows.push(QualityRow {
                program: name.to_string(),
                opt: opt.name.clone(),
                generated: report.applications,
                hand: hand_apps,
                same_result: gen_prog.structurally_eq(&hand_prog),
            });
        }
    }
    Ok(rows)
}

/// Dispatches to the hand-coded twin of a catalog optimization.
///
/// # Errors
///
/// Propagates the hand optimizer's failure.
pub fn apply_hand(name: &str, prog: &mut Program) -> Result<usize, String> {
    let r = match name.to_ascii_uppercase().as_str() {
        "CTP" => hand::ctp(prog),
        "CPP" => hand::cpp(prog),
        "CFO" => hand::cfo(prog),
        "DCE" => hand::dce(prog),
        "ICM" => hand::icm(prog),
        "LUR" => hand::lur(prog),
        "BMP" => hand::bmp(prog),
        "INX" => hand::inx(prog),
        "CRC" => hand::crc(prog),
        "PAR" => hand::par(prog),
        "FUS" => hand::fus(prog),
        other => return Err(format!("no hand-coded twin for `{other}`")),
    };
    r.map_err(|e| e.to_string())
}

/// Renders the E1 table.
pub fn format_quality(rows: &[QualityRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<10} {:<5} {:>9} {:>6} {:>7}", "program", "opt", "generated", "hand", "equal");
    let mut all_equal = true;
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:<5} {:>9} {:>6} {:>7}",
            r.program, r.opt, r.generated, r.hand, r.same_result
        );
        all_equal &= r.same_result && r.generated == r.hand;
    }
    let _ = writeln!(
        s,
        "=> generated optimizers {} the hand-coded ones",
        if all_equal { "MATCH" } else { "DIFFER FROM" }
    );
    s
}

// ===========================================================================
// E2 — application frequency and enablement
// ===========================================================================

/// The E2 report: per-optimization totals and CTP's enablement counts.
#[derive(Clone, Debug)]
pub struct E2Report {
    /// Applications per optimization per program.
    pub per_program: Vec<(String, BTreeMap<String, usize>)>,
    /// Suite-wide totals.
    pub totals: BTreeMap<String, usize>,
    /// CTP's enablement: optimization → opportunities created by CTP.
    pub ctp_enabled: BTreeMap<String, usize>,
    /// Programs where CPP applies at least once.
    pub cpp_programs: Vec<String>,
}

/// Counts application points of every optimization across the suite and
/// the opportunities CTP creates for DCE, CFO and LUR (the paper's
/// "97 application points … 13 enabled DCE, 5 enabled CFO, 41 enabled
/// LUR").
///
/// # Errors
///
/// Returns a description of the first driver failure.
pub fn e2_enablement() -> Result<E2Report, String> {
    let opts = catalog().map_err(|e| e.to_string())?;
    let ctp = by_name("CTP");
    let lur_ok = gospel_opts::compile_spec(specs::LUR_APPLICABLE).map_err(|e| e.to_string())?;

    let mut per_program = Vec::new();
    let mut totals: BTreeMap<String, usize> = BTreeMap::new();
    let mut ctp_enabled: BTreeMap<String, usize> = BTreeMap::new();
    let mut cpp_programs = Vec::new();

    for (name, prog) in suite() {
        let counts = interaction::count_all(&prog, &opts).map_err(|e| format!("{name}: {e}"))?;
        for (k, v) in &counts {
            *totals.entry(k.clone()).or_insert(0) += v;
        }
        if counts.get("CPP").copied().unwrap_or(0) > 0 {
            cpp_programs.push(name.to_string());
        }
        per_program.push((name.to_string(), counts));

        // CTP's enablement of DCE / CFO (by application) and LUR (by
        // applicability of the constant-bound pattern).
        for (target, by_match) in [("DCE", false), ("CFO", false)] {
            let e = interaction::enablement(&prog, &ctp, &by_name(target), by_match)
                .map_err(|e| format!("{name}: {e}"))?;
            *ctp_enabled.entry(target.to_string()).or_insert(0) += e.enabled();
        }
        let e = interaction::enablement(&prog, &ctp, &lur_ok, true)
            .map_err(|e| format!("{name}: {e}"))?;
        *ctp_enabled.entry("LUR".to_string()).or_insert(0) += e.enabled();
    }

    Ok(E2Report {
        per_program,
        totals,
        ctp_enabled,
        cpp_programs,
    })
}

/// Renders the E2 tables.
pub fn format_e2(r: &E2Report) -> String {
    let mut s = String::new();
    let names: Vec<&String> = r.totals.keys().collect();
    let _ = write!(s, "{:<10}", "program");
    for n in &names {
        let _ = write!(s, "{n:>5}");
    }
    let _ = writeln!(s);
    for (prog, counts) in &r.per_program {
        let _ = write!(s, "{prog:<10}");
        for n in &names {
            let _ = write!(s, "{:>5}", counts.get(*n).copied().unwrap_or(0));
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<10}", "TOTAL");
    for n in &names {
        let _ = write!(s, "{:>5}", r.totals[*n]);
    }
    let _ = writeln!(s);
    let _ = writeln!(s);
    let _ = writeln!(s, "CTP applications enabled further opportunities:");
    for (k, v) in &r.ctp_enabled {
        let _ = writeln!(s, "  CTP -> {k}: {v}");
    }
    let _ = writeln!(s, "CPP applies in {} program(s): {:?}", r.cpp_programs.len(), r.cpp_programs);
    let _ = writeln!(
        s,
        "ICM application points across the suite: {}",
        r.totals.get("ICM").copied().unwrap_or(0)
    );
    s
}

// ===========================================================================
// E3 — ordering interactions of FUS / INX / LUR
// ===========================================================================

/// The E3 report.
#[derive(Clone, Debug)]
pub struct E3Report {
    /// Per-ordering application counts.
    pub orders: Vec<(Vec<String>, Vec<usize>)>,
    /// Number of distinct final programs across the 6 orderings.
    pub distinct_finals: usize,
    /// Named interaction claims and whether they held.
    pub claims: Vec<(String, bool)>,
}

/// Reproduces the three-way interaction study on the `interact` workload.
///
/// # Errors
///
/// Returns a description of the first driver failure.
pub fn e3_ordering() -> Result<E3Report, String> {
    let prog = gospel_workloads::program("interact");
    let fus = by_name("FUS");
    let inx = by_name("INX");
    let lur = by_name("LUR");

    let outcomes =
        interaction::all_orders(&prog, &[&fus, &inx, &lur]).map_err(|e| e.to_string())?;
    let orders: Vec<(Vec<String>, Vec<usize>)> = outcomes
        .iter()
        .map(|o| (o.names.clone(), o.counts.clone()))
        .collect();
    let distinct_finals = interaction::distinct_results(&outcomes).len();

    let mut claims = Vec::new();

    // FUS disables INX (segment 2: fusing the outer loops breaks tightness).
    let e = interaction::enablement(&prog, &fus, &inx, true).map_err(|e| e.to_string())?;
    claims.push(("applying FUS disabled INX points".to_string(), e.disabled() > 0));

    // LUR disables FUS (segment 1: unrolling removes the fusable loops).
    let e = interaction::enablement(&prog, &lur, &fus, true).map_err(|e| e.to_string())?;
    claims.push(("applying LUR disabled FUS points".to_string(), e.disabled() > 0));

    // LUR does not disable INX (segment 2 untouched by unrolling).
    let e = interaction::enablement(&prog, &lur, &inx, true).map_err(|e| e.to_string())?;
    claims.push(("applying LUR left INX applicable".to_string(), e.disabled() == 0));

    // INX *enables* FUS in segment 3 (interchange the last nest) while
    // *disabling* it in segment 2 (interchange the first nest): the
    // direction of the interaction depends on the application point.
    let deps = DepGraph::analyze(&prog).map_err(|e| e.to_string())?;
    let tights = deps.loops().tight_pairs(&prog);
    let first_nest = deps.loops().get(tights.first().expect("has nests").0).head;
    let last_nest = deps.loops().get(tights.last().expect("has nests").0).head;
    let fus_count = |p: &Program| interaction::match_count(p, &fus).map_err(|e| e.to_string());

    let before = fus_count(&prog)?;
    let mut seg2 = prog.clone();
    Driver::new(&inx)
        .apply(&mut seg2, ApplyMode::AtPoint(first_nest))
        .map_err(|e| e.to_string())?;
    let after_seg2 = fus_count(&seg2)?;
    claims.push((
        "INX at segment 2 disabled a FUS point".to_string(),
        after_seg2 < before,
    ));

    let mut seg3 = prog.clone();
    Driver::new(&inx)
        .apply(&mut seg3, ApplyMode::AtPoint(last_nest))
        .map_err(|e| e.to_string())?;
    let after_seg3 = fus_count(&seg3)?;
    claims.push((
        "INX at segment 3 enabled a FUS point".to_string(),
        after_seg3 > before,
    ));

    Ok(E3Report {
        orders,
        distinct_finals,
        claims,
    })
}

/// Renders the E3 report.
pub fn format_e3(r: &E3Report) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<18} applications", "order");
    for (names, counts) in &r.orders {
        let _ = writeln!(s, "{:<18} {:?}", names.join(","), counts);
    }
    let _ = writeln!(s, "distinct final programs: {} of {}", r.distinct_finals, r.orders.len());
    for (claim, held) in &r.claims {
        let _ = writeln!(s, "[{}] {claim}", if *held { "ok" } else { "FAILED" });
    }
    s
}

// ===========================================================================
// E4 — cost and benefit
// ===========================================================================

/// One cost/benefit measurement.
#[derive(Clone, Debug)]
pub struct CostRow {
    /// Workload name.
    pub program: String,
    /// Optimization acronym.
    pub opt: String,
    /// Applications performed.
    pub applications: usize,
    /// The paper's cost metric for the whole run.
    pub cost: Cost,
    /// Wall-clock microseconds for the same run.
    pub wall_micros: u128,
    /// Cost of a pure precondition scan (no transformations).
    pub scan_cost: u64,
    /// Wall-clock microseconds of that scan.
    pub scan_micros: u128,
    /// Estimated cycles saved on a sequential machine.
    pub benefit_seq: f64,
    /// Estimated cycles saved on an 8-processor machine.
    pub benefit_par8: f64,
    /// Estimated cycles saved on an 8-lane vector machine.
    pub benefit_vec8: f64,
    /// Interpreter-executed statements before the optimization.
    pub steps_before: u64,
    /// … and after: the empirical "code that was eliminated" effect.
    pub steps_after: u64,
}

/// Measures cost (checks + transformation operations, and wall time) and
/// benefit (machine-model cycles saved) for every optimization on every
/// suite program. Interactive transformations are applied at their first
/// point, like the paper's interface would.
///
/// # Errors
///
/// Returns a description of the first driver failure.
pub fn e4_cost_benefit() -> Result<Vec<CostRow>, String> {
    let opts = catalog().map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for (name, prog) in suite() {
        // Benefit is measured between *constant-normalized* versions of
        // the before/after programs: otherwise a loop whose symbolic bound
        // becomes a known constant changes the model's assumed trip count
        // and the artifact swamps the real effect.
        let base = estimates(&normalize_constants(&prog)?)?;
        for opt in &opts {
            // Pure precondition scan: the cost↔time validation data.
            let scan_start = Instant::now();
            let scan = Driver::new(opt)
                .matches(&prog)
                .map_err(|e| format!("{name}/{}: {e}", opt.name))?;
            let scan_micros = scan_start.elapsed().as_micros();

            let (work, report, wall) = if natural_mode(opt) == ApplyMode::FirstPoint {
                // Interactive transformations: the paper's user picks the
                // application point; evaluate every point and keep the
                // most beneficial one.
                best_point(&prog, opt, &base)?
            } else {
                let mut work = prog.clone();
                let start = Instant::now();
                let report = Driver::new(opt)
                    .apply(&mut work, ApplyMode::AllPoints)
                    .map_err(|e| format!("{name}/{}: {e}", opt.name))?;
                let wall = start.elapsed().as_micros();
                (work, report, wall)
            };
            let after = estimates(&normalize_constants(&work)?)?;
            let steps_before = gospel_exec::run(&prog, &[])
                .map(|t| t.steps)
                .unwrap_or(0);
            let steps_after = gospel_exec::run(&work, &[]).map(|t| t.steps).unwrap_or(0);
            rows.push(CostRow {
                program: name.to_string(),
                opt: opt.name.clone(),
                applications: report.applications,
                cost: report.cost,
                wall_micros: wall,
                scan_cost: scan.cost.total(),
                scan_micros,
                benefit_seq: base[0] - after[0],
                benefit_par8: base[1] - after[1],
                benefit_vec8: base[2] - after[2],
                steps_before,
                steps_after,
            });
        }
    }
    Ok(rows)
}

/// Aggregates E4 rows per optimization and computes the cost↔time
/// correlation the paper validated ("estimated times very closely
/// reflect the actual times").
pub fn format_e4(rows: &[CostRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<6} {:>5} {:>9} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "program", "opt", "apps", "cost", "wall_us", "gain_seq", "gain_par8", "gain_vec8", "dyn_steps"
    );
    for r in rows {
        let dyn_delta = r.steps_before as i64 - r.steps_after as i64;
        let _ = writeln!(
            s,
            "{:<10} {:<6} {:>5} {:>9} {:>8} {:>11.0} {:>11.0} {:>11.0} {:>+11}",
            r.program,
            r.opt,
            r.applications,
            r.cost.total(),
            r.wall_micros,
            r.benefit_seq,
            r.benefit_par8,
            r.benefit_vec8,
            -dyn_delta
        );
    }
    // Per-opt summary.
    let mut agg: BTreeMap<&str, (u64, f64, f64, usize)> = BTreeMap::new();
    for r in rows {
        let e = agg.entry(&r.opt).or_insert((0, 0.0, 0.0, 0));
        e.0 += r.cost.total();
        e.1 += r.benefit_par8.max(r.benefit_vec8).max(r.benefit_seq);
        e.2 += r.wall_micros as f64;
        e.3 += r.applications;
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "{:<6} {:>10} {:>8} {:>12} {:>14}",
        "opt", "cost", "apps", "best_gain", "gain/cost"
    );
    for (opt, (cost, gain, _, apps)) in &agg {
        let ratio = if *cost > 0 { gain / *cost as f64 } else { 0.0 };
        let _ = writeln!(s, "{:<6} {:>10} {:>8} {:>12.0} {:>14.2}", opt, cost, apps, gain, ratio);
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "cost vs wall-time correlation (full runs): r = {:.3}", cost_time_correlation(rows));
    let _ = writeln!(s, "cost vs wall-time correlation (pure precondition scans): r = {:.3}", scan_correlation(rows));
    s
}

/// Applies an interactive transformation at each of its points on a
/// scratch copy, keeping the outcome with the largest modelled benefit.
fn best_point(
    prog: &Program,
    opt: &CompiledOptimizer,
    base: &[f64; 3],
) -> Result<(Program, genesis::ApplyReport, u128), String> {
    let anchors = point_anchors(prog, opt)?;
    let mut best: Option<(Program, genesis::ApplyReport, u128, f64)> = None;
    if anchors.is_empty() {
        // No points: measure the (empty) search itself.
        let mut work = prog.clone();
        let start = Instant::now();
        let report = Driver::new(opt)
            .apply(&mut work, ApplyMode::FirstPoint)
            .map_err(|e| e.to_string())?;
        return Ok((work, report, start.elapsed().as_micros()));
    }
    for anchor in anchors {
        let mut work = prog.clone();
        let start = Instant::now();
        let report = Driver::new(opt)
            .apply(&mut work, ApplyMode::AtPoint(anchor))
            .map_err(|e| e.to_string())?;
        let wall = start.elapsed().as_micros();
        let after = estimates(&normalize_constants(&work)?)?;
        let gain = (base[0] - after[0])
            .max(base[1] - after[1])
            .max(base[2] - after[2]);
        if best.as_ref().map(|(_, _, _, g)| gain > *g).unwrap_or(true) {
            best = Some((work, report, wall, gain));
        }
    }
    let (work, report, wall, _) = best.expect("anchors non-empty");
    Ok((work, report, wall))
}

/// The anchor statement (first pattern element) of every match.
fn point_anchors(prog: &Program, opt: &CompiledOptimizer) -> Result<Vec<gospel_ir::StmtId>, String> {
    let deps = DepGraph::analyze(prog).map_err(|e| e.to_string())?;
    let ms = Driver::new(opt).matches(prog).map_err(|e| e.to_string())?;
    let first_var = opt
        .patterns
        .first()
        .and_then(|(p, _)| p.vars.first())
        .cloned()
        .ok_or_else(|| "optimizer has no pattern clause".to_string())?;
    let mut anchors = Vec::new();
    for b in &ms.bindings {
        let anchor = match b.get(&first_var) {
            Some(genesis::RtVal::Stmt(s)) => Some(*s),
            Some(genesis::RtVal::Loop(l)) => Some(deps.loops().get(*l).head),
            _ => None,
        };
        if let Some(a) = anchor {
            if !anchors.contains(&a) {
                anchors.push(a);
            }
        }
    }
    Ok(anchors)
}

/// Pearson correlation between the scalar cost metric and wall time.
pub fn cost_time_correlation(rows: &[CostRow]) -> f64 {
    let xs: Vec<f64> = rows.iter().map(|r| r.cost.total() as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.wall_micros as f64).collect();
    pearson(&xs, &ys)
}

/// Pearson correlation between scan cost and scan wall time — the purest
/// form of the paper's "estimated times very closely reflect the actual
/// times" validation (no re-analysis or transformation in either side).
pub fn scan_correlation(rows: &[CostRow]) -> f64 {
    let xs: Vec<f64> = rows.iter().map(|r| r.scan_cost as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.scan_micros as f64).collect();
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

// ===========================================================================
// E5 — specification variants (LUR bound-check order)
// ===========================================================================

/// The E5 report: pattern checks performed by each LUR variant.
#[derive(Clone, Debug)]
pub struct E5Report {
    /// Per program: (upper-bound-first checks, lower-bound-first checks).
    pub per_program: Vec<(String, u64, u64)>,
}

/// Compares the two LUR specifications: testing the (more often variable)
/// upper bound first discards non-application points earlier, so it
/// performs fewer precondition checks.
///
/// # Errors
///
/// Returns a description of the first driver failure.
pub fn e5_spec_variants() -> Result<E5Report, String> {
    let upper_first = by_name("LUR");
    let lower_first =
        gospel_opts::compile_spec(specs::LUR_LOWER_FIRST).map_err(|e| e.to_string())?;
    let mut per_program = Vec::new();
    for (name, prog) in suite() {
        let a = Driver::new(&upper_first)
            .matches(&prog)
            .map_err(|e| e.to_string())?
            .cost
            .pattern_checks;
        let b = Driver::new(&lower_first)
            .matches(&prog)
            .map_err(|e| e.to_string())?
            .cost
            .pattern_checks;
        per_program.push((name.to_string(), a, b));
    }
    Ok(E5Report { per_program })
}

/// Renders the E5 table.
pub fn format_e5(r: &E5Report) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<10} {:>12} {:>12}", "program", "upper-first", "lower-first");
    let (mut ta, mut tb) = (0u64, 0u64);
    for (p, a, b) in &r.per_program {
        let _ = writeln!(s, "{p:<10} {a:>12} {b:>12}");
        ta += a;
        tb += b;
    }
    let _ = writeln!(s, "{:<10} {ta:>12} {tb:>12}", "TOTAL");
    let _ = writeln!(
        s,
        "=> checking the upper bound first saves {} checks ({:.1}%)",
        tb.saturating_sub(ta),
        100.0 * (tb.saturating_sub(ta)) as f64 / tb.max(1) as f64
    );
    s
}

// ===========================================================================
// E6 — membership-checking strategies
// ===========================================================================

/// One strategy measurement.
#[derive(Clone, Debug)]
pub struct StrategyRow {
    /// Workload name.
    pub program: String,
    /// Optimization acronym.
    pub opt: String,
    /// Dependence checks under members-then-dependences.
    pub members_first: u64,
    /// Dependence checks under dependences-then-membership.
    pub deps_first: u64,
    /// Dependence checks under the per-clause heuristic.
    pub heuristic: u64,
}

impl StrategyRow {
    /// Did the heuristic match (or beat) the better fixed strategy?
    pub fn heuristic_optimal(&self) -> bool {
        self.heuristic <= self.members_first.min(self.deps_first)
    }
}

/// Runs the membership-heavy optimizations under both §4 strategies and
/// the heuristic, measuring the dependence-check counts of a full match
/// scan.
///
/// # Errors
///
/// Returns a description of the first driver failure.
pub fn e6_strategies() -> Result<Vec<StrategyRow>, String> {
    let mut rows = Vec::new();
    for opt_name in ["ICM", "INX", "FUS", "PAR", "CRC"] {
        let base = by_name(opt_name);
        for (name, prog) in suite() {
            let measure = |s: Strategy| -> Result<u64, String> {
                Driver::new(&base.with_strategy(s))
                    .matches(&prog)
                    .map(|m| m.cost.dep_checks)
                    .map_err(|e| e.to_string())
            };
            rows.push(StrategyRow {
                program: name.to_string(),
                opt: opt_name.to_string(),
                members_first: measure(Strategy::MembersFirst)?,
                deps_first: measure(Strategy::DepsFirst)?,
                heuristic: measure(Strategy::Heuristic)?,
            });
        }
    }
    Ok(rows)
}

/// Renders the E6 table.
pub fn format_e6(rows: &[StrategyRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<5} {:>13} {:>11} {:>10} {:>8}",
        "program", "opt", "members-first", "deps-first", "heuristic", "best?"
    );
    let mut optimal = 0usize;
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:<5} {:>13} {:>11} {:>10} {:>8}",
            r.program,
            r.opt,
            r.members_first,
            r.deps_first,
            r.heuristic,
            r.heuristic_optimal()
        );
        optimal += usize::from(r.heuristic_optimal());
    }
    let _ = writeln!(
        s,
        "=> heuristic picked the cheaper implementation in {optimal}/{} cases",
        rows.len()
    );
    s
}

// ===========================================================================
// E7 — generated-code statistics
// ===========================================================================

/// One optimizer's generated-source statistics.
#[derive(Clone, Debug)]
pub struct LocRow {
    /// Optimization acronym.
    pub opt: String,
    /// Call-interface lines (paper average: 29).
    pub interface: usize,
    /// Generated-procedure lines (paper average: 70).
    pub procedures: usize,
}

/// Emits C for every catalog optimizer and counts lines — the paper's
/// "an optimization consists of 99 lines on the average" statistic.
///
/// # Errors
///
/// Returns a description of the first generation failure.
pub fn e7_loc_stats() -> Result<Vec<LocRow>, String> {
    let opts = catalog().map_err(|e| e.to_string())?;
    Ok(opts
        .iter()
        .map(|o| {
            let st = emit::stats(o);
            LocRow {
                opt: o.name.clone(),
                interface: st.interface_lines,
                procedures: st.procedure_lines,
            }
        })
        .collect())
}

/// Renders the E7 table.
pub fn format_e7(rows: &[LocRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<6} {:>10} {:>11} {:>7}", "opt", "interface", "procedures", "total");
    let mut sum = 0usize;
    for r in rows {
        let total = r.interface + r.procedures;
        sum += total;
        let _ = writeln!(s, "{:<6} {:>10} {:>11} {:>7}", r.opt, r.interface, r.procedures, total);
    }
    let _ = writeln!(
        s,
        "average generated lines per optimization: {} (paper: ≈99)",
        sum / rows.len().max(1)
    );
    s
}

/// Runs CTP and CFO alternately to a fixpoint so loop bounds become
/// explicit constants — the benefit model's oracle for trip counts.
///
/// # Errors
///
/// Propagates driver failures as strings.
pub fn normalize_constants(prog: &Program) -> Result<Program, String> {
    let ctp = by_name("CTP");
    let cfo = by_name("CFO");
    let mut p = prog.clone();
    for _ in 0..4 {
        let a = Driver::new(&ctp)
            .apply(&mut p, ApplyMode::AllPoints)
            .map_err(|e| e.to_string())?
            .applications;
        let b = Driver::new(&cfo)
            .apply(&mut p, ApplyMode::AllPoints)
            .map_err(|e| e.to_string())?
            .applications;
        if a + b == 0 {
            break;
        }
    }
    Ok(p)
}

fn estimates(prog: &Program) -> Result<[f64; 3], String> {
    let deps = DepGraph::analyze(prog).map_err(|e| e.to_string())?;
    Ok([
        MachineModel::sequential().estimate(prog, &deps),
        MachineModel::multiprocessor(8.0).estimate(prog, &deps),
        MachineModel::vector(8.0).estimate(prog, &deps),
    ])
}

/// Convenience wrapper used by one compiled optimizer against one program
/// (shared by the Criterion benches).
///
/// # Errors
///
/// Propagates driver failures as strings.
pub fn apply_generated(opt: &CompiledOptimizer, prog: &Program) -> Result<usize, String> {
    let mut scratch = prog.clone();
    Driver::new(opt)
        .apply(&mut scratch, natural_mode(opt))
        .map(|r| r.applications)
        .map_err(|e| e.to_string())
}
