//! Regenerates experiment E1 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    match genesis_bench::e1_quality() {
        Ok(r) => println!("{}", genesis_bench::format_quality(&r)),
        Err(e) => {
            eprintln!("E1 failed: {e}");
            std::process::exit(1);
        }
    }
}
