//! Regenerates experiment E2 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    match genesis_bench::e2_enablement() {
        Ok(r) => println!("{}", genesis_bench::format_e2(&r)),
        Err(e) => {
            eprintln!("E2 failed: {e}");
            std::process::exit(1);
        }
    }
}
