//! `gospel-bench` — full-vs-incremental dependence maintenance benchmark.
//!
//! Runs a chain-heavy optimizer sequence (CTP → CPP → DCE) over the ten
//! workload programs twice: once with the driver re-running the full
//! `DepGraph::analyze` after every application (the seed behaviour), and
//! once with the incremental `DepGraph::update` + resumed search. Reports
//! per-workload wall-clock (minimum over `--repeats` runs), the geometric
//! mean speedup over the multi-application workloads, and a cross-check
//! pass (`verify_deps`) asserting the incrementally-maintained graph
//! agrees with a fresh analysis after every application and that both
//! modes produce the same final program.
//!
//! Emits `BENCH_incremental.json` (override with `--out PATH`); `--smoke`
//! drops the repeat count for CI.

use genesis::{ApplyMode, ApplyReport, Driver, RunError};
use gospel_ir::{DisplayProgram, Program};
use gospel_trace::Recorder;
use std::sync::Arc;
use std::time::Instant;

/// The optimizer chain: constant propagation cascades, copy propagation
/// follows, invariant code motion and loop fusion restructure, dead-code
/// elimination and control-flow cleanup finish — the enablement sequence
/// of the §4 ordering experiments, sized like a real constructor session
/// (each optimizer in the chain forces the seed driver to re-analyze,
/// while the incremental driver carries one graph across the whole
/// session).
const SEQUENCE: [&str; 6] = ["CTP", "CPP", "ICM", "FUS", "DCE", "CFO"];

struct ModeRun {
    prog: Program,
    applications: usize,
    incremental_updates: usize,
    full_recomputes: usize,
    dep_dirty_syms: usize,
    dep_edges_dropped: usize,
    dep_edges_added: usize,
}

/// Runs the whole sequence over one program in the given mode. With a
/// recorder attached every driver emits the full structured-event stream
/// (the `--trace-gate` overhead measurement exercises exactly that path).
fn run_sequence(
    base: &Program,
    opts: &[genesis::CompiledOptimizer],
    incremental: bool,
    verify: bool,
    recorder: Option<&Arc<Recorder>>,
) -> Result<ModeRun, RunError> {
    let mut prog = base.clone();
    let mut total = ModeRun {
        prog: base.clone(),
        applications: 0,
        incremental_updates: 0,
        full_recomputes: 0,
        dep_dirty_syms: 0,
        dep_edges_dropped: 0,
        dep_edges_added: 0,
    };
    // Incremental mode also carries the graph across the chain (the
    // session cache); full mode re-analyzes per optimizer, as the seed
    // driver did.
    let mut cache = None;
    for opt in opts {
        let mut d = Driver::new(opt);
        d.incremental_deps = incremental;
        d.verify_deps = verify;
        d.recorder = recorder.cloned();
        let report: ApplyReport = if incremental {
            d.apply_cached(&mut prog, ApplyMode::AllPoints, &mut cache)?
        } else {
            d.apply(&mut prog, ApplyMode::AllPoints)?
        };
        total.applications += report.applications;
        total.incremental_updates += report.incremental_updates;
        total.full_recomputes += report.full_recomputes;
        total.dep_dirty_syms += report.dep_dirty_syms;
        total.dep_edges_dropped += report.dep_edges_dropped;
        total.dep_edges_added += report.dep_edges_added;
    }
    total.prog = prog;
    Ok(total)
}

/// Minimum wall time over `repeats` runs, in nanoseconds.
fn time_mode(
    base: &Program,
    opts: &[genesis::CompiledOptimizer],
    incremental: bool,
    repeats: usize,
    recorder: Option<&Arc<Recorder>>,
) -> Result<u128, RunError> {
    let mut best = u128::MAX;
    for _ in 0..repeats {
        let started = Instant::now();
        run_sequence(base, opts, incremental, false, recorder)?;
        best = best.min(started.elapsed().as_nanos());
        // Keep the event buffer bounded across repeats; draining happens
        // outside the timed region, like a real consumer streaming events.
        if let Some(r) = recorder {
            r.drain_events();
        }
    }
    Ok(best)
}

struct Row {
    name: &'static str,
    applications: usize,
    incremental_updates: usize,
    full_recomputes: usize,
    dep_dirty_syms: usize,
    dep_edges_dropped: usize,
    dep_edges_added: usize,
    full_ns: u128,
    incr_ns: u128,
    speedup: f64,
    verified: bool,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(
    rows: &[Row],
    repeats: usize,
    geomean: f64,
    multi: usize,
    overhead: Option<(u128, u128, f64)>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"incremental\",\n");
    out.push_str(&format!(
        "  \"sequence\": [{}],\n",
        SEQUENCE
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"applications\": {}, \"incremental_updates\": {}, \
             \"full_recomputes\": {}, \"dep_dirty_syms\": {}, \"dep_edges_dropped\": {}, \
             \"dep_edges_added\": {}, \"full_ns\": {}, \"incremental_ns\": {}, \
             \"speedup\": {:.3}, \"verified\": {}}}{}\n",
            json_escape(r.name),
            r.applications,
            r.incremental_updates,
            r.full_recomputes,
            r.dep_dirty_syms,
            r.dep_edges_dropped,
            r.dep_edges_added,
            r.full_ns,
            r.incr_ns,
            r.speedup,
            r.verified,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"multi_application_workloads\": {multi},\n  \"geomean_speedup_multi\": {geomean:.3}"
    ));
    if let Some((bare_ns, traced_ns, pct)) = overhead {
        out.push_str(&format!(
            ",\n  \"trace_overhead\": {{\"bare_ns\": {bare_ns}, \"traced_ns\": {traced_ns}, \
             \"overhead_pct\": {pct:.3}}}"
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Measures tracing overhead over the same work the benchmark times —
/// both full-recompute and incremental modes across all workloads, with
/// and without a live recorder streaming every event. Returns
/// (bare_ns, traced_ns, overhead_pct).
///
/// Statistic: per (workload, mode) cell, the bare/traced arms run
/// back-to-back inside each repeat, so the per-repeat *ratio* is immune
/// to the slow clock-frequency drift that makes two independently
/// minimized arms incomparable on a busy machine; the per-cell ratio is
/// the median over repeats, and the overall percentage time-weights the
/// cell ratios by the cell's bare minimum.
fn measure_trace_overhead(
    suite: &[(&'static str, Program)],
    opts: &[genesis::CompiledOptimizer],
    repeats: usize,
) -> (u128, u128, f64) {
    let rec = Arc::new(Recorder::new());
    // More repeats than the timing table uses: the gate compares two
    // nearly-equal quantities, so its median needs a wide sample.
    let repeats = repeats.max(50);
    let mut bare_total: u128 = 0;
    let mut traced_est: f64 = 0.0;
    for (name, base) in suite {
        for incremental in [false, true] {
            // Untimed warmup so neither arm pays first-touch costs.
            run_sequence(base, opts, incremental, false, None)
                .unwrap_or_else(|e| panic!("{name}: overhead warmup run failed: {e}"));
            let mut bare_min = u128::MAX;
            let mut ratios = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                // Alternate which arm goes first: the second slot of a
                // back-to-back pair runs warmer, and always giving it to
                // the same arm would bias the ratio.
                let traced_first = rep % 2 == 1;
                let time_arm = |traced: bool| -> u128 {
                    let r = if traced { Some(&rec) } else { None };
                    let t = Instant::now();
                    run_sequence(base, opts, incremental, false, r)
                        .unwrap_or_else(|e| panic!("{name}: overhead run failed: {e}"));
                    let ns = t.elapsed().as_nanos();
                    if traced {
                        rec.drain_events();
                    }
                    ns
                };
                let (bare, traced) = if traced_first {
                    let t = time_arm(true);
                    (time_arm(false), t)
                } else {
                    let b = time_arm(false);
                    (b, time_arm(true))
                };
                bare_min = bare_min.min(bare);
                if bare > 0 {
                    ratios.push(traced as f64 / bare as f64);
                }
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median = ratios.get(ratios.len() / 2).copied().unwrap_or(1.0);
            bare_total += bare_min;
            traced_est += bare_min as f64 * median;
        }
    }
    let pct = if bare_total == 0 {
        0.0
    } else {
        (traced_est / bare_total as f64 - 1.0) * 100.0
    };
    (bare_total, traced_est as u128, pct)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_incremental.json");
    let mut repeats = if smoke { 3 } else { 30 };
    let mut trace_gate: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--repeats needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--trace-gate" => {
                trace_gate = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--trace-gate needs a percentage (e.g. 5)");
                    std::process::exit(2);
                }));
            }
            "--smoke" => {}
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --out PATH | --repeats N | --smoke | --trace-gate PCT)"
                );
                std::process::exit(2);
            }
        }
    }

    let opts: Vec<_> = SEQUENCE.iter().map(|n| gospel_opts::by_name(n)).collect();
    let suite = gospel_workloads::suite();
    let mut rows = Vec::new();

    for (name, base) in &suite {
        // Cross-check pass (untimed): incremental with per-application
        // graph verification, compared against the full-recompute result.
        let full = run_sequence(base, &opts, false, false, None)
            .unwrap_or_else(|e| panic!("{name}: full-mode run failed: {e}"));
        let incr = run_sequence(base, &opts, true, true, None)
            .unwrap_or_else(|e| panic!("{name}: incremental graph diverged: {e}"));
        let same_prog = DisplayProgram(&full.prog).to_string()
            == DisplayProgram(&incr.prog).to_string();
        assert!(
            same_prog && full.applications == incr.applications,
            "{name}: modes disagree (full {} apps, incremental {} apps, programs equal: {})",
            full.applications,
            incr.applications,
            same_prog
        );

        let full_ns = time_mode(base, &opts, false, repeats, None)
            .unwrap_or_else(|e| panic!("{name}: timing full mode failed: {e}"));
        let incr_ns = time_mode(base, &opts, true, repeats, None)
            .unwrap_or_else(|e| panic!("{name}: timing incremental mode failed: {e}"));
        rows.push(Row {
            name,
            applications: incr.applications,
            incremental_updates: incr.incremental_updates,
            full_recomputes: incr.full_recomputes,
            dep_dirty_syms: incr.dep_dirty_syms,
            dep_edges_dropped: incr.dep_edges_dropped,
            dep_edges_added: incr.dep_edges_added,
            full_ns,
            incr_ns,
            speedup: full_ns as f64 / incr_ns.max(1) as f64,
            verified: true,
        });
    }

    let multi: Vec<&Row> = rows.iter().filter(|r| r.applications >= 2).collect();
    let geomean = if multi.is_empty() {
        1.0
    } else {
        (multi.iter().map(|r| r.speedup.ln()).sum::<f64>() / multi.len() as f64).exp()
    };

    println!(
        "{:<12} {:>5} {:>6} {:>5} {:>12} {:>12} {:>8}",
        "workload", "apps", "incr", "full", "full (ns)", "incr (ns)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<12} {:>5} {:>6} {:>5} {:>12} {:>12} {:>7.2}x",
            r.name,
            r.applications,
            r.incremental_updates,
            r.full_recomputes,
            r.full_ns,
            r.incr_ns,
            r.speedup
        );
    }
    println!(
        "geomean speedup over {} multi-application workloads: {:.2}x",
        multi.len(),
        geomean
    );

    let overhead = trace_gate.map(|limit| {
        let (bare_ns, traced_ns, pct) = measure_trace_overhead(&suite, &opts, repeats);
        println!(
            "trace overhead: {pct:.2}% (bare {bare_ns} ns, traced {traced_ns} ns, limit {limit}%)"
        );
        (bare_ns, traced_ns, pct)
    });

    let json = emit_json(&rows, repeats, geomean, multi.len(), overhead);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    if let (Some(limit), Some((_, _, pct))) = (trace_gate, overhead) {
        if pct > limit {
            eprintln!("error: tracing overhead {pct:.2}% exceeds the {limit}% gate");
            std::process::exit(1);
        }
    }
}
