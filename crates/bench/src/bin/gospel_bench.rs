//! `gospel-bench` — full-vs-incremental dependence maintenance benchmark.
//!
//! Runs a chain-heavy optimizer sequence (CTP → CPP → DCE) over the ten
//! workload programs twice: once with the driver re-running the full
//! `DepGraph::analyze` after every application (the seed behaviour), and
//! once with the incremental `DepGraph::update` + resumed search. Reports
//! per-workload wall-clock (minimum over `--repeats` runs), the geometric
//! mean speedup over the multi-application workloads, and a cross-check
//! pass (`verify_deps`) asserting the incrementally-maintained graph
//! agrees with a fresh analysis after every application and that both
//! modes produce the same final program.
//!
//! Emits `BENCH_incremental.json` (override with `--out PATH`); `--smoke`
//! drops the repeat count for CI.
//!
//! `gospel-bench match` runs the matcher comparison three ways: the full
//! anchor scan, the per-optimizer indexed searcher ([`genesis::StmtIndex`]
//! plus negative match cache), and the fused catalog automaton
//! ([`genesis::FusedAutomaton`]), with dependence maintenance held
//! incremental in every arm so the delta is the match phase alone. All
//! three arms share one [`genesis::SessionCaches`] across the optimizer
//! chain — the amortization the fused automaton exists to exploit. It
//! cross-checks that every matcher binds identical application points and
//! lands on the same final program, times the match phase via the
//! driver's `driver.search_ns`/`driver.pattern_ns` histograms, measures
//! batch throughput at 1/2/4 threads through [`genesis::run_batch`], and
//! emits `BENCH_match.json`. `--scan-gate 1.05` exits nonzero if the
//! indexed match-phase geomean falls below 1/1.05 of the scan;
//! `--fused-gate 1.0` exits nonzero if the fused *wall-clock* geomean
//! falls below the scan's.

use genesis::{
    ApplyMode, ApplyReport, Bindings, Driver, FusedAutomaton, MatcherKind, RunError, SessionCaches,
};
use gospel_ir::{DisplayProgram, Program};
use gospel_trace::Recorder;
use std::sync::Arc;
use std::time::Instant;

/// The optimizer chain: constant propagation cascades, copy propagation
/// follows, invariant code motion and loop fusion restructure, dead-code
/// elimination and control-flow cleanup finish — the enablement sequence
/// of the §4 ordering experiments, sized like a real constructor session
/// (each optimizer in the chain forces the seed driver to re-analyze,
/// while the incremental driver carries one graph across the whole
/// session).
const SEQUENCE: [&str; 6] = ["CTP", "CPP", "ICM", "FUS", "DCE", "CFO"];

struct ModeRun {
    prog: Program,
    applications: usize,
    incremental_updates: usize,
    full_recomputes: usize,
    dep_dirty_syms: usize,
    dep_edges_dropped: usize,
    dep_edges_added: usize,
}

/// Runs the whole sequence over one program in the given mode. With a
/// recorder attached every driver emits the full structured-event stream
/// (the `--trace-gate` overhead measurement exercises exactly that path);
/// `trace_sample` keeps one in N attempt spans, as in production tracing.
fn run_sequence(
    base: &Program,
    opts: &[genesis::CompiledOptimizer],
    incremental: bool,
    verify: bool,
    recorder: Option<&Arc<Recorder>>,
    trace_sample: u64,
) -> Result<ModeRun, RunError> {
    let mut prog = base.clone();
    let mut total = ModeRun {
        prog: base.clone(),
        applications: 0,
        incremental_updates: 0,
        full_recomputes: 0,
        dep_dirty_syms: 0,
        dep_edges_dropped: 0,
        dep_edges_added: 0,
    };
    // Incremental mode also carries the graph across the chain (the
    // session cache); full mode re-analyzes per optimizer, as the seed
    // driver did.
    let mut cache = None;
    for opt in opts {
        let mut d = Driver::new(opt);
        d.incremental_deps = incremental;
        d.verify_deps = verify;
        // Pin the per-optimizer indexed matcher so this benchmark keeps
        // measuring dependence maintenance alone, independent of the
        // session default (the matcher comparison lives in `match` mode).
        d.matcher = MatcherKind::Indexed;
        d.recorder = recorder.cloned();
        d.trace_sample = trace_sample;
        let report: ApplyReport = if incremental {
            d.apply_cached(&mut prog, ApplyMode::AllPoints, &mut cache)?
        } else {
            d.apply(&mut prog, ApplyMode::AllPoints)?
        };
        total.applications += report.applications;
        total.incremental_updates += report.incremental_updates;
        total.full_recomputes += report.full_recomputes;
        total.dep_dirty_syms += report.dep_dirty_syms;
        total.dep_edges_dropped += report.dep_edges_dropped;
        total.dep_edges_added += report.dep_edges_added;
    }
    total.prog = prog;
    Ok(total)
}

/// Minimum wall time over `repeats` runs, in nanoseconds.
fn time_mode(
    base: &Program,
    opts: &[genesis::CompiledOptimizer],
    incremental: bool,
    repeats: usize,
    recorder: Option<&Arc<Recorder>>,
) -> Result<u128, RunError> {
    let mut best = u128::MAX;
    for _ in 0..repeats {
        let started = Instant::now();
        run_sequence(base, opts, incremental, false, recorder, 1)?;
        best = best.min(started.elapsed().as_nanos());
        // Keep the event buffer bounded across repeats; draining happens
        // outside the timed region, like a real consumer streaming events.
        if let Some(r) = recorder {
            r.drain_events();
        }
    }
    Ok(best)
}

struct Row {
    name: &'static str,
    applications: usize,
    incremental_updates: usize,
    full_recomputes: usize,
    dep_dirty_syms: usize,
    dep_edges_dropped: usize,
    dep_edges_added: usize,
    full_ns: u128,
    incr_ns: u128,
    speedup: f64,
    verified: bool,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(
    rows: &[Row],
    repeats: usize,
    geomean: f64,
    multi: usize,
    overhead: Option<(u128, u128, f64)>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"incremental\",\n");
    out.push_str(&format!(
        "  \"sequence\": [{}],\n",
        SEQUENCE
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"applications\": {}, \"incremental_updates\": {}, \
             \"full_recomputes\": {}, \"dep_dirty_syms\": {}, \"dep_edges_dropped\": {}, \
             \"dep_edges_added\": {}, \"full_ns\": {}, \"incremental_ns\": {}, \
             \"speedup\": {:.3}, \"verified\": {}}}{}\n",
            json_escape(r.name),
            r.applications,
            r.incremental_updates,
            r.full_recomputes,
            r.dep_dirty_syms,
            r.dep_edges_dropped,
            r.dep_edges_added,
            r.full_ns,
            r.incr_ns,
            r.speedup,
            r.verified,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"multi_application_workloads\": {multi},\n  \"geomean_speedup_multi\": {geomean:.3}"
    ));
    if let Some((bare_ns, traced_ns, pct)) = overhead {
        out.push_str(&format!(
            ",\n  \"trace_overhead\": {{\"bare_ns\": {bare_ns}, \"traced_ns\": {traced_ns}, \
             \"overhead_pct\": {pct:.3}}}"
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Measures tracing overhead over the same work the benchmark times —
/// both full-recompute and incremental modes across all workloads, with
/// and without a live recorder streaming every event. Returns
/// (bare_ns, traced_ns, overhead_pct).
///
/// Statistic: per (workload, mode) cell, the bare/traced arms run
/// back-to-back inside each repeat, so the per-repeat *ratio* is immune
/// to the slow clock-frequency drift that makes two independently
/// minimized arms incomparable on a busy machine; the per-cell ratio is
/// the median over repeats, and the overall percentage time-weights the
/// cell ratios by the cell's bare minimum.
fn measure_trace_overhead(
    suite: &[(&'static str, Program)],
    opts: &[genesis::CompiledOptimizer],
    repeats: usize,
    trace_sample: u64,
) -> (u128, u128, f64) {
    let rec = Arc::new(Recorder::new());
    // More repeats than the timing table uses: the gate compares two
    // nearly-equal quantities, so its median needs a wide sample.
    let repeats = repeats.max(50);
    let mut bare_total: u128 = 0;
    let mut traced_est: f64 = 0.0;
    for (name, base) in suite {
        for incremental in [false, true] {
            // Untimed warmup so neither arm pays first-touch costs.
            run_sequence(base, opts, incremental, false, None, 1)
                .unwrap_or_else(|e| panic!("{name}: overhead warmup run failed: {e}"));
            let mut bare_min = u128::MAX;
            let mut ratios = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                // Alternate which arm goes first: the second slot of a
                // back-to-back pair runs warmer, and always giving it to
                // the same arm would bias the ratio.
                let traced_first = rep % 2 == 1;
                let time_arm = |traced: bool| -> u128 {
                    let r = if traced { Some(&rec) } else { None };
                    let t = Instant::now();
                    run_sequence(base, opts, incremental, false, r, trace_sample)
                        .unwrap_or_else(|e| panic!("{name}: overhead run failed: {e}"));
                    let ns = t.elapsed().as_nanos();
                    if traced {
                        rec.drain_events();
                    }
                    ns
                };
                let (bare, traced) = if traced_first {
                    let t = time_arm(true);
                    (time_arm(false), t)
                } else {
                    let b = time_arm(false);
                    (b, time_arm(true))
                };
                bare_min = bare_min.min(bare);
                if bare > 0 {
                    ratios.push(traced as f64 / bare as f64);
                }
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median = ratios.get(ratios.len() / 2).copied().unwrap_or(1.0);
            bare_total += bare_min;
            traced_est += bare_min as f64 * median;
        }
    }
    let pct = if bare_total == 0 {
        0.0
    } else {
        (traced_est / bare_total as f64 - 1.0) * 100.0
    };
    (bare_total, traced_est as u128, pct)
}

// ---------------------------------------------------------------------------
// `match` mode: scan vs indexed vs fused candidate search.
// ---------------------------------------------------------------------------

/// One full sequence over one program under one matcher. Dependence
/// maintenance is incremental in every arm and all arms carry one
/// [`SessionCaches`] across the optimizer chain, so the only work that
/// differs between them is the match phase itself.
struct MatchRun {
    prog: Program,
    applications: usize,
    anchor_visits: u64,
    candidates_pruned: u64,
    cache_hits: u64,
    /// Per-optimizer application bindings, for the differential cross-check.
    points: Vec<Vec<Bindings>>,
}

fn run_match_sequence(
    base: &Program,
    opts: &[genesis::CompiledOptimizer],
    matcher: MatcherKind,
    recorder: Option<&Arc<Recorder>>,
) -> Result<MatchRun, RunError> {
    let mut prog = base.clone();
    let mut total = MatchRun {
        prog: base.clone(),
        applications: 0,
        anchor_visits: 0,
        candidates_pruned: 0,
        cache_hits: 0,
        points: Vec::with_capacity(opts.len()),
    };
    // One cache bundle for the whole chain — the session amortization the
    // fused automaton exists to exploit. The fused arm builds the catalog
    // automaton once up front, exactly as `Session::apply` does; the
    // drivers then keep it current by delta replay.
    let mut caches = SessionCaches::new();
    if matcher == MatcherKind::Fused {
        caches.automaton = Some(FusedAutomaton::build(opts, &prog));
    }
    for opt in opts {
        let mut d = Driver::new(opt);
        d.incremental_deps = true;
        d.matcher = matcher;
        d.recorder = recorder.cloned();
        let report = d.apply_with(&mut prog, ApplyMode::AllPoints, &mut caches)?;
        total.applications += report.applications;
        total.anchor_visits += report.cost.anchor_visits;
        total.candidates_pruned += report.candidates_pruned;
        total.cache_hits += report.cache_hits;
        total.points.push(report.points);
    }
    total.prog = prog;
    Ok(total)
}

/// Minimum (wall_ns, search_ns, match_ns) over `repeats` runs, read from
/// the driver's per-attempt histograms: `driver.search_ns` is the whole
/// precondition search (pattern + dependence phases), `driver.pattern_ns`
/// the pattern-matching phase alone — candidate enumeration plus clause
/// format evaluation, the part the index and automaton replace. Every arm
/// carries the same recorder and timer overhead, so the ratios are
/// apples-to-apples.
fn time_match_mode(
    base: &Program,
    opts: &[genesis::CompiledOptimizer],
    matcher: MatcherKind,
    repeats: usize,
) -> Result<(u128, u64, u64), RunError> {
    let mut best_wall = u128::MAX;
    let mut best_search = u64::MAX;
    let mut best_match = u64::MAX;
    for _ in 0..repeats {
        let rec = Arc::new(Recorder::new());
        let started = Instant::now();
        run_match_sequence(base, opts, matcher, Some(&rec))?;
        let wall = started.elapsed().as_nanos();
        let hist = |name: &str| {
            rec.histograms()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.sum)
                .unwrap_or(0)
        };
        best_wall = best_wall.min(wall);
        best_search = best_search.min(hist("driver.search_ns"));
        best_match = best_match.min(hist("driver.pattern_ns"));
    }
    Ok((best_wall, best_search, best_match))
}

/// Per-matcher timing triple: (wall_ns, search_ns, match_ns).
type MatchTimes = (u128, u64, u64);

struct MatchRow {
    name: &'static str,
    applications: usize,
    scan_visits: u64,
    indexed_visits: u64,
    fused_visits: u64,
    candidates_pruned: u64,
    cache_hits: u64,
    scan: MatchTimes,
    indexed: MatchTimes,
    fused: MatchTimes,
    /// scan match-phase ns over indexed match-phase ns.
    match_speedup: f64,
    /// scan match-phase ns over fused match-phase ns.
    fused_match_speedup: f64,
    /// scan wall ns over fused wall ns — the end-to-end win the fused
    /// automaton has to deliver.
    fused_wall_speedup: f64,
}

fn emit_match_json(
    rows: &[MatchRow],
    seq: &[String],
    repeats: usize,
    geomeans: (f64, f64, f64),
    items: usize,
    batch: &[(usize, u128)],
) -> String {
    let (geomean, fused_match_geomean, fused_wall_geomean) = geomeans;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"match\",\n");
    out.push_str("  \"matchers\": [\"scan\", \"indexed\", \"fused\"],\n");
    out.push_str(&format!(
        "  \"sequence\": [{}],\n",
        seq.iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"applications\": {}, \"scan_anchor_visits\": {}, \
             \"indexed_anchor_visits\": {}, \"fused_anchor_visits\": {}, \
             \"candidates_pruned\": {}, \"cache_hits\": {}, \
             \"scan_wall_ns\": {}, \"indexed_wall_ns\": {}, \"fused_wall_ns\": {}, \
             \"scan_search_ns\": {}, \"indexed_search_ns\": {}, \"fused_search_ns\": {}, \
             \"scan_match_ns\": {}, \"indexed_match_ns\": {}, \"fused_match_ns\": {}, \
             \"match_speedup\": {:.3}, \"fused_match_speedup\": {:.3}, \
             \"fused_wall_speedup\": {:.3}, \"bindings_checked\": true}}{}\n",
            json_escape(r.name),
            r.applications,
            r.scan_visits,
            r.indexed_visits,
            r.fused_visits,
            r.candidates_pruned,
            r.cache_hits,
            r.scan.0,
            r.indexed.0,
            r.fused.0,
            r.scan.1,
            r.indexed.1,
            r.fused.1,
            r.scan.2,
            r.indexed.2,
            r.fused.2,
            r.match_speedup,
            r.fused_match_speedup,
            r.fused_wall_speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"geomean_match_speedup\": {geomean:.3},\n"));
    out.push_str(&format!(
        "  \"geomean_fused_match_speedup\": {fused_match_geomean:.3},\n"
    ));
    out.push_str(&format!(
        "  \"geomean_fused_wall_speedup\": {fused_wall_geomean:.3},\n"
    ));
    out.push_str("  \"batch\": {\n");
    out.push_str(&format!("    \"items\": {items},\n    \"threads\": [\n"));
    for (i, (threads, ns)) in batch.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"threads\": {threads}, \"wall_ns\": {ns}}}{}\n",
            if i + 1 == batch.len() { "" } else { "," }
        ));
    }
    out.push_str("    ],\n");
    let base = batch.first().map(|&(_, ns)| ns).unwrap_or(1).max(1);
    let best = batch.last().map(|&(_, ns)| ns).unwrap_or(1).max(1);
    out.push_str(&format!(
        "    \"speedup_4_over_1\": {:.3}\n  }}\n}}\n",
        base as f64 / best as f64
    ));
    out
}

/// Each workload appears this many times in the batch-scaling measurement,
/// so the pool has enough items to keep every worker busy.
const BATCH_REPLICAS: usize = 2;

fn batch_items(suite: &[(&'static str, Program)]) -> Vec<genesis::BatchItem> {
    let mut items = Vec::with_capacity(suite.len() * BATCH_REPLICAS);
    for rep in 0..BATCH_REPLICAS {
        for (name, prog) in suite {
            items.push(genesis::BatchItem {
                label: format!("{name}#{rep}"),
                prog: prog.clone(),
            });
        }
    }
    items
}

fn run_match_bench(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_match.json");
    let mut repeats = if smoke { 3 } else { 30 };
    let mut scan_gate: Option<f64> = None;
    let mut fused_gate: Option<f64> = None;
    let mut seq: Vec<String> = SEQUENCE.iter().map(|s| s.to_string()).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seq" => {
                seq = it
                    .next()
                    .map(|v| v.split(',').map(str::to_string).collect())
                    .unwrap_or_else(|| {
                        eprintln!("--seq needs a comma-separated optimizer list");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                out_path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                repeats = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--repeats needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--scan-gate" => {
                scan_gate = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scan-gate needs a ratio (e.g. 1.05)");
                    std::process::exit(2);
                }));
            }
            "--fused-gate" => {
                fused_gate = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fused-gate needs a ratio (e.g. 1.0)");
                    std::process::exit(2);
                }));
            }
            "--smoke" => {}
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --seq A,B | --out PATH | --repeats N | --smoke | --scan-gate RATIO | --fused-gate RATIO)"
                );
                std::process::exit(2);
            }
        }
    }

    let opts: Vec<_> = seq.iter().map(|n| gospel_opts::by_name(n)).collect();
    let suite = gospel_workloads::suite();
    let mut rows = Vec::new();

    for (name, base) in &suite {
        // Differential cross-check (untimed): every matcher must find
        // exactly the bindings the scanning searcher finds, in the same
        // order, application by application, and land on the same final
        // program.
        let scan = run_match_sequence(base, &opts, MatcherKind::Scan, None)
            .unwrap_or_else(|e| panic!("{name}: scan-mode run failed: {e}"));
        let indexed = run_match_sequence(base, &opts, MatcherKind::Indexed, None)
            .unwrap_or_else(|e| panic!("{name}: indexed-mode run failed: {e}"));
        let fused = run_match_sequence(base, &opts, MatcherKind::Fused, None)
            .unwrap_or_else(|e| panic!("{name}: fused-mode run failed: {e}"));
        for (label, arm) in [("indexed", &indexed), ("fused", &fused)] {
            assert_eq!(
                scan.points, arm.points,
                "{name}: {label} search bound different application points than the scan"
            );
            assert!(
                DisplayProgram(&scan.prog).to_string() == DisplayProgram(&arm.prog).to_string()
                    && scan.applications == arm.applications,
                "{name}: modes disagree (scan {} apps, {label} {} apps)",
                scan.applications,
                arm.applications
            );
        }

        let time = |matcher: MatcherKind| {
            time_match_mode(base, &opts, matcher, repeats).unwrap_or_else(|e| {
                panic!("{name}: timing {} mode failed: {e}", matcher.as_str())
            })
        };
        let scan_t = time(MatcherKind::Scan);
        let indexed_t = time(MatcherKind::Indexed);
        let fused_t = time(MatcherKind::Fused);
        rows.push(MatchRow {
            name,
            applications: fused.applications,
            scan_visits: scan.anchor_visits,
            indexed_visits: indexed.anchor_visits,
            fused_visits: fused.anchor_visits,
            candidates_pruned: fused.candidates_pruned,
            cache_hits: fused.cache_hits,
            scan: scan_t,
            indexed: indexed_t,
            fused: fused_t,
            match_speedup: scan_t.2 as f64 / indexed_t.2.max(1) as f64,
            fused_match_speedup: scan_t.2 as f64 / fused_t.2.max(1) as f64,
            fused_wall_speedup: scan_t.0 as f64 / fused_t.0.max(1) as f64,
        });
    }

    let geomean_of = |f: &dyn Fn(&MatchRow) -> f64| {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let geomean = geomean_of(&|r| r.match_speedup);
    let fused_match_geomean = geomean_of(&|r| r.fused_match_speedup);
    let fused_wall_geomean = geomean_of(&|r| r.fused_wall_speedup);

    println!(
        "{:<12} {:>5} {:>8} {:>8} {:>8} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8}",
        "workload", "apps", "scan-av", "idx-av", "fus-av", "scan-match", "idx-match", "fus-match",
        "idx-spd", "fus-spd", "fus-wall"
    );
    for r in &rows {
        println!(
            "{:<12} {:>5} {:>8} {:>8} {:>8} {:>11} {:>11} {:>11} {:>7.2}x {:>7.2}x {:>7.2}x",
            r.name,
            r.applications,
            r.scan_visits,
            r.indexed_visits,
            r.fused_visits,
            r.scan.2,
            r.indexed.2,
            r.fused.2,
            r.match_speedup,
            r.fused_match_speedup,
            r.fused_wall_speedup
        );
    }
    println!(
        "geomean over {} workloads: match-phase indexed {:.2}x, fused {:.2}x; fused wall {:.2}x",
        rows.len(),
        geomean,
        fused_match_geomean,
        fused_wall_geomean
    );

    // Batch scaling: the whole suite (replicated) through the parallel
    // batch driver at 1, 2 and 4 threads, fused matcher on.
    let options = genesis::SessionOptions {
        matcher: MatcherKind::Fused,
        ..Default::default()
    };
    let seq_names: Vec<&str> = seq.iter().map(String::as_str).collect();
    let mut batch = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut best = u128::MAX;
        for _ in 0..repeats.min(10) {
            let items = batch_items(&suite);
            let started = Instant::now();
            let out = genesis::run_batch(
                items,
                &opts,
                &seq_names,
                options,
                &genesis::BatchPolicy::default(),
                threads,
                None,
            );
            best = best.min(started.elapsed().as_nanos());
            assert!(
                out.iter().all(|o| o.status.is_done()),
                "batch run failed at {threads} thread(s)"
            );
        }
        println!("batch of {} items at {threads} thread(s): {best} ns", suite.len() * BATCH_REPLICAS);
        batch.push((threads, best));
    }

    let json = emit_match_json(
        &rows,
        &seq,
        repeats,
        (geomean, fused_match_geomean, fused_wall_geomean),
        suite.len() * BATCH_REPLICAS,
        &batch,
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    if let Some(gate) = scan_gate {
        if geomean < 1.0 / gate {
            eprintln!(
                "error: indexed search geomean {geomean:.3}x is slower than the 1/{gate} gate"
            );
            std::process::exit(1);
        }
    }
    if let Some(gate) = fused_gate {
        if fused_wall_geomean < gate {
            eprintln!(
                "error: fused matcher wall-clock geomean {fused_wall_geomean:.3}x vs scan is \
                 below the {gate} gate"
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("match") {
        args.remove(0);
        run_match_bench(&args);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path = String::from("BENCH_incremental.json");
    let mut repeats = if smoke { 3 } else { 30 };
    let mut trace_gate: Option<f64> = None;
    let mut trace_sample: u64 = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--repeats needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--trace-gate" => {
                trace_gate = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--trace-gate needs a percentage (e.g. 5)");
                    std::process::exit(2);
                }));
            }
            "--trace-sample" => {
                trace_sample = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n: &u64| *n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--trace-sample needs a positive integer (keep 1 in N attempt spans)");
                        std::process::exit(2);
                    });
            }
            "--smoke" => {}
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --out PATH | --repeats N | --smoke | --trace-gate PCT | --trace-sample N)"
                );
                std::process::exit(2);
            }
        }
    }

    let opts: Vec<_> = SEQUENCE.iter().map(|n| gospel_opts::by_name(n)).collect();
    let suite = gospel_workloads::suite();
    let mut rows = Vec::new();

    for (name, base) in &suite {
        // Cross-check pass (untimed): incremental with per-application
        // graph verification, compared against the full-recompute result.
        let full = run_sequence(base, &opts, false, false, None, 1)
            .unwrap_or_else(|e| panic!("{name}: full-mode run failed: {e}"));
        let incr = run_sequence(base, &opts, true, true, None, 1)
            .unwrap_or_else(|e| panic!("{name}: incremental graph diverged: {e}"));
        let same_prog = DisplayProgram(&full.prog).to_string()
            == DisplayProgram(&incr.prog).to_string();
        assert!(
            same_prog && full.applications == incr.applications,
            "{name}: modes disagree (full {} apps, incremental {} apps, programs equal: {})",
            full.applications,
            incr.applications,
            same_prog
        );
        // Regression gate: structural batches (the `interact` workload's
        // loop-restructuring edits especially) must be absorbed by
        // `DepGraph::update`'s signature-diff path, never by falling back
        // to a full re-analysis mid-chain.
        assert_eq!(
            incr.full_recomputes, 0,
            "{name}: incremental mode fell back to {} full dependence recomputation(s)",
            incr.full_recomputes
        );

        let full_ns = time_mode(base, &opts, false, repeats, None)
            .unwrap_or_else(|e| panic!("{name}: timing full mode failed: {e}"));
        let incr_ns = time_mode(base, &opts, true, repeats, None)
            .unwrap_or_else(|e| panic!("{name}: timing incremental mode failed: {e}"));
        rows.push(Row {
            name,
            applications: incr.applications,
            incremental_updates: incr.incremental_updates,
            full_recomputes: incr.full_recomputes,
            dep_dirty_syms: incr.dep_dirty_syms,
            dep_edges_dropped: incr.dep_edges_dropped,
            dep_edges_added: incr.dep_edges_added,
            full_ns,
            incr_ns,
            speedup: full_ns as f64 / incr_ns.max(1) as f64,
            verified: true,
        });
    }

    let multi: Vec<&Row> = rows.iter().filter(|r| r.applications >= 2).collect();
    let geomean = if multi.is_empty() {
        1.0
    } else {
        (multi.iter().map(|r| r.speedup.ln()).sum::<f64>() / multi.len() as f64).exp()
    };

    println!(
        "{:<12} {:>5} {:>6} {:>5} {:>12} {:>12} {:>8}",
        "workload", "apps", "incr", "full", "full (ns)", "incr (ns)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<12} {:>5} {:>6} {:>5} {:>12} {:>12} {:>7.2}x",
            r.name,
            r.applications,
            r.incremental_updates,
            r.full_recomputes,
            r.full_ns,
            r.incr_ns,
            r.speedup
        );
    }
    println!(
        "geomean speedup over {} multi-application workloads: {:.2}x",
        multi.len(),
        geomean
    );

    let overhead = trace_gate.map(|limit| {
        let (bare_ns, traced_ns, pct) =
            measure_trace_overhead(&suite, &opts, repeats, trace_sample);
        println!(
            "trace overhead: {pct:.2}% (bare {bare_ns} ns, traced {traced_ns} ns, \
             limit {limit}%, sample 1/{trace_sample})"
        );
        (bare_ns, traced_ns, pct)
    });

    let json = emit_json(&rows, repeats, geomean, multi.len(), overhead);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    if let (Some(limit), Some((_, _, pct))) = (trace_gate, overhead) {
        if pct > limit {
            eprintln!("error: tracing overhead {pct:.2}% exceeds the {limit}% gate");
            std::process::exit(1);
        }
    }
}
