//! Regenerates experiment E3 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    match genesis_bench::e3_ordering() {
        Ok(r) => println!("{}", genesis_bench::format_e3(&r)),
        Err(e) => {
            eprintln!("E3 failed: {e}");
            std::process::exit(1);
        }
    }
}
