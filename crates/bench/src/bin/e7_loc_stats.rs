//! Regenerates experiment E7 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    match genesis_bench::e7_loc_stats() {
        Ok(r) => println!("{}", genesis_bench::format_e7(&r)),
        Err(e) => {
            eprintln!("E7 failed: {e}");
            std::process::exit(1);
        }
    }
}
