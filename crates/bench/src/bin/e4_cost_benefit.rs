//! Regenerates experiment E4 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    match genesis_bench::e4_cost_benefit() {
        Ok(r) => println!("{}", genesis_bench::format_e4(&r)),
        Err(e) => {
            eprintln!("E4 failed: {e}");
            std::process::exit(1);
        }
    }
}
