//! Runs every experiment E1–E7 and prints all tables (the input to
//! EXPERIMENTS.md).

fn main() {
    let mut failed = false;
    println!("==== E1: generated vs hand-coded optimizers ====");
    match genesis_bench::e1_quality() {
        Ok(r) => println!("{}", genesis_bench::format_quality(&r)),
        Err(e) => { eprintln!("E1 failed: {e}"); failed = true; }
    }
    println!("==== E2: application frequency and enablement ====");
    match genesis_bench::e2_enablement() {
        Ok(r) => println!("{}", genesis_bench::format_e2(&r)),
        Err(e) => { eprintln!("E2 failed: {e}"); failed = true; }
    }
    println!("==== E3: FUS/INX/LUR ordering interactions ====");
    match genesis_bench::e3_ordering() {
        Ok(r) => println!("{}", genesis_bench::format_e3(&r)),
        Err(e) => { eprintln!("E3 failed: {e}"); failed = true; }
    }
    println!("==== E4: cost and benefit ====");
    match genesis_bench::e4_cost_benefit() {
        Ok(r) => println!("{}", genesis_bench::format_e4(&r)),
        Err(e) => { eprintln!("E4 failed: {e}"); failed = true; }
    }
    println!("==== E5: specification variants (LUR) ====");
    match genesis_bench::e5_spec_variants() {
        Ok(r) => println!("{}", genesis_bench::format_e5(&r)),
        Err(e) => { eprintln!("E5 failed: {e}"); failed = true; }
    }
    println!("==== E6: membership-checking strategies ====");
    match genesis_bench::e6_strategies() {
        Ok(r) => println!("{}", genesis_bench::format_e6(&r)),
        Err(e) => { eprintln!("E6 failed: {e}"); failed = true; }
    }
    println!("==== E7: generated-code statistics ====");
    match genesis_bench::e7_loc_stats() {
        Ok(r) => println!("{}", genesis_bench::format_e7(&r)),
        Err(e) => { eprintln!("E7 failed: {e}"); failed = true; }
    }
    if failed {
        std::process::exit(1);
    }
}
