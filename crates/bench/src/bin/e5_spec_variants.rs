//! Regenerates experiment E5 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    match genesis_bench::e5_spec_variants() {
        Ok(r) => println!("{}", genesis_bench::format_e5(&r)),
        Err(e) => {
            eprintln!("E5 failed: {e}");
            std::process::exit(1);
        }
    }
}
