//! Regenerates experiment E6 (see DESIGN.md / EXPERIMENTS.md).

fn main() {
    match genesis_bench::e6_strategies() {
        Ok(r) => println!("{}", genesis_bench::format_e6(&r)),
        Err(e) => {
            eprintln!("E6 failed: {e}");
            std::process::exit(1);
        }
    }
}
