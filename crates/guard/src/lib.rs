//! # genesis-guard — validated optimization sessions
//!
//! GENesis turns *user-written* GOSpeL specifications into executable
//! optimizers, so a plausible-but-wrong specification can silently
//! corrupt the program it optimizes. This crate is the safety net: a
//! [`GuardedSession`] wraps [`genesis::Session`] and, after every
//! optimizer application,
//!
//! 1. **structurally validates** the transformed IR
//!    ([`gospel_ir::validate`]), and
//! 2. **translation-validates** it: the program is executed before and
//!    after on a deterministic, seeded input-vector set
//!    ([`gospel_workloads::generator::input_vectors`]) and the `write`
//!    traces must agree bit for bit.
//!
//! On any failure the session **rolls back** to a checkpoint (a bounded
//! snapshot ring, also user-drivable via [`GuardedSession::rollback`]),
//! **quarantines** the offending optimizer (later [`GuardedSession::
//! run_sequence`] calls skip it and continue), and records a structured
//! [`ValidationReport`] instead of corrupting the program or aborting
//! the whole session. Panics escaping generated search/action code are
//! contained with `catch_unwind` and mapped to
//! [`genesis::RunError::Internal`]. Resource budgets (wall-clock,
//! search-cost fuel, program growth) ride on the driver's probe points,
//! and a scripted [`genesis::FaultPlan`] can inject failures at those
//! same points so every recovery path here is itself testable.
//!
//! ```
//! use genesis_guard::{GuardConfig, GuardOutcome, GuardedSession};
//!
//! let prog = gospel_frontend::compile(
//!     "program p\ninteger x, y\nx = 3\ny = x\nwrite y\nend",
//! ).unwrap();
//! let mut s = GuardedSession::new(prog, GuardConfig::default());
//! s.register(gospel_opts::by_name("CTP"));
//! let outcome = s.apply("CTP", genesis::ApplyMode::AllPoints).unwrap();
//! assert!(matches!(outcome, GuardOutcome::Applied(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use genesis::{ApplyMode, ApplyReport, CompiledOptimizer, FaultPlan, RunError, Session};
use gospel_exec::{ExecError, ExecValue, Trace};
use gospel_ir::Program;
use gospel_trace::{Recorder, Span, Value};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Guard configuration: how thoroughly to validate and how much head
/// room to give each optimizer.
#[derive(Clone, Debug)]
pub struct GuardConfig {
    /// Number of input vectors per translation-validation run.
    pub vectors: usize,
    /// Values per input vector (extra values are ignored; exhausted
    /// `read`s see zero, like the interpreter's normal behaviour).
    pub vector_len: usize,
    /// Seed for the deterministic vector set.
    pub seed: u64,
    /// Interpreter step budget per execution.
    pub step_limit: u64,
    /// Wall-clock budget per apply, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Search-cost budget per apply.
    pub fuel: Option<u64>,
    /// Growth cap: abort when the program exceeds this multiple of its
    /// pre-apply statement count.
    pub max_growth: Option<u32>,
    /// Snapshot-ring capacity (older checkpoints fall off the end).
    pub checkpoints: usize,
    /// Cross-check the driver's incrementally-maintained dependence graph
    /// against a fresh full analysis after every application (the
    /// `--validate` belt-and-braces mode; slow but airtight).
    pub verify_deps: bool,
    /// Retry an apply once when it fails with a *transient* error
    /// (wall-clock timeout or fuel exhaustion). The retry is budget-aware:
    /// the overall wall-clock allowance is twice [`Self::timeout_ms`], and
    /// the retry only gets whatever of it the first attempt left over.
    pub retry_transient: bool,
    /// Parole: a first-offense quarantined optimizer becomes eligible for
    /// one retrial after this many *clean* applications of other
    /// optimizers. A second quarantining offense is permanent. `None`
    /// disables parole (quarantine is final, the pre-parole behaviour).
    pub parole_after: Option<usize>,
    /// Let the driver degrade (indexed search → scan → full re-analysis)
    /// on internal cache/index inconsistencies instead of hard-aborting
    /// the apply. See [`genesis::SessionOptions::degraded_recovery`].
    pub degraded_recovery: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            vectors: 4,
            vector_len: 8,
            seed: 0x00C0_FFEE,
            step_limit: 2_000_000,
            timeout_ms: Some(10_000),
            fuel: None,
            max_growth: Some(16),
            checkpoints: 8,
            verify_deps: false,
            retry_transient: true,
            parole_after: Some(3),
            degraded_recovery: true,
        }
    }
}

/// Which validation stage rejected an application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardStage {
    /// The optimizer itself failed (analysis error, action error,
    /// divergence budget).
    Run,
    /// A resource budget ran out (wall clock, fuel, growth cap).
    Resource,
    /// The transformed IR failed structural validation.
    Structural,
    /// The before/after execution traces diverged.
    Translation,
    /// A panic escaped the optimizer and was contained.
    Internal,
}

impl fmt::Display for GuardStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GuardStage::Run => "run",
            GuardStage::Resource => "resource",
            GuardStage::Structural => "structural",
            GuardStage::Translation => "translation",
            GuardStage::Internal => "internal",
        })
    }
}

/// Structured diagnostic for one rejected application.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// The optimizer that was rejected.
    pub optimizer: String,
    /// Which gate rejected it.
    pub stage: GuardStage,
    /// Human-readable detail (error message or trace diff summary).
    pub detail: String,
    /// Index of the input vector that exposed a trace divergence.
    pub vector: Option<usize>,
    /// Index of the first divergent output within that vector's trace.
    pub mismatch_at: Option<usize>,
    /// Whether the program was restored from the checkpoint.
    pub rolled_back: bool,
    /// Whether the optimizer was quarantined for the rest of the session.
    pub quarantined: bool,
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} rejected: {}",
            self.stage, self.optimizer, self.detail
        )?;
        if let Some(v) = self.vector {
            write!(f, " (input vector {v}")?;
            if let Some(i) = self.mismatch_at {
                write!(f, ", first divergent output {i}")?;
            }
            write!(f, ")")?;
        }
        if self.rolled_back {
            write!(f, "; rolled back")?;
        }
        if self.quarantined {
            write!(f, "; quarantined")?;
        }
        Ok(())
    }
}

/// What one guarded application did.
#[derive(Clone, Debug)]
pub enum GuardOutcome {
    /// The application survived both validation gates; the program was
    /// updated.
    Applied(ApplyReport),
    /// The application was rejected; the program was rolled back and a
    /// diagnostic recorded.
    Rejected(ValidationReport),
    /// The optimizer is quarantined from an earlier rejection and was
    /// not attempted.
    Skipped {
        /// The quarantined optimizer.
        optimizer: String,
        /// The reason it was quarantined.
        reason: String,
    },
}

impl GuardOutcome {
    /// The applications performed, when applied.
    pub fn applications(&self) -> usize {
        match self {
            GuardOutcome::Applied(r) => r.applications,
            _ => 0,
        }
    }

    /// True for [`GuardOutcome::Applied`].
    pub fn is_applied(&self) -> bool {
        matches!(self, GuardOutcome::Applied(_))
    }
}

/// One optimizer's quarantine record, including its parole state.
#[derive(Clone, Debug)]
pub struct QuarantineEntry {
    /// Why it was quarantined (stage + detail of the latest offense).
    pub reason: String,
    /// How many times it has been quarantined. Two offenses make the
    /// quarantine permanent — no further parole.
    pub offenses: u32,
    /// Clean applications of *other* optimizers still required before a
    /// first-offense entry becomes parole-eligible.
    pub parole_in: usize,
}

impl QuarantineEntry {
    /// Whether this entry can still earn a parole trial (first offense
    /// only; the countdown may still be running).
    pub fn parolable(&self) -> bool {
        self.offenses < 2
    }
}

/// A [`Session`] wrapped in validation, checkpointing, quarantine, and
/// panic containment. See the crate docs for the full policy.
#[derive(Debug)]
pub struct GuardedSession {
    session: Session,
    config: GuardConfig,
    vectors: Vec<Vec<ExecValue>>,
    ring: VecDeque<Program>,
    quarantine: BTreeMap<String, QuarantineEntry>,
    reports: Vec<ValidationReport>,
    recorder: Option<Arc<Recorder>>,
}

impl GuardedSession {
    /// Starts a guarded session over `prog`.
    pub fn new(prog: Program, config: GuardConfig) -> GuardedSession {
        let vectors = gospel_workloads::generator::input_vectors(
            config.seed,
            config.vectors,
            config.vector_len,
        )
        .into_iter()
        .map(|v| v.into_iter().map(ExecValue::Int).collect())
        .collect();
        let mut session = Session::new(prog);
        let opts = session.options_mut();
        opts.timeout_ms = config.timeout_ms;
        opts.fuel = config.fuel;
        opts.max_growth = config.max_growth;
        opts.verify_deps = config.verify_deps;
        opts.degraded_recovery = config.degraded_recovery;
        GuardedSession {
            session,
            config,
            vectors,
            ring: VecDeque::new(),
            quarantine: BTreeMap::new(),
            reports: Vec::new(),
            recorder: None,
        }
    }

    /// Attaches (or detaches) a structured-event recorder. The wrapped
    /// session's driver shares it, so one trace interleaves the driver's
    /// attempt spans with the guard's validation/rollback/quarantine
    /// events in causal order.
    pub fn set_recorder(&mut self, rec: Option<Arc<Recorder>>) {
        self.session.set_recorder(rec.clone());
        self.recorder = rec;
    }

    /// Registers an optimizer (it also leaves quarantine if re-registered
    /// — re-registering is the explicit "I fixed the spec" signal).
    pub fn register(&mut self, opt: CompiledOptimizer) {
        self.quarantine.remove(&normalize(&opt.name));
        self.session.register(opt);
    }

    /// The current (always validated) program.
    pub fn program(&self) -> &Program {
        self.session.program()
    }

    /// Consumes the session, returning the optimized program.
    pub fn into_program(self) -> Program {
        self.session.into_program()
    }

    /// The wrapped session (log, cost accounting, optimizer names).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Every diagnostic recorded so far, in order.
    pub fn reports(&self) -> &[ValidationReport] {
        &self.reports
    }

    /// Quarantined optimizer names with the reason each was quarantined.
    pub fn quarantined(&self) -> impl Iterator<Item = (&str, &str)> {
        self.quarantine
            .iter()
            .map(|(k, v)| (k.as_str(), v.reason.as_str()))
    }

    /// The full quarantine record for `name` (case-insensitive), with
    /// offense count and parole countdown.
    pub fn quarantine_entry(&self, name: &str) -> Option<&QuarantineEntry> {
        self.quarantine.get(&normalize(name))
    }

    /// Number of checkpoints currently available to [`Self::rollback`].
    pub fn checkpoints(&self) -> usize {
        self.ring.len()
    }

    /// Arms a scripted fault (see [`FaultPlan`]) for subsequent applies.
    pub fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.session.set_fault(plan);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Restores the program as it was `n` successful-or-attempted applies
    /// ago (`rollback(1)` = just before the most recent apply). Discards
    /// the checkpoints in between.
    ///
    /// # Errors
    ///
    /// Fails when fewer than `n` checkpoints are available (the ring is
    /// bounded by [`GuardConfig::checkpoints`]).
    pub fn rollback(&mut self, n: usize) -> Result<(), String> {
        if n == 0 {
            return Err("rollback depth must be at least 1".into());
        }
        if n > self.ring.len() {
            return Err(format!(
                "only {} checkpoint(s) available, cannot roll back {n}",
                self.ring.len()
            ));
        }
        // Checkpoints are pushed newest-last; rolling back n drops the
        // newer n-1 and restores the nth-newest.
        for _ in 0..n - 1 {
            self.ring.pop_back();
        }
        let Some(snap) = self.ring.pop_back() else {
            return Err("checkpoint ring unexpectedly empty".into());
        };
        self.session.restore_program(snap);
        // Deliberately not `guard.rollback`: that event is reserved for
        // validation-caused restores (the trace contract pairs each one
        // with a preceding validation failure).
        if let Some(r) = self.recorder.as_ref() {
            r.add("guard.user_rollbacks", 1);
            r.event("guard.user_rollback", &[("depth", Value::us(n))]);
        }
        Ok(())
    }

    /// Applies optimizer `name` under the full validation gate.
    ///
    /// Returns [`GuardOutcome::Applied`] when both gates pass,
    /// [`GuardOutcome::Rejected`] (program rolled back, diagnostic
    /// recorded) when either gate fails or the run errors, and
    /// [`GuardOutcome::Skipped`] when `name` is quarantined and not yet
    /// parole-eligible. A parole-eligible first offender gets one trial
    /// run instead of a skip: success releases it, a second quarantining
    /// offense revokes parole permanently. Transient run errors (timeout,
    /// fuel) get one budget-aware retry when
    /// [`GuardConfig::retry_transient`] is set.
    ///
    /// # Errors
    ///
    /// Only caller errors propagate: an unknown optimizer name.
    pub fn apply(&mut self, name: &str, mode: ApplyMode) -> Result<GuardOutcome, RunError> {
        let parole_trial = if let Some(entry) = self.quarantine.get(&normalize(name)) {
            let eligible =
                self.config.parole_after.is_some() && entry.parolable() && entry.parole_in == 0;
            if !eligible {
                if let Some(r) = self.recorder.as_ref() {
                    r.add("guard.skips", 1);
                    r.event(
                        "guard.skip",
                        &[
                            ("optimizer", Value::str(name.to_string())),
                            ("reason", Value::str(entry.reason.clone())),
                        ],
                    );
                }
                return Ok(GuardOutcome::Skipped {
                    optimizer: name.to_string(),
                    reason: entry.reason.clone(),
                });
            }
            self.parole_event(name, "trial");
            true
        } else {
            false
        };
        let guard_span = Span::open(
            self.recorder.as_ref(),
            "guard.apply",
            &[
                ("optimizer", Value::str(name.to_string())),
                ("mode", Value::str(format!("{mode:?}"))),
            ],
        );

        // Snapshot before touching anything; also the rollback target.
        let checkpoint = self.program().clone();
        self.ring.push_back(checkpoint.clone());
        while self.ring.len() > self.config.checkpoints.max(1) {
            self.ring.pop_front();
        }

        let baselines: Vec<Result<Trace, ExecError>> = self
            .vectors
            .iter()
            .map(|v| gospel_exec::run_limited(&checkpoint, v, self.config.step_limit))
            .collect();

        let started = std::time::Instant::now();
        let mut retried = false;
        let run = loop {
            let session = &mut self.session;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                session.apply(name, mode).cloned()
            }));
            let transient = matches!(
                attempt,
                Ok(Err(RunError::Timeout { .. } | RunError::FuelExhausted { .. }))
            );
            if !(transient && self.config.retry_transient && !retried) {
                break attempt;
            }
            // Budget-aware retry: the overall wall-clock allowance is 2×
            // the per-attempt timeout; the retry runs on whatever of it
            // the failed attempt left over.
            let remaining = self
                .config
                .timeout_ms
                .map(|ms| (2 * ms).saturating_sub(u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)));
            if remaining == Some(0) {
                break attempt;
            }
            retried = true;
            let error = match &attempt {
                Ok(Err(e)) => e.to_string(),
                _ => unreachable!("transient implies Ok(Err(_))"),
            };
            // A timed-out run may have committed partial applications;
            // restart the retry from the checkpoint.
            self.session.restore_program(checkpoint.clone());
            if let Some(ms) = remaining {
                self.session.options_mut().timeout_ms = Some(ms);
            }
            if let Some(r) = self.recorder.as_ref() {
                r.add("guard.transient_retries", 1);
                r.event(
                    "guard.transient_retry",
                    &[
                        ("optimizer", Value::str(name.to_string())),
                        ("error", Value::str(error)),
                    ],
                );
            }
        };
        self.session.options_mut().timeout_ms = self.config.timeout_ms;

        let canonical = self
            .session
            .optimizer_names()
            .iter()
            .find(|n| n.eq_ignore_ascii_case(name))
            .map_or_else(|| name.to_string(), |n| n.to_string());

        let report = match run {
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                let err = RunError::Internal(msg);
                self.reject(&canonical, checkpoint, GuardStage::Internal, err.to_string(), None, None)
            }
            Ok(Err(RunError::UnknownOptimizer { name })) => {
                // Caller error: nothing ran, drop the useless checkpoint.
                self.ring.pop_back();
                guard_span.close(&[("outcome", Value::str("unknown-optimizer"))]);
                return Err(RunError::UnknownOptimizer { name });
            }
            Ok(Err(e)) => {
                let stage = match e {
                    RunError::Timeout { .. }
                    | RunError::FuelExhausted { .. }
                    | RunError::GrowthLimit { .. }
                    | RunError::Diverged { .. } => GuardStage::Resource,
                    _ => GuardStage::Run,
                };
                self.reject(&canonical, checkpoint, stage, e.to_string(), None, None)
            }
            Ok(Ok(apply_report)) => {
                match self.validate(&canonical, &checkpoint, &baselines) {
                    None => {
                        if let Some(r) = self.recorder.as_ref() {
                            r.add("guard.validations", 1);
                            r.event(
                                "guard.validate",
                                &[
                                    ("optimizer", Value::str(canonical.clone())),
                                    ("outcome", Value::str("pass")),
                                ],
                            );
                        }
                        if parole_trial {
                            self.quarantine.remove(&normalize(&canonical));
                            self.parole_event(&canonical, "released");
                        }
                        // A clean apply advances every first offender's
                        // parole countdown.
                        for entry in self.quarantine.values_mut() {
                            if entry.parolable() {
                                entry.parole_in = entry.parole_in.saturating_sub(1);
                            }
                        }
                        guard_span.close(&[("outcome", Value::str("applied"))]);
                        return Ok(GuardOutcome::Applied(apply_report));
                    }
                    Some(report) => report,
                }
            }
        };
        if parole_trial {
            if report.quarantined {
                // reject() bumped the offense count; two strikes make the
                // quarantine permanent.
                self.parole_event(&canonical, "revoked");
            } else {
                // A non-incriminating failure (budget, plain run error):
                // back to quarantine, earn another trial the same way.
                if let Some(entry) = self.quarantine.get_mut(&normalize(&canonical)) {
                    entry.parole_in = self.config.parole_after.unwrap_or(0);
                }
                self.parole_event(&canonical, "deferred");
            }
        }
        guard_span.close(&[("outcome", Value::str("rejected"))]);
        Ok(GuardOutcome::Rejected(report))
    }

    /// Emits the parole counter/event pair (`outcome` is one of `trial`,
    /// `released`, `revoked`, `deferred`).
    fn parole_event(&self, name: &str, outcome: &str) {
        if let Some(r) = self.recorder.as_ref() {
            r.add("guard.parole", 1);
            r.event(
                "guard.parole",
                &[
                    ("optimizer", Value::str(name.to_string())),
                    ("outcome", Value::str(outcome.to_string())),
                ],
            );
        }
    }

    /// Applies a sequence of optimizers, each at all points, skipping
    /// quarantined ones and continuing past rejections — graceful
    /// degradation instead of a hard stop.
    ///
    /// # Errors
    ///
    /// Only an unknown optimizer name stops the sequence.
    pub fn run_sequence(&mut self, names: &[&str]) -> Result<Vec<(String, GuardOutcome)>, RunError> {
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let outcome = self.apply(name, ApplyMode::AllPoints)?;
            out.push((name.to_string(), outcome));
        }
        Ok(out)
    }

    /// Runs both validation gates against the current program. `None`
    /// means the application is valid; `Some` is the recorded rejection
    /// (the program has been rolled back to `checkpoint`).
    fn validate(
        &mut self,
        name: &str,
        checkpoint: &Program,
        baselines: &[Result<Trace, ExecError>],
    ) -> Option<ValidationReport> {
        if let Err(e) = gospel_ir::validate(self.session.program()) {
            return Some(self.reject(
                name,
                checkpoint.clone(),
                GuardStage::Structural,
                e.to_string(),
                None,
                None,
            ));
        }

        for (i, baseline) in baselines.iter().enumerate() {
            let Ok(before) = baseline else {
                // The original program faults on this vector (e.g. a
                // divide by zero); semantics after an error are out of
                // scope, skip it.
                continue;
            };
            let after = gospel_exec::run_limited(
                self.session.program(),
                &self.vectors[i],
                self.config.step_limit,
            );
            match after {
                Err(e) => {
                    return Some(self.reject(
                        name,
                        checkpoint.clone(),
                        GuardStage::Translation,
                        format!("transformed program faults: {e}"),
                        Some(i),
                        None,
                    ));
                }
                Ok(after) => {
                    if !before.same_outputs(&after) {
                        let at = before.first_mismatch(&after);
                        let detail = describe_divergence(before, &after, at);
                        return Some(self.reject(
                            name,
                            checkpoint.clone(),
                            GuardStage::Translation,
                            detail,
                            Some(i),
                            at,
                        ));
                    }
                }
            }
        }
        None
    }

    /// Rolls back to `checkpoint`, quarantines when the stage implies the
    /// optimizer is wrong (not merely over budget), and records the
    /// diagnostic.
    fn reject(
        &mut self,
        name: &str,
        checkpoint: Program,
        stage: GuardStage,
        detail: String,
        vector: Option<usize>,
        mismatch_at: Option<usize>,
    ) -> ValidationReport {
        // Trace contract: the validation-failure event always precedes the
        // rollback (and quarantine) events it causes.
        if let Some(r) = self.recorder.as_ref() {
            r.add("guard.validations", 1);
            r.add("guard.rejections", 1);
            let stage_name = stage.to_string();
            let mut fields = vec![
                ("optimizer", Value::str(name.to_string())),
                ("outcome", Value::str("fail")),
                ("stage", Value::str(stage_name.clone())),
                ("detail", Value::str(detail.clone())),
            ];
            if let Some(v) = vector {
                fields.push(("vector", Value::us(v)));
            }
            r.event("guard.validate", &fields);
        }
        self.session.restore_program(checkpoint);
        // The checkpoint equals the restored state; keeping it would make
        // rollback(1) a no-op, so drop it.
        self.ring.pop_back();
        if let Some(r) = self.recorder.as_ref() {
            r.add("guard.rollbacks", 1);
            r.event(
                "guard.rollback",
                &[
                    ("optimizer", Value::str(name.to_string())),
                    ("stage", Value::str(stage.to_string())),
                ],
            );
        }
        let quarantined = matches!(
            stage,
            GuardStage::Structural | GuardStage::Translation | GuardStage::Internal
        );
        if quarantined {
            let entry = self
                .quarantine
                .entry(normalize(name))
                .or_insert_with(|| QuarantineEntry {
                    reason: String::new(),
                    offenses: 0,
                    parole_in: 0,
                });
            entry.reason = format!("[{stage}] {detail}");
            entry.offenses += 1;
            entry.parole_in = self.config.parole_after.unwrap_or(0);
            if let Some(r) = self.recorder.as_ref() {
                r.add("guard.quarantines", 1);
                r.event(
                    "guard.quarantine",
                    &[
                        ("optimizer", Value::str(name.to_string())),
                        ("stage", Value::str(stage.to_string())),
                    ],
                );
            }
        }
        let report = ValidationReport {
            optimizer: name.to_string(),
            stage,
            detail,
            vector,
            mismatch_at,
            rolled_back: true,
            quarantined,
        };
        self.reports.push(report.clone());
        report
    }
}

fn normalize(name: &str) -> String {
    name.to_ascii_uppercase()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn describe_divergence(before: &Trace, after: &Trace, at: Option<usize>) -> String {
    match at {
        Some(i) => {
            let b = before.outputs.get(i).map(ToString::to_string);
            let a = after.outputs.get(i).map(ToString::to_string);
            match (b, a) {
                (Some(b), Some(a)) => {
                    format!("output {i} diverged: {b} before vs {a} after")
                }
                (Some(b), None) => format!(
                    "transformed program stopped writing at output {i} (expected {b})"
                ),
                (None, Some(a)) => format!("transformed program wrote extra output {i}: {a}"),
                (None, None) => "traces diverged".to_string(),
            }
        }
        None => "traces diverged".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesis::{FaultKind, FaultPlan};

    fn compile(src: &str) -> Program {
        gospel_frontend::compile(src).unwrap()
    }

    fn chain_prog() -> Program {
        compile("program p\ninteger x, y, z\nx = 3\ny = x\nz = y\nwrite z\nend")
    }

    #[test]
    fn valid_optimizer_passes_both_gates() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(out.is_applied(), "{out:?}");
        assert_eq!(out.applications(), 3);
        assert!(s.reports().is_empty());
        assert_eq!(s.checkpoints(), 1);
    }

    #[test]
    fn unknown_optimizer_is_a_caller_error() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        let err = s.apply("nope", ApplyMode::AllPoints).unwrap_err();
        assert!(matches!(err, RunError::UnknownOptimizer { .. }), "{err}");
        assert_eq!(s.checkpoints(), 0);
    }

    #[test]
    fn user_rollback_restores_earlier_states() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        s.register(gospel_opts::by_name("DCE"));
        let original = s.program().clone();
        s.apply("CTP", ApplyMode::AllPoints).unwrap();
        let after_ctp = s.program().clone();
        s.apply("DCE", ApplyMode::AllPoints).unwrap();
        assert_eq!(s.checkpoints(), 2);

        s.rollback(1).unwrap();
        assert!(s.program().structurally_eq(&after_ctp));
        assert_eq!(s.checkpoints(), 1);
        s.rollback(1).unwrap();
        assert!(s.program().structurally_eq(&original));
        assert!(s.rollback(1).is_err());
        assert!(s.rollback(0).is_err());
    }

    #[test]
    fn snapshot_ring_is_bounded() {
        let mut s = GuardedSession::new(
            chain_prog(),
            GuardConfig {
                checkpoints: 2,
                ..GuardConfig::default()
            },
        );
        s.register(gospel_opts::by_name("CTP"));
        s.register(gospel_opts::by_name("DCE"));
        s.register(gospel_opts::by_name("CPP"));
        for name in ["CTP", "DCE", "CPP"] {
            s.apply(name, ApplyMode::AllPoints).unwrap();
        }
        assert_eq!(s.checkpoints(), 2);
    }

    #[test]
    fn injected_panic_is_contained_and_quarantines() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        s.set_fault(Some(FaultPlan::new(FaultKind::Panic)));
        let before = s.program().clone();
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        let GuardOutcome::Rejected(report) = out else {
            panic!("expected rejection, got {out:?}");
        };
        assert_eq!(report.stage, GuardStage::Internal);
        assert!(report.rolled_back && report.quarantined);
        assert!(s.program().structurally_eq(&before));

        // Quarantined: the next attempt is skipped without running.
        s.set_fault(None);
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Skipped { .. }), "{out:?}");

        // Re-registering lifts the quarantine.
        s.register(gospel_opts::by_name("CTP"));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(out.is_applied());
    }

    /// The stale-automaton hazard: while an optimizer sits in quarantine
    /// it stays registered, so applies of *other* optimizers park a fused
    /// automaton that still covers the quarantined spec's compiled anchor
    /// tests. Re-registering a fixed spec under the same name must void
    /// those states — `SessionCaches::ensure_automaton` only compares
    /// catalog names, so a surviving automaton would keep dispatching the
    /// old anchors and silently suppress every new-spec application.
    #[test]
    fn reregistering_a_quarantined_spec_voids_the_fused_automaton() {
        // v1 anchors on copies (`assign` with a var source); the fixed v2
        // anchors on constants. Same name, disjoint anchor classes.
        let v1 =
            gospel_opts::compile_spec(&gospel_opts::specs::CPP.replace("CPP", "OPT")).unwrap();
        let v2 =
            gospel_opts::compile_spec(&gospel_opts::specs::CTP.replace("CTP", "OPT")).unwrap();
        let v2_audit =
            gospel_opts::compile_spec(&gospel_opts::specs::CTP.replace("CTP", "OPT")).unwrap();

        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(v1);
        s.register(gospel_opts::by_name("DCE"));

        // Quarantine v1 (the rejection rolls back and clears the caches).
        s.set_fault(Some(FaultPlan::new(FaultKind::Panic)));
        let out = s.apply("OPT", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Rejected(_)), "{out:?}");
        s.set_fault(None);

        // A clean DCE apply parks a fresh fused automaton that still
        // compiles the quarantined v1's anchors; the quarantine skip
        // leaves it untouched.
        let out = s.apply("DCE", ApplyMode::AllPoints).unwrap();
        assert!(out.is_applied(), "{out:?}");
        let out = s.apply("OPT", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Skipped { .. }), "{out:?}");

        // Re-registering the fixed spec lifts the quarantine and must
        // rebuild the automaton: v2's constant anchors have to dispatch.
        s.register(v2);
        let out = s.apply("OPT", ApplyMode::AllPoints).unwrap();
        assert!(out.is_applied(), "{out:?}");
        assert_eq!(
            out.applications(),
            3,
            "stale fused-automaton states suppressed the new spec's anchors"
        );
        let problems = s
            .session()
            .caches()
            .audit(s.program(), &[v2_audit, gospel_opts::by_name("DCE")]);
        assert!(problems.is_empty(), "{problems:?}");
    }

    /// Parole transitions under the fused matcher: the release trial runs
    /// against an automaton parked while the optimizer was quarantined,
    /// and a revoked trial rolls everything back — the cache audit must
    /// stay clean through release, and through revocation.
    #[test]
    fn parole_release_and_revoke_keep_the_fused_automaton_consistent() {
        let config = GuardConfig {
            parole_after: Some(1),
            ..GuardConfig::default()
        };
        let audit_catalog = [gospel_opts::by_name("CTP"), gospel_opts::by_name("DCE")];

        // Release: quarantine CTP, observe a skip, then let DCE's clean
        // apply park an automaton *and* finish the parole countdown (a
        // clean apply advances every first offender's counter); the trial
        // then runs against that parked automaton.
        let mut s = GuardedSession::new(chain_prog(), config.clone());
        s.register(gospel_opts::by_name("CTP"));
        s.register(gospel_opts::by_name("DCE"));
        s.set_fault(Some(FaultPlan::new(FaultKind::Panic)));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Rejected(_)), "{out:?}");
        s.set_fault(None);
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Skipped { .. }), "{out:?}");
        s.apply("DCE", ApplyMode::AllPoints).unwrap();
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(out.is_applied(), "parole trial should succeed: {out:?}");
        assert_eq!(out.applications(), 3);
        assert!(s.quarantine_entry("CTP").is_none());
        let problems = s.session().caches().audit(s.program(), &audit_catalog);
        assert!(problems.is_empty(), "after release: {problems:?}");

        // Revoke: same setup, but the trial panics again — permanent
        // quarantine, rolled back, and the caches stay auditable.
        let mut s = GuardedSession::new(chain_prog(), config);
        s.register(gospel_opts::by_name("CTP"));
        s.register(gospel_opts::by_name("DCE"));
        s.set_fault(Some(FaultPlan::new(FaultKind::Panic)));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Rejected(_)), "{out:?}");
        s.set_fault(None);
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Skipped { .. }), "{out:?}");
        s.apply("DCE", ApplyMode::AllPoints).unwrap();
        s.set_fault(Some(FaultPlan::new(FaultKind::Panic)));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Rejected(_)), "{out:?}");
        s.set_fault(None);
        assert!(s.quarantine_entry("CTP").is_some());
        let problems = s.session().caches().audit(s.program(), &audit_catalog);
        assert!(problems.is_empty(), "after revoke: {problems:?}");
    }

    #[test]
    fn corrupted_commit_is_caught_by_the_structural_gate() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        s.set_fault(Some(FaultPlan::new(FaultKind::CorruptCommit)));
        let before = s.program().clone();
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        let GuardOutcome::Rejected(report) = out else {
            panic!("expected rejection, got {out:?}");
        };
        assert_eq!(report.stage, GuardStage::Structural);
        assert!(s.program().structurally_eq(&before));
    }

    #[test]
    fn sequence_skips_quarantined_and_continues() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        s.register(gospel_opts::by_name("DCE"));
        s.set_fault(Some(
            FaultPlan::new(FaultKind::Panic).for_optimizer("CTP"),
        ));
        let outcomes = s.run_sequence(&["CTP", "DCE", "CTP"]).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(matches!(outcomes[0].1, GuardOutcome::Rejected(_)));
        assert!(outcomes[1].1.is_applied(), "{:?}", outcomes[1]);
        assert!(matches!(outcomes[2].1, GuardOutcome::Skipped { .. }));
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.quarantined().count(), 1);
    }

    #[test]
    fn parole_releases_a_first_offender_after_clean_applies() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        s.register(gospel_opts::by_name("DCE"));
        s.set_fault(Some(FaultPlan::new(FaultKind::Panic).for_optimizer("CTP")));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Rejected(_)));
        s.set_fault(None);
        let entry = s.quarantine_entry("CTP").unwrap();
        assert_eq!((entry.offenses, entry.parole_in), (1, 3));

        // Not yet eligible: the countdown is still running.
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Skipped { .. }), "{out:?}");

        // Three clean applies of another optimizer earn the trial.
        for _ in 0..3 {
            assert!(s.apply("DCE", ApplyMode::AllPoints).unwrap().is_applied());
        }
        assert_eq!(s.quarantine_entry("CTP").unwrap().parole_in, 0);
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(out.is_applied(), "parole trial should succeed: {out:?}");
        assert_eq!(s.quarantined().count(), 0);
    }

    #[test]
    fn second_offense_makes_quarantine_permanent() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        s.register(gospel_opts::by_name("DCE"));
        // A persistent CTP-only fault: the trial re-offends.
        s.set_fault(Some(FaultPlan::new(FaultKind::Panic).for_optimizer("CTP")));
        s.apply("CTP", ApplyMode::AllPoints).unwrap();
        for _ in 0..3 {
            assert!(s.apply("DCE", ApplyMode::AllPoints).unwrap().is_applied());
        }
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Rejected(_)), "{out:?}");
        let entry = s.quarantine_entry("CTP").unwrap();
        assert_eq!(entry.offenses, 2);
        assert!(!entry.parolable());

        // No amount of clean work earns another trial.
        s.set_fault(None);
        for _ in 0..4 {
            s.apply("DCE", ApplyMode::AllPoints).unwrap();
        }
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(matches!(out, GuardOutcome::Skipped { .. }), "{out:?}");
    }

    #[test]
    fn transient_timeout_gets_one_retry_and_succeeds() {
        use gospel_trace::Recorder;
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        let rec = Arc::new(Recorder::new());
        s.set_recorder(Some(rec.clone()));
        s.register(gospel_opts::by_name("CTP"));
        s.set_fault(Some(FaultPlan::new(FaultKind::Timeout).transient()));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        assert!(out.is_applied(), "retry should recover: {out:?}");
        assert_eq!(out.applications(), 3);
        assert_eq!(rec.counter("guard.transient_retries"), 1);
        assert!(s.reports().is_empty(), "a recovered transient is not a rejection");

        // The per-attempt budget is restored after the retry dance.
        assert_eq!(
            s.session().options().timeout_ms,
            GuardConfig::default().timeout_ms
        );
    }

    #[test]
    fn persistent_timeout_still_rejects_after_the_retry() {
        let mut s = GuardedSession::new(chain_prog(), GuardConfig::default());
        s.register(gospel_opts::by_name("CTP"));
        let before = s.program().clone();
        s.set_fault(Some(FaultPlan::new(FaultKind::Timeout)));
        let out = s.apply("CTP", ApplyMode::AllPoints).unwrap();
        let GuardOutcome::Rejected(report) = out else {
            panic!("expected rejection, got {out:?}");
        };
        assert_eq!(report.stage, GuardStage::Resource);
        assert!(!report.quarantined);
        assert!(s.program().structurally_eq(&before));
    }

    #[test]
    fn growth_limit_rolls_back_runaway_expansion() {
        // A pathological spec that copies a statement after itself
        // forever; the growth cap must stop it and restore the program.
        let src = r#"
OPTIMIZATION LOOPY
TYPE Stmt: S;
PRECOND
  Code_Pattern
    any S: S.opc == assign;
ACTION
  copy(S, S, S2);
END
"#;
        let opt = gospel_opts::compile_spec(src).unwrap();
        let mut s = GuardedSession::new(
            compile("program p\ninteger x\nx = 1\nwrite x\nend"),
            GuardConfig {
                max_growth: Some(4),
                ..GuardConfig::default()
            },
        );
        let before = s.program().clone();
        s.register(opt);
        let out = s.apply("LOOPY", ApplyMode::AllPoints).unwrap();
        let GuardOutcome::Rejected(report) = out else {
            panic!("expected rejection, got {out:?}");
        };
        assert_eq!(report.stage, GuardStage::Resource);
        assert!(!report.quarantined, "budget overruns do not quarantine");
        assert!(s.program().structurally_eq(&before));
    }
}
