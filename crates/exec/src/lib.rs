//! # gospel-exec — a reference interpreter for the quad IR
//!
//! Executes [`gospel_ir::Program`]s directly, with FORTRAN-style `do`
//! semantics (bounds evaluated at entry, at most `final - init + 1` trips,
//! control variable left at `final + 1` on natural exit) and `pardo`
//! executed sequentially (the legality conditions of the PAR optimization
//! guarantee that the parallel and sequential orders agree).
//!
//! Its purpose is **differential testing**: run a program before and after
//! an optimization and compare the `write` traces — a semantic check that
//! complements the paper's structural generated-vs-hand comparison.
//!
//! ```
//! let prog = gospel_frontend::compile("
//! program p
//!   integer i, s
//!   s = 0
//!   do i = 1, 4
//!     s = s + i
//!   end do
//!   write s
//! end
//! ").unwrap();
//! let trace = gospel_exec::run(&prog, &[]).unwrap();
//! assert_eq!(trace.outputs, vec![gospel_exec::ExecValue::Int(10)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gospel_ir::{
    AffineExpr, Opcode, Operand, Program, StmtId, Sym, Value, VarKind, VarType,
};
use std::collections::HashMap;
use std::fmt;

/// A runtime value: integer or real, with FORTRAN-ish promotion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecValue {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
}

impl ExecValue {
    fn to_f64(self) -> f64 {
        match self {
            ExecValue::Int(i) => i as f64,
            ExecValue::Real(r) => r,
        }
    }

    fn as_int(self) -> i64 {
        match self {
            ExecValue::Int(i) => i,
            ExecValue::Real(r) => r as i64,
        }
    }

    /// Bit-exact equality (the comparison differential tests need: the
    /// optimizations under test must preserve values exactly, not merely
    /// approximately).
    pub fn bit_eq(self, other: ExecValue) -> bool {
        match (self, other) {
            (ExecValue::Int(a), ExecValue::Int(b)) => a == b,
            (ExecValue::Real(a), ExecValue::Real(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl fmt::Display for ExecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecValue::Int(i) => write!(f, "{i}"),
            ExecValue::Real(r) => write!(f, "{r}"),
        }
    }
}

/// What an execution produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Values written, in order.
    pub outputs: Vec<ExecValue>,
    /// Statements executed (a step count, for the step limit and for
    /// rough performance comparisons).
    pub steps: u64,
}

impl Trace {
    /// Bit-exact comparison of two traces' outputs.
    pub fn same_outputs(&self, other: &Trace) -> bool {
        self.outputs.len() == other.outputs.len()
            && self
                .outputs
                .iter()
                .zip(&other.outputs)
                .all(|(a, b)| a.bit_eq(*b))
    }

    /// The index of the first output where the traces diverge (a value
    /// mismatch, or the point where one trace ends early); `None` when
    /// the outputs agree bit for bit. Differential-testing harnesses use
    /// this to point a diagnostic at the exact divergent `write`.
    pub fn first_mismatch(&self, other: &Trace) -> Option<usize> {
        for (i, (a, b)) in self.outputs.iter().zip(&other.outputs).enumerate() {
            if !a.bit_eq(*b) {
                return Some(i);
            }
        }
        if self.outputs.len() != other.outputs.len() {
            return Some(self.outputs.len().min(other.outputs.len()));
        }
        None
    }
}

/// Execution failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Array subscript outside the declared extents.
    OutOfBounds {
        /// The array.
        array: String,
        /// The offending (1-based) subscript values.
        subs: Vec<i64>,
        /// At which statement.
        at: StmtId,
    },
    /// Integer division or modulus by zero.
    DivideByZero(StmtId),
    /// Unknown intrinsic function.
    UnknownIntrinsic(String, StmtId),
    /// The step budget was exhausted (runaway program).
    StepLimit(u64),
    /// Malformed program (unbalanced markers, missing operand, …).
    Malformed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { array, subs, at } => {
                write!(f, "subscript {subs:?} out of bounds for `{array}` at {at}")
            }
            ExecError::DivideByZero(at) => write!(f, "division by zero at {at}"),
            ExecError::UnknownIntrinsic(n, at) => write!(f, "unknown intrinsic `{n}` at {at}"),
            ExecError::StepLimit(n) => write!(f, "step limit of {n} exhausted"),
            ExecError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Runs `prog` with the default step limit (10 million statements),
/// feeding `inputs` to `read` statements (zero once exhausted).
///
/// # Errors
///
/// See [`ExecError`].
pub fn run(prog: &Program, inputs: &[ExecValue]) -> Result<Trace, ExecError> {
    run_limited(prog, inputs, 10_000_000)
}

/// [`run`] with an explicit step limit.
///
/// # Errors
///
/// See [`ExecError`].
pub fn run_limited(
    prog: &Program,
    inputs: &[ExecValue],
    step_limit: u64,
) -> Result<Trace, ExecError> {
    Interp::new(prog, inputs, step_limit)?.run()
}

struct LoopFrame {
    head_idx: usize,
    lcv: Sym,
    fin: i64,
}

struct Interp<'p> {
    prog: &'p Program,
    stmts: Vec<StmtId>,
    /// end-do index for each do-head index, and vice versa.
    do_end: HashMap<usize, usize>,
    if_else: HashMap<usize, usize>,
    if_end: HashMap<usize, usize>,
    scalars: HashMap<Sym, ExecValue>,
    arrays: HashMap<Sym, (Vec<i64>, Vec<ExecValue>)>,
    loops: Vec<LoopFrame>,
    inputs: std::collections::VecDeque<ExecValue>,
    trace: Trace,
    step_limit: u64,
}

impl<'p> Interp<'p> {
    fn new(prog: &'p Program, inputs: &[ExecValue], step_limit: u64) -> Result<Self, ExecError> {
        let stmts: Vec<StmtId> = prog.iter().collect();
        let mut do_stack = Vec::new();
        let mut if_stack = Vec::new();
        let mut do_end = HashMap::new();
        let mut if_else = HashMap::new();
        let mut if_end = HashMap::new();
        for (i, &s) in stmts.iter().enumerate() {
            match prog.quad(s).op {
                Opcode::DoHead | Opcode::ParDo => do_stack.push(i),
                Opcode::EndDo => {
                    let h = do_stack
                        .pop()
                        .ok_or_else(|| ExecError::Malformed("unmatched end do".into()))?;
                    do_end.insert(h, i);
                }
                op if op.is_if() => if_stack.push(i),
                Opcode::Else => {
                    let h = *if_stack
                        .last()
                        .ok_or_else(|| ExecError::Malformed("else outside if".into()))?;
                    if_else.insert(h, i);
                }
                Opcode::EndIf => {
                    let h = if_stack
                        .pop()
                        .ok_or_else(|| ExecError::Malformed("unmatched end if".into()))?;
                    if_end.insert(h, i);
                }
                _ => {}
            }
        }
        if !do_stack.is_empty() || !if_stack.is_empty() {
            return Err(ExecError::Malformed("unclosed region".into()));
        }

        let mut scalars = HashMap::new();
        let mut arrays = HashMap::new();
        for info in prog.variables() {
            match &info.kind {
                VarKind::Scalar => {
                    let zero = match info.ty {
                        VarType::Int => ExecValue::Int(0),
                        VarType::Real => ExecValue::Real(0.0),
                    };
                    scalars.insert(info.sym, zero);
                }
                VarKind::Array(dims) => {
                    let n: i64 = dims.iter().product();
                    let zero = match info.ty {
                        VarType::Int => ExecValue::Int(0),
                        VarType::Real => ExecValue::Real(0.0),
                    };
                    arrays.insert(
                        info.sym,
                        (dims.clone(), vec![zero; usize::try_from(n.max(0)).unwrap_or(0)]),
                    );
                }
            }
        }

        Ok(Interp {
            prog,
            stmts,
            do_end,
            if_else,
            if_end,
            scalars,
            arrays,
            loops: Vec::new(),
            inputs: inputs.iter().copied().collect(),
            trace: Trace::default(),
            step_limit,
        })
    }

    fn run(mut self) -> Result<Trace, ExecError> {
        let mut pc = 0usize;
        while pc < self.stmts.len() {
            self.trace.steps += 1;
            if self.trace.steps > self.step_limit {
                return Err(ExecError::StepLimit(self.step_limit));
            }
            pc = self.step(pc)?;
        }
        Ok(self.trace)
    }

    /// Executes the statement at index `pc`, returning the next index.
    fn step(&mut self, pc: usize) -> Result<usize, ExecError> {
        let sid = self.stmts[pc];
        let q = self.prog.quad(sid).clone();
        match q.op {
            Opcode::DoHead | Opcode::ParDo => {
                let init = self.eval(&q.a, sid)?.as_int();
                let fin = self.eval(&q.b, sid)?.as_int();
                let lcv = q
                    .dst
                    .as_var()
                    .ok_or_else(|| ExecError::Malformed("loop without LCV".into()))?;
                self.scalars.insert(lcv, ExecValue::Int(init));
                if init > fin {
                    // zero-trip: FORTRAN leaves the LCV at init
                    return Ok(self.do_end[&pc] + 1);
                }
                self.loops.push(LoopFrame {
                    head_idx: pc,
                    lcv,
                    fin,
                });
                Ok(pc + 1)
            }
            Opcode::EndDo => {
                let frame = self
                    .loops
                    .last()
                    .ok_or_else(|| ExecError::Malformed("end do without frame".into()))?;
                let cur = self.scalars[&frame.lcv].as_int();
                if cur < frame.fin {
                    let lcv = frame.lcv;
                    let head = frame.head_idx;
                    self.scalars.insert(lcv, ExecValue::Int(cur + 1));
                    Ok(head + 1)
                } else {
                    let lcv = frame.lcv;
                    self.scalars.insert(lcv, ExecValue::Int(cur + 1));
                    self.loops.pop();
                    Ok(pc + 1)
                }
            }
            op if op.is_if() => {
                let a = self.eval(&q.a, sid)?.to_f64();
                let b = self.eval(&q.b, sid)?.to_f64();
                let taken = match op {
                    Opcode::IfLt => a < b,
                    Opcode::IfLe => a <= b,
                    Opcode::IfGt => a > b,
                    Opcode::IfGe => a >= b,
                    Opcode::IfEq => a == b,
                    Opcode::IfNe => a != b,
                    _ => unreachable!(),
                };
                if taken {
                    Ok(pc + 1)
                } else {
                    match self.if_else.get(&pc) {
                        Some(&e) => Ok(e + 1),
                        None => Ok(self.if_end[&pc]),
                    }
                }
            }
            Opcode::Else => {
                // reached from the then branch: skip the else body
                let head = self
                    .if_else
                    .iter()
                    .find(|&(_, &e)| e == pc)
                    .map(|(&h, _)| h)
                    .ok_or_else(|| ExecError::Malformed("stray else".into()))?;
                Ok(self.if_end[&head])
            }
            Opcode::EndIf | Opcode::Nop => Ok(pc + 1),
            Opcode::Read => {
                let v = self.inputs.pop_front().unwrap_or(ExecValue::Int(0));
                self.store(&q.dst, v, sid)?;
                Ok(pc + 1)
            }
            Opcode::Write => {
                let v = self.eval(&q.a, sid)?;
                self.trace.outputs.push(v);
                Ok(pc + 1)
            }
            Opcode::Assign => {
                let v = self.eval(&q.a, sid)?;
                self.store(&q.dst, v, sid)?;
                Ok(pc + 1)
            }
            Opcode::Neg => {
                let v = match self.eval(&q.a, sid)? {
                    ExecValue::Int(i) => ExecValue::Int(-i),
                    ExecValue::Real(r) => ExecValue::Real(-r),
                };
                self.store(&q.dst, v, sid)?;
                Ok(pc + 1)
            }
            Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Div | Opcode::Mod => {
                let a = self.eval(&q.a, sid)?;
                let b = self.eval(&q.b, sid)?;
                let v = self.arith(q.op, a, b, sid)?;
                self.store(&q.dst, v, sid)?;
                Ok(pc + 1)
            }
            Opcode::Call(f) => {
                let name = self.prog.syms().name(f).trim_start_matches("@fn:").to_owned();
                let a = self.eval(&q.a, sid)?.to_f64();
                let v = match name.as_str() {
                    "sqrt" => a.sqrt(),
                    "sin" => a.sin(),
                    "cos" => a.cos(),
                    "abs" => a.abs(),
                    "exp" => a.exp(),
                    "log" => a.ln(),
                    "atan" => a.atan(),
                    "min" => a.min(self.eval(&q.b, sid)?.to_f64()),
                    "max" => a.max(self.eval(&q.b, sid)?.to_f64()),
                    other => return Err(ExecError::UnknownIntrinsic(other.into(), sid)),
                };
                self.store(&q.dst, ExecValue::Real(v), sid)?;
                Ok(pc + 1)
            }
            other => Err(ExecError::Malformed(format!("unexpected opcode {other}"))),
        }
    }

    fn arith(
        &self,
        op: Opcode,
        a: ExecValue,
        b: ExecValue,
        at: StmtId,
    ) -> Result<ExecValue, ExecError> {
        if let (ExecValue::Int(x), ExecValue::Int(y)) = (a, b) {
            let v = match op {
                Opcode::Add => x.wrapping_add(y),
                Opcode::Sub => x.wrapping_sub(y),
                Opcode::Mul => x.wrapping_mul(y),
                Opcode::Div => {
                    if y == 0 {
                        return Err(ExecError::DivideByZero(at));
                    }
                    x.wrapping_div(y)
                }
                Opcode::Mod => {
                    if y == 0 {
                        return Err(ExecError::DivideByZero(at));
                    }
                    x.wrapping_rem(y)
                }
                _ => unreachable!(),
            };
            return Ok(ExecValue::Int(v));
        }
        let (x, y) = (a.to_f64(), b.to_f64());
        let v = match op {
            Opcode::Add => x + y,
            Opcode::Sub => x - y,
            Opcode::Mul => x * y,
            Opcode::Div => x / y,
            Opcode::Mod => {
                if y == 0.0 {
                    return Err(ExecError::DivideByZero(at));
                }
                x % y
            }
            _ => unreachable!(),
        };
        Ok(ExecValue::Real(v))
    }

    fn eval(&self, o: &Operand, at: StmtId) -> Result<ExecValue, ExecError> {
        match o {
            Operand::None => Ok(ExecValue::Int(0)),
            Operand::Const(Value::Int(i)) => Ok(ExecValue::Int(*i)),
            Operand::Const(Value::Real(r)) => Ok(ExecValue::Real(*r)),
            Operand::Var(s) => Ok(self.scalars.get(s).copied().unwrap_or(ExecValue::Int(0))),
            Operand::Elem { array, subs } => {
                let idx = self.flat_index(*array, subs, at)?;
                let (_, data) = &self.arrays[array];
                Ok(data[idx])
            }
        }
    }

    fn store(&mut self, dst: &Operand, v: ExecValue, at: StmtId) -> Result<(), ExecError> {
        match dst {
            Operand::Var(s) => {
                // Coerce to the declared type (FORTRAN assignment).
                let coerced = match self.prog.var_info(*s).map(|i| i.ty) {
                    Some(VarType::Int) => ExecValue::Int(v.as_int()),
                    Some(VarType::Real) => ExecValue::Real(v.to_f64()),
                    None => v,
                };
                self.scalars.insert(*s, coerced);
                Ok(())
            }
            Operand::Elem { array, subs } => {
                let idx = self.flat_index(*array, subs, at)?;
                let ty = self.prog.var_info(*array).map(|i| i.ty);
                let coerced = match ty {
                    Some(VarType::Int) => ExecValue::Int(v.as_int()),
                    _ => ExecValue::Real(v.to_f64()),
                };
                self.arrays.get_mut(array).expect("declared").1[idx] = coerced;
                Ok(())
            }
            other => Err(ExecError::Malformed(format!(
                "cannot store into {other:?}"
            ))),
        }
    }

    fn eval_affine(&self, e: &AffineExpr) -> i64 {
        let mut v = e.constant();
        for var in e.vars() {
            let val = self
                .scalars
                .get(&var)
                .copied()
                .unwrap_or(ExecValue::Int(0))
                .as_int();
            v += e.coeff(var) * val;
        }
        v
    }

    fn flat_index(
        &self,
        array: Sym,
        subs: &[AffineExpr],
        at: StmtId,
    ) -> Result<usize, ExecError> {
        let (dims, _) = self
            .arrays
            .get(&array)
            .ok_or_else(|| ExecError::Malformed("undeclared array".into()))?;
        let vals: Vec<i64> = subs.iter().map(|e| self.eval_affine(e)).collect();
        if vals.len() != dims.len() {
            return Err(ExecError::Malformed("subscript arity".into()));
        }
        // Column-major (FORTRAN) with 1-based subscripts.
        let mut idx: i64 = 0;
        let mut stride: i64 = 1;
        for (v, d) in vals.iter().zip(dims) {
            if *v < 1 || *v > *d {
                return Err(ExecError::OutOfBounds {
                    array: self.prog.syms().name(array).into(),
                    subs: vals.clone(),
                    at,
                });
            }
            idx += (v - 1) * stride;
            stride *= d;
        }
        Ok(usize::try_from(idx).expect("non-negative"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gospel_frontend::compile;

    fn outputs(src: &str) -> Vec<ExecValue> {
        run(&compile(src).unwrap(), &[]).unwrap().outputs
    }

    #[test]
    fn arithmetic_and_loops() {
        let o = outputs(
            "program p\ninteger i, s\ns = 0\ndo i = 1, 10\ns = s + i\nend do\nwrite s\nwrite i\nend",
        );
        // sum 1..10 and the FORTRAN post-loop LCV value
        assert_eq!(o, vec![ExecValue::Int(55), ExecValue::Int(11)]);
    }

    #[test]
    fn zero_trip_loop_body_skipped() {
        let o = outputs(
            "program p\ninteger i, s\ns = 7\ndo i = 5, 4\ns = 0\nend do\nwrite s\nend",
        );
        assert_eq!(o, vec![ExecValue::Int(7)]);
    }

    #[test]
    fn branches_both_ways() {
        let o = outputs(
            "program p\ninteger x, y\nx = 3\nif (x > 2) then\ny = 1\nelse\ny = 2\nend if\nwrite y\nif (x > 5) then\ny = 3\nelse\ny = 4\nend if\nwrite y\nend",
        );
        assert_eq!(o, vec![ExecValue::Int(1), ExecValue::Int(4)]);
    }

    #[test]
    fn arrays_are_column_major_one_based() {
        let o = outputs(
            "program p\ninteger i, j\nreal a(3,3)\ndo i = 1, 3\ndo j = 1, 3\na(i,j) = 10 * i + j\nend do\nend do\nwrite a(2,3)\nend",
        );
        assert_eq!(o, vec![ExecValue::Real(23.0)]);
    }

    #[test]
    fn integer_division_semantics() {
        let o = outputs("program p\ninteger n, m\nn = 7\nm = n / 2\nwrite m\nwrite n mod 2\nend");
        assert_eq!(o[0], ExecValue::Int(3));
        assert_eq!(o[1], ExecValue::Int(1));
    }

    #[test]
    fn intrinsics_evaluate() {
        let o = outputs("program p\nreal x\nx = sqrt(16.0)\nwrite x\nwrite abs(0.0 - 2.5)\nend");
        assert_eq!(o[0], ExecValue::Real(4.0));
        assert_eq!(o[1], ExecValue::Real(2.5));
    }

    #[test]
    fn reads_consume_inputs_then_zero() {
        let prog = compile("program p\ninteger a, b\nread a\nread b\nwrite a + b\nend").unwrap();
        let t = run(&prog, &[ExecValue::Int(40), ExecValue::Int(2)]).unwrap();
        assert_eq!(t.outputs, vec![ExecValue::Int(42)]);
        let t2 = run(&prog, &[ExecValue::Int(40)]).unwrap();
        assert_eq!(t2.outputs, vec![ExecValue::Int(40)]);
    }

    #[test]
    fn out_of_bounds_is_detected() {
        let r = run(
            &compile("program p\ninteger i\nreal a(3)\ni = 4\na(i) = 1.0\nend").unwrap(),
            &[],
        );
        assert!(matches!(r, Err(ExecError::OutOfBounds { .. })), "{r:?}");
    }

    #[test]
    fn divide_by_zero_is_detected() {
        let r = run(
            &compile("program p\ninteger x, z\nz = 0\nx = 1 / z\nend").unwrap(),
            &[],
        );
        assert!(matches!(r, Err(ExecError::DivideByZero(_))), "{r:?}");
    }

    #[test]
    fn step_limit_guards_runaway() {
        // 1000-trip loop with a 10-step budget
        let r = run_limited(
            &compile("program p\ninteger i, s\ndo i = 1, 1000\ns = i\nend do\nend").unwrap(),
            &[],
            10,
        );
        assert!(matches!(r, Err(ExecError::StepLimit(10))));
    }

    #[test]
    fn pardo_runs_sequentially() {
        let mut prog = compile(
            "program p\ninteger i\nreal a(5)\ndo i = 1, 5\na(i) = i\nend do\nwrite a(5)\nend",
        )
        .unwrap();
        // flip the header to pardo by hand
        let head = prog
            .iter()
            .find(|&s| prog.quad(s).op == Opcode::DoHead)
            .unwrap();
        let q = prog.quad(head).clone();
        prog.replace(head, gospel_ir::Quad::new(Opcode::ParDo, q.dst, q.a, q.b));
        let t = run(&prog, &[]).unwrap();
        assert_eq!(t.outputs, vec![ExecValue::Real(5.0)]);
    }

}
