//! Semantic validation of parsed specifications.

use crate::ast::*;
use crate::parser::ParseError;
use std::collections::HashMap;
use std::fmt;

/// What a specification-level name denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarClass {
    /// A statement variable (from `TYPE Stmt` or bound by `copy`/`add`).
    Stmt,
    /// A loop variable.
    Loop,
    /// A position variable bound by `(var, pos)` in a dependence clause.
    Pos,
    /// A set of statements bound by an `all` dependence clause.
    StmtSet,
}

/// Value kinds during expression checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Stmt,
    Loop,
    Operand,
    Opcode,
    Pos,
    Number,
    /// A bare name that could be an opcode: resolved by comparison context.
    NameLike,
}

/// Validation outcome: name classes plus advisory warnings (the paper's
/// `no` pattern operator "returns null and warns the user").
#[derive(Clone, Debug, Default)]
pub struct SpecInfo {
    /// Class of every specification variable.
    pub classes: HashMap<String, VarClass>,
    /// Non-fatal diagnostics.
    pub warnings: Vec<String>,
}

/// A semantic (or syntactic) defect in a specification.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// Syntax error from parsing.
    Parse(ParseError),
    /// Identifier declared twice in `TYPE`.
    Redeclared(String),
    /// A clause references a name that is not bound yet.
    Unbound(String),
    /// A pattern clause's variables don't match a declared group.
    BadBinding(String),
    /// Ill-typed attribute path or expression.
    IllTyped(String),
    /// A malformed action.
    BadAction(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "syntax: {e}"),
            SpecError::Redeclared(n) => write!(f, "`{n}` declared twice"),
            SpecError::Unbound(n) => write!(f, "`{n}` used before being bound"),
            SpecError::BadBinding(m) => write!(f, "bad binding: {m}"),
            SpecError::IllTyped(m) => write!(f, "ill-typed: {m}"),
            SpecError::BadAction(m) => write!(f, "bad action: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

struct Checker {
    decls: HashMap<String, ElemType>,
    /// Names bound so far (pattern → depend → action order).
    bound: HashMap<String, VarClass>,
    info: SpecInfo,
}

/// Validates a specification: declaration structure, binding order,
/// attribute-path typing and action well-formedness.
///
/// # Errors
///
/// Returns the first [`SpecError`] found.
pub fn validate_spec(spec: &Spec) -> Result<SpecInfo, SpecError> {
    let mut ck = Checker {
        decls: HashMap::new(),
        bound: HashMap::new(),
        info: SpecInfo::default(),
    };

    for d in &spec.decls {
        for g in &d.groups {
            for name in g {
                match ck.decls.insert(name.clone(), d.ty) {
                    // A loop may appear in several pair groups of the same
                    // type (loop circulation chains pairs through a shared
                    // middle loop); anything else is a redeclaration.
                    Some(prev) if prev != d.ty || d.ty.arity() == 1 => {
                        return Err(SpecError::Redeclared(name.clone()));
                    }
                    _ => {}
                }
            }
        }
    }

    for p in &spec.patterns {
        ck.pattern(spec, p)?;
    }
    for d in &spec.depends {
        ck.depend(d)?;
    }
    for a in &spec.actions {
        ck.action(a)?;
    }

    Ok(ck.info)
}

impl Checker {
    fn class_of_decl(ty: ElemType) -> VarClass {
        match ty {
            ElemType::Stmt => VarClass::Stmt,
            _ => VarClass::Loop,
        }
    }

    fn bind(&mut self, name: &str, class: VarClass) {
        self.bound.insert(name.to_owned(), class);
        self.info.classes.insert(name.to_owned(), class);
    }

    fn pattern(&mut self, spec: &Spec, p: &PatternClause) -> Result<(), SpecError> {
        // The variables must correspond to a declared group.
        let group_ty = self.group_type(spec, &p.vars)?;
        if p.quant == Quant::No {
            self.info.warnings.push(format!(
                "`no` in Code_Pattern binds nothing (variables {:?})",
                p.vars
            ));
        }
        for v in &p.vars {
            self.bind(v, Self::class_of_decl(group_ty));
        }
        if let Some(f) = &p.format {
            self.check_bool(f, false)?;
        }
        Ok(())
    }

    fn group_type(&self, spec: &Spec, vars: &[String]) -> Result<ElemType, SpecError> {
        // A pattern clause binds either one Stmt/Loop variable or a declared
        // loop pair.
        match vars.len() {
            1 => self
                .decls
                .get(&vars[0])
                .copied()
                .filter(|t| t.arity() == 1)
                .ok_or_else(|| SpecError::BadBinding(format!("`{}` is not a Stmt/Loop", vars[0]))),
            2 => {
                for d in &spec.decls {
                    if d.ty.arity() == 2 && d.groups.iter().any(|g| g == vars) {
                        return Ok(d.ty);
                    }
                }
                Err(SpecError::BadBinding(format!(
                    "({}, {}) is not a declared loop pair",
                    vars[0], vars[1]
                )))
            }
            n => Err(SpecError::BadBinding(format!(
                "a pattern clause binds 1 or 2 variables, got {n}"
            ))),
        }
    }

    fn depend(&mut self, d: &DependClause) -> Result<(), SpecError> {
        // Bind the clause's variables: declared statements/loops, plus pos
        // variables (which must be fresh).
        for (v, pv) in d.vars.iter().zip(&d.pos_vars) {
            let ty = self
                .decls
                .get(v)
                .copied()
                .ok_or_else(|| SpecError::Unbound(v.clone()))?;
            // Inside the clause the variable denotes one candidate element;
            // `all` rebinds it to the collected set *after* the clause.
            let class = match ty {
                ElemType::Stmt => VarClass::Stmt,
                t if t.arity() == 1 => VarClass::Loop,
                _ => {
                    return Err(SpecError::BadBinding(format!(
                        "dependence clauses bind statements or single loops, not `{v}`"
                    )))
                }
            };
            self.bind(v, class);
            if let Some(p) = pv {
                if self.decls.contains_key(p) {
                    return Err(SpecError::BadBinding(format!(
                        "position variable `{p}` shadows a declared element"
                    )));
                }
                self.bind(p, VarClass::Pos);
            }
        }
        for m in &d.members {
            self.check_val(&m.elem)?;
            self.check_set(&m.set)?;
        }
        self.check_bool(&d.cond, true)?;
        if d.quant == Quant::All {
            for (v, _) in d.vars.iter().zip(&d.pos_vars) {
                if self.decls.get(v) == Some(&ElemType::Stmt) {
                    self.bind(v, VarClass::StmtSet);
                }
            }
        }
        Ok(())
    }

    fn check_set(&self, s: &SetExpr) -> Result<(), SpecError> {
        match s {
            SetExpr::Named(n) => {
                match self.bound.get(n) {
                    Some(VarClass::Loop) | Some(VarClass::StmtSet) => Ok(()),
                    Some(_) => Err(SpecError::IllTyped(format!("`{n}` is not a set"))),
                    None => Err(SpecError::Unbound(n.clone())),
                }
            }
            SetExpr::Path(a, b) => {
                let ka = self.kind_of(a)?;
                let kb = self.kind_of(b)?;
                if ka == Kind::Stmt && kb == Kind::Stmt {
                    Ok(())
                } else {
                    Err(SpecError::IllTyped("path() takes two statements".into()))
                }
            }
            SetExpr::Union(a, b) | SetExpr::Inter(a, b) => {
                self.check_set(a)?;
                self.check_set(b)
            }
        }
    }

    fn check_bool(&self, b: &BoolExpr, deps_allowed: bool) -> Result<(), SpecError> {
        match b {
            BoolExpr::And(l, r) | BoolExpr::Or(l, r) => {
                self.check_bool(l, deps_allowed)?;
                self.check_bool(r, deps_allowed)
            }
            BoolExpr::Not(i) => self.check_bool(i, deps_allowed),
            BoolExpr::Cmp(l, _, r) => {
                let kl = self.kind_of(l)?;
                let kr = self.kind_of(r)?;
                if compatible(kl, kr) {
                    Ok(())
                } else {
                    Err(SpecError::IllTyped(format!(
                        "cannot compare {kl:?} with {kr:?}"
                    )))
                }
            }
            BoolExpr::Dep { kind: _, from, to, dirs: _ } => {
                if !deps_allowed {
                    return Err(SpecError::IllTyped(
                        "dependence tests belong in the Depend section".into(),
                    ));
                }
                for side in [from, to] {
                    let k = self.kind_of(side)?;
                    if k != Kind::Stmt {
                        return Err(SpecError::IllTyped(format!(
                            "dependence endpoints must be statements, got {k:?}"
                        )));
                    }
                }
                Ok(())
            }
            BoolExpr::TypeIs(v, _, _) => {
                let k = self.kind_of(v)?;
                if k == Kind::Operand {
                    Ok(())
                } else {
                    Err(SpecError::IllTyped(format!(
                        "type() inspects operands, got {k:?}"
                    )))
                }
            }
        }
    }

    fn check_val(&self, v: &ValExpr) -> Result<(), SpecError> {
        self.kind_of(v).map(|_| ())
    }

    fn kind_of(&self, v: &ValExpr) -> Result<Kind, SpecError> {
        match v {
            ValExpr::Int(_) | ValExpr::Real(_) => Ok(Kind::Number),
            ValExpr::Name(n) => match self.bound.get(n) {
                Some(VarClass::Stmt) => Ok(Kind::Stmt),
                Some(VarClass::Loop) => Ok(Kind::Loop),
                Some(VarClass::Pos) => Ok(Kind::Pos),
                Some(VarClass::StmtSet) => {
                    Err(SpecError::IllTyped(format!("set `{n}` used as a value")))
                }
                // Unbound bare names are opcode spellings (`assign`) —
                // legal only where an opcode/name is expected, which the
                // comparison compatibility check enforces.
                None => Ok(Kind::NameLike),
            },
            ValExpr::Ref(r) => self.kind_of_ref(r),
            ValExpr::OperandFn(s, p) => {
                let ks = self.kind_of(s)?;
                let kp = self.kind_of(p)?;
                if ks != Kind::Stmt {
                    return Err(SpecError::IllTyped(
                        "operand() takes a statement first".into(),
                    ));
                }
                if kp != Kind::Pos && kp != Kind::Number {
                    return Err(SpecError::IllTyped(
                        "operand() takes a position second".into(),
                    ));
                }
                Ok(Kind::Operand)
            }
            ValExpr::Eval(a, op, b) => {
                for side in [a, b] {
                    let k = self.kind_of(side)?;
                    if k != Kind::Operand && k != Kind::Number {
                        return Err(SpecError::IllTyped("eval() folds operands".into()));
                    }
                }
                let ko = self.kind_of(op)?;
                if ko != Kind::Opcode && ko != Kind::NameLike {
                    return Err(SpecError::IllTyped(
                        "eval() operation must be an opcode name or `.opc`".into(),
                    ));
                }
                Ok(Kind::Operand)
            }
            ValExpr::Bump(x, var, k) => {
                let kx = self.kind_of(x)?;
                let kv = self.kind_of(var)?;
                let kk = self.kind_of(k)?;
                if kx != Kind::Operand || kv != Kind::Operand {
                    return Err(SpecError::IllTyped(
                        "bump() takes an operand and a variable operand".into(),
                    ));
                }
                if kk != Kind::Number && kk != Kind::Operand {
                    return Err(SpecError::IllTyped(
                        "bump() amount must be a constant expression".into(),
                    ));
                }
                Ok(Kind::Operand)
            }
        }
    }

    fn kind_of_ref(&self, r: &ElemRef) -> Result<Kind, SpecError> {
        let mut kind = match self.bound.get(&r.base) {
            Some(VarClass::Stmt) => Kind::Stmt,
            Some(VarClass::Loop) => Kind::Loop,
            Some(VarClass::Pos) => Kind::Pos,
            Some(VarClass::StmtSet) => {
                return Err(SpecError::IllTyped(format!(
                    "set `{}` has no attributes",
                    r.base
                )))
            }
            None => return Err(SpecError::Unbound(r.base.clone())),
        };
        for attr in &r.path {
            kind = match (kind, attr) {
                (Kind::Stmt, Attr::Nxt | Attr::Prev) => Kind::Stmt,
                (Kind::Stmt, Attr::Opr(_)) => Kind::Operand,
                (Kind::Stmt, Attr::Opc) => Kind::Opcode,
                (Kind::Loop, Attr::Head | Attr::End) => Kind::Stmt,
                (Kind::Loop, Attr::Lcv | Attr::Init | Attr::Final) => Kind::Operand,
                (Kind::Loop, Attr::Nxt | Attr::Prev) => Kind::Loop,
                (Kind::Loop, Attr::Body) => {
                    return Err(SpecError::IllTyped(
                        "`.body` is a set; use it in mem()/forall".into(),
                    ))
                }
                (k, a) => {
                    return Err(SpecError::IllTyped(format!(
                        "attribute `.{}` not defined on {k:?}",
                        a.keyword()
                    )))
                }
            };
        }
        Ok(kind)
    }

    fn action(&mut self, a: &Action) -> Result<(), SpecError> {
        match a {
            Action::Delete(x) => {
                let k = self.kind_of(x)?;
                if k != Kind::Stmt && k != Kind::Loop {
                    return Err(SpecError::BadAction(format!(
                        "delete() takes a statement or loop, got {k:?}"
                    )));
                }
            }
            Action::Move(x, after) => {
                let kx = self.kind_of(x)?;
                let ka = self.kind_of(after)?;
                if !(matches!(kx, Kind::Stmt | Kind::Loop) && ka == Kind::Stmt) {
                    return Err(SpecError::BadAction(
                        "move() takes an element and a target statement".into(),
                    ));
                }
            }
            Action::Copy(x, after, name) => {
                let kx = self.kind_of(x)?;
                let ka = self.kind_of(after)?;
                if !(matches!(kx, Kind::Stmt | Kind::Loop) && ka == Kind::Stmt) {
                    return Err(SpecError::BadAction(
                        "copy() takes an element and a target statement".into(),
                    ));
                }
                self.bind(name, VarClass::Stmt);
            }
            Action::Add(after, desc, name) => {
                let ka = self.kind_of(after)?;
                if ka != Kind::Stmt {
                    return Err(SpecError::BadAction(
                        "add() places after a statement".into(),
                    ));
                }
                for opr in [&desc.opr_1, &desc.opr_2, &desc.opr_3]
                    .into_iter()
                    .flatten()
                {
                    let k = self.kind_of(opr)?;
                    if k != Kind::Operand && k != Kind::Number {
                        return Err(SpecError::BadAction(format!(
                            "template operands must be operands, got {k:?}"
                        )));
                    }
                }
                self.bind(name, VarClass::Stmt);
            }
            Action::Modify(place, new) => {
                let kp = self.kind_of(place)?;
                if kp != Kind::Operand {
                    return Err(SpecError::BadAction(format!(
                        "modify() needs an operand place, got {kp:?}"
                    )));
                }
                let kn = self.kind_of(new)?;
                if kn != Kind::Operand && kn != Kind::Number {
                    return Err(SpecError::BadAction(format!(
                        "modify() replacement must be an operand, got {kn:?}"
                    )));
                }
            }
            Action::ForAll {
                var,
                pos_var,
                set,
                body,
            } => {
                self.check_set(set)?;
                self.bind(var, VarClass::Stmt);
                if let Some(p) = pos_var {
                    self.bind(p, VarClass::Pos);
                }
                for a in body {
                    self.action(a)?;
                }
            }
        }
        Ok(())
    }
}

fn compatible(a: Kind, b: Kind) -> bool {
    use Kind::*;
    matches!(
        (a, b),
        (Stmt, Stmt)
            | (Loop, Loop)
            | (Operand, Operand)
            | (Operand, Number)
            | (Number, Operand)
            | (Number, Number)
            | (Opcode, NameLike)
            | (NameLike, Opcode)
            | (Pos, Pos)
            | (Pos, Number)
            | (Number, Pos)
    )
}

#[cfg(test)]
mod tests {
    use crate::parse_validated;

    const CTP: &str = r#"
OPTIMIZATION CTP
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Sl != Si)
                   AND operand(Sj, pos2) == operand(Sj, pos);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
END
"#;

    #[test]
    fn ctp_validates() {
        let (_, info) = parse_validated(CTP).unwrap();
        use crate::VarClass;
        assert_eq!(info.classes["Si"], VarClass::Stmt);
        assert_eq!(info.classes["pos"], VarClass::Pos);
    }

    #[test]
    fn unbound_reference_rejected() {
        let src = "OPTIMIZATION X TYPE Stmt: S; PRECOND Code_Pattern any S: Sx.opc == assign; ACTION delete(S); END";
        assert!(crate::parse_validated(src).is_err());
    }

    #[test]
    fn pair_binding_must_match_declaration() {
        let src = "OPTIMIZATION X TYPE Tight_Loops: (L1, L2); PRECOND Code_Pattern any (L2, L1); ACTION delete(L1.head); END";
        assert!(crate::parse_validated(src).is_err());
    }

    #[test]
    fn dep_in_pattern_section_rejected() {
        let src = "OPTIMIZATION X TYPE Stmt: S, T; PRECOND Code_Pattern any S: flow_dep(S, T); ACTION delete(S); END";
        assert!(crate::parse_validated(src).is_err());
    }

    #[test]
    fn modify_needs_operand_place() {
        let src = "OPTIMIZATION X TYPE Stmt: S; PRECOND Code_Pattern any S; ACTION modify(S, 3); END";
        assert!(crate::parse_validated(src).is_err());
    }

    #[test]
    fn body_attr_only_in_sets() {
        let src = "OPTIMIZATION X TYPE Loop: L; PRECOND Code_Pattern any L: L.body == 3; ACTION delete(L.head); END";
        assert!(crate::parse_validated(src).is_err());
    }

    #[test]
    fn no_pattern_warns() {
        let src = "OPTIMIZATION X TYPE Stmt: S; PRECOND Code_Pattern no S; ACTION delete(S); END";
        let (_, info) = crate::parse_validated(src).unwrap();
        assert!(!info.warnings.is_empty());
    }

    #[test]
    fn redeclaration_rejected() {
        let src = "OPTIMIZATION X TYPE Stmt: S; Loop: S; PRECOND Code_Pattern any S; ACTION delete(S); END";
        assert!(crate::parse_validated(src).is_err());
    }

    #[test]
    fn forall_over_all_set() {
        let src = r#"
OPTIMIZATION DCEish
TYPE Stmt: Si, Su;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign;
  Depend
    all (Su, p): flow_dep(Si, Su);
ACTION
  forall (S, q) in Su do
    modify(operand(S, q), Si.opr_2);
  end;
END
"#;
        let (_, info) = crate::parse_validated(src).unwrap();
        assert_eq!(info.classes["Su"], crate::VarClass::StmtSet);
        assert_eq!(info.classes["S"], crate::VarClass::Stmt);
    }
}
